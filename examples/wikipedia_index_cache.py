"""The §2.1.4 scenario: Wikipedia's name_title index with a tuple cache.

Run with::

    python examples/wikipedia_index_cache.py

Builds the synthetic page table, creates the composite
``(page_namespace, page_title)`` index with the paper's four cached
fields, replays a zipf-skewed lookup trace, and reports where lookups were
answered — plus what the field-selection advisor would have picked.
"""

from __future__ import annotations

from repro.btree.stats import collect_stats
from repro.core.index_cache.advisor import QueryClass, select_cached_fields
from repro.query.database import Database
from repro.util.rng import DeterministicRng
from repro.workload.wikipedia import (
    PAGE_SCHEMA,
    WikipediaConfig,
    generate,
    name_title_lookup_trace,
)

CACHED_FIELDS = ("page_id", "page_latest", "page_touched", "page_len")
PROJECTION = ("page_namespace", "page_title") + CACHED_FIELDS


def main() -> None:
    data = generate(
        WikipediaConfig(n_pages=3_000, revisions_per_page_mean=2,
                        read_alpha=1.2, seed=0)
    )
    db = Database(data_pool_pages=100_000, seed=0)
    pages = db.create_table("page", PAGE_SCHEMA)
    db.create_cached_index(
        "page", "name_title", ("page_namespace", "page_title"),
        cached_fields=CACHED_FIELDS,
    )

    rows = list(data.page_rows)
    DeterministicRng(1).shuffle(rows)  # random arrival => ~68% leaf fill
    for row in rows:
        pages.insert(row)

    index = pages.index("name_title")
    stats = collect_stats(index.tree)
    print(
        f"name_title index: {stats.leaf_pages} leaves at "
        f"{stats.leaf_fill_mean:.0%} fill, "
        f"{stats.free_bytes_total / 1024:.0f} KiB free space recycled as "
        f"{index.cache_capacity_total()} cache slots "
        f"({index.cache.item_size} B each)"
    )

    trace = name_title_lookup_trace(data, 30_000, seed=2)
    for key in trace:
        pages.lookup("name_title", key, PROJECTION)
    print(
        f"replayed {len(trace)} lookups: "
        f"{index.stats.cache_answer_rate:.1%} answered from the index "
        f"cache (paper: >90%), {index.stats.heap_fetches} heap fetches"
    )

    # What would the automated advisor have cached?
    queries = [
        QueryClass.of(PROJECTION, 0.4),            # the popular class
        QueryClass.of(("page_namespace", "page_title"), 0.6),
    ]
    choice = select_cached_fields(
        PAGE_SCHEMA, ("page_namespace", "page_title"), [], queries,
        free_bytes_per_page=stats.free_bytes_total / stats.leaf_pages,
    )
    print(
        f"advisor picks : {choice.fields} "
        f"(coverage {choice.coverage:.0%}, payload {choice.payload_bytes} B)"
    )


if __name__ == "__main__":
    main()
