"""The §4.2 scenario: semantic IDs — elide them or make them route.

Run with::

    python examples/semantic_ids_routing.py

Part 1 drops an AUTO_INCREMENT id in favour of the tuple's physical
address (RID proxy).  Part 2 embeds partition numbers in id values and
compares routing state against an explicit per-tuple routing table (the
Schism-style bottleneck the paper calls out).
"""

from __future__ import annotations

from repro.core.semantic_ids.embedding import EmbeddedId, plan_reassignment
from repro.core.semantic_ids.reduction import RidProxyTable, id_elision_savings
from repro.core.semantic_ids.routing import compare_routers
from repro.schema.schema import Schema
from repro.schema.types import UINT32, UINT64, char
from repro.storage.buffer_pool import BufferPool
from repro.storage.disk import SimulatedDisk
from repro.storage.heap import HeapFile
from repro.util.rng import DeterministicRng
from repro.util.units import fmt_bytes


def rid_proxy_demo() -> None:
    schema = Schema.of(
        ("comment_id", UINT64),   # AUTO_INCREMENT, value meaningless
        ("author", char(12)),
        ("likes", UINT32),
    )
    pool = BufferPool(SimulatedDisk(4096), 1024)
    table = RidProxyTable(schema, "comment_id", HeapFile(pool))

    handles = []
    for i in range(10_000):
        handles.append(
            table.insert({"comment_id": 0, "author": f"u{i % 97}", "likes": i % 50})
        )
    sample = table.get(handles[1234])
    print(
        f"RID-proxy table: {len(handles)} rows, id column elided "
        f"(saves {fmt_bytes(id_elision_savings(schema, 'comment_id', len(handles)))} "
        f"of heap bytes plus the entire id index)"
    )
    print(f"row via physical handle: {sample}")


def routing_demo() -> None:
    scheme = EmbeddedId(partition_bits=8)
    rng = DeterministicRng(7)
    n = 200_000
    # Per-tuple placement, as a workload-driven partitioner would emit.
    placement = {i: rng.randrange(16) for i in range(n)}
    plan = plan_reassignment(scheme, placement)
    embedded = {plan.new_id(i): p for i, p in placement.items()}

    probes = rng.sample(list(embedded), 1_000)
    comparison = compare_routers(embedded, scheme, probes)
    print(
        f"\nrouting {comparison.tuples} tuples over "
        f"{comparison.partitions} partitions:"
    )
    print(f"  lookup-table router: {fmt_bytes(comparison.lookup_table_bytes)} of state")
    print(f"  embedded-id router : {fmt_bytes(comparison.embedded_bytes)} of state")
    print(f"  routers agree on {len(probes)} probes: {comparison.agree}")
    example = probes[0]
    print(
        f"  example: id {example} -> partition "
        f"{scheme.partition_of(example)} (decoded from the id bits alone)"
    )


def main() -> None:
    rid_proxy_demo()
    routing_demo()


if __name__ == "__main__":
    main()
