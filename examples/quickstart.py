"""Quickstart: create a database, a table, a cached index, and query it.

Run with::

    python examples/quickstart.py

Demonstrates the public API end to end: DDL through :class:`repro.Database`,
inserts/lookups/updates through :class:`repro.Table`, and the §2.1 index
cache answering repeat lookups without touching the heap.
"""

from __future__ import annotations

from repro import Database, Schema, UINT32, UINT64, char, format_report


def main() -> None:
    db = Database(data_pool_pages=256, seed=42)

    schema = Schema.of(
        ("user_id", UINT64),
        ("username", char(16)),
        ("karma", UINT32),
        ("posts", UINT32),
    )
    users = db.create_table("users", schema)
    db.create_index("users", "users_pk", ("user_id",))
    db.create_cached_index(
        "users", "users_by_name", ("username",),
        cached_fields=("karma", "posts"),
    )

    for i in range(1_000):
        users.insert(
            {
                "user_id": i,
                "username": f"user{i:04d}",
                "karma": (i * 7) % 500,
                "posts": i % 40,
            }
        )
    print(f"inserted {users.num_rows} rows "
          f"({users.heap.num_pages} heap pages)")

    # Point lookup through the primary key.
    result = users.lookup("users_pk", 123)
    print(f"pk lookup     : {result.values}")

    # First name-index lookup fills the leaf cache; the second is answered
    # from the index page itself — no heap access.
    first = users.lookup("users_by_name", "user0123", ("username", "karma"))
    second = users.lookup("users_by_name", "user0123", ("username", "karma"))
    print(f"name lookup   : {second.values} "
          f"(from_cache={second.from_cache}, first={first.from_cache})")

    # Updates invalidate the cached copy through the §2.1.2 predicate log.
    users.update("users_pk", 123, {"karma": 9999})
    refreshed = users.lookup("users_by_name", "user0123", ("karma",))
    print(f"after update  : {refreshed.values}")

    index = users.index("users_by_name")
    print(
        f"cache stats   : {index.stats.answered_from_cache} of "
        f"{index.stats.found} found lookups answered from the index cache"
    )

    # Every subsystem emits into the database's metrics registry; the
    # snapshot is a nested dict keyed by dotted metric names.
    snap = db.metrics.snapshot()
    print(
        f"metrics       : bufferpool.hit={snap['bufferpool']['hit']} "
        f"btree.insert={snap['btree']['insert']} "
        f"index_cache.hit={snap['index_cache']['hit']}"
    )
    print()
    print(format_report(db.metrics))


if __name__ == "__main__":
    main()
