"""The §4.1 scenario: treating declared types as hints.

Run with::

    python examples/schema_advisor.py

Profiles the synthetic MediaWiki-declared revision table, prints the
waste report, rewrites the schema to its minimal physical types, and
round-trips a row through real codecs to prove the savings are real.
"""

from __future__ import annotations

from repro.core.encoding.codecs import (
    BitPackedIntCodec,
    BooleanBitmapCodec,
    Timestamp14Codec,
)
from repro.core.encoding.inference import optimize_schema
from repro.core.encoding.report import analyze_table_waste, format_waste_report
from repro.workload.wikipedia import (
    REVISION_SCHEMA_DECLARED,
    WikipediaConfig,
    declared_revision_row,
    generate,
)


def main() -> None:
    data = generate(
        WikipediaConfig(n_pages=500, revisions_per_page_mean=5, seed=0)
    )
    rows = [declared_revision_row(r) for r in data.revision_rows]
    columns = {
        name: [row[name] for row in rows]
        for name in REVISION_SCHEMA_DECLARED.names
    }

    report = analyze_table_waste(
        "wikipedia.revision", REVISION_SCHEMA_DECLARED, columns
    )
    print(format_waste_report(report))

    optimized, recommendations = optimize_schema(
        REVISION_SCHEMA_DECLARED, columns
    )
    print(
        f"\nrecord size: {REVISION_SCHEMA_DECLARED.record_size} B declared "
        f"-> {optimized.record_size} B optimized "
        f"({1 - optimized.record_size / REVISION_SCHEMA_DECLARED.record_size:.0%} saved)"
    )
    print("\noptimized physical schema (declared types kept as hints):")
    print(optimized.describe())

    # Prove the flagship rewrites with real codecs.
    ts_codec = Timestamp14Codec()
    sample_ts = columns["rev_timestamp"][:1000]
    packed = ts_codec.encode(sample_ts)  # type: ignore[arg-type]
    assert ts_codec.decode(packed, len(sample_ts)) == sample_ts
    print(
        f"\nrev_timestamp: {14 * len(sample_ts)} B as strings -> "
        f"{len(packed)} B packed (round-trip verified)"
    )

    flags = [bool(v) for v in columns["rev_minor_edit"][:1000]]
    bitmap = BooleanBitmapCodec().encode(flags)
    print(f"rev_minor_edit: {8 * len(flags)} B as INT64 -> {len(bitmap)} B bitmap")

    lens = columns["rev_len"][:1000]
    int_codec = BitPackedIntCodec.for_range(min(lens), max(lens))  # type: ignore[arg-type]
    packed_lens = int_codec.encode(lens)  # type: ignore[arg-type]
    print(
        f"rev_len: {8 * len(lens)} B as INT64 -> {len(packed_lens)} B at "
        f"{int_codec.bit_width} bits/value"
    )


if __name__ == "__main__":
    main()
