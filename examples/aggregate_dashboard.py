"""§2.2 + §3.1 extensions: aggregate caching and online hot/cold management.

Run with::

    python examples/aggregate_dashboard.py

A "dashboard" workload: repeated range aggregates over the revision table
(answered from per-leaf aggregates cached in index free space, §2.2) while
an online manager follows a shifting point-lookup hot set (§3.1's
automated-policy direction).  Finishes by migrating the table to its
minimal physical schema (§4.1) and re-reporting sizes.
"""

from __future__ import annotations

from repro.btree.keycodec import UIntKey
from repro.btree.tree import BPlusTree
from repro.core.encoding.migrate import migrate_table
from repro.core.hot_cold.manager import OnlineHotColdManager
from repro.core.hot_cold.partitioner import HotColdPartitionedTable, Partition
from repro.core.index_cache.agg_cache import AggregateCachingReader
from repro.query.database import Database
from repro.storage.buffer_pool import BufferPool
from repro.storage.disk import SimulatedDisk
from repro.storage.heap import HeapFile
from repro.util.rng import DeterministicRng
from repro.workload.distributions import HotSetDistribution
from repro.workload.wikipedia import (
    REVISION_SCHEMA,
    REVISION_SCHEMA_DECLARED,
    WikipediaConfig,
    declared_revision_row,
    generate,
)

KC = UIntKey(4)


def aggregate_demo(data) -> None:
    db = Database(data_pool_pages=100_000, seed=0)
    table = db.create_table("revision", REVISION_SCHEMA)
    index = db.create_index("revision", "rev_pk", ("rev_id",))
    for row in data.revision_rows:
        table.insert(row)

    reader = AggregateCachingReader(
        index.tree, table.heap, REVISION_SCHEMA, "rev_len",
        rng=DeterministicRng(1),
    )
    count, total = reader.range_aggregate()
    cold_fetches = reader.stats.heap_fetches
    count2, total2 = reader.range_aggregate()
    warm_fetches = reader.stats.heap_fetches - cold_fetches
    assert (count, total) == (count2, total2)
    print(
        f"SUM(rev_len) over {count} rows = {total}\n"
        f"  cold pass: {cold_fetches} heap fetches\n"
        f"  warm pass: {warm_fetches} heap fetches "
        f"({reader.stats.leaves_from_cache} leaf aggregates from cache)"
    )


def manager_demo(data) -> None:
    pool = BufferPool(SimulatedDisk(4096), 100_000)

    def partition():
        return Partition(
            heap=HeapFile(pool, append_only=True),
            tree=BPlusTree(pool, key_size=4, value_size=8),
        )

    table = HotColdPartitionedTable(
        REVISION_SCHEMA, ("rev_id",), partition(), partition()
    )
    rev_ids = []
    for row in data.revision_rows:
        table.insert(row, hot=False)  # everything starts cold
        rev_ids.append(row["rev_id"])

    manager = OnlineHotColdManager(
        table, hot_capacity=len(rev_ids) // 20,
        ops_per_epoch=2_000, migration_budget=400,
    )
    dist = HotSetDistribution(
        len(rev_ids), 0.05, 0.999, DeterministicRng(2)
    )
    for _ in range(12_000):
        manager.lookup(rev_ids[dist.sample()])
    print(
        f"\nonline manager: {len(manager.reports)} rebalances, hot "
        f"partition at {table.hot.num_rows} rows, hot-partition hit rate "
        f"{manager.hot_hit_rate():.1%}"
    )


def migration_demo(data) -> None:
    db = Database(data_pool_pages=100_000)
    table = db.create_table("revision_declared", REVISION_SCHEMA_DECLARED)
    for row in data.revision_rows[:2_000]:
        table.insert(declared_revision_row(row))
    target = HeapFile(BufferPool(SimulatedDisk(4096), 100_000))
    _, optimized, report = migrate_table(table, target)
    print(
        f"\nschema migration: {report.rows} rows, record "
        f"{report.old_record_bytes} B -> {report.new_record_bytes} B "
        f"({report.record_shrink_fraction:.0%} smaller), heap "
        f"{report.old_heap_pages} -> {report.new_heap_pages} pages "
        f"({report.page_shrink_factor:.1f}x)"
    )


def main() -> None:
    data = generate(
        WikipediaConfig(n_pages=400, revisions_per_page_mean=10, seed=0)
    )
    aggregate_demo(data)
    manager_demo(data)
    migration_demo(data)


if __name__ == "__main__":
    main()
