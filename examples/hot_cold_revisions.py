"""The §3.1 scenario: clustering and partitioning the revision table.

Run with::

    python examples/hot_cold_revisions.py

Shows the locality problem (hot tuples scattered ~1 per page), fixes it
two ways — clustering hot tuples to the tail, and giving them their own
partition — and measures the per-lookup cost of each layout on a small
buffer pool.
"""

from __future__ import annotations

from repro.experiments import fig3
from repro.storage.heap import Rid
from repro.workload.wikipedia import WikipediaConfig, generate


def show_scatter() -> None:
    data = generate(WikipediaConfig(n_pages=400, revisions_per_page_mean=20))
    hot = data.hot_rev_ids
    print(
        f"revision table: {len(data.revision_rows)} rows, "
        f"{len(hot)} hot ({data.hot_fraction:.0%}) — the latest revision "
        "per page"
    )
    positions = [
        i for i, row in enumerate(data.revision_rows)
        if row["rev_id"] in hot
    ]
    n = len(data.revision_rows)
    deciles = [0] * 10
    for p in positions:
        deciles[min(9, p * 10 // n)] += 1
    print("hot tuples per table decile:", deciles)
    print("(scattered across the whole table -> ~1 hot tuple per heap page)")


def measure_layouts() -> None:
    rows = fig3.run(
        fig3.Fig3Config(
            n_pages=800, revisions_per_page_mean=15, n_lookups=6_000,
            warmup_lookups=2_000, pool_pages=56, seed=1,
        )
    )
    print("\nlayout                cost/lookup    disk reads/lookup  speedup")
    for r in rows:
        print(
            f"{r.label:<20}  {r.cost_ms_per_lookup:>8.3f} ms   "
            f"{r.disk_reads_per_lookup:>12.3f}     {r.speedup:>5.2f}x"
        )
    base, part = rows[0], rows[-1]
    print(
        f"\nhot-path index: {base.index_bytes // 1024} KiB -> "
        f"{part.index_bytes // 1024} KiB "
        f"({base.index_bytes / part.index_bytes:.1f}x smaller; paper: 19x)"
    )


def main() -> None:
    show_scatter()
    measure_layouts()


if __name__ == "__main__":
    main()
