"""Bounded structured event journal: the state transitions metrics miss.

Counters say *how many* faults were healed; they cannot say that fault
#3 on shard 2 was detected *after* the migration intent for key 17 was
logged but *before* its commit.  The :class:`EventJournal` records
exactly those typed transitions — fault detected/recovered, quarantine,
checkpoint, crash/recovery phases, migration intent/commit, tuning
actions, SLO breach/clear — as causally-ordered
:class:`EngineEvent` records.

Ordering is two-level, the productized version of the PR 9 crash-matrix
test timeline: a **global seq** (the facade's append order — the engine
is single-threaded, so this is the true causal order) plus a
**per-shard monotonic seq** so each shard's local history reads
gap-free even after the bounded ring evicts old records.  Every event
carries the facade clock reading and, when one is active, the
:mod:`~repro.obs.trace` trace id, so journal slices join against span
trees and sampler windows.

Query surface: :meth:`EventJournal.query` filters by kind (exact or
``fnmatch`` glob), shard, trace id, and time range.  Reports embed
slices of it (``DrillReport.events``, ``RecoveryReport.events``) for
crash forensics.  Off path: one ``is None`` test per emit site.
"""

from __future__ import annotations

import fnmatch
from collections import deque
from dataclasses import dataclass
from typing import Callable, Iterator

from repro.obs.registry import MetricsRegistry, resolve_registry

#: Default capacity of the journal ring.
DEFAULT_JOURNAL_CAPACITY = 2048

Clock = Callable[[], float]

# -- event kinds (the closed vocabulary; emitters use these constants) -------

FAULT_DETECTED = "fault.detected"
FAULT_RECOVERED = "fault.recovered"
FAULT_UNRECOVERABLE = "fault.unrecoverable"
QUARANTINE = "fault.quarantine"
CHECKPOINT = "wal.checkpoint"
CRASH = "crash"
RECOVERY_BEGIN = "recovery.begin"
RECOVERY_REDO = "recovery.redo"
RECOVERY_END = "recovery.end"
MIGRATION_INTENT = "migration.intent"
MIGRATION_COMMIT = "migration.commit"
REBALANCE_BEGIN = "rebalance.begin"
REBALANCE_END = "rebalance.end"
TUNING_ACTION = "tuning.action"
SLO_BREACH = "slo.breach"
SLO_CLEAR = "slo.clear"

EVENT_KINDS = (
    FAULT_DETECTED, FAULT_RECOVERED, FAULT_UNRECOVERABLE, QUARANTINE,
    CHECKPOINT, CRASH, RECOVERY_BEGIN, RECOVERY_REDO, RECOVERY_END,
    MIGRATION_INTENT, MIGRATION_COMMIT, REBALANCE_BEGIN, REBALANCE_END,
    TUNING_ACTION, SLO_BREACH, SLO_CLEAR,
)


def _zero_clock() -> float:
    return 0.0


@dataclass(frozen=True)
class EngineEvent:
    """One journal record.  ``seq`` is the global causal order; ``shard_seq``
    is monotonic within ``shard`` (None = facade-side events)."""

    seq: int
    shard_seq: int
    shard: int | None
    kind: str
    t_ns: float
    trace_id: int | None
    payload: tuple[tuple[str, object], ...] = ()

    def as_dict(self) -> dict[str, object]:
        out: dict[str, object] = {
            "seq": self.seq,
            "shard_seq": self.shard_seq,
            "shard": self.shard,
            "kind": self.kind,
            "t_ns": self.t_ns,
        }
        if self.trace_id is not None:
            out["trace_id"] = self.trace_id
        if self.payload:
            out["payload"] = dict(self.payload)
        return out

    def get(self, key: str, default: object = None) -> object:
        for k, v in self.payload:
            if k == key:
                return v
        return default

    def format(self) -> str:
        where = "facade" if self.shard is None else f"shard {self.shard}"
        payload = "".join(f" {k}={v}" for k, v in self.payload)
        tid = f" trace={self.trace_id}" if self.trace_id is not None else ""
        return (
            f"#{self.seq:<5d} [{where} +{self.shard_seq}] "
            f"t={self.t_ns:.0f}ns {self.kind}{tid}{payload}"
        )


class EventJournal:
    """Bounded, causally-ordered, queryable ring of :class:`EngineEvent`.

    ``clock`` follows the Tracer duck-typing (callable / ``now_ns``
    object / None).  ``trace_source`` is an optional
    :class:`~repro.obs.trace.TraceCollector`; when set, emitted events
    are stamped with the active trace id automatically.

    Metrics (in ``registry``): ``events.emitted`` / ``events.dropped``
    counters — dropped counts ring evictions, so
    ``emitted - dropped == len(journal)``.
    """

    def __init__(
        self,
        clock: Clock | object | None = None,
        registry: MetricsRegistry | None = None,
        capacity: int = DEFAULT_JOURNAL_CAPACITY,
        trace_source=None,
    ) -> None:
        if clock is None:
            self._clock: Clock = _zero_clock
        elif callable(clock):
            self._clock = clock  # type: ignore[assignment]
        else:
            self._clock = lambda: clock.now_ns  # type: ignore[attr-defined]
        self._registry = resolve_registry(registry)
        self._ring: deque[EngineEvent] = deque(maxlen=capacity)
        self._next_seq = 1
        self._shard_seqs: dict[int | None, int] = {}
        self._trace_source = trace_source
        self._emitted = self._registry.counter("events.emitted")
        self._dropped = self._registry.counter("events.dropped")

    def __len__(self) -> int:
        return len(self._ring)

    def __iter__(self) -> Iterator[EngineEvent]:
        return iter(self._ring)

    @property
    def trace_source(self):
        return self._trace_source

    @trace_source.setter
    def trace_source(self, value) -> None:
        self._trace_source = value

    def emit(
        self,
        kind: str,
        shard: int | None = None,
        trace_id: int | None = None,
        **payload: object,
    ) -> EngineEvent:
        """Append one event.  ``trace_id`` defaults to the trace source's
        active trace, if any."""
        if trace_id is None and self._trace_source is not None:
            active = self._trace_source.active
            if active is not None:
                trace_id = active.trace_id
        shard_seq = self._shard_seqs.get(shard, 0) + 1
        self._shard_seqs[shard] = shard_seq
        event = EngineEvent(
            seq=self._next_seq,
            shard_seq=shard_seq,
            shard=shard,
            kind=kind,
            t_ns=self._clock(),
            trace_id=trace_id,
            payload=tuple(sorted(payload.items())),
        )
        self._next_seq += 1
        if len(self._ring) == self._ring.maxlen:
            self._dropped.inc()
        self._ring.append(event)
        self._emitted.inc()
        return event

    def query(
        self,
        kind: str | None = None,
        shard: int | None = None,
        trace_id: int | None = None,
        t0: float | None = None,
        t1: float | None = None,
        limit: int | None = None,
    ) -> list[EngineEvent]:
        """Filter retained events, in causal (seq) order.

        ``kind`` may be exact (``"migration.intent"``) or a glob
        (``"fault.*"``); ``shard`` filters by origin (facade events have
        shard None and are only returned when ``shard`` is omitted or
        explicitly None — pass nothing to see everything); time bounds
        are inclusive.  ``limit`` keeps the *last* N matches.
        """
        out = []
        for event in self._ring:
            if kind is not None and not (
                event.kind == kind or fnmatch.fnmatchcase(event.kind, kind)
            ):
                continue
            if shard is not None and event.shard != shard:
                continue
            if trace_id is not None and event.trace_id != trace_id:
                continue
            if t0 is not None and event.t_ns < t0:
                continue
            if t1 is not None and event.t_ns > t1:
                continue
            out.append(event)
        return out if limit is None else out[-limit:]

    def last(self, n: int = 1) -> list[EngineEvent]:
        return list(self._ring)[-n:]

    def as_dicts(self, limit: int | None = None) -> list[dict[str, object]]:
        events = list(self._ring)
        if limit is not None:
            events = events[-limit:]
        return [e.as_dict() for e in events]

    def format(self, limit: int = 20, **filters) -> str:
        events = self.query(limit=limit, **filters)
        if not events:
            return "event journal: (empty)"
        head = (
            f"event journal: {len(self._ring)} retained, "
            f"showing last {len(events)}"
        )
        return "\n".join([head] + [e.format() for e in events])

    def clear(self) -> None:
        """Drop retained events and reset sequence state (used by
        ``reset_counters(reset_obs=True)``)."""
        self._ring.clear()
        self._next_seq = 1
        self._shard_seqs.clear()
