"""Typed metric instruments in a hierarchical registry.

The paper's argument is quantitative — fill factors, hit rates, bytes
reclaimed — so every bit-reclaiming subsystem emits into one shared
:class:`MetricsRegistry` instead of keeping ad-hoc counters.  Three
instrument kinds cover the engine:

* :class:`Counter` — monotonic event counts (``bufferpool.miss``).
* :class:`Gauge` — instantaneous levels (``bufferpool.resident_pages``).
* :class:`Histogram` — fixed log2-bucket distributions, sized for
  simulated-ns latencies and byte counts (``span.query.lookup.ns``).

Names are dot-separated paths (``index_cache.swap.promotions``);
:meth:`MetricsRegistry.snapshot` folds them back into nested dicts so
experiments and benchmarks consume one machine-readable tree.

:class:`NullRegistry` implements the same surface as no-ops.  Hot paths
hold instrument references obtained at construction time, so with the
null registry an instrumented event costs one empty method call —
cost-model outputs are bit-identical with observability on or off,
because no instrument ever touches the RNG or the simulated clock.
"""

from __future__ import annotations

import json
from contextlib import contextmanager
from typing import Iterator

from repro.errors import ObservabilityError

#: Histogram bucket count.  Bucket 0 holds values below 1; bucket ``i``
#: (``i >= 1``) holds values in ``[2**(i-1), 2**i)``; the last bucket is
#: open-ended.  63 powers of two cover simulated-ns latencies (a 5 ms
#: disk read is ~2**22 ns) and byte sizes with room to spare.
HISTOGRAM_BUCKETS = 64


class Counter:
    """A monotonically increasing event count."""

    __slots__ = ("_value",)

    def __init__(self) -> None:
        self._value = 0

    def inc(self, n: int = 1) -> None:
        if n < 0:
            raise ObservabilityError("counters are monotonic; inc needs n >= 0")
        self._value += n

    def reset(self) -> None:
        self._value = 0

    @property
    def value(self) -> int:
        return self._value


class Gauge:
    """An instantaneous level that can move both ways."""

    __slots__ = ("_value",)

    def __init__(self) -> None:
        self._value = 0.0

    def set(self, value: float) -> None:
        self._value = float(value)

    def add(self, delta: float) -> None:
        self._value += delta

    def reset(self) -> None:
        self._value = 0.0

    @property
    def value(self) -> float:
        return self._value


def bucket_index(value: float) -> int:
    """Log2 bucket for ``value``: 0 below 1, else ``1 + floor(log2 v)``,
    clamped to the last (open-ended) bucket."""
    if value < 1:
        return 0
    return min(int(value).bit_length(), HISTOGRAM_BUCKETS - 1)


def bucket_upper_bound(index: int) -> float:
    """Exclusive upper bound of bucket ``index`` (``inf`` for the last)."""
    if index >= HISTOGRAM_BUCKETS - 1:
        return float("inf")
    return float(2 ** index)


def percentile_from_buckets(
    buckets: list[int], q: float, cap: float | None = None
) -> float:
    """Upper bound of the bucket where the ``q``-quantile of ``buckets``
    falls (0.0 for an empty distribution).

    The shared quantile kernel: :meth:`Histogram.percentile` runs it over
    a histogram's cumulative buckets, and the telemetry sampler runs it
    over per-window bucket *deltas* to get windowed p50/p95/p99 without
    storing raw samples.  ``cap`` clamps the open-ended last bucket (a
    histogram passes its observed max).
    """
    if not 0.0 <= q <= 1.0:
        raise ObservabilityError("percentile wants q in [0, 1]")
    count = sum(buckets)
    if not count:
        return 0.0
    target = q * count
    seen = 0
    for i, n in enumerate(buckets):
        seen += n
        if seen >= target and n:
            bound = bucket_upper_bound(i)
            return min(bound, cap) if cap is not None else bound
    return cap if cap is not None else bucket_upper_bound(  # pragma: no cover
        HISTOGRAM_BUCKETS - 1
    )


class Histogram:
    """Fixed log2-bucket distribution with count/sum/min/max."""

    __slots__ = ("_buckets", "_count", "_sum", "_min", "_max")

    def __init__(self) -> None:
        self.reset()

    def reset(self) -> None:
        self._buckets = [0] * HISTOGRAM_BUCKETS
        self._count = 0
        self._sum = 0.0
        self._min = float("inf")
        self._max = float("-inf")

    def record(self, value: float) -> None:
        self._buckets[bucket_index(value)] += 1
        self._count += 1
        self._sum += value
        if value < self._min:
            self._min = value
        if value > self._max:
            self._max = value

    @property
    def count(self) -> int:
        return self._count

    @property
    def sum(self) -> float:
        return self._sum

    @property
    def min(self) -> float:
        return self._min if self._count else 0.0

    @property
    def max(self) -> float:
        return self._max if self._count else 0.0

    @property
    def mean(self) -> float:
        return self._sum / self._count if self._count else 0.0

    def bucket_counts(self) -> list[int]:
        return list(self._buckets)

    def nonzero_buckets(self) -> list[tuple[float, int]]:
        """``(exclusive_upper_bound, count)`` for every populated bucket."""
        return [
            (bucket_upper_bound(i), n)
            for i, n in enumerate(self._buckets)
            if n
        ]

    def percentile(self, q: float) -> float:
        """Upper bound of the bucket where the ``q``-quantile falls.

        Bucketed, so an upper estimate — good enough for dashboards.
        """
        if not self._count:
            # Validate q even when empty, matching the populated path.
            return percentile_from_buckets(self._buckets, q)
        return percentile_from_buckets(self._buckets, q, cap=self._max)

    def merge_from(self, other: "Histogram") -> None:
        """Fold ``other``'s distribution into this one.  Log2 buckets make
        cross-shard merges exact at bucket granularity — the fleet rollup
        (§5j) merges every ``shard.<i>`` histogram this way."""
        if not other._count:
            return
        buckets = other._buckets
        mine = self._buckets
        for i in range(HISTOGRAM_BUCKETS):
            if buckets[i]:
                mine[i] += buckets[i]
        self._count += other._count
        self._sum += other._sum
        if other._min < self._min:
            self._min = other._min
        if other._max > self._max:
            self._max = other._max


_Instrument = Counter | Gauge | Histogram


class MetricsRegistry:
    """Get-or-create home for every instrument, keyed by dotted name."""

    def __init__(self) -> None:
        self._instruments: dict[str, _Instrument] = {}
        self._interior: set[str] = set()

    # -- instrument factories ------------------------------------------------

    def counter(self, name: str) -> Counter:
        return self._get_or_create(name, Counter)

    def gauge(self, name: str) -> Gauge:
        return self._get_or_create(name, Gauge)

    def histogram(self, name: str) -> Histogram:
        return self._get_or_create(name, Histogram)

    def _get_or_create(self, name: str, kind: type) -> _Instrument:
        existing = self._instruments.get(name)
        if existing is not None:
            if not isinstance(existing, kind):
                raise ObservabilityError(
                    f"metric {name!r} is a {type(existing).__name__}, "
                    f"not a {kind.__name__}"
                )
            return existing
        self._check_name(name)
        instrument = kind()
        self._instruments[name] = instrument
        parts = name.split(".")
        for i in range(1, len(parts)):
            self._interior.add(".".join(parts[:i]))
        return instrument

    def _check_name(self, name: str) -> None:
        if not name or name.startswith(".") or name.endswith(".") or ".." in name:
            raise ObservabilityError(f"bad metric name {name!r}")
        if name in self._interior:
            raise ObservabilityError(
                f"metric {name!r} collides with an existing metric prefix"
            )
        parts = name.split(".")
        for i in range(1, len(parts)):
            if ".".join(parts[:i]) in self._instruments:
                raise ObservabilityError(
                    f"metric {name!r} nests under existing leaf metric "
                    f"{'.'.join(parts[:i])!r}"
                )

    # -- introspection -------------------------------------------------------

    def names(self) -> list[str]:
        return sorted(self._instruments)

    def get(self, name: str) -> _Instrument | None:
        return self._instruments.get(name)

    def items(self) -> Iterator[tuple[str, _Instrument]]:
        for name in sorted(self._instruments):
            yield name, self._instruments[name]

    def reset(self) -> None:
        """Zero every instrument in place (cached references stay valid)."""
        for instrument in self._instruments.values():
            instrument.reset()

    def snapshot(self) -> dict:
        """Current values as a nested dict, deterministic key order.

        Counters become ints, gauges floats, histograms summary dicts with
        a ``buckets`` map of ``upper_bound -> count``.
        """
        root: dict = {}
        for name, instrument in self.items():
            parts = name.split(".")
            node = root
            for part in parts[:-1]:
                node = node.setdefault(part, {})
            node[parts[-1]] = _render(instrument)
        return root

    def to_json(self, indent: int | None = None) -> str:
        return json.dumps(self.snapshot(), indent=indent, sort_keys=True)


def _render(instrument: _Instrument) -> object:
    if isinstance(instrument, Counter):
        return instrument.value
    if isinstance(instrument, Gauge):
        return instrument.value
    return {
        "count": instrument.count,
        "sum": instrument.sum,
        "min": instrument.min,
        "max": instrument.max,
        "mean": instrument.mean,
        "buckets": {
            ("inf" if ub == float("inf") else str(int(ub))): n
            for ub, n in instrument.nonzero_buckets()
        },
    }


class _NullCounter(Counter):
    __slots__ = ()

    def inc(self, n: int = 1) -> None:
        pass


class _NullGauge(Gauge):
    __slots__ = ()

    def set(self, value: float) -> None:
        pass

    def add(self, delta: float) -> None:
        pass


class _NullHistogram(Histogram):
    __slots__ = ()

    def record(self, value: float) -> None:
        pass


class NullRegistry(MetricsRegistry):
    """No-op registry: same surface, shared inert instruments, empty
    snapshots.  Keeps uninstrumented runs at near-zero overhead."""

    _COUNTER = _NullCounter()
    _GAUGE = _NullGauge()
    _HISTOGRAM = _NullHistogram()

    def __init__(self) -> None:
        super().__init__()

    def counter(self, name: str) -> Counter:
        return self._COUNTER

    def gauge(self, name: str) -> Gauge:
        return self._GAUGE

    def histogram(self, name: str) -> Histogram:
        return self._HISTOGRAM

    def snapshot(self) -> dict:
        return {}


#: Process-wide inert registry; the default sink for components built
#: without an explicit registry.
NULL_REGISTRY = NullRegistry()

_default_registry: MetricsRegistry = NULL_REGISTRY


def get_default_registry() -> MetricsRegistry:
    """The registry instrumented components fall back to."""
    return _default_registry


def set_default_registry(registry: MetricsRegistry) -> MetricsRegistry:
    """Install ``registry`` as the fallback; returns the previous one."""
    global _default_registry
    previous = _default_registry
    _default_registry = registry
    return previous


@contextmanager
def use_registry(registry: MetricsRegistry) -> Iterator[MetricsRegistry]:
    """Scope the default registry to a ``with`` block (experiment glue)."""
    previous = set_default_registry(registry)
    try:
        yield registry
    finally:
        set_default_registry(previous)


def resolve_registry(registry: MetricsRegistry | None) -> MetricsRegistry:
    """``registry`` if given, else the current default (usually null)."""
    return registry if registry is not None else _default_registry
