"""AdaptiveController: the telemetry loop closed — SLOs retune the engine.

PR 1 and PR 5 built the measurement pipeline (metrics → sampler windows →
``SloRule`` verdicts); this module makes the verdicts *actuate*.  The
control loop is deliberately boring::

    signals            rules                actions            audit
    sampler windows -> HealthChecker     -> bounded knob    -> TuningAction
    (rates, gauges,    breach streaks       steps with         ring (what,
    percentiles)       per rule             cooldowns          why, before/
                                                               after)

A :class:`Knob` wraps one live engine setting behind a getter/setter pair
with hard bounds, a step size, and a kind (``int`` or ``float``).  A
:class:`KnobBinding` connects one rule to one knob with a direction and
the hysteresis parameters: the rule must breach ``breach_windows``
*consecutive* evaluation windows before the knob moves, and after a move
the knob is frozen for ``cooldown_windows`` further evaluations.  Both
guards exist so a single-window spike or an oscillating signal cannot
thrash a knob — the same reasoning that makes the rules themselves
average over windows.

Every applied change is recorded as a :class:`TuningAction` in a bounded
audit ring: which rule fired, which knob moved, the before/after values,
and a human-readable reason.  Operators read the ring through
``python -m repro.obs tune`` (or ``health``); nothing is ever tuned
silently.

The controller runs on the engine's :class:`~repro.sim.cost_model.CostModel`
clock: :meth:`AdaptiveController.tick` is cheap enough to call per
operation (``Table`` does, when attached) and samples a new telemetry
window only when the sampler's interval has elapsed in *simulated* time.
Drivers that sample manually call :meth:`AdaptiveController.evaluate`
with each fresh point instead.  A degenerate window — zero duration, or
a backward clock after a crash-restart swaps the cost model — is counted
and skipped: no rates resolve in it, so acting on it would be acting on
noise.

This module imports only sibling ``repro.obs`` modules.  Knob factories
for concrete subsystems (:func:`database_knobs`, :func:`hot_cold_knobs`)
take their targets duck-typed, so ``repro.query`` can depend on this
module without a cycle.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Callable, Iterable, Sequence

from repro.errors import ObservabilityError
from repro.obs.health import DEFAULT_SLO_RULES, HealthChecker, SloRule
from repro.obs.registry import MetricsRegistry, resolve_registry
from repro.obs.sampler import TelemetryPoint, TelemetrySampler

#: Extra rule for WAL-attached engines: device appends per logged record.
#: A healthy group commit amortises several records per append; a mean
#: above 0.5 over the window means batches average under two records —
#: the group-commit window is too small for the write rate.
WAL_FLUSH_AMPLIFICATION_RULE = SloRule(
    name="wal-flush-amplification-ceiling",
    selector="ratio:rate.wal.flushes/rate.wal.records",
    op="<=",
    threshold=0.5,
    window=3,
    description="group commit must amortise >= 2 records per device append",
)


@dataclass
class Knob:
    """One live engine setting the controller may move.

    ``getter``/``setter`` close over the owning subsystem; the controller
    never imports it.  Values are clamped to ``[lo, hi]`` and, for
    ``kind="int"`` knobs, rounded before the setter sees them — a knob can
    therefore never drive its subsystem outside the envelope its author
    declared safe.
    """

    name: str
    getter: Callable[[], float]
    setter: Callable[[float], None]
    lo: float
    hi: float
    step: float
    kind: str = "float"
    description: str = ""

    def __post_init__(self) -> None:
        if self.kind not in ("int", "float"):
            raise ObservabilityError(
                f"knob {self.name!r}: kind must be 'int' or 'float'"
            )
        if not self.lo < self.hi:
            raise ObservabilityError(
                f"knob {self.name!r}: bounds must satisfy lo < hi"
            )
        if self.step <= 0:
            raise ObservabilityError(f"knob {self.name!r}: step must be > 0")

    def read(self) -> float:
        return float(self.getter())

    def clamp(self, value: float) -> float:
        value = min(max(value, self.lo), self.hi)
        if self.kind == "int":
            value = float(int(round(value)))
        return value

    def stepped(self, value: float, direction: str) -> float:
        """The value one bounded step away (equal to ``value`` at a bound)."""
        delta = self.step if direction == "up" else -self.step
        return self.clamp(value + delta)

    def apply(self, value: float) -> float:
        value = self.clamp(value)
        self.setter(int(value) if self.kind == "int" else value)
        return value


@dataclass(frozen=True)
class KnobBinding:
    """Rule -> knob wiring with the hysteresis parameters."""

    rule: str
    knob: str
    direction: str  # "up" | "down"
    #: Consecutive breach windows required before the knob moves.
    breach_windows: int = 2
    #: Evaluations the knob stays frozen after a move.
    cooldown_windows: int = 2

    def __post_init__(self) -> None:
        if self.direction not in ("up", "down"):
            raise ObservabilityError(
                f"binding {self.rule!r}->{self.knob!r}: direction must be "
                "'up' or 'down'"
            )
        if self.breach_windows < 1:
            raise ObservabilityError(
                f"binding {self.rule!r}->{self.knob!r}: breach_windows "
                "must be >= 1"
            )
        if self.cooldown_windows < 0:
            raise ObservabilityError(
                f"binding {self.rule!r}->{self.knob!r}: cooldown_windows "
                "must be >= 0"
            )


@dataclass(frozen=True)
class TuningAction:
    """One applied knob change — the audit record."""

    seq: int
    t_ns: float
    knob: str
    rule: str
    direction: str
    before: float
    after: float
    reason: str

    def line(self) -> str:
        return (
            f"#{self.seq} t={self.t_ns:.0f}ns {self.knob}: "
            f"{self.before:g} -> {self.after:g} ({self.direction}) "
            f"[{self.rule}] {self.reason}"
        )


class AdaptiveController:
    """Consumes sampler windows + rule verdicts, retunes registered knobs.

    The controller owns a :class:`HealthChecker` over the given rules and
    tracks, per rule, the streak of *consecutive* breach windows.  When a
    binding's streak reaches its threshold and its knob is neither
    cooling down nor saturated at a bound, the knob moves one step and
    the change is recorded.  Streaks are **not** reset by an action: if
    the breach persists past the cooldown, the knob steps again —
    escalation toward the bound is the intended response to a sustained
    breach.
    """

    def __init__(
        self,
        sampler: TelemetrySampler,
        rules: Sequence[SloRule] = DEFAULT_SLO_RULES,
        knobs: Iterable[Knob] = (),
        bindings: Iterable[KnobBinding] = (),
        registry: MetricsRegistry | None = None,
        enabled: bool = True,
        audit_capacity: int = 64,
        journal=None,
    ) -> None:
        if audit_capacity < 1:
            raise ObservabilityError("audit_capacity must be >= 1")
        self._sampler = sampler
        #: Optional repro.obs.events.EventJournal — every applied
        #: TuningAction also lands there as a ``tuning.action`` record,
        #: ordered against faults, migrations, and SLO transitions.
        self._journal = journal
        self._checker = HealthChecker(sampler, tuple(rules), journal=journal)
        rule_names = {r.name for r in self._checker.rules}
        self._knobs: dict[str, Knob] = {}
        for knob in knobs:
            if knob.name in self._knobs:
                raise ObservabilityError(f"duplicate knob {knob.name!r}")
            self._knobs[knob.name] = knob
        self._bindings: tuple[KnobBinding, ...] = tuple(bindings)
        for binding in self._bindings:
            if binding.rule not in rule_names:
                raise ObservabilityError(
                    f"binding references unknown rule {binding.rule!r}"
                )
            if binding.knob not in self._knobs:
                raise ObservabilityError(
                    f"binding references unknown knob {binding.knob!r}"
                )
        self._streaks: dict[str, int] = {}
        self._cooldown_until: dict[str, int] = {}
        self._evals = 0
        self._actions_total = 0
        self._audit: deque[TuningAction] = deque(maxlen=audit_capacity)
        self._enabled = bool(enabled)
        reg = resolve_registry(registry)
        self._m_ticks = reg.counter("adaptive.ticks")
        self._m_actions = reg.counter("adaptive.actions")
        self._m_breaches = reg.counter("adaptive.breach_windows")
        self._m_cooldown = reg.counter("adaptive.cooldown_skips")
        self._m_saturated = reg.counter("adaptive.saturated")
        self._m_degenerate = reg.counter("adaptive.degenerate_windows")
        self._m_enabled = reg.gauge("adaptive.enabled")
        self._m_enabled.set(1.0 if self._enabled else 0.0)

    # -- properties ----------------------------------------------------------

    @property
    def sampler(self) -> TelemetrySampler:
        return self._sampler

    @property
    def rules(self) -> tuple[SloRule, ...]:
        return self._checker.rules

    @property
    def knobs(self) -> dict[str, Knob]:
        return dict(self._knobs)

    @property
    def bindings(self) -> tuple[KnobBinding, ...]:
        return self._bindings

    @property
    def enabled(self) -> bool:
        return self._enabled

    @enabled.setter
    def enabled(self, value: bool) -> None:
        self._enabled = bool(value)
        self._m_enabled.set(1.0 if self._enabled else 0.0)

    @property
    def journal(self):
        return self._journal

    @journal.setter
    def journal(self, value) -> None:
        """Attach (or detach) an event journal after construction — the
        late-binding twin of the constructor arg, used by
        ``Database.enable_events`` when adaptive was armed first."""
        self._journal = value
        self._checker.journal = value

    @property
    def actions(self) -> list[TuningAction]:
        """The audit ring, oldest first (bounded by ``audit_capacity``)."""
        return list(self._audit)

    @property
    def actions_taken(self) -> int:
        """Total actions ever applied (may exceed the ring's length)."""
        return self._actions_total

    @property
    def evaluations(self) -> int:
        """Non-degenerate windows evaluated so far."""
        return self._evals

    # -- the control loop ----------------------------------------------------

    def tick(self) -> list[TuningAction] | None:
        """Per-operation hook: sample if the interval elapsed, then act.

        Returns ``None`` when disabled or inside the sampling interval
        (the overwhelmingly common case — two attribute reads and a clock
        compare), else the actions the fresh window triggered.
        """
        if not self._enabled:
            return None
        point = self._sampler.tick()
        if point is None:
            return None
        return self.evaluate(point)

    def evaluate(self, point: TelemetryPoint) -> list[TuningAction]:
        """Judge one freshly sampled window and apply any due actions.

        Drivers that call ``sampler.sample()`` themselves (chunked
        replays, experiments) feed each point here; :meth:`tick` is the
        self-clocked wrapper over the same logic.
        """
        self._m_ticks.inc()
        if point.dt_ns <= 0:
            # Zero-duration window, or the clock went backward (a
            # crash-restart swapped the cost model): no rates resolved,
            # so there is nothing trustworthy to act on.  Streaks and
            # cooldowns are left untouched.
            self._m_degenerate.inc()
            return []
        self._evals += 1
        report = self._checker.evaluate()
        results = {r.rule.name: r for r in report.results}
        for result in report.results:
            if result.status == "breach":
                self._streaks[result.rule.name] = (
                    self._streaks.get(result.rule.name, 0) + 1
                )
                self._m_breaches.inc()
            else:
                self._streaks[result.rule.name] = 0
        actions: list[TuningAction] = []
        for binding in self._bindings:
            streak = self._streaks.get(binding.rule, 0)
            if streak < binding.breach_windows:
                continue
            until = self._cooldown_until.get(binding.knob)
            if until is not None and self._evals <= until:
                self._m_cooldown.inc()
                continue
            knob = self._knobs[binding.knob]
            before = knob.read()
            target = knob.stepped(before, binding.direction)
            if target == before:
                self._m_saturated.inc()
                continue
            knob.apply(target)
            after = knob.read()
            if after == before:
                # The setter quantized the step away (e.g. a fractional
                # knob over an integer resource): effectively saturated,
                # and recording a no-op "change" would pollute the audit.
                self._m_saturated.inc()
                continue
            self._cooldown_until[binding.knob] = (
                self._evals + binding.cooldown_windows
            )
            result = results[binding.rule]
            rule = result.rule
            observed = "-" if result.observed is None else f"{result.observed:.4g}"
            action = TuningAction(
                seq=self._actions_total,
                t_ns=point.t_ns,
                knob=knob.name,
                rule=rule.name,
                direction=binding.direction,
                before=before,
                after=after,
                reason=(
                    f"{rule.selector} {rule.op} {rule.threshold:g} breached "
                    f"{streak} window(s), observed {observed}"
                ),
            )
            self._actions_total += 1
            self._audit.append(action)
            self._m_actions.inc()
            if self._journal is not None:
                from repro.obs.events import TUNING_ACTION

                self._journal.emit(
                    TUNING_ACTION,
                    knob=knob.name,
                    rule=rule.name,
                    direction=binding.direction,
                    before=before,
                    after=action.after,
                )
            actions.append(action)
        return actions

    # -- rendering -----------------------------------------------------------

    def format_knobs(self, title: str = "adaptive knobs") -> str:
        state = "enabled" if self._enabled else "disabled"
        lines = [f"{title}: {len(self._knobs)} knob(s), controller {state}"]
        for name in sorted(self._knobs):
            knob = self._knobs[name]
            lines.append(
                f"  {name:<32} = {knob.read():>10g}  "
                f"[{knob.lo:g} .. {knob.hi:g}] step {knob.step:g} ({knob.kind})"
            )
        return "\n".join(lines)

    def format_audit(
        self, limit: int | None = None, title: str = "tuning actions"
    ) -> str:
        actions = self.actions
        if limit is not None:
            actions = actions[-limit:]
        header = (
            f"{title}: {self._actions_total} applied, "
            f"{len(actions)} shown, {self._evals} window(s) evaluated"
        )
        lines = [header]
        if not actions:
            lines.append("  (none)")
        lines += [f"  {action.line()}" for action in actions]
        return "\n".join(lines)

    def as_dict(self) -> dict:
        return {
            "enabled": self._enabled,
            "evaluations": self._evals,
            "actions_taken": self._actions_total,
            "knobs": {
                name: {
                    "value": knob.read(),
                    "lo": knob.lo,
                    "hi": knob.hi,
                    "step": knob.step,
                    "kind": knob.kind,
                }
                for name, knob in sorted(self._knobs.items())
            },
            "streaks": dict(self._streaks),
            "actions": [
                {
                    "seq": a.seq,
                    "t_ns": a.t_ns,
                    "knob": a.knob,
                    "rule": a.rule,
                    "direction": a.direction,
                    "before": a.before,
                    "after": a.after,
                    "reason": a.reason,
                }
                for a in self._audit
            ],
        }


# -- knob factories -----------------------------------------------------------


def database_knobs(db) -> list[Knob]:
    """The knobs a :class:`~repro.query.database.Database` exposes.

    Duck-typed on the database's adaptive surface (``pool_partition``,
    ``set_pool_partition``, ``wal``, ``set_group_commit``,
    ``cache_admission``, ``set_cache_admission``).  The pool-partition
    knob exists only for split data/index pools — with a shared pool
    there is no boundary to move.
    """
    knobs: list[Knob] = []
    if db.index_pool is not db.data_pool:
        knobs.append(Knob(
            name="pool.data_fraction",
            getter=lambda: db.pool_partition,
            setter=db.set_pool_partition,
            lo=0.1, hi=0.9, step=0.1,
            description="fraction of total pool frames holding heap pages",
        ))
    if db.wal is not None:
        knobs.append(Knob(
            name="wal.group_commit_records",
            getter=lambda: db.wal.group_commit_records,
            setter=db.set_group_commit,
            lo=1, hi=64, step=8, kind="int",
            description="records per WAL group-commit device append",
        ))
    knobs.append(Knob(
        name="index_cache.admission",
        getter=lambda: db.cache_admission,
        setter=db.set_cache_admission,
        lo=0.1, hi=1.0, step=0.3,
        description="fraction of piggy-back cache fills admitted",
    ))
    return knobs


def hot_cold_knobs(
    manager,
    hot_capacity_max: int | None = None,
    min_ops_per_epoch: int = 64,
) -> list[Knob]:
    """Cadence and hot-fraction knobs for an ``OnlineHotColdManager``.

    Bounds derive from the manager's configured values: capacity may
    grow to ``hot_capacity_max`` (default 8x) and the rebalance epoch may
    shrink to ``min_ops_per_epoch`` — the adaptive response to a rotated
    hot set is "track more keys, re-decide sooner".
    """
    cap = manager.hot_capacity
    epoch = manager.ops_per_epoch
    return [
        Knob(
            name="hotcold.hot_capacity",
            getter=lambda: manager.hot_capacity,
            setter=manager.set_hot_capacity,
            lo=max(1, cap // 4),
            hi=hot_capacity_max if hot_capacity_max is not None else cap * 8,
            step=max(1, cap // 2),
            kind="int",
            description="target rows in the hot partition (hot fraction)",
        ),
        Knob(
            name="hotcold.ops_per_epoch",
            getter=lambda: manager.ops_per_epoch,
            setter=manager.set_ops_per_epoch,
            lo=min(min_ops_per_epoch, epoch),
            hi=epoch * 4,
            step=max(1, epoch // 2),
            kind="int",
            description="lookups between hot/cold rebalances (cadence)",
        ),
    ]


#: (rule, knob, direction) rows for :func:`default_bindings`; rows whose
#: rule or knob is absent from the controller's sets are dropped, so the
#: table can mention every known pairing unconditionally.
_DEFAULT_BINDING_TABLE: tuple[tuple[str, str, str], ...] = (
    ("bufferpool-hit-rate-floor", "pool.data_fraction", "up"),
    ("lookup-p95-latency-ceiling", "pool.data_fraction", "up"),
    ("lookup-p95-latency-ceiling", "index_cache.admission", "up"),
    ("wal-flush-amplification-ceiling", "wal.group_commit_records", "up"),
)


def default_bindings(
    knobs: Iterable[Knob],
    rules: Iterable[SloRule],
    breach_windows: int = 2,
    cooldown_windows: int = 2,
) -> list[KnobBinding]:
    """Standard rule->knob wiring, filtered to what actually exists."""
    knob_names = {k.name for k in knobs}
    rule_names = {r.name for r in rules}
    return [
        KnobBinding(rule, knob, direction, breach_windows, cooldown_windows)
        for rule, knob, direction in _DEFAULT_BINDING_TABLE
        if rule in rule_names and knob in knob_names
    ]
