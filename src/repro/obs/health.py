"""Declarative SLO rules evaluated against sampled telemetry.

Real engines page operators on *sustained* breaches of service-level
objectives — hit rate under a floor, quarantine above a ceiling, WAL
traffic out of proportion — not on single spikes.  A :class:`SloRule`
names a sampler selector (see :func:`repro.obs.sampler.select`), a
comparison against a threshold, and a window of recent samples to
average over; :class:`HealthChecker` evaluates every rule against a
:class:`~repro.obs.sampler.TelemetrySampler` and returns one
:class:`HealthReport`.

Rules that cannot be evaluated (the metric never resolved in the
window — e.g. a WAL rule on a WAL-less database) report ``no-data``:
visible on the dashboard, but not a breach.  The checker writes nothing
into the registry, so health evaluation can never perturb the telemetry
it judges.  With a §5j event journal attached the checker does keep one
piece of state — each rule's last verdict — so it can journal the
*transitions* (``slo.breach`` on ok→breach, ``slo.clear`` on
breach→ok) instead of re-reporting a standing condition every sample.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ObservabilityError
from repro.obs.sampler import TelemetrySampler, select

#: Rule comparison operators: observed OP threshold must hold.
_OPS = {
    "<=": lambda observed, threshold: observed <= threshold,
    ">=": lambda observed, threshold: observed >= threshold,
}


@dataclass(frozen=True)
class SloRule:
    """One declarative objective: ``mean(selector over window) op threshold``."""

    name: str
    selector: str
    op: str
    threshold: float
    window: int = 1
    description: str = ""

    def __post_init__(self) -> None:
        if self.op not in _OPS:
            raise ObservabilityError(
                f"rule {self.name!r}: op must be one of {sorted(_OPS)}"
            )
        if self.window < 1:
            raise ObservabilityError(f"rule {self.name!r}: window must be >= 1")


@dataclass(frozen=True)
class RuleResult:
    """One evaluated rule."""

    rule: SloRule
    status: str  # "ok" | "breach" | "no-data"
    observed: float | None = None
    samples: int = 0

    @property
    def ok(self) -> bool:
        return self.status != "breach"

    def line(self) -> str:
        mark = {"ok": "OK ", "breach": "FAIL", "no-data": "n/a "}[self.status]
        observed = "-" if self.observed is None else f"{self.observed:.4g}"
        return (
            f"[{mark}] {self.rule.name}: {self.rule.selector} "
            f"{self.rule.op} {self.rule.threshold:g} "
            f"(observed {observed} over {self.samples} sample(s))"
        )


@dataclass(frozen=True)
class HealthReport:
    """Every rule's verdict, dashboard- and JSON-ready."""

    results: tuple[RuleResult, ...] = ()

    @property
    def ok(self) -> bool:
        """True when no rule breached (``no-data`` rules do not fail)."""
        return all(r.ok for r in self.results)

    @property
    def breaches(self) -> list[RuleResult]:
        return [r for r in self.results if r.status == "breach"]

    def format(self, title: str = "engine health") -> str:
        verdict = "OK" if self.ok else f"{len(self.breaches)} BREACH(ES)"
        lines = [f"{title}: {verdict}"]
        lines += [f"  {r.line()}" for r in self.results]
        return "\n".join(lines)

    def as_dict(self) -> dict:
        return {
            "ok": self.ok,
            "rules": [
                {
                    "name": r.rule.name,
                    "selector": r.rule.selector,
                    "op": r.rule.op,
                    "threshold": r.rule.threshold,
                    "window": r.rule.window,
                    "status": r.status,
                    "observed": r.observed,
                    "samples": r.samples,
                }
                for r in self.results
            ],
        }


#: Default objectives for a cache-heavy engine under a skewed workload.
#: Thresholds are deliberately loose — they are floors/ceilings an
#: *healthy* engine clears easily, so a breach means something broke,
#: not that a workload got mildly colder.
DEFAULT_SLO_RULES: tuple[SloRule, ...] = (
    SloRule(
        name="bufferpool-hit-rate-floor",
        selector="derived.bufferpool.hit_rate",
        op=">=",
        threshold=0.20,
        window=5,
        description="a working set this skewed must mostly hit the pool",
    ),
    SloRule(
        name="quarantine-ceiling",
        selector="gauge.bufferpool.quarantined_pages",
        op="<=",
        threshold=0.0,
        description="confirmed-corrupt pages awaiting recovery",
    ),
    SloRule(
        name="unrecoverable-fault-ceiling",
        selector="rate.faults.unrecoverable",
        op="<=",
        threshold=0.0,
        window=5,
        description="every detected fault must resolve as recovered",
    ),
    SloRule(
        name="wal-overhead-ceiling",
        selector="ratio:rate.wal.bytes/rate.profiler.ops",
        op="<=",
        threshold=4096.0,
        window=5,
        description="logged bytes per profiled operation stay page-bounded",
    ),
    SloRule(
        name="lookup-p95-latency-ceiling",
        selector="p95.span.query.lookup.ns",
        op="<=",
        threshold=1_000_000.0,
        window=5,
        description="p95 point lookups stay memory-resident (a 5 ms "
        "simulated disk read in the tail means the pool is thrashing)",
    ),
)


class HealthChecker:
    """Evaluates a rule set against a sampler's retained points.

    ``journal`` (optional, a :class:`~repro.obs.events.EventJournal`)
    receives ``slo.breach`` / ``slo.clear`` events on verdict
    *transitions* — a rule entering breach journals once, not once per
    evaluation.  ``no-data`` verdicts never transition either way.
    """

    def __init__(
        self,
        sampler: TelemetrySampler,
        rules: tuple[SloRule, ...] | list[SloRule] = DEFAULT_SLO_RULES,
        journal=None,
    ) -> None:
        self._sampler = sampler
        self._rules = tuple(rules)
        self._journal = journal
        self._last_status: dict[str, str] = {}

    @property
    def rules(self) -> tuple[SloRule, ...]:
        return self._rules

    @property
    def journal(self):
        return self._journal

    @journal.setter
    def journal(self, value) -> None:
        self._journal = value

    def evaluate(self) -> HealthReport:
        points = self._sampler.points
        results = []
        for rule in self._rules:
            window = points[-rule.window:]
            values = [
                v for v in (select(p, rule.selector) for p in window)
                if v is not None
            ]
            if not values:
                results.append(RuleResult(rule, "no-data"))
                continue
            observed = sum(values) / len(values)
            ok = _OPS[rule.op](observed, rule.threshold)
            result = RuleResult(
                rule,
                "ok" if ok else "breach",
                observed=observed,
                samples=len(values),
            )
            results.append(result)
            if self._journal is not None:
                self._note_transition(result)
        return HealthReport(tuple(results))

    def _note_transition(self, result: RuleResult) -> None:
        from repro.obs.events import SLO_BREACH, SLO_CLEAR

        previous = self._last_status.get(result.rule.name)
        self._last_status[result.rule.name] = result.status
        if result.status == "breach" and previous != "breach":
            self._journal.emit(
                SLO_BREACH,
                rule=result.rule.name,
                selector=result.rule.selector,
                observed=result.observed,
                threshold=result.rule.threshold,
            )
        elif result.status == "ok" and previous == "breach":
            self._journal.emit(
                SLO_CLEAR,
                rule=result.rule.name,
                observed=result.observed,
            )
