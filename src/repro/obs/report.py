"""Export surfaces: text dashboard and machine-readable JSON.

:func:`format_report` renders a registry as per-subsystem tables (via the
experiments' :func:`~repro.experiments.runner.print_table` formatter) with
derived hit rates next to the raw counts.  :func:`export_json` writes the
same snapshot in the ``BENCH_*.json`` shape the benchmark tree consumes.
"""

from __future__ import annotations

import contextlib
import io
import json
from pathlib import Path

from repro.obs.registry import Counter, Gauge, Histogram, MetricsRegistry


def flatten(snapshot: dict, prefix: str = "") -> list[tuple[str, object]]:
    """Depth-first ``(dotted_name, leaf_value)`` pairs of a snapshot."""
    rows: list[tuple[str, object]] = []
    for key in sorted(snapshot):
        value = snapshot[key]
        name = f"{prefix}{key}"
        if isinstance(value, dict) and "count" not in value:
            rows.extend(flatten(value, prefix=f"{name}."))
        else:
            rows.append((name, value))
    return rows


def derived_rates(
    registry: MetricsRegistry, elapsed_ns: float | None = None
) -> dict[str, float]:
    """``<prefix>.hit_rate`` for every prefix with hit+miss counters.

    With ``elapsed_ns`` (the window the registry's counts accumulated
    over, in simulated ns) every counter additionally derives a
    ``<name>.per_sec`` throughput row.  Zero-duration windows are
    guarded: ``elapsed_ns <= 0`` yields no throughput rows at all rather
    than a division error — callers snapshotting twice at the same
    logical instant get hit rates only.
    """
    names = set(registry.names())
    rates: dict[str, float] = {}
    for name in sorted(names):
        if not name.endswith(".hit"):
            continue
        prefix = name[: -len(".hit")]
        miss_name = f"{prefix}.miss"
        if miss_name not in names:
            continue
        hit = registry.get(name)
        miss = registry.get(miss_name)
        if not isinstance(hit, Counter) or not isinstance(miss, Counter):
            continue
        total = hit.value + miss.value
        rates[f"{prefix}.hit_rate"] = hit.value / total if total else 0.0
    if elapsed_ns is not None and elapsed_ns > 0:
        for name in sorted(names):
            instrument = registry.get(name)
            if isinstance(instrument, Counter):
                rates[f"{name}.per_sec"] = instrument.value * 1e9 / elapsed_ns
    return rates


def format_report(
    registry: MetricsRegistry, title: str = "engine metrics"
) -> str:
    """A text dashboard: one table per top-level subsystem.

    Counters and gauges print their value; histograms print count, mean,
    p50, and max; derived ``*.hit_rate`` rows sit beside their counters.
    """
    # Imported here: repro.obs must stay importable from the lowest layers
    # (storage, btree) without dragging the experiments package along.
    from repro.experiments.runner import print_table

    rows: list[tuple[str, object]] = []
    for name, instrument in registry.items():
        if isinstance(instrument, Histogram):
            rows.append(
                (
                    name,
                    f"n={instrument.count} mean={instrument.mean:.1f} "
                    f"p50<={instrument.percentile(0.5):.0f} "
                    f"max={instrument.max:.0f}",
                )
            )
        elif isinstance(instrument, (Counter, Gauge)):
            rows.append((name, instrument.value))
    rows.extend(sorted(derived_rates(registry).items()))
    if not rows:
        return f"{title}: (no metrics recorded)"
    by_subsystem: dict[str, list[tuple[str, object]]] = {}
    for name, value in sorted(rows):
        # Knob-state gauges get their own section: they describe the
        # engine's current configuration, not the adaptive controller's
        # activity, and must be findable with the controller disabled.
        if name.startswith("adaptive.knob."):
            subsystem = "knobs"
        else:
            subsystem = name.split(".", 1)[0]
        by_subsystem.setdefault(subsystem, []).append((name, value))
    # print_table prints as a side effect (the experiment drivers rely on
    # that); here the caller decides what to do with the text, so swallow
    # the echo and return the formatted sections only.
    with contextlib.redirect_stdout(io.StringIO()):
        sections = [
            print_table(
                ["metric", "value"],
                table_rows,
                title=f"{title} — {subsystem}",
            )
            for subsystem, table_rows in sorted(by_subsystem.items())
        ]
    return "\n\n".join(sections)


def export_json(
    registry: MetricsRegistry,
    path: str | Path | None = None,
    label: str = "metrics",
    extra: dict | None = None,
    indent: int | None = 2,
    tracer=None,
    span_limit: int | None = None,
) -> str:
    """Serialize a snapshot (plus derived rates) to JSON.

    Returns the JSON text; with ``path`` also writes it to disk.  The
    document shape matches the benchmark tree's ``BENCH_*.json`` results:
    a ``label``, a ``metrics`` tree, and a flat ``derived`` map.

    ``tracer`` (a :class:`~repro.obs.tracer.Tracer`) additionally dumps
    the recent-span ring buffer — at most ``span_limit`` newest spans —
    as a ``spans`` list, so one export captures a full incident: the
    aggregate counters *and* the exact operations leading up to it.
    """
    document = {
        "label": label,
        "metrics": registry.snapshot(),
        "derived": derived_rates(registry),
    }
    if tracer is not None:
        document["spans"] = [
            {
                "name": event.name,
                "start_ns": event.start_ns,
                "elapsed_ns": event.elapsed_ns,
                "depth": event.depth,
                "attrs": {str(k): repr(v) for k, v in event.attrs},
                "error": event.error,
            }
            for event in tracer.recent(span_limit)
        ]
    if extra:
        document.update(extra)
    text = json.dumps(document, indent=indent, sort_keys=True)
    if path is not None:
        Path(path).write_text(text + "\n")
    return text
