"""EXPLAIN-ANALYZE-style query profiling over the metrics registry.

The registry (§5b) answers "what did the whole engine do"; this module
answers "what did *that query* do".  A :class:`QueryProfiler` brackets
each table/executor operation, snapshots the engine-wide instruments the
operation can move — buffer-pool pins, index-cache hit/miss, heap
fetches, B+Tree descents, WAL bytes, fault retries — plus the cost-model
clock, and charges the deltas to a normalized **query fingerprint**
(operation kind + table + index + projection + batch bucket, never key
values).  Two read surfaces fall out:

* :meth:`QueryProfiler.top` — per-fingerprint aggregates ranked by total
  simulated cost, the ``EXPLAIN ANALYZE`` rollup; and
* :meth:`QueryProfiler.slow_queries` — a bounded ring of the costliest
  individual profiles (the slow-query log), ranked by elapsed cost.

WAL byte attribution is group-commit-aware: the profiler reads the
writer's durable byte counter *plus* its in-memory buffer, so a record
that merely parks in the group-commit buffer is still charged to the
operation that logged it, not to whichever later operation happens to
trip the flush.

Profiling is strictly opt-in (``Database.enable_profiling``): with no
profiler attached the hot path pays one ``is not None`` test per
operation, and the NullRegistry zero-overhead guarantee is untouched.
This module imports only :mod:`repro.obs.registry`, so the query layer
can depend on it without cycles.
"""

from __future__ import annotations

from collections import deque
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Callable, Iterator

from repro.obs.registry import MetricsRegistry, resolve_registry

#: Fingerprints beyond this many aggregate under :data:`OVERFLOW_FINGERPRINT`
#: so a fingerprint explosion (e.g. a bug interpolating keys into table
#: names) cannot grow the profiler without bound.
DEFAULT_MAX_FINGERPRINTS = 512

#: Where profiles land once the fingerprint table is full.
OVERFLOW_FINGERPRINT = "(other)"

#: Registry counters captured around every operation, as
#: ``(profile_field, metric_name)``.  Deltas of these are what a profile
#: reports, so they reconcile with registry totals by construction.
CAPTURED_COUNTERS: tuple[tuple[str, str], ...] = (
    ("pages_reused", "bufferpool.hit"),
    ("pages_read", "bufferpool.miss"),
    ("evictions", "bufferpool.eviction"),
    ("cache_hits", "index_cache.hit"),
    ("cache_misses", "index_cache.miss"),
    ("heap_fetches", "index_cache.heap_fetch"),
    ("descents", "btree.descent"),
    ("wal_records", "wal.records"),
    ("retries", "faults.retries"),
)

Clock = Callable[[], float]


def batch_bucket(n: int) -> int:
    """Normalize a batch size to its power-of-two ceiling (1 stays 1).

    Fingerprints must not split per batch size — a replay issuing batches
    of 5, 6, and 7 keys is one query shape — but a 1000-key batch is a
    different shape than a 4-key one.  Power-of-two buckets keep both
    properties.
    """
    if n <= 1:
        return 1
    return 1 << (n - 1).bit_length()


def fingerprint(
    op: str,
    table: str,
    index: str | None = None,
    project: tuple[str, ...] | None = None,
    batch: int = 1,
) -> str:
    """The normalized query identity: shape, never values.

    ``lookup(t.pk)->k,n`` stays stable across every key probed;
    ``xN`` marks the batch bucket for multi-key operations.
    """
    parts = [op, ":", table]
    if index:
        parts += [".", index]
    if project:
        parts += ["->", ",".join(project)]
    if batch > 1:
        parts += [" x", str(batch_bucket(batch))]
    return "".join(parts)


@dataclass
class QueryProfile:
    """One profiled operation: the EXPLAIN ANALYZE line items."""

    seq: int
    fingerprint: str
    op: str
    table: str
    index: str | None
    plan: str
    batch: int = 1
    elapsed_ns: float = 0.0
    pages_reused: int = 0   # buffer-pool hits (already resident)
    pages_read: int = 0     # buffer-pool misses (disk reads)
    evictions: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    heap_fetches: int = 0
    descents: int = 0
    wal_records: int = 0
    wal_bytes: int = 0
    retries: int = 0
    error: bool = False

    @property
    def pages_pinned(self) -> int:
        """Total page pins the operation took (reused + read)."""
        return self.pages_reused + self.pages_read

    def line(self) -> str:
        """One slow-log line, dashboard-ready."""
        flags = " !" if self.error else ""
        return (
            f"#{self.seq} {self.fingerprint}{flags}: "
            f"{self.elapsed_ns:.0f}ns pinned={self.pages_pinned} "
            f"(reused={self.pages_reused} read={self.pages_read}) "
            f"cache={self.cache_hits}/{self.cache_hits + self.cache_misses} "
            f"heap={self.heap_fetches} wal={self.wal_bytes}B "
            f"retries={self.retries}"
        )


@dataclass
class FingerprintStats:
    """Aggregate of every profile sharing a fingerprint."""

    fingerprint: str
    plan: str
    calls: int = 0
    errors: int = 0
    rows: int = 0
    total_ns: float = 0.0
    max_ns: float = 0.0
    pages_reused: int = 0
    pages_read: int = 0
    evictions: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    heap_fetches: int = 0
    descents: int = 0
    wal_records: int = 0
    wal_bytes: int = 0
    retries: int = 0

    @property
    def mean_ns(self) -> float:
        return self.total_ns / self.calls if self.calls else 0.0

    @property
    def pages_pinned(self) -> int:
        return self.pages_reused + self.pages_read

    @property
    def cache_hit_rate(self) -> float:
        probes = self.cache_hits + self.cache_misses
        return self.cache_hits / probes if probes else 0.0

    def absorb(self, p: QueryProfile) -> None:
        self.calls += 1
        self.errors += int(p.error)
        self.rows += p.batch
        self.total_ns += p.elapsed_ns
        if p.elapsed_ns > self.max_ns:
            self.max_ns = p.elapsed_ns
        self.pages_reused += p.pages_reused
        self.pages_read += p.pages_read
        self.evictions += p.evictions
        self.cache_hits += p.cache_hits
        self.cache_misses += p.cache_misses
        self.heap_fetches += p.heap_fetches
        self.descents += p.descents
        self.wal_records += p.wal_records
        self.wal_bytes += p.wal_bytes
        self.retries += p.retries

    def as_dict(self) -> dict:
        return {
            "fingerprint": self.fingerprint,
            "plan": self.plan,
            "calls": self.calls,
            "errors": self.errors,
            "rows": self.rows,
            "total_ns": self.total_ns,
            "mean_ns": self.mean_ns,
            "max_ns": self.max_ns,
            "pages_pinned": self.pages_pinned,
            "pages_reused": self.pages_reused,
            "pages_read": self.pages_read,
            "evictions": self.evictions,
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "cache_hit_rate": self.cache_hit_rate,
            "heap_fetches": self.heap_fetches,
            "descents": self.descents,
            "wal_records": self.wal_records,
            "wal_bytes": self.wal_bytes,
            "retries": self.retries,
        }


def _plan_shape(
    op: str,
    table: str,
    index_name: str | None,
    index: object | None,
    project: tuple[str, ...] | None,
    batch: int,
) -> str:
    """Human-readable plan string: access path + projection + batch."""
    if index_name is None:
        access = table
    else:
        kind = "index"
        if index is not None:
            kind = (
                "cached-index"
                if getattr(index, "cached_fields", None) is not None
                else "plain-index"
            )
        access = f"{table} via {kind}({index_name})"
    parts = [f"{op} {access}"]
    if project:
        parts.append(f"project ({', '.join(project)})")
    if batch > 1:
        parts.append(f"batch<={batch_bucket(batch)}")
    return " ".join(parts)


class QueryProfiler:
    """Charges engine-wide instrument deltas to per-query fingerprints.

    ``clock`` follows the :class:`~repro.obs.tracer.Tracer` convention: a
    zero-argument callable returning simulated ns, or an object with a
    ``now_ns`` attribute (a :class:`~repro.sim.cost_model.CostModel`).
    ``wal`` is the (duck-typed) :class:`~repro.wal.log.WalWriter`; when
    present, per-operation WAL bytes include its group-commit buffer so
    attribution is flush-timing-independent.
    """

    def __init__(
        self,
        registry: MetricsRegistry | None = None,
        clock: Clock | object | None = None,
        wal=None,
        slow_log_size: int = 64,
        slow_threshold_ns: float = 0.0,
        max_fingerprints: int = DEFAULT_MAX_FINGERPRINTS,
    ) -> None:
        reg = resolve_registry(registry)
        self._registry = reg
        if clock is None:
            self._clock: Clock = lambda: 0.0
        elif callable(clock):
            self._clock = clock  # type: ignore[assignment]
        else:  # duck-typed CostModel
            self._clock = lambda: clock.now_ns  # type: ignore[attr-defined]
        self._wal = wal
        self._counters = [
            (fname, reg.counter(metric)) for fname, metric in CAPTURED_COUNTERS
        ]
        self._wal_bytes = reg.counter("wal.bytes")
        self._m_ops = reg.counter("profiler.ops")
        self._m_errors = reg.counter("profiler.errors")
        self._m_fingerprints = reg.gauge("profiler.fingerprints")
        self._stats: dict[str, FingerprintStats] = {}
        self._slow: deque[QueryProfile] = deque(maxlen=slow_log_size)
        self._slow_threshold_ns = float(slow_threshold_ns)
        self._max_fingerprints = max_fingerprints
        self._seq = 0
        self._depth = 0

    # -- profiling ------------------------------------------------------------

    @contextmanager
    def operation(
        self,
        op: str,
        table: str,
        index_name: str | None = None,
        index: object | None = None,
        project: tuple[str, ...] | None = None,
        batch: int = 1,
    ) -> Iterator[None]:
        """Bracket one operation; nested operations charge to the
        outermost bracket only (a lookup issued inside a profiled join is
        part of the join's cost, not a second query)."""
        if self._depth:
            yield
            return
        self._depth = 1
        project_t = tuple(project) if project is not None else None
        before = self._capture()
        start = self._clock()
        # PlainIndex keeps heap fetches as a plain attribute (no registry
        # counter on that path); fold its delta in when the index is known.
        plain_before = getattr(index, "heap_fetches", None) if index is not None else None
        error = False
        try:
            yield
        except BaseException:
            error = True
            raise
        finally:
            self._depth = 0
            elapsed = self._clock() - start
            after = self._capture()
            profile = QueryProfile(
                seq=self._seq,
                fingerprint=fingerprint(op, table, index_name, project_t, batch),
                op=op,
                table=table,
                index=index_name,
                plan=_plan_shape(op, table, index_name, index, project_t, batch),
                batch=batch,
                elapsed_ns=elapsed,
                error=error,
            )
            self._seq += 1
            for i, (fname, _counter) in enumerate(self._counters):
                setattr(profile, fname, after[i] - before[i])
            profile.wal_bytes = after[-1] - before[-1]
            if plain_before is not None:
                plain_after = getattr(index, "heap_fetches", plain_before)
                profile.heap_fetches += plain_after - plain_before
            self._absorb(profile)

    def _capture(self) -> list[int]:
        values = [counter.value for _fname, counter in self._counters]
        wal_bytes = self._wal_bytes.value
        if self._wal is not None:
            wal_bytes += self._wal.pending_bytes
        values.append(wal_bytes)
        return values

    def _absorb(self, profile: QueryProfile) -> None:
        self._m_ops.inc()
        if profile.error:
            self._m_errors.inc()
        stats = self._stats.get(profile.fingerprint)
        if stats is None:
            if len(self._stats) >= self._max_fingerprints:
                stats = self._stats.get(OVERFLOW_FINGERPRINT)
                if stats is None:
                    stats = FingerprintStats(OVERFLOW_FINGERPRINT, "(overflow)")
                    self._stats[OVERFLOW_FINGERPRINT] = stats
            else:
                stats = FingerprintStats(profile.fingerprint, profile.plan)
                self._stats[profile.fingerprint] = stats
            self._m_fingerprints.set(len(self._stats))
        stats.absorb(profile)
        if profile.elapsed_ns >= self._slow_threshold_ns:
            self._slow.append(profile)

    # -- read surfaces --------------------------------------------------------

    @property
    def operations(self) -> int:
        """Operations profiled so far."""
        return self._seq

    def stats(self, fp: str) -> FingerprintStats | None:
        return self._stats.get(fp)

    def top(self, n: int | None = None) -> list[FingerprintStats]:
        """Fingerprints ranked by total simulated cost, costliest first."""
        ranked = sorted(
            self._stats.values(),
            key=lambda s: (-s.total_ns, s.fingerprint),
        )
        return ranked if n is None else ranked[:n]

    def slow_queries(self, n: int | None = None) -> list[QueryProfile]:
        """The retained slow-log profiles ranked by elapsed cost."""
        ranked = sorted(self._slow, key=lambda p: (-p.elapsed_ns, p.seq))
        return ranked if n is None else ranked[:n]

    def format_top(self, n: int = 10, title: str = "query profiles") -> str:
        """Text table of :meth:`top`, `EXPLAIN ANALYZE` rollup style."""
        # Late import mirrors report.py: obs must stay importable from the
        # lowest layers without dragging the experiments package along.
        import contextlib
        import io

        from repro.experiments.runner import print_table

        rows = [
            [
                s.fingerprint,
                s.calls,
                round(s.total_ns),
                round(s.mean_ns),
                s.pages_pinned,
                s.pages_read,
                f"{s.cache_hit_rate:.2f}",
                s.heap_fetches,
                s.wal_bytes,
                s.retries,
            ]
            for s in self.top(n)
        ]
        if not rows:
            return f"{title}: (no operations profiled)"
        with contextlib.redirect_stdout(io.StringIO()):
            return print_table(
                [
                    "fingerprint", "calls", "total_ns", "mean_ns", "pinned",
                    "read", "cache_hr", "heap", "wal_B", "retries",
                ],
                rows,
                title=title,
            )

    def as_dict(self, top_n: int = 32, slow_n: int = 16) -> dict:
        """JSON-safe export: ranked rollup plus the slow-query log."""
        return {
            "operations": self._seq,
            "fingerprints": len(self._stats),
            "top": [s.as_dict() for s in self.top(top_n)],
            "slow_queries": [p.line() for p in self.slow_queries(slow_n)],
        }
