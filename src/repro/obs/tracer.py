"""Span tracing against the simulated clock.

A :class:`Tracer` times nested operations (``with tracer.span("lookup")``)
and charges the *simulated* nanoseconds that elapsed on the
:class:`~repro.sim.cost_model.CostModel` clock into per-span log2
latency histograms (``span.<name>.ns``).  Because the clock is the cost
model's, span latencies are deterministic and mean the same thing as the
experiment figures — no wall-clock noise.

Recent spans land in a bounded ring buffer (:meth:`Tracer.recent`) so a
misbehaving run can be inspected without a debugger.  :class:`NullTracer`
is the no-op twin for uninstrumented paths.
"""

from __future__ import annotations

from collections import deque
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Callable, Iterator

from repro.obs.registry import (
    Histogram,
    MetricsRegistry,
    NULL_REGISTRY,
    resolve_registry,
)

#: Default capacity of the recent-span ring buffer.
DEFAULT_RING_SIZE = 256

Clock = Callable[[], float]


@dataclass(frozen=True)
class SpanEvent:
    """One finished span, as kept in the ring buffer."""

    name: str
    start_ns: float
    end_ns: float
    depth: int
    attrs: tuple[tuple[str, object], ...] = ()
    error: bool = False

    @property
    def elapsed_ns(self) -> float:
        return self.end_ns - self.start_ns


def _zero_clock() -> float:
    return 0.0


class Tracer:
    """Times spans on a simulated clock and records them as metrics.

    ``clock`` may be a zero-argument callable returning simulated ns, or
    any object with a ``now_ns`` attribute (a :class:`CostModel`).  With
    no clock, spans still count (and nest, and ring-buffer) but measure
    zero elapsed time.
    """

    def __init__(
        self,
        registry: MetricsRegistry | None = None,
        clock: Clock | object | None = None,
        ring_size: int = DEFAULT_RING_SIZE,
    ) -> None:
        self._registry = resolve_registry(registry)
        if clock is None:
            self._clock: Clock = _zero_clock
        elif callable(clock):
            self._clock = clock  # type: ignore[assignment]
        else:  # duck-typed CostModel
            self._clock = lambda: clock.now_ns  # type: ignore[attr-defined]
        self._ring: deque[SpanEvent] = deque(maxlen=ring_size)
        self._depth = 0
        self._histograms: dict[str, Histogram] = {}

    @property
    def registry(self) -> MetricsRegistry:
        return self._registry

    @property
    def depth(self) -> int:
        """Current nesting depth (0 outside any span)."""
        return self._depth

    @contextmanager
    def span(self, name: str, **attrs: object) -> Iterator[None]:
        """Time a block; exception-safe (errors still record the span)."""
        start = self._clock()
        depth = self._depth
        self._depth = depth + 1
        error = False
        try:
            yield
        except BaseException:
            error = True
            raise
        finally:
            self._depth = depth
            end = self._clock()
            self._histogram(name).record(end - start)
            if error:
                self._registry.counter(f"span.{name}.errors").inc()
            self._ring.append(
                SpanEvent(
                    name=name,
                    start_ns=start,
                    end_ns=end,
                    depth=depth,
                    attrs=tuple(sorted(attrs.items())),
                    error=error,
                )
            )

    def _histogram(self, name: str) -> Histogram:
        hist = self._histograms.get(name)
        if hist is None:
            hist = self._registry.histogram(f"span.{name}.ns")
            self._histograms[name] = hist
        return hist

    def recent(self, n: int | None = None) -> list[SpanEvent]:
        """The last ``n`` finished spans, oldest first (all if ``None``)."""
        events = list(self._ring)
        return events if n is None else events[-n:]

    def clear(self) -> None:
        self._ring.clear()


class NullTracer(Tracer):
    """A tracer whose spans cost one try/finally and record nothing."""

    def __init__(self) -> None:
        super().__init__(NULL_REGISTRY, clock=None, ring_size=1)

    @contextmanager
    def span(self, name: str, **attrs: object) -> Iterator[None]:
        yield

    def recent(self, n: int | None = None) -> list[SpanEvent]:
        return []


#: Shared inert tracer for components built without one.
NULL_TRACER = NullTracer()
