"""Distributed trace-context propagation for the sharded engine.

The §5e :class:`~repro.obs.tracer.Tracer` answers "how long do
operations of kind X take" — it folds every span into a log2 histogram
and forgets the tree.  This module answers the question sharding (§5i)
made urgent: *what did this one logical operation actually do, on which
shards, in what order?*

A :class:`TraceCollector` mints a :class:`TraceContext` (trace id +
baggage: txn id, query fingerprint, shard hops) at the ``Database`` /
``ShardedDatabase`` facade and threads it — by plain lexical nesting,
the engine is single-threaded by construction — through scatter-gather
fan-out, per-shard executors, session commit/abort, WAL group-commit
flushes, and recovery.  Each logical op becomes one :class:`Trace`: a
tree of :class:`TraceSpan` nodes where fan-out spans carry the shard id
and registry-delta attributes (rows, pages, WAL bytes, cache/fragment
hits).  Finished traces land in a bounded ring and export as plain JSON
or as Chrome ``trace_event`` format (load the file in ``about:tracing``
/ Perfetto: one "process" per shard, the facade as process 0).

Clock discipline matches the rest of ``repro.obs``: spans *read*
simulated clocks and registries, never advance them, so arming tracing
cannot perturb a deterministic workload.  The off path is the usual
contract — until a collector is attached, every hook site pays a single
``is None`` test.
"""

from __future__ import annotations

from collections import deque
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Callable, Iterator

from repro.obs.registry import MetricsRegistry, resolve_registry

#: Default capacity of the finished-trace ring buffer.
DEFAULT_TRACE_RING = 64

Clock = Callable[[], float]


def _zero_clock() -> float:
    return 0.0


def _resolve_clock(clock: Clock | object | None) -> Clock:
    """Same duck-typing as :class:`~repro.obs.tracer.Tracer`: a callable,
    an object with ``now_ns`` (a CostModel), or None for a zero clock."""
    if clock is None:
        return _zero_clock
    if callable(clock):
        return clock  # type: ignore[return-value]
    return lambda: clock.now_ns  # type: ignore[attr-defined]


@dataclass
class TraceContext:
    """Identity and baggage of one logical operation.

    ``baggage`` carries the correlation keys the metrics families can't:
    the owning txn id, the §5e query fingerprint, and the ordered list of
    shard hops the router made while executing under this context.
    """

    trace_id: int
    baggage: dict[str, object] = field(default_factory=dict)

    @property
    def hops(self) -> list[int]:
        return self.baggage.setdefault("hops", [])  # type: ignore[return-value]

    def record_hop(self, shard: int) -> None:
        self.hops.append(shard)

    def as_dict(self) -> dict[str, object]:
        return {"trace_id": self.trace_id, "baggage": dict(self.baggage)}


class TraceSpan:
    """One node of a span tree.  ``shard`` is None for facade-side work."""

    __slots__ = (
        "span_id", "parent_id", "name", "shard",
        "start_ns", "end_ns", "attrs", "error", "children",
    )

    def __init__(
        self,
        span_id: int,
        parent_id: int | None,
        name: str,
        shard: int | None,
        start_ns: float,
        attrs: dict[str, object],
    ) -> None:
        self.span_id = span_id
        self.parent_id = parent_id
        self.name = name
        self.shard = shard
        self.start_ns = start_ns
        self.end_ns = start_ns
        self.attrs = attrs
        self.error = False
        self.children: list[TraceSpan] = []

    @property
    def elapsed_ns(self) -> float:
        return self.end_ns - self.start_ns

    def as_dict(self) -> dict[str, object]:
        out: dict[str, object] = {
            "span_id": self.span_id,
            "name": self.name,
            "start_ns": self.start_ns,
            "end_ns": self.end_ns,
        }
        if self.shard is not None:
            out["shard"] = self.shard
        if self.attrs:
            out["attrs"] = dict(self.attrs)
        if self.error:
            out["error"] = True
        if self.children:
            out["children"] = [c.as_dict() for c in self.children]
        return out


class Trace:
    """One finished (or in-flight) span tree plus its context."""

    __slots__ = ("context", "root", "spans")

    def __init__(self, context: TraceContext, root: TraceSpan) -> None:
        self.context = context
        self.root = root
        #: Flat list in start order — the root first.
        self.spans: list[TraceSpan] = [root]

    @property
    def trace_id(self) -> int:
        return self.context.trace_id

    @property
    def name(self) -> str:
        return self.root.name

    def shards_touched(self) -> list[int]:
        """Sorted distinct shard ids any span in the tree ran on."""
        return sorted({s.shard for s in self.spans if s.shard is not None})

    def find(self, name: str) -> list[TraceSpan]:
        return [s for s in self.spans if s.name == name]

    def as_dict(self) -> dict[str, object]:
        return {
            "trace_id": self.context.trace_id,
            "name": self.root.name,
            "baggage": dict(self.context.baggage),
            "shards": self.shards_touched(),
            "elapsed_ns": self.root.elapsed_ns,
            "root": self.root.as_dict(),
        }

    def format(self, indent: str = "  ") -> str:
        """A human span tree, one line per span."""
        lines = [
            f"trace {self.context.trace_id} {self.root.name} "
            f"shards={self.shards_touched()} "
            f"baggage={dict(self.context.baggage)}"
        ]

        def walk(span: TraceSpan, depth: int) -> None:
            where = "facade" if span.shard is None else f"shard {span.shard}"
            attrs = "".join(
                f" {k}={v}" for k, v in sorted(span.attrs.items())
            )
            lines.append(
                f"{indent * depth}{span.name} [{where}] "
                f"{span.elapsed_ns:.0f}ns{attrs}"
            )
            for child in span.children:
                walk(child, depth + 1)

        walk(self.root, 1)
        return "\n".join(lines)


class TraceCollector:
    """Mints, nests, and retains traces.  Single-threaded by design.

    ``trace(name, **baggage)`` opens a *root* span and installs its
    context; nested ``trace``/``span`` calls attach children.  ``span``
    outside any active trace mints a fresh root (``auto_root=True``, the
    single-engine facade behaviour) or no-ops.

    Metrics (in ``registry``): ``trace.started`` / ``trace.finished`` /
    ``trace.spans`` / ``trace.errors`` counters and a ``trace.fanout``
    histogram of distinct shards per finished trace.
    """

    def __init__(
        self,
        clock: Clock | object | None = None,
        registry: MetricsRegistry | None = None,
        capacity: int = DEFAULT_TRACE_RING,
        auto_root: bool = True,
        shard_clocks: dict[int, Clock | object] | None = None,
    ) -> None:
        self._clock = _resolve_clock(clock)
        #: Per-shard clocks: a span tagged ``shard=i`` is timed on shard
        #: ``i``'s own simulated clock (machines have local time; the
        #: Chrome export scopes each shard to its own pid/timeline).
        #: Spans with ``shard=None`` use the facade clock.
        self._shard_clocks: dict[int, Clock] = {
            i: _resolve_clock(c) for i, c in (shard_clocks or {}).items()
        }
        self._registry = resolve_registry(registry)
        self._ring: deque[Trace] = deque(maxlen=capacity)
        self._active: Trace | None = None
        self._stack: list[TraceSpan] = []
        self._next_trace_id = 1
        self._next_span_id = 1
        self._auto_root = auto_root
        self._started = self._registry.counter("trace.started")
        self._finished = self._registry.counter("trace.finished")
        self._span_count = self._registry.counter("trace.spans")
        self._errors = self._registry.counter("trace.errors")
        self._fanout = self._registry.histogram("trace.fanout")

    # -- introspection -------------------------------------------------------

    @property
    def active(self) -> Trace | None:
        """The in-flight trace, if a root span is open."""
        return self._active

    @property
    def current_span(self) -> TraceSpan | None:
        return self._stack[-1] if self._stack else None

    @property
    def context(self) -> TraceContext | None:
        return self._active.context if self._active is not None else None

    def traces(self, n: int | None = None) -> list[Trace]:
        """The last ``n`` finished traces, oldest first (all if None)."""
        out = list(self._ring)
        return out if n is None else out[-n:]

    def last(self) -> Trace | None:
        return self._ring[-1] if self._ring else None

    def clear(self) -> None:
        self._ring.clear()

    def _clock_for(self, shard: int | None) -> Clock:
        if shard is None:
            return self._clock
        return self._shard_clocks.get(shard, self._clock)

    # -- recording -----------------------------------------------------------

    @contextmanager
    def trace(
        self, name: str, shard: int | None = None, **baggage: object
    ) -> Iterator[Trace]:
        """Open a root span (or, nested under an active trace, a child
        span whose baggage merges into the active context)."""
        if self._active is not None:
            self._active.context.baggage.update(baggage)
            with self.span(name, shard=shard):
                yield self._active
            return
        context = TraceContext(self._next_trace_id, dict(baggage))
        self._next_trace_id += 1
        clock = self._clock_for(shard)
        root = TraceSpan(
            self._next_span_id, None, name, shard, clock(), {}
        )
        self._next_span_id += 1
        trace = Trace(context, root)
        self._active = trace
        self._stack.append(root)
        self._started.inc()
        self._span_count.inc()
        try:
            yield trace
        except BaseException:
            root.error = True
            self._errors.inc()
            raise
        finally:
            self._stack.pop()
            root.end_ns = clock()
            self._active = None
            self._ring.append(trace)
            self._finished.inc()
            self._fanout.record(len(trace.shards_touched()))

    @contextmanager
    def span(
        self, name: str, shard: int | None = None, **attrs: object
    ) -> Iterator[TraceSpan | None]:
        """A child span of the active trace.  Outside any trace this
        mints a one-span root (``auto_root``) or yields None."""
        if self._active is None:
            if self._auto_root:
                with self.trace(name, shard=shard) as trace:
                    trace.root.attrs.update(attrs)
                    yield trace.root
                return
            yield None
            return
        parent = self._stack[-1]
        clock = self._clock_for(shard)
        span = TraceSpan(
            self._next_span_id, parent.span_id, name, shard,
            clock(), dict(attrs),
        )
        self._next_span_id += 1
        parent.children.append(span)
        self._active.spans.append(span)
        self._stack.append(span)
        self._span_count.inc()
        try:
            yield span
        except BaseException:
            span.error = True
            self._errors.inc()
            raise
        finally:
            self._stack.pop()
            span.end_ns = clock()

    def annotate(self, **attrs: object) -> None:
        """Merge attributes into the innermost open span (no-op outside)."""
        if self._stack:
            self._stack[-1].attrs.update(attrs)

    def set_baggage(self, **baggage: object) -> None:
        """Merge baggage into the active context (no-op outside)."""
        if self._active is not None:
            self._active.context.baggage.update(baggage)

    def record_hop(self, shard: int) -> None:
        """Append a router hop to the active context's baggage."""
        if self._active is not None:
            self._active.context.record_hop(shard)

    # -- export --------------------------------------------------------------

    def as_dicts(self, n: int | None = None) -> list[dict[str, object]]:
        return [t.as_dict() for t in self.traces(n)]

    def to_chrome(self, n: int | None = None) -> dict[str, object]:
        """Chrome ``trace_event`` JSON object format: ``ph="X"`` complete
        events, one pid per shard (facade = pid 0), ts/dur in µs."""
        events: list[dict[str, object]] = []
        pids: set[int] = set()
        for trace in self.traces(n):
            for span in trace.spans:
                pid = 0 if span.shard is None else span.shard + 1
                pids.add(pid)
                events.append(
                    {
                        "name": span.name,
                        "cat": "repro",
                        "ph": "X",
                        "pid": pid,
                        "tid": trace.trace_id,
                        "ts": span.start_ns / 1000.0,
                        "dur": span.elapsed_ns / 1000.0,
                        "args": {
                            "trace_id": trace.trace_id,
                            "span_id": span.span_id,
                            **span.attrs,
                        },
                    }
                )
        meta = [
            {
                "name": "process_name",
                "ph": "M",
                "pid": pid,
                "args": {
                    "name": "facade" if pid == 0 else f"shard {pid - 1}"
                },
            }
            for pid in sorted(pids)
        ]
        return {"traceEvents": meta + events, "displayTimeUnit": "ns"}


#: Shared helper: hook sites hold ``collector_or_none`` and do
#: ``if trace is not None: ...`` — no null-object is provided on purpose,
#: the is-None test *is* the off path.
