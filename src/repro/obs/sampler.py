"""Time-series telemetry: registry deltas sampled on the logical clock.

A :class:`MetricsRegistry` is a since-boot accumulator; operators need
*series* — "what is the hit rate **now**", "is WAL traffic climbing".
:class:`TelemetrySampler` bridges the two: each sample diffs the
registry against the previous sample and appends one
:class:`TelemetryPoint` to a fixed-size ring buffer, so memory is
bounded no matter how long the engine runs.

Per point:

* **counters → rates** — events per simulated second over the window,
  guarded against zero-duration windows (rates are simply omitted) and
  against counter resets (``reset_counters`` mid-run: a shrinking value
  is treated as a restart, the post-reset value is the window's delta);
* **gauges → last** — instantaneous levels need no windowing;
* **histograms → windowed p50/p95/p99** — quantiles of the *bucket
  deltas*, i.e. of only the values recorded inside the window, via the
  shared :func:`~repro.obs.registry.percentile_from_buckets` kernel;
* **derived → windowed hit rates** — ``<prefix>.hit_rate`` for every
  ``.hit``/``.miss`` counter pair, computed from window deltas (the
  sampler's answer to "hit rate now" vs the report's since-boot rate).

The clock is the cost model's simulated nanoseconds (the same logical
clock spans use), so series are deterministic and mean the same thing
as the experiment figures.  The sampler only *reads* the registry —
it never installs instruments into it — so sampling cannot perturb the
metrics it observes, and a NullRegistry yields empty points.

Selectors address one number inside a point for timelines and SLO rules:
``rate.<counter>``, ``gauge.<gauge>``, ``derived.<prefix>.hit_rate``,
``p50.<hist>``/``p95.<hist>``/``p99.<hist>``, and
``ratio:<sel>/<sel>`` (zero/absent denominators yield no value, never a
division error).  The kind may be spelled with a colon
(``rate:wal.bytes``), and the name may be an ``fnmatch`` glob:
``rate:shard.*.bufferpool.hit`` sums the matching counters across every
shard (sampled through a §5j ``FleetRegistryView``), while percentile
globs take the *max* over matches — the fleet's worst case.
"""

from __future__ import annotations

import fnmatch
from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Iterator

from repro.errors import ObservabilityError
from repro.obs.registry import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    percentile_from_buckets,
    resolve_registry,
)

#: Default ring capacity: enough for a long dashboard without unbounded
#: growth (240 points at a 1-second cadence is four minutes of history).
DEFAULT_CAPACITY = 240

#: Windowed histogram quantiles every point carries.
QUANTILES: tuple[tuple[str, float], ...] = (
    ("p50", 0.50),
    ("p95", 0.95),
    ("p99", 0.99),
)

Clock = Callable[[], float]


@dataclass(frozen=True)
class TelemetryPoint:
    """One sampled window of engine telemetry."""

    seq: int
    t_ns: float
    dt_ns: float
    rates: dict[str, float] = field(default_factory=dict)
    gauges: dict[str, float] = field(default_factory=dict)
    percentiles: dict[str, dict[str, float]] = field(default_factory=dict)
    derived: dict[str, float] = field(default_factory=dict)

    def as_dict(self) -> dict:
        return {
            "seq": self.seq,
            "t_ns": self.t_ns,
            "dt_ns": self.dt_ns,
            "rates": dict(self.rates),
            "gauges": dict(self.gauges),
            "percentiles": {k: dict(v) for k, v in self.percentiles.items()},
            "derived": dict(self.derived),
        }


#: Selector kinds a point can resolve (beyond the ``ratio:`` combinator).
_SELECTOR_KINDS = ("rate", "gauge", "derived", "p50", "p95", "p99")


def _is_glob(name: str) -> bool:
    return "*" in name or "?" in name or "[" in name


def select(point: TelemetryPoint, selector: str) -> float | None:
    """Resolve a selector against one point (``None`` when absent).

    ``ratio:<a>/<b>`` divides two sub-selectors and is guarded: a zero or
    missing denominator yields ``None``, never an error.  A glob name
    aggregates every match: sum for rates/gauges/derived (fleet totals
    across ``shard.<i>.`` prefixes), max for percentiles (fleet worst
    case); no matches yield ``None``, exactly like a missing literal.
    """
    if selector.startswith("ratio:"):
        body = selector[len("ratio:"):]
        num_sel, sep, den_sel = body.partition("/")
        if not sep:
            raise ObservabilityError(f"ratio selector needs a '/': {selector!r}")
        num = select(point, num_sel)
        den = select(point, den_sel)
        if num is None or not den:
            return None
        return num / den
    for kind in _SELECTOR_KINDS:
        if selector.startswith(kind) and selector[len(kind):len(kind) + 1] == ":":
            name = selector[len(kind) + 1:]
            break
    else:
        kind, sep, name = selector.partition(".")
        if not sep or not name:
            raise ObservabilityError(f"bad selector {selector!r}")
    if kind == "rate":
        values: dict[str, float] = point.rates
    elif kind == "gauge":
        values = point.gauges
    elif kind == "derived":
        values = point.derived
    elif kind in ("p50", "p95", "p99"):
        if _is_glob(name):
            matched = [
                q[kind]
                for hist_name, q in point.percentiles.items()
                if fnmatch.fnmatchcase(hist_name, name) and kind in q
            ]
            return max(matched) if matched else None
        quantiles = point.percentiles.get(name)
        return quantiles.get(kind) if quantiles else None
    else:
        raise ObservabilityError(
            f"unknown selector kind {kind!r} "
            "(want rate/gauge/derived/p50/p95/p99)"
        )
    if _is_glob(name):
        matched = [
            v for k, v in values.items() if fnmatch.fnmatchcase(k, name)
        ]
        return sum(matched) if matched else None
    return values.get(name)


class TelemetrySampler:
    """Fixed-memory ring of registry-delta samples on a logical clock.

    ``clock`` follows the tracer convention — a zero-argument callable of
    simulated ns, or an object with ``now_ns`` (a cost model), or
    ``None`` for callers that pass explicit timestamps to
    :meth:`sample`.  ``interval_ns`` is the :meth:`tick` cadence; ticks
    inside the interval are free no-ops, so hooking ``tick()`` into a
    per-operation loop gives interval-spaced samples.
    """

    def __init__(
        self,
        registry: MetricsRegistry | None = None,
        clock: Clock | object | None = None,
        interval_ns: float = 1_000_000.0,
        capacity: int = DEFAULT_CAPACITY,
    ) -> None:
        if capacity < 1:
            raise ObservabilityError("sampler capacity must be >= 1")
        if interval_ns < 0:
            raise ObservabilityError("sampler interval_ns must be >= 0")
        self._registry = resolve_registry(registry)
        if clock is None:
            self._clock: Clock = lambda: 0.0
        elif callable(clock):
            self._clock = clock  # type: ignore[assignment]
        else:  # duck-typed CostModel
            self._clock = lambda: clock.now_ns  # type: ignore[attr-defined]
        self._interval = float(interval_ns)
        self._points: deque[TelemetryPoint] = deque(maxlen=capacity)
        self._prev_counters: dict[str, int] = {}
        self._prev_buckets: dict[str, list[int]] = {}
        self._last_t: float | None = None
        self._seq = 0

    # -- sampling -------------------------------------------------------------

    @property
    def interval_ns(self) -> float:
        return self._interval

    @property
    def capacity(self) -> int:
        return self._points.maxlen or 0

    @property
    def samples_taken(self) -> int:
        """Samples ever taken (>= ``len(points)`` once the ring wraps)."""
        return self._seq

    def tick(self) -> TelemetryPoint | None:
        """Sample iff at least ``interval_ns`` elapsed since the last one."""
        now = self._clock()
        if self._last_t is not None and now - self._last_t < self._interval:
            return None
        return self.sample(now)

    def sample(self, now_ns: float | None = None) -> TelemetryPoint:
        """Take one sample at ``now_ns`` (default: the clock's now).

        The first sample establishes the baseline: it carries gauges but
        no rates (there is no window yet).  A zero-duration window —
        two samples at the same logical instant — likewise yields no
        rates and no derived values rather than dividing by zero; the
        counter baseline still advances, so the *next* non-degenerate
        window stays correct.
        """
        now = float(now_ns) if now_ns is not None else self._clock()
        dt = now - self._last_t if self._last_t is not None else 0.0
        rates: dict[str, float] = {}
        gauges: dict[str, float] = {}
        percentiles: dict[str, dict[str, float]] = {}
        counter_deltas: dict[str, int] = {}
        for name, instrument in self._registry.items():
            if isinstance(instrument, Histogram):
                buckets = instrument.bucket_counts()
                prev = self._prev_buckets.get(name)
                if prev is None or any(b < p for b, p in zip(buckets, prev)):
                    # First sight, or the histogram was reset mid-window:
                    # the post-reset contents are the window's recordings.
                    window = buckets
                else:
                    window = [b - p for b, p in zip(buckets, prev)]
                self._prev_buckets[name] = buckets
                if sum(window):
                    percentiles[name] = {
                        label: percentile_from_buckets(window, q, cap=instrument.max)
                        for label, q in QUANTILES
                    }
            elif isinstance(instrument, Counter):
                value = instrument.value
                prev_value = self._prev_counters.get(name, 0)
                # reset_counters() mid-run shrinks the value; the honest
                # window delta is then the value itself (counter restarted
                # from zero), not a negative rate.
                delta = value - prev_value if value >= prev_value else value
                self._prev_counters[name] = value
                counter_deltas[name] = delta
                if dt > 0:
                    rates[name] = delta * 1e9 / dt
            elif isinstance(instrument, Gauge):
                gauges[name] = instrument.value
        derived = self._derive(counter_deltas) if dt > 0 else {}
        point = TelemetryPoint(
            seq=self._seq,
            t_ns=now,
            dt_ns=dt,
            rates=rates,
            gauges=gauges,
            percentiles=percentiles,
            derived=derived,
        )
        self._points.append(point)
        self._last_t = now
        self._seq += 1
        return point

    @staticmethod
    def _derive(deltas: dict[str, int]) -> dict[str, float]:
        """Windowed ``<prefix>.hit_rate`` for every hit/miss delta pair."""
        derived: dict[str, float] = {}
        for name, hit in deltas.items():
            if not name.endswith(".hit"):
                continue
            prefix = name[: -len(".hit")]
            miss = deltas.get(f"{prefix}.miss")
            if miss is None:
                continue
            total = hit + miss
            if total > 0:
                derived[f"{prefix}.hit_rate"] = hit / total
        return derived

    # -- read surfaces --------------------------------------------------------

    @property
    def points(self) -> list[TelemetryPoint]:
        """Retained points, oldest first (at most ``capacity``)."""
        return list(self._points)

    def last(self) -> TelemetryPoint | None:
        return self._points[-1] if self._points else None

    def series(self, selector: str) -> list[tuple[float, float]]:
        """``(t_ns, value)`` for every retained point where the selector
        resolves (windows where it is absent are simply skipped)."""
        out: list[tuple[float, float]] = []
        for point in self._points:
            value = select(point, selector)
            if value is not None:
                out.append((point.t_ns, value))
        return out

    def selectors(self) -> list[str]:
        """Every selector that resolves in at least one retained point."""
        seen: dict[str, None] = {}
        for point in self._points:
            for name in point.rates:
                seen[f"rate.{name}"] = None
            for name in point.gauges:
                seen[f"gauge.{name}"] = None
            for name in point.derived:
                seen[f"derived.{name}"] = None
            for name in point.percentiles:
                for label, _q in QUANTILES:
                    seen[f"{label}.{name}"] = None
        return sorted(seen)

    def __iter__(self) -> Iterator[TelemetryPoint]:
        return iter(self._points)

    def __len__(self) -> int:
        return len(self._points)

    def as_dict(self) -> dict:
        return {
            "interval_ns": self._interval,
            "capacity": self.capacity,
            "samples_taken": self._seq,
            "points": [p.as_dict() for p in self._points],
        }
