"""Observability CLI: profile, sample, and health-check a live workload.

Usage::

    python -m repro.obs report            # metrics dashboard + SLO verdicts
    python -m repro.obs top               # EXPLAIN-ANALYZE rollup + slow log
    python -m repro.obs timeline          # ASCII sparklines of sampled series
    python -m repro.obs export            # one JSON document with everything
    python -m repro.obs health            # SLO verdicts + tuning audit ring
    python -m repro.obs tune              # adaptive knobs, audit, verdicts
    python -m repro.obs trace             # §5j span trees (+ Chrome export)
    python -m repro.obs events            # §5j causal event journal
    python -m repro.obs fleet --shards 4  # §5j fleet rollup + skew report
    python -m repro.obs top --ops 20000 --batch 16 --no-wal
    python -m repro.obs report --shards 4 # any subcommand, sharded

Every subcommand accepts ``--shards N``: the same workload then runs
over a :class:`~repro.shard.ShardedDatabase` (zipf router, per-shard
WALs and registries) with §5j tracing, the event journal, and the fleet
rollup armed; the sampler reads the merged
:class:`~repro.obs.rollup.FleetRegistryView`, so wildcard selectors
like ``rate:shard.*.bufferpool.hit`` resolve in timelines.

Every subcommand drives the same seeded workload: a table with a plain
primary index and a §2.1 cached index, loaded and then replayed with a
Zipf-skewed lookup/update/insert/delete trace
(:func:`repro.workload.replay.build_mixed_trace`), with the
:class:`~repro.obs.sampler.TelemetrySampler` snapshotting the registry
between replay chunks on the simulated clock.  Deterministic by
construction — same seed, same numbers, safe to diff in CI.
"""

from __future__ import annotations

import argparse
import sys
from dataclasses import dataclass

from repro.obs.health import DEFAULT_SLO_RULES, HealthChecker, HealthReport
from repro.obs.profiler import QueryProfiler
from repro.obs.registry import MetricsRegistry
from repro.obs.report import export_json, format_report
from repro.obs.sampler import TelemetrySampler, select

#: Series the ``timeline`` subcommand shows by default, in order, when
#: they resolved in at least one sample.
DEFAULT_TIMELINE_SELECTORS = (
    "derived.bufferpool.hit_rate",
    "derived.index_cache.hit_rate",
    "rate.profiler.ops",
    "rate.wal.bytes",
    "rate.bufferpool.eviction",
    "gauge.bufferpool.quarantined_pages",
    "p95.bufferpool.page_temperature",
)

#: Sparkline glyphs, low to high (ASCII-only for dumb terminals).
_SPARK_LEVELS = " .:-=+*#%@"


@dataclass
class ObservedRun:
    """Everything a subcommand needs from one observed workload."""

    registry: MetricsRegistry
    profiler: QueryProfiler
    sampler: TelemetrySampler
    health: HealthReport
    database: object
    replayed_ops: int
    elapsed_ns: float
    #: The AdaptiveController when ``adaptive=True``, else None.
    controller: object | None = None
    #: §5j instruments, armed when ``observe=True`` or ``shards > 0``.
    trace: object | None = None
    journal: object | None = None
    #: The FleetRollup (sharded runs only).
    rollup: object | None = None
    #: Shards the workload ran over (0 = single engine).
    shards: int = 0


def run_observed_workload(
    n_rows: int = 400,
    n_ops: int = 4_000,
    seed: int = 0,
    pool_pages: int = 48,
    batch: int = 8,
    samples: int = 24,
    alpha: float = 1.1,
    wal: bool = True,
    adaptive: bool = False,
    columnar: bool = False,
    shards: int = 0,
    observe: bool = False,
) -> ObservedRun:
    """Load, replay, profile, sample, and health-check one workload.

    The replay trace is chunked into ``samples`` slices with one sampler
    snapshot between slices, so the timeline has that many non-degenerate
    windows regardless of trace length.

    With ``adaptive=True`` an :class:`~repro.obs.adaptive.AdaptiveController`
    is attached over the *same* sampler (its per-operation tick disabled
    by an infinite interval) and fed each chunk's point explicitly, so
    the control loop runs chunk-synchronously and the sample count stays
    identical to a non-adaptive run.

    With ``columnar=True`` the §5h vectorized executor is attached and a
    scan + aggregate run per sampler chunk, so the ``columnar.*`` family
    carries real traffic (mirror maintenance, fragment cache churn).

    With ``observe=True`` the §5j trace collector and event journal are
    armed (they always are when ``shards > 0``).  ``shards=N`` runs the
    replay over a :class:`~repro.shard.ShardedDatabase`: the cached
    index doubles as the routing index, the sampler reads the merged
    fleet view, the rollup refreshes once per chunk, and the SLO rule
    set gains the fleet skew rule.  ``adaptive`` is single-engine only
    (the controller tunes one engine's knobs) and is ignored sharded.
    """
    # Late imports: repro.obs stays importable from the lowest layers;
    # only the CLI pulls in the query and workload packages.
    from repro.query.database import Database
    from repro.query.predicates import ColumnRange
    from repro.schema.schema import Schema
    from repro.schema.types import UINT32, UINT64, char
    from repro.workload.replay import build_mixed_trace, replay

    registry = MetricsRegistry()
    rollup = None
    if shards:
        from repro.obs.rollup import FLEET_SLO_RULES, fleet_rules
        from repro.shard.database import ShardedDatabase

        # Split the RAM budget like the sharded fault drill does, so
        # scaling out does not quietly multiply the cache.
        per_shard_pool = max(4, -(-pool_pages // shards))
        db = ShardedDatabase(
            shards, mode="zipf", seed=seed, metrics=registry,
            data_pool_pages=per_shard_pool, wal=wal,
        )
        trace_collector = db.enable_tracing()
        journal = db.enable_events()
        rollup = db.enable_rollup()
        schema = Schema.of(("k", UINT64), ("name", char(12)), ("n", UINT32))
        table = db.create_table("t", schema)
        # The cached index is created first, so it is the routing index:
        # point ops touch one shard, scans and aggregates scatter.
        db.create_cached_index("t", "pk_cache", ("k",), ("name", "n"))
        for k in range(n_rows):
            table.insert({"k": k, "name": f"r{k}", "n": k % 97})
        profiler = db.shard(0).enable_profiling(slow_log_size=64)
        for i in range(1, shards):
            db.shard(i).enable_profiling(slow_log_size=64)
        sampler = TelemetrySampler(
            db.fleet_view(), clock=lambda: db.sim_now_ns,
            capacity=max(samples + 1, 16), interval_ns=1_000_000.0,
        )
        checker = HealthChecker(
            sampler, fleet_rules(DEFAULT_SLO_RULES) + tuple(FLEET_SLO_RULES),
            journal=journal,
        )
        controller = None
        columnar_mgr = None
        if columnar:
            db.enable_columnar()
    else:
        db = Database(
            seed=seed, metrics=registry, data_pool_pages=pool_pages, wal=wal,
        )
        if observe:
            trace_collector = db.enable_tracing()
            journal = db.enable_events()
        else:
            trace_collector = journal = None
        schema = Schema.of(("k", UINT64), ("name", char(12)), ("n", UINT32))
        table = db.create_table("t", schema)
        db.create_index("t", "pk", ("k",))
        db.create_cached_index("t", "pk_cache", ("k",), ("name", "n"))
        for k in range(n_rows):
            table.insert({"k": k, "name": f"r{k}", "n": k % 97})

        profiler = db.enable_profiling(slow_log_size=64)
        sampler = TelemetrySampler(
            registry, clock=db.cost_model, capacity=max(samples + 1, 16),
            interval_ns=float("inf") if adaptive else 1_000_000.0,
        )
        checker = HealthChecker(sampler, DEFAULT_SLO_RULES, journal=journal)
        controller = db.enable_adaptive(sampler=sampler) if adaptive else None
        columnar_mgr = db.enable_columnar() if columnar else None

    trace = build_mixed_trace(
        n_ops,
        existing_keys=list(range(n_rows)),
        make_row=lambda k: {"k": k, "name": f"r{k}", "n": k % 97},
        make_changes=lambda k: {"n": (k * 31) % 1_000},
        next_key=lambda i: n_rows + i,
        alpha=alpha,
        seed=seed,
    )
    clock_now = (
        (lambda: db.sim_now_ns) if shards else (lambda: db.cost_model.now_ns)
    )
    start_ns = clock_now()
    sampler.sample()  # baseline: gauges only, no window yet
    chunk = max(1, len(trace) // max(1, samples))
    mid_chunk = max(1, (len(trace) // chunk) // 2)
    replayed = 0
    chunks_done = 0
    for lo in range(0, len(trace), chunk):
        result = replay(
            table, "pk_cache", trace[lo:lo + chunk],
            project=("k", "name"), lookup_batch_size=batch,
        )
        replayed += result.operations
        chunks_done += 1
        if columnar:
            table.aggregate([("count", None), ("sum", "n")],
                            ColumnRange("n", 0, 48))
            list(table.scan(ColumnRange("n", 0, 8), project=("k", "n")))
        if journal is not None and chunks_done == mid_chunk:
            # Give the journal a real mid-run story: a fuzzy checkpoint
            # (per shard when sharded) and, sharded, one hot-key
            # rebalance whose migration intents/commits land as events.
            if wal:
                db.checkpoint()
            if shards:
                db.rebalance()
        if rollup is not None:
            rollup.refresh()
        point = sampler.sample()
        if controller is not None:
            controller.evaluate(point)
        elif journal is not None:
            # SLO transitions journal themselves as they happen, not
            # only at the end-of-run verdict.
            checker.evaluate()
    if columnar_mgr is not None:
        columnar_mgr.refresh_encoding_stats()
    if wal:
        if shards:
            db.flush_wals()
        else:
            db.wal.flush()
    return ObservedRun(
        registry=registry,
        profiler=profiler,
        sampler=sampler,
        health=checker.evaluate(),
        database=db,
        replayed_ops=replayed,
        elapsed_ns=clock_now() - start_ns,
        controller=controller,
        trace=trace_collector,
        journal=journal,
        rollup=rollup,
        shards=shards,
    )


# -- rendering -------------------------------------------------------------


def sparkline(values: list[float], width: int = 60) -> str:
    """Render a series as one line of ASCII levels, min-max normalized."""
    if not values:
        return "(no data)"
    if len(values) > width:
        # Down-sample by striding; the newest point always survives.
        stride = len(values) / width
        values = [values[int(i * stride)] for i in range(width - 1)] + [values[-1]]
    lo, hi = min(values), max(values)
    span = hi - lo
    if span <= 0:
        return _SPARK_LEVELS[len(_SPARK_LEVELS) // 2] * len(values)
    top = len(_SPARK_LEVELS) - 1
    return "".join(
        _SPARK_LEVELS[round((v - lo) / span * top)] for v in values
    )


def format_timeline(
    sampler: TelemetrySampler,
    selectors: tuple[str, ...] | list[str] = DEFAULT_TIMELINE_SELECTORS,
    width: int = 60,
) -> str:
    """Sparklines for every selector that resolves in the retained points."""
    lines = []
    for selector in selectors:
        series = sampler.series(selector)
        if not series:
            continue
        values = [v for _t, v in series]
        lines.append(
            f"{selector:<40} last={values[-1]:>12.4g}  "
            f"[{min(values):.4g} .. {max(values):.4g}]"
        )
        lines.append(f"  {sparkline(values, width)}")
    if not lines:
        return "timeline: (no sampled series resolved)"
    header = (
        f"timeline: {len(sampler)} retained point(s), "
        f"{sampler.samples_taken} sample(s) taken"
    )
    return "\n".join([header] + lines)


# -- subcommands -----------------------------------------------------------


def _cmd_report(run: ObservedRun, args: argparse.Namespace) -> None:
    print(format_report(run.registry, title="observed workload"))
    print()
    print(run.health.format())


def _cmd_top(run: ObservedRun, args: argparse.Namespace) -> None:
    print(run.profiler.format_top(args.n))
    slow = run.profiler.slow_queries(args.n)
    if slow:
        print("\nslow queries (costliest retained):")
        for profile in slow:
            print(f"  {profile.line()}")


def _cmd_timeline(run: ObservedRun, args: argparse.Namespace) -> None:
    selectors = tuple(args.selector) if args.selector else (
        DEFAULT_TIMELINE_SELECTORS
    )
    # Fail fast on a selector typo instead of silently skipping it.
    last = run.sampler.last()
    if args.selector and last is not None:
        for sel in selectors:
            select(last, sel)
    print(format_timeline(run.sampler, selectors, width=args.width))


def _cmd_health(run: ObservedRun, args: argparse.Namespace) -> None:
    print(run.health.format())
    if run.controller is not None:
        print()
        print(run.controller.format_audit(limit=args.actions))


def _cmd_tune(run: ObservedRun, args: argparse.Namespace) -> None:
    controller = run.controller
    print(controller.format_knobs())
    print()
    print(controller.format_audit(limit=args.actions))
    print()
    print(run.health.format())


def _cmd_trace(run: ObservedRun, args: argparse.Namespace) -> None:
    collector = run.trace
    trees = collector.traces(args.n)
    print(
        f"traces: showing {len(trees)} of {len(collector.traces())} "
        f"retained span tree(s)"
    )
    for tree in trees:
        print(tree.format())
    if args.chrome:
        import json

        with open(args.chrome, "w", encoding="utf-8") as fh:
            json.dump(collector.to_chrome(), fh, indent=2, sort_keys=True)
        print(f"wrote Chrome trace_event JSON to {args.chrome} "
              f"(load in about:tracing / Perfetto)")


def _cmd_events(run: ObservedRun, args: argparse.Namespace) -> None:
    print(run.journal.format(
        limit=args.n, kind=args.kind, shard=args.shard,
    ))


def _cmd_fleet(run: ObservedRun, args: argparse.Namespace) -> None:
    run.rollup.refresh()
    print(run.rollup.format(args.n))
    print()
    print(run.health.format())


def _cmd_export(run: ObservedRun, args: argparse.Namespace) -> None:
    extra_obs = {}
    if run.trace is not None:
        extra_obs["traces"] = run.trace.as_dicts(args.spans)
    if run.journal is not None:
        extra_obs["events"] = run.journal.as_dicts()
    text = export_json(
        run.registry,
        path=args.out,
        label="repro.obs",
        tracer=getattr(run.database, "tracer", None),
        span_limit=args.spans,
        extra={
            "profiler": run.profiler.as_dict(),
            "timeline": run.sampler.as_dict(),
            "health": run.health.as_dict(),
            "workload": {
                "replayed_ops": run.replayed_ops,
                "elapsed_ns": run.elapsed_ns,
                "shards": run.shards,
            },
            **extra_obs,
        },
    )
    if args.out:
        print(f"wrote {args.out}")
    else:
        print(text)


def build_parser() -> argparse.ArgumentParser:
    common = argparse.ArgumentParser(add_help=False)
    common.add_argument("--rows", type=int, default=400,
                        help="rows loaded before the replay (default 400)")
    common.add_argument("--ops", type=int, default=4_000,
                        help="replayed trace length (default 4000)")
    common.add_argument("--seed", type=int, default=0)
    common.add_argument("--pool-pages", type=int, default=48,
                        help="buffer-pool capacity in pages (default 48)")
    common.add_argument("--batch", type=int, default=8,
                        help="lookup_many batch size (default 8)")
    common.add_argument("--samples", type=int, default=24,
                        help="telemetry samples across the replay (default 24)")
    common.add_argument("--alpha", type=float, default=1.1,
                        help="Zipf skew of the trace (default 1.1)")
    common.add_argument("--no-wal", action="store_true",
                        help="run without a write-ahead log")
    common.add_argument("--adaptive", action="store_true",
                        help="attach the AdaptiveController to the run "
                        "(always on for the health/tune subcommands; "
                        "single-engine only)")
    common.add_argument("--shards", type=int, default=0, metavar="N",
                        help="run the workload over a ShardedDatabase with "
                        "N shards (0 = single engine; arms §5j tracing, "
                        "the event journal, and the fleet rollup)")

    parser = argparse.ArgumentParser(
        prog="python -m repro.obs",
        description="Profile, sample, and health-check a replayed workload.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_report = sub.add_parser(
        "report", parents=[common],
        help="per-subsystem metrics dashboard plus SLO verdicts",
    )
    p_report.set_defaults(func=_cmd_report)

    p_top = sub.add_parser(
        "top", parents=[common],
        help="per-fingerprint EXPLAIN-ANALYZE rollup and the slow-query log",
    )
    p_top.add_argument("-n", type=int, default=10,
                       help="fingerprints / slow queries shown (default 10)")
    p_top.set_defaults(func=_cmd_top)

    p_timeline = sub.add_parser(
        "timeline", parents=[common],
        help="ASCII sparklines of sampled time series",
    )
    p_timeline.add_argument(
        "--selector", action="append", metavar="SEL",
        help="series selector (repeatable), e.g. derived.bufferpool.hit_rate",
    )
    p_timeline.add_argument("--width", type=int, default=60)
    p_timeline.set_defaults(func=_cmd_timeline)

    p_export = sub.add_parser(
        "export", parents=[common],
        help="metrics + spans + profiles + timeline + health as one JSON",
    )
    p_export.add_argument("--out", metavar="PATH",
                          help="write to PATH instead of stdout")
    p_export.add_argument("--spans", type=int, default=64,
                          help="newest tracer spans included (default 64)")
    p_export.set_defaults(func=_cmd_export)

    p_health = sub.add_parser(
        "health", parents=[common],
        help="SLO rule verdicts plus the controller's tuning audit ring",
    )
    p_health.add_argument("--actions", type=int, default=16,
                          help="newest tuning actions shown (default 16)")
    p_health.set_defaults(func=_cmd_health, force_adaptive=True)

    p_tune = sub.add_parser(
        "tune", parents=[common],
        help="adaptive knob state, tuning audit ring, and SLO verdicts",
    )
    p_tune.add_argument("--actions", type=int, default=16,
                        help="newest tuning actions shown (default 16)")
    p_tune.set_defaults(func=_cmd_tune, force_adaptive=True)

    p_trace = sub.add_parser(
        "trace", parents=[common],
        help="§5j span trees of the replayed workload (+ Chrome export)",
    )
    p_trace.add_argument("-n", type=int, default=4,
                         help="newest span trees shown (default 4)")
    p_trace.add_argument("--chrome", metavar="PATH",
                         help="also write Chrome trace_event JSON to PATH")
    p_trace.set_defaults(func=_cmd_trace, force_observe=True)

    p_events = sub.add_parser(
        "events", parents=[common],
        help="§5j causal event journal (checkpoints, tuning, SLO, faults)",
    )
    p_events.add_argument("-n", type=int, default=20,
                          help="newest events shown (default 20)")
    p_events.add_argument("--kind", metavar="GLOB",
                          help="filter by kind, fnmatch glob ok "
                          "(e.g. migration.*)")
    p_events.add_argument("--shard", type=int, default=None,
                          help="filter by shard id")
    p_events.set_defaults(func=_cmd_events, force_observe=True)

    p_fleet = sub.add_parser(
        "fleet", parents=[common],
        help="§5j fleet rollup: cross-shard totals, skew, hot shard "
        "(defaults to --shards 2 when unset)",
    )
    p_fleet.add_argument("-n", type=int, default=8,
                         help="most-skewed metrics shown (default 8)")
    p_fleet.set_defaults(func=_cmd_fleet, default_shards=2)
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    shards = args.shards or getattr(args, "default_shards", 0)
    adaptive = args.adaptive or getattr(args, "force_adaptive", False)
    if shards and adaptive and not args.adaptive and args.command == "health":
        adaptive = False  # health works sharded, just without the controller
    if shards and adaptive:
        print("error: --shards is incompatible with the adaptive "
              "controller (health works sharded; tune is single-engine)",
              file=sys.stderr)
        return 2
    run = run_observed_workload(
        n_rows=args.rows,
        n_ops=args.ops,
        seed=args.seed,
        pool_pages=args.pool_pages,
        batch=args.batch,
        samples=args.samples,
        alpha=args.alpha,
        wal=not args.no_wal,
        adaptive=adaptive,
        shards=shards,
        observe=getattr(args, "force_observe", False),
    )
    args.func(run, args)
    return 0


if __name__ == "__main__":
    sys.exit(main())
