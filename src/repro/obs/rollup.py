"""Fleet-wide rollups over per-shard metric registries.

PR 9 left ``shard.<i>.*`` as N raw namespaced dumps: to know the fleet's
buffer-pool hit rate an operator had to sum counters by hand, and no
SLO rule could see cross-shard skew at all.  :class:`FleetRollup`
closes that gap with two pieces:

* :class:`FleetRegistryView` — a read-only *merged view* presenting the
  facade registry's instruments plus every shard registry's under a
  ``shard.<i>.`` prefix, duck-typed to the slice of the
  ``MetricsRegistry`` surface the sampler and report consume
  (``items``/``names``/``get``/``snapshot``).  Pointing one
  :class:`~repro.obs.sampler.TelemetrySampler` at the view makes
  wildcard selectors (``rate:shard.*.bufferpool.hit``) meaningful.

* :meth:`FleetRollup.refresh` — materializes fleet-level aggregates as
  real ``fleet.*`` instruments in the facade registry: counters summed
  (delta-incremented, so they stay monotonic and sampler-diffable),
  gauges summed, log2 histograms *merged bucket-wise* (exact at bucket
  granularity), plus per-metric min/max/mean across shards and the
  headline skew gauge ``fleet.imbalance.heat`` = hottest shard's page
  traffic over the mean — hot-shard imbalance as a first-class signal
  with its own SLO rule (:data:`FLEET_SLO_RULES`).

``format_report`` groups rows by first name segment, so the
materialized family shows up as its own ``fleet`` section for free.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Iterator

from repro.obs.health import SloRule
from repro.obs.registry import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)

#: Counter names whose per-shard sum defines a shard's "heat" (page
#: traffic: every hit or miss is one logical page touch).
DEFAULT_HEAT_METRICS = ("bufferpool.hit", "bufferpool.miss")


@dataclass(frozen=True)
class FleetStat:
    """Cross-shard summary of one metric (counters/gauges only)."""

    name: str
    total: float
    per_shard: tuple[float, ...]

    @property
    def min(self) -> float:
        return min(self.per_shard)

    @property
    def max(self) -> float:
        return max(self.per_shard)

    @property
    def mean(self) -> float:
        return self.total / len(self.per_shard) if self.per_shard else 0.0

    @property
    def imbalance(self) -> float:
        """max / mean — 1.0 is perfectly balanced, higher is skewed
        (0.0 when the metric is everywhere zero)."""
        mean = self.mean
        return self.max / mean if mean > 0 else 0.0


class FleetRegistryView:
    """Read-only merged registry view: facade instruments as-is, shard
    ``i``'s instruments as ``shard.<i>.<name>``.

    Only the read surface is provided — the view is a lens, not a home;
    instruments are created in their owning registries.
    """

    def __init__(
        self,
        parent: MetricsRegistry,
        shard_registries: list[MetricsRegistry],
    ) -> None:
        self._parent = parent
        self._shards = list(shard_registries)

    @property
    def n_shards(self) -> int:
        return len(self._shards)

    def items(self) -> Iterator[tuple[str, object]]:
        for name, instrument in self._parent.items():
            yield name, instrument
        for i, reg in enumerate(self._shards):
            prefix = f"shard.{i}."
            for name, instrument in reg.items():
                yield prefix + name, instrument

    def names(self) -> list[str]:
        return [name for name, _ in self.items()]

    def get(self, name: str):
        if name.startswith("shard."):
            rest = name[len("shard."):]
            head, _, leaf = rest.partition(".")
            if head.isdigit() and leaf:
                i = int(head)
                if 0 <= i < len(self._shards):
                    found = self._shards[i].get(leaf)
                    if found is not None:
                        return found
        return self._parent.get(name)

    def snapshot(self) -> dict:
        root = self._parent.snapshot()
        shard_node = root.setdefault("shard", {})
        for i, reg in enumerate(self._shards):
            shard_node[str(i)] = reg.snapshot()
        return root


class FleetRollup:
    """Aggregates shard registries into ``fleet.*`` facade instruments.

    ``source`` is anything with ``n_shards``, ``shard_registry(i)``, and
    ``metrics`` (a :class:`~repro.shard.database.ShardedDatabase`), or
    pass ``registries=[...]`` + ``target=`` explicitly.
    """

    def __init__(
        self,
        source=None,
        registries: list[MetricsRegistry] | None = None,
        target: MetricsRegistry | None = None,
        heat_metrics: tuple[str, ...] = DEFAULT_HEAT_METRICS,
    ) -> None:
        if source is not None:
            registries = [
                source.shard_registry(i) for i in range(source.n_shards)
            ]
            target = source.metrics if target is None else target
        if registries is None or target is None:
            raise ValueError("FleetRollup needs a source or registries+target")
        self._registries = registries
        self._target = target
        self._heat_metrics = heat_metrics
        self._stats: dict[str, FleetStat] = {}
        self._refreshes = target.counter("fleet.refreshes")
        self._shards_gauge = target.gauge("fleet.shards")
        self._imbalance = target.gauge("fleet.imbalance.heat")
        self._hot_shard = target.gauge("fleet.imbalance.hot_shard")
        self._shards_gauge.set(len(registries))

    @property
    def stats(self) -> dict[str, FleetStat]:
        """Per-metric cross-shard stats from the last :meth:`refresh`."""
        return self._stats

    def view(self, parent: MetricsRegistry | None = None) -> FleetRegistryView:
        return FleetRegistryView(
            parent if parent is not None else self._target, self._registries
        )

    def refresh(self) -> dict[str, FleetStat]:
        """Re-materialize every ``fleet.<name>`` aggregate.

        Counters are brought up to the cross-shard sum by *delta*
        increments (monotonic: per-shard counters only grow between
        refreshes, and shard resets route through the facade's
        ``reset_counters`` which resets the fleet family too).  Gauges
        are set to the sum; histograms are reset and bucket-merged.
        """
        merged: dict[str, list] = {}
        for reg in self._registries:
            for name, instrument in reg.items():
                merged.setdefault(name, []).append(instrument)
        stats: dict[str, FleetStat] = {}
        for name, instruments in merged.items():
            kinds = {type(i) for i in instruments}
            if len(kinds) != 1:  # pragma: no cover - shards are uniform
                continue
            first = instruments[0]
            fleet_name = f"fleet.{name}"
            if isinstance(first, Counter):
                values = [i.value for i in instruments]
                total = sum(values)
                fleet = self._target.counter(fleet_name)
                if total > fleet.value:
                    fleet.inc(total - fleet.value)
                stats[name] = FleetStat(name, total, tuple(values))
            elif isinstance(first, Gauge):
                values = [i.value for i in instruments]
                total = sum(values)
                self._target.gauge(fleet_name).set(total)
                stats[name] = FleetStat(name, total, tuple(values))
            elif isinstance(first, Histogram):
                fleet = self._target.histogram(fleet_name)
                fleet.reset()
                for hist in instruments:
                    fleet.merge_from(hist)
        self._stats = stats
        heat = [
            sum(
                reg.get(m).value if reg.get(m) is not None else 0
                for m in self._heat_metrics
            )
            for reg in self._registries
        ]
        mean = sum(heat) / len(heat) if heat else 0.0
        self._imbalance.set(max(heat) / mean if mean > 0 else 0.0)
        self._hot_shard.set(heat.index(max(heat)) if heat else 0)
        self._shards_gauge.set(len(self._registries))
        self._refreshes.inc()
        return stats

    def top_skewed(self, n: int = 5) -> list[FleetStat]:
        """The ``n`` most imbalanced nonzero metrics from the last refresh."""
        ranked = sorted(
            (s for s in self._stats.values() if s.total > 0),
            key=lambda s: (-s.imbalance, s.name),
        )
        return ranked[:n]

    def format(self, n: int = 8) -> str:
        """Human summary: headline skew + the most skewed metrics."""
        lines = [
            f"fleet: {len(self._registries)} shards, "
            f"heat imbalance {self._imbalance.value:.2f}x "
            f"(hot shard {int(self._hot_shard.value)})"
        ]
        for stat in self.top_skewed(n):
            lines.append(
                f"  {stat.name:<40s} total={stat.total:<12g} "
                f"min={stat.min:<10g} max={stat.max:<10g} "
                f"skew={stat.imbalance:.2f}x"
            )
        return "\n".join(lines)


_SELECTOR_KINDS = ("rate", "gauge", "derived", "p50", "p95", "p99")


def fleet_selector(selector: str) -> str:
    """Rewrite a single-engine selector to its fleet aggregate:
    ``derived.bufferpool.hit_rate`` → ``derived.fleet.bufferpool.hit_rate``
    (ratio selectors rewrite both sides)."""
    if selector.startswith("ratio:"):
        num, den = selector[len("ratio:"):].split("/", 1)
        return f"ratio:{fleet_selector(num)}/{fleet_selector(den)}"
    for kind in _SELECTOR_KINDS:
        for sep in (".", ":"):
            head = kind + sep
            if selector.startswith(head):
                return f"{head}fleet.{selector[len(head):]}"
    return selector


def fleet_rules(rules) -> tuple[SloRule, ...]:
    """Per-engine SLO rules re-targeted at the materialized ``fleet.*``
    aggregates (requires a :class:`FleetRollup` refreshing between
    samples so the fleet instruments carry the window's traffic)."""
    return tuple(
        replace(rule, selector=fleet_selector(rule.selector))
        for rule in rules
    )


#: Fleet-level SLO rules: evaluate against a sampler whose registry is
#: the facade's (where ``fleet.*`` is materialized) or a
#: :class:`FleetRegistryView`.
FLEET_SLO_RULES = (
    SloRule(
        name="fleet_heat_balance",
        selector="gauge.fleet.imbalance.heat",
        op="<=",
        threshold=2.5,
        description="hottest shard carries <= 2.5x the mean page traffic",
    ),
)
