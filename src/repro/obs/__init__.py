"""repro.obs — engine-wide metrics registry, span tracing, and exports.

Every bit-reclaiming subsystem (buffer pool, B+Tree, index cache,
hot/cold manager, encoding migration, query layer) emits into an
injectable :class:`MetricsRegistry`; :class:`NullRegistry` keeps
uninstrumented runs at near-zero overhead and bit-identical outputs.
See DESIGN.md ("Observability") for the metric naming scheme.
"""

from repro.obs.events import (
    DEFAULT_JOURNAL_CAPACITY,
    EVENT_KINDS,
    EngineEvent,
    EventJournal,
)
from repro.obs.rollup import (
    FLEET_SLO_RULES,
    FleetRegistryView,
    FleetRollup,
    FleetStat,
    fleet_rules,
    fleet_selector,
)
from repro.obs.trace import (
    DEFAULT_TRACE_RING,
    Trace,
    TraceCollector,
    TraceContext,
    TraceSpan,
)
from repro.obs.adaptive import (
    AdaptiveController,
    Knob,
    KnobBinding,
    TuningAction,
    WAL_FLUSH_AMPLIFICATION_RULE,
    database_knobs,
    default_bindings,
    hot_cold_knobs,
)
from repro.obs.health import (
    DEFAULT_SLO_RULES,
    HealthChecker,
    HealthReport,
    RuleResult,
    SloRule,
)
from repro.obs.profiler import (
    FingerprintStats,
    QueryProfile,
    QueryProfiler,
    batch_bucket,
    fingerprint,
)
from repro.obs.registry import (
    Counter,
    Gauge,
    Histogram,
    HISTOGRAM_BUCKETS,
    MetricsRegistry,
    NullRegistry,
    NULL_REGISTRY,
    bucket_index,
    bucket_upper_bound,
    get_default_registry,
    percentile_from_buckets,
    resolve_registry,
    set_default_registry,
    use_registry,
)
from repro.obs.report import derived_rates, export_json, flatten, format_report
from repro.obs.sampler import TelemetryPoint, TelemetrySampler, select
from repro.obs.tracer import (
    DEFAULT_RING_SIZE,
    NullTracer,
    NULL_TRACER,
    SpanEvent,
    Tracer,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "HISTOGRAM_BUCKETS",
    "MetricsRegistry",
    "NullRegistry",
    "NULL_REGISTRY",
    "bucket_index",
    "bucket_upper_bound",
    "percentile_from_buckets",
    "get_default_registry",
    "resolve_registry",
    "set_default_registry",
    "use_registry",
    "derived_rates",
    "export_json",
    "flatten",
    "format_report",
    "DEFAULT_RING_SIZE",
    "NullTracer",
    "NULL_TRACER",
    "SpanEvent",
    "Tracer",
    "QueryProfiler",
    "QueryProfile",
    "FingerprintStats",
    "fingerprint",
    "batch_bucket",
    "TelemetrySampler",
    "TelemetryPoint",
    "select",
    "HealthChecker",
    "HealthReport",
    "SloRule",
    "RuleResult",
    "DEFAULT_SLO_RULES",
    "AdaptiveController",
    "Knob",
    "KnobBinding",
    "TuningAction",
    "WAL_FLUSH_AMPLIFICATION_RULE",
    "database_knobs",
    "default_bindings",
    "hot_cold_knobs",
    "DEFAULT_TRACE_RING",
    "Trace",
    "TraceCollector",
    "TraceContext",
    "TraceSpan",
    "DEFAULT_JOURNAL_CAPACITY",
    "EVENT_KINDS",
    "EngineEvent",
    "EventJournal",
    "FLEET_SLO_RULES",
    "FleetRegistryView",
    "FleetRollup",
    "FleetStat",
    "fleet_rules",
    "fleet_selector",
]
