"""repro.obs — engine-wide metrics registry, span tracing, and exports.

Every bit-reclaiming subsystem (buffer pool, B+Tree, index cache,
hot/cold manager, encoding migration, query layer) emits into an
injectable :class:`MetricsRegistry`; :class:`NullRegistry` keeps
uninstrumented runs at near-zero overhead and bit-identical outputs.
See DESIGN.md ("Observability") for the metric naming scheme.
"""

from repro.obs.registry import (
    Counter,
    Gauge,
    Histogram,
    HISTOGRAM_BUCKETS,
    MetricsRegistry,
    NullRegistry,
    NULL_REGISTRY,
    bucket_index,
    bucket_upper_bound,
    get_default_registry,
    resolve_registry,
    set_default_registry,
    use_registry,
)
from repro.obs.report import derived_rates, export_json, flatten, format_report
from repro.obs.tracer import (
    DEFAULT_RING_SIZE,
    NullTracer,
    NULL_TRACER,
    SpanEvent,
    Tracer,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "HISTOGRAM_BUCKETS",
    "MetricsRegistry",
    "NullRegistry",
    "NULL_REGISTRY",
    "bucket_index",
    "bucket_upper_bound",
    "get_default_registry",
    "resolve_registry",
    "set_default_registry",
    "use_registry",
    "derived_rates",
    "export_json",
    "flatten",
    "format_report",
    "DEFAULT_RING_SIZE",
    "NullTracer",
    "NULL_TRACER",
    "SpanEvent",
    "Tracer",
]
