"""N independent engines behind one facade: scatter-gather + migration.

A :class:`ShardedDatabase` owns ``n_shards`` complete
:class:`~repro.query.database.Database` instances — each with its own
simulated disk, buffer pools, WAL, cost model, optional fault injector,
and a *private* metrics registry surfaced as ``shard.<i>.*`` in the
merged snapshot.  A :class:`~repro.shard.router.ShardRouter` places every
routing key on exactly one shard; reads and writes on the routing index
touch only that shard, while scans, aggregates, and non-routing lookups
scatter to all shards and gather through a merge.

**Simulated parallelism.**  Shards model independent machines, so a
scatter-gather operation's elapsed simulated time is the *maximum* of
the involved shards' cost-model deltas, not their sum — accumulated into
:attr:`ShardedDatabase.sim_now_ns`, which `experiments.shard` reads to
measure scale-out on one real CPU deterministically.

**Online rebalance.**  :meth:`rebalance` applies the router's hot-key
spreading plan one key at a time, each key moved failure-atomically by
copy-then-delete riding the shards' own WALs: a ``SHARD_MIGRATE`` intent
is appended to the destination log, the copy-insert follows it, the
destination WAL is flushed (the durability point — the destination now
owns the key), and only then is the source copy deleted.  A crash at any
byte of either log recovers to exactly one owner (see
:mod:`repro.shard.recovery` and DESIGN.md §5i).
"""

from __future__ import annotations

import heapq
from contextlib import contextmanager
from dataclasses import dataclass, field

from repro.errors import QueryError
from repro.obs.registry import (
    MetricsRegistry,
    NULL_REGISTRY,
    NullRegistry,
    get_default_registry,
)
from repro.query.database import Database
from repro.query.table import Table
from repro.schema.schema import Schema
from repro.shard.router import ShardRouter
from repro.storage.buffer_pool import EvictionPolicy
from repro.storage.constants import DEFAULT_PAGE_SIZE


def json_safe_key(key: object) -> object:
    """Routing key in the form a JSON WAL record can carry (tuples become
    lists; :func:`key_from_json` is the inverse)."""
    if isinstance(key, tuple):
        return list(key)
    return key


def key_from_json(raw: object) -> object:
    """Inverse of :func:`json_safe_key` (lists back to tuples)."""
    if isinstance(raw, list):
        return tuple(raw)
    return raw


@dataclass(frozen=True)
class RebalanceReport:
    """What one :meth:`ShardedDatabase.rebalance` pass did."""

    planned: int
    keys_moved: int
    rows_moved: int


@dataclass
class ShardCheckReport:
    """Per-shard invariant walks plus the cross-shard ownership check."""

    per_shard: list = field(default_factory=list)
    problems: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.problems and all(r.ok for r in self.per_shard)


class ShardedTable:
    """One logical table partitioned across every shard by routing key."""

    def __init__(self, sdb: "ShardedDatabase", name: str, schema: Schema):
        self._sdb = sdb
        self._name = name
        self._schema = schema
        #: Name + key columns of the routing (first/identity) index; set
        #: when the first index is created or restored.
        self.routing_index: str | None = None
        self.routing_columns: tuple[str, ...] = ()

    @property
    def name(self) -> str:
        return self._name

    @property
    def schema(self) -> Schema:
        return self._schema

    @property
    def num_rows(self) -> int:
        return sum(t.num_rows for t in self._shard_tables())

    def shard_table(self, i: int) -> Table:
        """The shard-local :class:`Table` living on shard ``i``."""
        return self._sdb.shard(i).table(self._name)

    def _shard_tables(self) -> list[Table]:
        return [self.shard_table(i) for i in range(self._sdb.n_shards)]

    # -- routing -------------------------------------------------------------

    def _require_routing(self) -> str:
        if self.routing_index is None:
            raise QueryError(
                f"sharded table {self._name!r} has no routing index yet"
            )
        return self.routing_index

    def key_of_row(self, row: dict[str, object]) -> object:
        """Extract the routing key from a full row."""
        self._require_routing()
        if len(self.routing_columns) == 1:
            return row[self.routing_columns[0]]
        return tuple(row[c] for c in self.routing_columns)

    def _route(self, key: object) -> int:
        router = self._sdb.router
        shard = router.shard_of(key)
        router.record_access(key)
        self._sdb._note_hop(shard)
        return shard

    # -- writes --------------------------------------------------------------

    def insert(self, row: dict[str, object]):
        shard = self._route(self.key_of_row(row))
        with self._sdb._charge([shard], op="insert", table=self._name):
            return self._sdb._call(shard, self.shard_table(shard).insert, row)

    def update(
        self, index_name: str, key_value: object, changes: dict[str, object]
    ) -> bool:
        if index_name == self.routing_index:
            shard = self._route(key_value)
            with self._sdb._charge([shard], op="update", table=self._name):
                return self._sdb._call(
                    shard, self.shard_table(shard).update,
                    index_name, key_value, changes,
                )
        # Non-routing (still unique) index: the owner is unknown, probe
        # shards in order until one applies the update.
        with self._sdb._charge(
            list(range(self._sdb.n_shards)), op="update", table=self._name
        ):
            for i in range(self._sdb.n_shards):
                applied = self._sdb._call(
                    i, self.shard_table(i).update, index_name, key_value,
                    changes,
                )
                if applied:
                    return True
            return False

    def delete(self, index_name: str, key_value: object) -> bool:
        if index_name == self.routing_index:
            shard = self._route(key_value)
            with self._sdb._charge([shard], op="delete", table=self._name):
                return self._sdb._call(
                    shard, self.shard_table(shard).delete, index_name,
                    key_value,
                )
        with self._sdb._charge(
            list(range(self._sdb.n_shards)), op="delete", table=self._name
        ):
            for i in range(self._sdb.n_shards):
                applied = self._sdb._call(
                    i, self.shard_table(i).delete, index_name, key_value
                )
                if applied:
                    return True
            return False

    # -- reads ---------------------------------------------------------------

    def lookup(
        self,
        index_name: str,
        key_value: object,
        project: tuple[str, ...] | None = None,
    ):
        if index_name == self.routing_index:
            shard = self._route(key_value)
            with self._sdb._charge([shard], op="lookup", table=self._name):
                return self._sdb._call(
                    shard, self.shard_table(shard).lookup,
                    index_name, key_value, project,
                )
        # Broadcast: a unique non-routing index has at most one owner.
        with self._sdb._charge(
            list(range(self._sdb.n_shards)), op="lookup", table=self._name
        ):
            miss = None
            for i in range(self._sdb.n_shards):
                result = self._sdb._call(
                    i, self.shard_table(i).lookup, index_name, key_value,
                    project,
                )
                if result.found:
                    return result
                miss = result
            return miss

    def lookup_many(
        self,
        index_name: str,
        key_values: list[object],
        project: tuple[str, ...] | None = None,
    ) -> list:
        """Batched point lookups, grouped per shard (positional results).

        Routing-index batches split by placement and reuse each shard's
        PR-3 batched path (shared descents, page-ordered heap fetches);
        results land back in request positions.  Non-routing batches
        degrade to a broadcast per key.
        """
        if index_name != self.routing_index:
            return [self.lookup(index_name, k, project) for k in key_values]
        by_shard: dict[int, list[int]] = {}
        for pos, key in enumerate(key_values):
            by_shard.setdefault(self._route(key), []).append(pos)
        results: list = [None] * len(key_values)
        with self._sdb._charge(
            sorted(by_shard), op="lookup_many", table=self._name,
            batch=len(key_values),
        ):
            for i in sorted(by_shard):
                positions = by_shard[i]
                batch = [key_values[p] for p in positions]
                got = self._sdb._call(
                    i, self.shard_table(i).lookup_many, index_name, batch,
                    project,
                )
                for pos, result in zip(positions, got):
                    results[pos] = result
        return results

    def scan(
        self,
        predicate=None,
        project: tuple[str, ...] | None = None,
        use_columnar: bool = True,
    ):
        """Scatter-gather scan, merged in ascending routing-key order.

        Per-shard heaps have independent physical orders, so the sharded
        scan defines its output order as the routing key's: each shard
        scans (columnar kernels engage per shard when armed), sorts its
        partition, and a k-way merge stitches the streams.  The oracle
        identity: ``sorted(single_engine.scan(...), key=routing_key)``.
        """
        self._require_routing()
        project_out = (
            tuple(project) if project is not None else self._schema.names
        )
        fetch = tuple(dict.fromkeys(project_out + self.routing_columns))
        cols = self.routing_columns

        def sort_key(row: dict[str, object]):
            return tuple(row[c] for c in cols)

        shards = list(range(self._sdb.n_shards))
        with self._sdb._charge(shards, op="scan", table=self._name):
            streams = []
            for i in shards:
                rows = self._sdb._call(
                    i,
                    lambda t=self.shard_table(i): sorted(
                        t.scan(predicate, fetch, use_columnar=use_columnar),
                        key=sort_key,
                    ),
                )
                streams.append(rows)
        merged = heapq.merge(*streams, key=sort_key)
        if fetch == project_out:
            return iter(list(merged))
        return iter(
            [{name: row[name] for name in project_out} for row in merged]
        )

    def aggregate(
        self,
        specs: list[tuple[str, str | None]],
        predicate=None,
        use_columnar: bool = True,
    ) -> dict[str, object]:
        """Scatter-gather aggregate: per-shard partials, exact combine.

        ``count``/``sum`` partials add, ``min``/``max`` fold, and ``avg``
        is recomputed from fanned-out ``sum`` + ``count`` (averaging
        per-shard averages would weight shards, not rows).  Identical to
        the single-engine fold on every predicate shape.
        """
        from repro.columnar.executor import normalize_specs, spec_label

        normalized = normalize_specs(list(specs), self._schema)
        partial: list[tuple[str, str | None]] = []
        for op, column in normalized:
            if op == "avg":
                partial.append(("sum", column))
                partial.append(("count", None))
            else:
                partial.append((op, column))
        partial = list(dict.fromkeys(partial))
        shards = list(range(self._sdb.n_shards))
        with self._sdb._charge(shards, op="aggregate", table=self._name):
            pieces = [
                self._sdb._call(
                    i, self.shard_table(i).aggregate, partial, predicate,
                    use_columnar,
                )
                for i in shards
            ]
        out: dict[str, object] = {}
        for op, column in normalized:
            label = spec_label(op, column)
            if op == "count":
                out[label] = sum(p["count"] for p in pieces)
            elif op == "sum":
                out[label] = sum(p[label] for p in pieces)
            elif op in ("min", "max"):
                values = [p[label] for p in pieces if p[label] is not None]
                if not values:
                    out[label] = None
                else:
                    out[label] = min(values) if op == "min" else max(values)
            else:  # avg
                total = sum(p[f"sum({column})"] for p in pieces)
                count = sum(p["count"] for p in pieces)
                out[label] = (total / count) if count else None
        return out


class ShardedDatabase:
    """Routing facade over ``n_shards`` independent engines."""

    def __init__(
        self,
        n_shards: int = 2,
        *,
        mode: str = "hash",
        boundaries: tuple | None = None,
        hot_fraction: float = 0.05,
        tracker_decay: float = 0.5,
        page_size: int = DEFAULT_PAGE_SIZE,
        data_pool_pages: int = 256,
        index_pool_pages: int | None = None,
        eviction: EvictionPolicy = EvictionPolicy.LRU,
        seed: int = 0,
        metrics: MetricsRegistry | None = None,
        shard_metrics: list[MetricsRegistry] | None = None,
        wal: bool = False,
        wal_group_commit: int = 8,
        fault_injectors: list | None = None,
        retry_policy=None,
        recovery: bool = False,
        _adopt: tuple | None = None,
    ) -> None:
        """
        Args:
            n_shards, mode, boundaries, hot_fraction, tracker_decay:
                router configuration (see :class:`ShardRouter`).
            page_size, data_pool_pages, index_pool_pages, eviction,
            retry_policy: per-shard engine configuration —
                ``data_pool_pages`` is **per shard** (shards model
                machines, each brings its own RAM).
            seed: base seed; shard ``i`` derives ``seed + i``.
            metrics: the *parent* registry (``shard.*`` family); ambient
                or fresh when ``None``, like :class:`Database`.
            shard_metrics: one private registry per shard (surfaced as
                ``shard.<i>.*`` in :meth:`snapshot`); fresh ones are
                built when omitted.
            wal, wal_group_commit: per-shard durability.
            fault_injectors: one armed/armable injector per shard (the
                sharded fault drill's hook).
            recovery: route every delegated engine call through that
                shard's :class:`~repro.faults.recovery.RecoveryManager`
                (heal + retry on corruption), like the fault drill does.
        """
        if metrics is None:
            ambient = get_default_registry()
            metrics = ambient if ambient is not NULL_REGISTRY else MetricsRegistry()
        self._metrics = metrics
        self._use_recovery = recovery
        self._sim_ns = 0.0
        self._migration_seq = 1
        self._tables: dict[str, ShardedTable] = {}
        # §5j observability: None until enable_tracing / enable_events /
        # enable_rollup arm them — every hook below is one is-None test.
        self._trace = None
        self._journal = None
        self._rollup = None
        self._pending_hops: list[int] = []

        if _adopt is not None:
            dbs, regs, router = _adopt
            n_shards = len(dbs)
            self._dbs = list(dbs)
            self._shard_metrics = list(regs)
            self._router = router
        else:
            if n_shards < 1:
                raise QueryError(f"need at least one shard, got {n_shards}")
            if fault_injectors is not None and len(fault_injectors) != n_shards:
                raise QueryError(
                    f"fault_injectors must have one entry per shard "
                    f"({n_shards}), got {len(fault_injectors)}"
                )
            if shard_metrics is not None and len(shard_metrics) != n_shards:
                raise QueryError(
                    f"shard_metrics must have one registry per shard "
                    f"({n_shards}), got {len(shard_metrics)}"
                )
            if shard_metrics is None:
                if isinstance(metrics, NullRegistry):
                    shard_metrics = [NULL_REGISTRY] * n_shards
                else:
                    shard_metrics = [MetricsRegistry() for _ in range(n_shards)]
            self._shard_metrics = list(shard_metrics)
            self._router = ShardRouter(
                n_shards,
                mode=mode,
                boundaries=boundaries,
                hot_fraction=hot_fraction,
                decay=tracker_decay,
                registry=metrics,
            )
            self._dbs = [
                Database(
                    page_size=page_size,
                    data_pool_pages=data_pool_pages,
                    index_pool_pages=index_pool_pages,
                    eviction=eviction,
                    seed=seed + i,
                    metrics=self._shard_metrics[i],
                    fault_injector=(
                        fault_injectors[i] if fault_injectors else None
                    ),
                    retry_policy=retry_policy,
                    wal=wal,
                    wal_group_commit=wal_group_commit,
                )
                for i in range(n_shards)
            ]
        self._m_count = metrics.gauge("shard.count")
        self._m_count.set(float(len(self._dbs)))
        self._m_fanout_ops = metrics.counter("shard.fanout.ops")
        self._m_fanout_shards = metrics.histogram("shard.fanout.shards")
        self._m_rebalances = metrics.counter("shard.rebalance.runs")
        self._m_keys_moved = metrics.counter("shard.rebalance.keys_moved")
        self._m_intents = metrics.counter("shard.migration.intents")
        self._m_migrations = metrics.counter("shard.migration.completed")
        if _adopt is not None:
            self._restore_tables()

    # -- adoption (recovery side door) ---------------------------------------

    @classmethod
    def adopt(
        cls,
        dbs: list[Database],
        shard_metrics: list[MetricsRegistry],
        router: ShardRouter,
        metrics: MetricsRegistry | None = None,
        recovery: bool = False,
    ) -> "ShardedDatabase":
        """Wrap already-recovered per-shard engines (see
        :func:`repro.shard.recovery.recover_sharded`); sharded tables and
        routing metadata are rebuilt from shard 0's catalog."""
        return cls(
            metrics=metrics,
            recovery=recovery,
            _adopt=(dbs, shard_metrics, router),
        )

    def _restore_tables(self) -> None:
        catalog = self._dbs[0].catalog
        for name in catalog.table_names:
            entry = catalog.table(name)
            stable = ShardedTable(self, name, entry.schema)
            indexes = catalog.indexes_of(name)
            if indexes:
                stable.routing_index = indexes[0].name
                stable.routing_columns = tuple(indexes[0].key_columns)
            self._tables[name] = stable

    # -- properties ----------------------------------------------------------

    @property
    def n_shards(self) -> int:
        return len(self._dbs)

    @property
    def shards(self) -> list[Database]:
        return list(self._dbs)

    def shard(self, i: int) -> Database:
        return self._dbs[i]

    def shard_registry(self, i: int) -> MetricsRegistry:
        return self._shard_metrics[i]

    @property
    def router(self) -> ShardRouter:
        return self._router

    @property
    def metrics(self) -> MetricsRegistry:
        """The parent registry (the ``shard.*`` family lives here)."""
        return self._metrics

    @property
    def sim_now_ns(self) -> float:
        """Simulated elapsed time with shards running in parallel: every
        operation advances this by the *slowest involved shard's* delta."""
        return self._sim_ns

    @property
    def trace(self) -> "TraceCollector | None":
        """The §5j trace collector, once :meth:`enable_tracing` has run."""
        return self._trace

    @property
    def journal(self) -> "EventJournal | None":
        """The §5j event journal, once :meth:`enable_events` has run."""
        return self._journal

    @property
    def rollup(self) -> "FleetRollup | None":
        """The §5j fleet rollup, once :meth:`enable_rollup` has run."""
        return self._rollup

    @property
    def table_names(self) -> list[str]:
        return list(self._tables)

    def table(self, name: str) -> ShardedTable:
        try:
            return self._tables[name]
        except KeyError:
            raise QueryError(f"no sharded table {name!r}") from None

    # -- observability (§5j) -------------------------------------------------

    def enable_tracing(self, capacity: int | None = None):
        """Arm §5j cross-shard tracing: one span tree per logical op.

        The collector lives on the *parent* registry and times facade
        root spans on :attr:`sim_now_ns`; spans tagged with a shard id
        (the fan-out executors, per-shard table ops, WAL flushes) are
        timed on that shard's own cost-model clock — machines have local
        time, and the Chrome export scopes each shard to its own pid.
        ``auto_root`` is off: direct access to a shard engine outside a
        facade op records nothing rather than flooding the ring with
        one-span trees.  Idempotent; strictly opt-in.
        """
        if self._trace is None:
            from repro.obs.trace import DEFAULT_TRACE_RING, TraceCollector

            self._trace = TraceCollector(
                clock=lambda: self._sim_ns,
                registry=self._metrics,
                capacity=capacity or DEFAULT_TRACE_RING,
                auto_root=False,
                shard_clocks={
                    i: db.cost_model for i, db in enumerate(self._dbs)
                },
            )
            for i, db in enumerate(self._dbs):
                db.attach_tracing(self._trace, shard=i)
            if self._journal is not None:
                self._journal.trace_source = self._trace
        return self._trace

    def enable_events(self, capacity: int | None = None):
        """Arm the §5j causal event journal across the whole fleet.

        One journal, shared by the facade (migration intent/commit,
        rebalance begin/end) and every shard (checkpoints, fault heal
        transitions, recovery phases), with per-shard monotonic
        ``shard_seq`` on top of the global causal ``seq``.  Idempotent.
        """
        if self._journal is None:
            from repro.obs.events import (
                DEFAULT_JOURNAL_CAPACITY,
                EventJournal,
            )

            self._journal = EventJournal(
                clock=lambda: self._sim_ns,
                registry=self._metrics,
                capacity=capacity or DEFAULT_JOURNAL_CAPACITY,
                trace_source=self._trace,
            )
            for i, db in enumerate(self._dbs):
                db.attach_events(self._journal, shard=i)
        return self._journal

    def enable_rollup(self):
        """Build (once) and return the §5j :class:`FleetRollup` merging
        every ``shard.<i>.*`` registry into ``fleet.*`` on the parent."""
        if self._rollup is None:
            from repro.obs.rollup import FleetRollup

            self._rollup = FleetRollup(self)
        return self._rollup

    def fleet_view(self):
        """Read-only merged registry view — parent names plus
        ``shard.<i>.*`` — for sampling without copying any counter."""
        from repro.obs.rollup import FleetRegistryView

        return FleetRegistryView(self._metrics, self._shard_metrics)

    def _note_hop(self, shard: int) -> None:
        """Router-hop bookkeeping for trace baggage (no-op untraced).

        Routing happens *before* the op's root span is minted, so hops
        land in a pending list that the next :meth:`_charge` drains into
        the new context's baggage.
        """
        if self._trace is None:
            return
        if self._trace.active is not None:
            self._trace.record_hop(shard)
        else:
            self._pending_hops.append(shard)

    def _shard_work(self, i: int) -> dict[str, float]:
        """Registry-derived work totals for shard ``i`` — two calls
        bracketing a fan-out span yield its delta attributes."""
        reg = self._shard_metrics[i]

        def val(name: str) -> float:
            instrument = reg.get(name)
            return instrument.value if instrument is not None else 0.0

        wal = self._dbs[i].wal
        return {
            "pages": val("bufferpool.hit") + val("bufferpool.miss"),
            "pool_hits": val("bufferpool.hit"),
            "wal_bytes": val("wal.bytes")
            + (float(wal.pending_bytes) if wal is not None else 0.0),
            "cache_hits": val("index_cache.hit"),
            "fragment_hits": val("columnar.cache.hits"),
        }

    # -- internals -----------------------------------------------------------

    def _call(self, i: int, fn, *args, **kwargs):
        """Delegate one engine call to shard ``i``, healing if armed.

        Under an active trace the call runs inside a ``shard.exec``
        fan-out span tagged with the shard id and the work it caused
        there (pages touched, WAL bytes, cache/fragment hits, rows).
        """
        trace = self._trace
        if trace is None or trace.active is None:
            if self._use_recovery:
                return self._dbs[i].recovery.call(fn, *args, **kwargs)
            return fn(*args, **kwargs)
        before = self._shard_work(i)
        with trace.span("shard.exec", shard=i) as span:
            if self._use_recovery:
                result = self._dbs[i].recovery.call(fn, *args, **kwargs)
            else:
                result = fn(*args, **kwargs)
            after = self._shard_work(i)
            span.attrs.update(
                {
                    k: after[k] - before[k]
                    for k in after
                    if after[k] != before[k]
                }
            )
            if isinstance(result, list):
                span.attrs["rows"] = len(result)
        return result

    @contextmanager
    def _charge(self, shard_ids: list[int], op: str | None = None, **baggage):
        """Advance the parallel sim clock by max over involved shards.

        With tracing armed and ``op`` given, the whole block runs under
        a root span named ``shard.<op>`` whose context carries the
        pending router hops and ``baggage``; the root is annotated with
        the fan-out width on exit.
        """
        ids = list(shard_ids)
        trace = self._trace
        if trace is None or op is None:
            # Off path: one test — no span, no allocation.
            starts = [self._dbs[i].cost_model.now_ns for i in ids]
            try:
                yield
            finally:
                self._finish_charge(ids, starts)
            return
        hops = self._pending_hops
        self._pending_hops = []
        if hops and trace.active is not None:
            for hop in hops:
                trace.record_hop(hop)
        elif hops:
            baggage["hops"] = hops
        with trace.trace(f"shard.{op}", **baggage):
            starts = [self._dbs[i].cost_model.now_ns for i in ids]
            try:
                yield
            finally:
                self._finish_charge(ids, starts)
                trace.annotate(fanout=len(ids))

    def _finish_charge(self, ids: list[int], starts: list[float]) -> None:
        deltas = [
            self._dbs[i].cost_model.now_ns - s for i, s in zip(ids, starts)
        ]
        self._sim_ns += max(deltas, default=0.0)
        self._m_fanout_ops.inc()
        self._m_fanout_shards.record(len(ids))

    # -- DDL (fans out to every shard) ---------------------------------------

    def create_table(
        self, name: str, schema: Schema, append_only: bool = False
    ) -> ShardedTable:
        for db in self._dbs:
            db.create_table(name, schema, append_only=append_only)
        stable = ShardedTable(self, name, schema)
        self._tables[name] = stable
        return stable

    def create_index(
        self,
        table_name: str,
        index_name: str,
        key_columns: tuple[str, ...],
        split_fraction: float = 0.5,
    ) -> None:
        for db in self._dbs:
            db.create_index(
                table_name, index_name, key_columns,
                split_fraction=split_fraction,
            )
        self._note_index(table_name, index_name, key_columns)

    def create_cached_index(
        self,
        table_name: str,
        index_name: str,
        key_columns: tuple[str, ...],
        cached_fields: tuple[str, ...],
        **kwargs,
    ) -> None:
        for db in self._dbs:
            db.create_cached_index(
                table_name, index_name, key_columns, cached_fields, **kwargs
            )
        self._note_index(table_name, index_name, key_columns)

    def _note_index(
        self, table_name: str, index_name: str, key_columns: tuple[str, ...]
    ) -> None:
        stable = self.table(table_name)
        if stable.routing_index is None:
            stable.routing_index = index_name
            stable.routing_columns = tuple(key_columns)

    def enable_columnar(self, **kwargs) -> None:
        """Arm the PR-8 columnar mirror on every shard's engine."""
        for db in self._dbs:
            db.enable_columnar(**kwargs)

    def checkpoint(self) -> None:
        for db in self._dbs:
            if db.wal is not None:
                db.checkpoint()

    def flush_wals(self) -> None:
        for db in self._dbs:
            if db.wal is not None:
                db.wal.flush()

    # -- rebalance / migration -----------------------------------------------

    def rebalance(self) -> RebalanceReport:
        """Apply the router's hot-key spreading plan, one failure-atomic
        migration per key (every sharded table moves its row for the key,
        so co-partitioned tables stay aligned); decays the tracker one
        epoch afterwards so stale heat fades."""
        plan = self._router.plan_rebalance()
        if self._journal is not None:
            self._journal.emit("rebalance.begin", planned=len(plan))
        keys_moved = 0
        rows_moved = 0
        for key, src, dst in plan:
            rows_moved += self._migrate_key(key, src, dst)
            self._router.apply_move(key, dst)
            keys_moved += 1
        self._router.advance_epoch()
        self._m_rebalances.inc()
        self._m_keys_moved.inc(keys_moved)
        if self._journal is not None:
            self._journal.emit(
                "rebalance.end", keys_moved=keys_moved, rows_moved=rows_moved
            )
        return RebalanceReport(
            planned=len(plan), keys_moved=keys_moved, rows_moved=rows_moved
        )

    def _migrate_key(self, key: object, src: int, dst: int) -> int:
        """Copy-then-delete one key from ``src`` to ``dst``, riding both
        shards' WALs.

        Protocol (per table holding the key): (1) append a SHARD_MIGRATE
        intent to the *destination* log; (2) insert the copy there; (3)
        flush the destination WAL — the durability point after which the
        destination owns the key; (4) delete the source copy (its record
        rides the source's group commit).  A crash before (3) leaves
        only the source copy durable; after (3), recovery finds the key
        on both shards and the durable intent rolls it forward (delete
        the source copy).  Either way: exactly one owner, zero lost or
        duplicated tuples.
        """
        seq = self._migration_seq
        self._migration_seq += 1
        src_db, dst_db = self._dbs[src], self._dbs[dst]
        moved = 0
        with self._charge([src, dst], op="migrate_key", src=src, dst=dst):
            for name, stable in self._tables.items():
                if stable.routing_index is None:
                    continue
                found = self._call(
                    src, src_db.table(name).lookup, stable.routing_index, key
                )
                if not found.found:
                    continue
                row = dict(found.values)
                if dst_db.wal is not None:
                    dst_db.wal.log_shard_migrate({
                        "table": name,
                        "key": json_safe_key(key),
                        "src": src,
                        "dst": dst,
                        "seq": seq,
                    })
                    self._m_intents.inc()
                if self._journal is not None:
                    self._journal.emit(
                        "migration.intent", shard=dst, table=name,
                        key=json_safe_key(key), src=src, dst=dst, seq=seq,
                    )
                self._call(dst, dst_db.table(name).insert, row)
                if dst_db.wal is not None:
                    dst_db.wal.flush()
                self._call(
                    src, src_db.table(name).delete, stable.routing_index, key
                )
                moved += 1
                if self._journal is not None:
                    self._journal.emit(
                        "migration.commit", shard=dst, table=name,
                        key=json_safe_key(key), src=src, dst=dst, seq=seq,
                    )
        if moved:
            self._m_migrations.inc()
        return moved

    # -- obs contracts --------------------------------------------------------

    def reset_counters(self, reset_obs: bool = False) -> None:
        """Fan the buffer-pool reset contract out to every shard.

        ``reset_obs=True`` additionally zeroes each shard's full
        ``shard.<i>.*`` namespace (pool, faults, WAL, and every
        registered reset hook — exactly what a single engine's
        ``data_pool.reset_counters(reset_obs=True)`` covers) *and* the
        parent ``shard.*``, ``trace.*``, ``events.*``, and ``fleet.*``
        families — clearing the trace ring and event journal with them —
        then re-syncs the level gauges.
        """
        for db in self._dbs:
            db.data_pool.reset_counters(reset_obs=reset_obs)
            if db.index_pool is not db.data_pool:
                db.index_pool.reset_counters(reset_obs=False)
        if reset_obs:
            for name in self._metrics.names():
                if name == "shard" or name.startswith(
                    ("shard.", "trace.", "events.", "fleet.")
                ):
                    instrument = self._metrics.get(name)
                    if instrument is not None:
                        instrument.reset()
            self._m_count.set(float(len(self._dbs)))
            self._metrics.gauge("shard.router.overrides").set(
                float(len(self._router.overrides))
            )
            if self._trace is not None:
                self._trace.clear()
            if self._journal is not None:
                self._journal.clear()
            if self._rollup is not None:
                self._metrics.gauge("fleet.shards").set(float(len(self._dbs)))

    def snapshot(self) -> dict:
        """Parent snapshot with per-shard registries nested under
        ``shard.<i>`` (so ``shard.0.bufferpool.hit`` is addressable)."""
        snap = self._metrics.snapshot()
        tree = snap.setdefault("shard", {})
        for i, reg in enumerate(self._shard_metrics):
            tree[str(i)] = reg.snapshot()
        return snap

    # -- invariants -----------------------------------------------------------

    def check(self) -> ShardCheckReport:
        """Every shard's invariant walk plus exactly-one-owner: no
        routing key may be resident on two shards."""
        report = ShardCheckReport()
        for db in self._dbs:
            report.per_shard.append(db.check())
        for name, stable in self._tables.items():
            if stable.routing_index is None:
                continue
            seen: dict[object, int] = {}
            for i in range(self.n_shards):
                for row in stable.shard_table(i).scan(
                    project=stable.routing_columns, use_columnar=False
                ):
                    key = stable.key_of_row(row)
                    if key in seen:
                        report.problems.append(
                            f"table {name!r}: key {key!r} resident on "
                            f"shards {seen[key]} and {i}"
                        )
                    else:
                        seen[key] = i
        return report

    def resident_shard(self, table_name: str, key: object) -> int | None:
        """Which shard physically holds ``key`` (None if absent) —
        bypasses the router; used by recovery and tests."""
        stable = self.table(table_name)
        index = stable._require_routing()
        for i in range(self.n_shards):
            if stable.shard_table(i).lookup(index, key).found:
                return i
        return None
