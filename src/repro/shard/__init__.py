"""Horizontal sharding: routing, scatter-gather, migration, recovery.

The §3 locality argument scaled *out* (ROADMAP item 2): shards behave
like memory tiers, and hot partitions migrate toward the shard whose
buffer pool can hold them.  See DESIGN.md §5i.
"""

from repro.shard.database import (
    RebalanceReport,
    ShardCheckReport,
    ShardedDatabase,
    ShardedTable,
)
from repro.shard.recovery import ShardRecoveryReport, recover_sharded
from repro.shard.router import ROUTER_MODES, ShardRouter, stable_key_hash

__all__ = [
    "ROUTER_MODES",
    "RebalanceReport",
    "ShardCheckReport",
    "ShardRecoveryReport",
    "ShardRouter",
    "ShardedDatabase",
    "ShardedTable",
    "recover_sharded",
    "stable_key_hash",
]
