"""Shard placement: hash, range, and Zipf-aware hot-key spreading.

The §3 locality argument scaled out (ROADMAP item 2): shards behave like
memory tiers, and the router's job is to keep every shard's *hot*
partition small enough to fit in that shard's buffer pool.  Three modes:

* ``hash`` — stable CRC32 of the routing key modulo shard count.
  ``hash()`` is salted per process (PYTHONHASHSEED), so the router never
  uses it: placement must be identical across runs and across the crash
  boundary (recovery re-derives base placement from key bytes alone).
* ``range`` — ``n_shards - 1`` sorted boundaries, bisect placement;
  keys below the first boundary go to shard 0, and so on.
* ``zipf`` — hash base placement plus an override map maintained from
  live :class:`~repro.core.hot_cold.tracker.AccessTracker` stats:
  :meth:`plan_rebalance` ranks the hot fraction of tracked keys by
  decayed count and deals them round-robin across shards, so the hot ~5%
  — which under a Zipfian workload would otherwise concentrate wherever
  the hash sent the head of the distribution — spreads evenly ("Exploiting
  Data Skew for Improved Query Performance", PAPERS.md).

The router itself is pure metadata: it never touches rows.  Moving the
bytes is :meth:`repro.shard.database.ShardedDatabase.rebalance`, which
applies a plan one failure-atomic migration at a time and calls
:meth:`apply_move` only after the copy is durable on the destination.
"""

from __future__ import annotations

import zlib
from bisect import bisect_right

from repro.core.hot_cold.tracker import AccessTracker
from repro.errors import QueryError
from repro.obs.registry import MetricsRegistry, resolve_registry

#: Placement modes the router understands.
ROUTER_MODES = ("hash", "range", "zipf")


def stable_key_hash(key: object) -> int:
    """Process-independent hash of a routing key.

    CRC32 over the key's canonical repr: deterministic across runs,
    machines, and PYTHONHASHSEED values — the property recovery leans on
    when it re-derives base placement from surviving rows.  Tuples and
    lists canonicalize to the same value (index keys arrive as either).
    """
    if isinstance(key, (tuple, list)):
        raw = "\x1f".join(repr(part) for part in key)
    else:
        raw = repr(key)
    return zlib.crc32(raw.encode("utf-8"))


class ShardRouter:
    """Key → shard placement with hot-key spreading overrides."""

    def __init__(
        self,
        n_shards: int,
        mode: str = "hash",
        boundaries: tuple | None = None,
        hot_fraction: float = 0.05,
        decay: float = 0.5,
        registry: MetricsRegistry | None = None,
    ) -> None:
        """
        Args:
            n_shards: how many shards placement targets.
            mode: one of :data:`ROUTER_MODES`.
            boundaries: ``range`` mode only — ``n_shards - 1`` sorted
                split points; a key routes to the leftmost shard whose
                boundary exceeds it.
            hot_fraction: ``zipf`` mode — fraction of *tracked* keys a
                rebalance plan treats as hot (the paper's ~5%).
            decay: per-epoch multiplier for the access tracker.
            registry: sink for ``shard.router.*`` instruments.
        """
        if n_shards < 1:
            raise QueryError(f"need at least one shard, got {n_shards}")
        if mode not in ROUTER_MODES:
            raise QueryError(
                f"unknown router mode {mode!r}; expected one of {ROUTER_MODES}"
            )
        if mode == "range":
            if boundaries is None or len(boundaries) != n_shards - 1:
                raise QueryError(
                    f"range mode over {n_shards} shard(s) needs exactly "
                    f"{n_shards - 1} boundaries"
                )
            self._boundaries = tuple(boundaries)
            if list(self._boundaries) != sorted(self._boundaries):
                raise QueryError("range boundaries must be sorted ascending")
        else:
            if boundaries is not None:
                raise QueryError(f"mode {mode!r} takes no boundaries")
            self._boundaries = ()
        if not 0.0 < hot_fraction <= 1.0:
            raise QueryError("hot_fraction must be in (0, 1]")
        self._n = n_shards
        self._mode = mode
        self._hot_fraction = hot_fraction
        #: key -> shard, installed by completed migrations only.
        self._overrides: dict[object, int] = {}
        self._tracker = AccessTracker(decay=decay) if mode == "zipf" else None
        reg = resolve_registry(registry)
        self._m_routes = reg.counter("shard.router.routes")
        self._m_overrides = reg.gauge("shard.router.overrides")

    # -- properties ----------------------------------------------------------

    @property
    def n_shards(self) -> int:
        return self._n

    @property
    def mode(self) -> str:
        return self._mode

    @property
    def hot_fraction(self) -> float:
        return self._hot_fraction

    @property
    def tracker(self) -> AccessTracker | None:
        """The live access tracker (``zipf`` mode only)."""
        return self._tracker

    @property
    def overrides(self) -> dict[object, int]:
        """Snapshot of the hot-key override map (key → shard)."""
        return dict(self._overrides)

    # -- placement -----------------------------------------------------------

    def base_shard(self, key: object) -> int:
        """Placement before any override — pure function of the key."""
        if self._mode == "range":
            return bisect_right(self._boundaries, key)
        return stable_key_hash(key) % self._n

    def placement(self, key: object) -> int:
        """Current placement (override or base) without counting a route."""
        override = self._overrides.get(key)
        return override if override is not None else self.base_shard(key)

    def shard_of(self, key: object) -> int:
        """Route one operation on ``key`` (counts ``shard.router.routes``)."""
        self._m_routes.inc()
        return self.placement(key)

    def record_access(self, key: object, weight: float = 1.0) -> None:
        """Feed the zipf-mode tracker; a no-op in hash/range modes."""
        if self._tracker is not None:
            self._tracker.record(key, weight)

    def advance_epoch(self) -> None:
        """Decay tracked counts one epoch (zipf mode; no-op otherwise)."""
        if self._tracker is not None:
            self._tracker.advance_epoch()

    # -- hot-key spreading ---------------------------------------------------

    def plan_rebalance(self) -> list[tuple[object, int, int]]:
        """Compute ``(key, src, dst)`` moves that spread the hot set.

        The hottest ``hot_fraction`` of tracked keys, ranked by decayed
        count (ties broken by stable hash, then repr — never ``hash()``),
        are dealt round-robin across shards; keys whose current placement
        already matches stay put.  Overrides for keys that have *cooled
        out* of the hot set are planned back to base placement, so the
        override map follows the workload instead of growing forever.

        Deterministic: two routers fed identical access sequences plan
        identical moves.  The plan is metadata only — nothing moves until
        the database applies it migration by migration.
        """
        if self._tracker is None or self._n == 1:
            return []
        hot = self._tracker.hot_set(self._hot_fraction)
        ranked = sorted(
            hot,
            key=lambda k: (
                -self._tracker.count_of(k), stable_key_hash(k), repr(k)
            ),
        )
        target: dict[object, int] = {
            key: rank % self._n for rank, key in enumerate(ranked)
        }
        moves: list[tuple[object, int, int]] = []
        for key in ranked:
            src = self.placement(key)
            if src != target[key]:
                moves.append((key, src, target[key]))
        cooled = [k for k in self._overrides if k not in target]
        cooled.sort(key=lambda k: (stable_key_hash(k), repr(k)))
        for key in cooled:
            moves.append((key, self._overrides[key], self.base_shard(key)))
        return moves

    def apply_move(self, key: object, dst: int) -> None:
        """Record that ``key`` now resides on ``dst`` (called after the
        copy is durable there).  Moving back to base drops the override."""
        if not 0 <= dst < self._n:
            raise QueryError(f"shard {dst} outside 0..{self._n - 1}")
        if dst == self.base_shard(key):
            self._overrides.pop(key, None)
        else:
            self._overrides[key] = dst
        self._m_overrides.set(float(len(self._overrides)))

    def set_override(self, key: object, shard: int) -> None:
        """Install an override directly (recovery's residency rebuild)."""
        self.apply_move(key, shard)
