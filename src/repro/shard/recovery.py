"""Sharded recovery: per-shard replay plus cross-shard reconciliation.

A crash can land at any byte of any shard's log, including mid-migration
(after the ``SHARD_MIGRATE`` intent and copy-insert are durable on the
destination but before the source's delete is).  Per-shard
:func:`repro.wal.replay.recover` restores each engine to its own durable
prefix — which, for an in-flight migration, can leave a key resident on
*two* shards, on the *wrong* shard, or split across shards for different
co-partitioned tables.  :func:`recover_sharded` resolves all of that to
exactly one owner per key:

1. **Residency walk** — scan every shard's copy of every table and build
   ``key -> {table: [shards holding it]}``.
2. **Owner election** per key: the durable ``SHARD_MIGRATE`` intent with
   the highest ``seq`` whose destination actually holds the key wins
   (its copy-insert reached the durability point, so the migration rolls
   *forward*); with no applicable intent the single resident shard wins,
   and a no-intent duplicate (cannot happen via migration, but the rule
   must total) falls back to base placement if resident, else the lowest
   resident shard.  ``seq`` is a monotonic counter carried in every
   intent precisely so ping-pong migrations (A→B then B→A) order
   correctly even though the two intents live in *different* logs.
3. **Repair** — delete loser duplicates; relocate rows resident only on
   non-owner shards (both logged normally, then flushed).
4. **Override rebuild** — every key whose owner differs from base
   placement gets a router override, so post-recovery routing agrees
   with physical residency without any lookup-time probing.

The argument for exactly-one-owner is in DESIGN.md §5i; the
crash-matrix test cuts both logs at every frame boundary of a live
migration and asserts it.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.obs.registry import (
    MetricsRegistry,
    NULL_REGISTRY,
    get_default_registry,
)
from repro.shard.database import ShardedDatabase, key_from_json
from repro.shard.router import ShardRouter, stable_key_hash
from repro.storage.constants import DEFAULT_PAGE_SIZE
from repro.wal.log import WalDevice, WalWriter
from repro.wal.record import RecordType, scan_wal
from repro.wal.replay import RecoveryReport, recover


@dataclass(frozen=True)
class ShardRecoveryReport:
    """What :func:`recover_sharded` replayed and reconciled."""

    per_shard: tuple[RecoveryReport, ...]
    #: Durable SHARD_MIGRATE intents seen across all logs.
    intents_seen: int
    #: Keys found resident on more than one shard (loser copies deleted).
    duplicates_resolved: int
    #: Rows moved because they survived only on a non-owner shard.
    relocations: int
    #: Router overrides reinstalled from physical residency.
    overrides_rebuilt: int
    keys_checked: int = 0
    #: §5j journal records emitted during this recovery (as dicts, in
    #: causal order) when a journal was passed in; empty otherwise.
    events: tuple = ()


def _wal_bytes(wal) -> bytes:
    if isinstance(wal, WalWriter):
        return wal.device.data
    if isinstance(wal, WalDevice):
        return wal.data
    return bytes(wal)


def recover_sharded(
    wals: list,
    *,
    disks: list | None = None,
    page_size: int = DEFAULT_PAGE_SIZE,
    data_pool_pages: int = 256,
    index_pool_pages: int | None = None,
    seed: int = 0,
    metrics: MetricsRegistry | None = None,
    shard_metrics: list[MetricsRegistry] | None = None,
    retry_policy=None,
    group_commit_records: int = 8,
    mode: str = "hash",
    boundaries: tuple | None = None,
    hot_fraction: float = 0.05,
    tracker_decay: float = 0.5,
    recovery: bool = False,
    journal=None,
) -> tuple[ShardedDatabase, ShardRecoveryReport]:
    """Restore a :class:`ShardedDatabase` from one WAL per shard.

    Args:
        wals: one log per shard — raw bytes, ``WalDevice``, or
            ``WalWriter`` — in shard order.
        disks: optionally, the shards' survived disks (same order);
            ``None`` replays every shard onto a blank disk.
        page_size .. group_commit_records: forwarded to each shard's
            :func:`~repro.wal.replay.recover` (``seed + i`` per shard,
            like the live constructor).
        metrics: the parent registry for the rebuilt facade's
            ``shard.*`` family (ambient or fresh when ``None``).
        shard_metrics: one registry per shard; fresh ones when omitted.
        mode, boundaries, hot_fraction, tracker_decay: router
            configuration — must match the pre-crash router for base
            placements to line up (the override map itself is *not*
            logged; it is rebuilt from residency).
        recovery: arm per-call heal-and-retry on the rebuilt facade.
        journal: optional §5j :class:`~repro.obs.events.EventJournal` —
            each shard's replay phases plus the facade-level
            reconciliation journal themselves into it, the rebuilt
            facade adopts it, and the report carries the new records.

    Returns:
        ``(sharded_database, report)`` with exactly one owner per key.
    """
    n = len(wals)
    if n < 1:
        raise ValueError("need at least one shard WAL")
    if disks is not None and len(disks) != n:
        raise ValueError(f"disks must have one entry per shard ({n})")
    if metrics is None:
        ambient = get_default_registry()
        metrics = ambient if ambient is not NULL_REGISTRY else MetricsRegistry()
    if shard_metrics is None:
        shard_metrics = [MetricsRegistry() for _ in range(n)]
    elif len(shard_metrics) != n:
        raise ValueError(f"shard_metrics must have one registry per shard ({n})")

    m_dups = metrics.counter("shard.recovery.duplicates_resolved")
    m_reloc = metrics.counter("shard.recovery.relocations")
    m_overrides = metrics.counter("shard.recovery.overrides_rebuilt")

    # -- 0. harvest durable migration intents before replay mutates logs ----
    # (replay truncates torn tails only, but read first for clarity; the
    # valid prefix is identical either way).
    intents: list[dict] = []
    for i, wal in enumerate(wals):
        for rec in scan_wal(_wal_bytes(wal)).records:
            if rec.rtype is RecordType.SHARD_MIGRATE:
                intents.append(dict(rec.meta))
    max_seq = max((int(m["seq"]) for m in intents), default=0)

    last = journal.last(1) if journal is not None else []
    seq_watermark = last[0].seq if last else 0
    if journal is not None:
        journal.emit("recovery.begin", shards=n, intents=len(intents))

    # -- 1. per-shard replay -------------------------------------------------
    dbs, reports = [], []
    for i, wal in enumerate(wals):
        db, report = recover(
            wal,
            disk=disks[i] if disks is not None else None,
            page_size=page_size,
            data_pool_pages=data_pool_pages,
            index_pool_pages=index_pool_pages,
            seed=seed + i,
            metrics=shard_metrics[i],
            retry_policy=retry_policy,
            group_commit_records=group_commit_records,
            journal=journal,
            journal_shard=i,
        )
        dbs.append(db)
        reports.append(report)

    router = ShardRouter(
        n,
        mode=mode,
        boundaries=boundaries,
        hot_fraction=hot_fraction,
        decay=tracker_decay,
        registry=metrics,
    )
    sdb = ShardedDatabase.adopt(
        dbs, shard_metrics, router, metrics=metrics, recovery=recovery
    )
    sdb._migration_seq = max_seq + 1

    # -- 2. residency walk ---------------------------------------------------
    # key -> table -> [shards holding a copy]; shards share DDL (the
    # facade fans every CREATE out), so shard 0's catalog names them all.
    residency: dict[object, dict[str, list[int]]] = {}
    for name in sdb.table_names:
        stable = sdb.table(name)
        if stable.routing_index is None:
            continue
        for i in range(n):
            for row in stable.shard_table(i).scan(
                project=stable.routing_columns, use_columnar=False
            ):
                key = stable.key_of_row(row)
                residency.setdefault(key, {}).setdefault(name, []).append(i)

    # Applicable intents per key, newest first.
    intents_by_key: dict[object, list[dict]] = {}
    for meta in sorted(intents, key=lambda m: -int(m["seq"])):
        intents_by_key.setdefault(key_from_json(meta["key"]), []).append(meta)

    # -- 3. owner election + repair ------------------------------------------
    duplicates = relocations = 0
    owners: dict[object, int] = {}
    ordered_keys = sorted(
        residency, key=lambda k: (stable_key_hash(k), repr(k))
    )
    for key in ordered_keys:
        by_table = residency[key]
        candidates = sorted({i for shards in by_table.values() for i in shards})
        owner = None
        for meta in intents_by_key.get(key, ()):
            if int(meta["dst"]) in candidates:
                owner = int(meta["dst"])
                break
        if owner is None:
            if len(candidates) == 1:
                owner = candidates[0]
            elif router.base_shard(key) in candidates:
                owner = router.base_shard(key)
            else:
                owner = candidates[0]
        owners[key] = owner
        for name in sorted(by_table):
            stable = sdb.table(name)
            index = stable.routing_index
            holders = by_table[name]
            if holders == [owner]:
                continue
            if owner in holders:
                # Duplicate: the intent's copy-insert reached durability
                # on the owner; finish the migration by deleting losers.
                for i in holders:
                    if i != owner:
                        sdb.shard(i).table(name).delete(index, key)
                        duplicates += 1
            else:
                # Resident only elsewhere: relocate to the elected owner
                # (copy-then-delete, logged normally on both shards).
                src = holders[0]
                found = sdb.shard(src).table(name).lookup(index, key)
                sdb.shard(owner).table(name).insert(dict(found.values))
                for i in holders:
                    sdb.shard(i).table(name).delete(index, key)
                    if len(holders) > 1:
                        duplicates += 1
                relocations += 1

    # -- 4. override rebuild --------------------------------------------------
    overrides = 0
    for key, owner in owners.items():
        if owner != router.base_shard(key):
            router.set_override(key, owner)
            overrides += 1

    sdb.flush_wals()
    m_dups.inc(duplicates)
    m_reloc.inc(relocations)
    m_overrides.inc(overrides)
    events: tuple = ()
    if journal is not None:
        journal.emit(
            "recovery.end",
            shards=n,
            duplicates_resolved=duplicates,
            relocations=relocations,
            overrides_rebuilt=overrides,
            keys_checked=len(owners),
        )
        # The rebuilt facade keeps journaling into the same log.
        sdb._journal = journal
        for i, db in enumerate(dbs):
            db.attach_events(journal, shard=i)
        events = tuple(
            e.as_dict() for e in journal if e.seq > seq_watermark
        )
    return sdb, ShardRecoveryReport(
        per_shard=tuple(reports),
        intents_seen=len(intents),
        duplicates_resolved=duplicates,
        relocations=relocations,
        overrides_rebuilt=overrides,
        keys_checked=len(owners),
        events=events,
    )
