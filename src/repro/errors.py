"""Exception hierarchy for the ``repro`` storage engine.

Every error raised by the library derives from :class:`ReproError` so callers
can catch library failures without catching unrelated bugs.  The hierarchy is
split by subsystem: storage, index, schema, and query.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every exception raised by this library."""


class StorageError(ReproError):
    """Base class for storage-layer failures (disk, page, buffer pool)."""


class PageFullError(StorageError):
    """A page has no room for the requested record or key."""


class PageFormatError(StorageError):
    """Page bytes do not parse as the expected on-page layout."""


class InvalidRidError(StorageError):
    """A record id does not name a live tuple (deleted slot, bad page)."""


class BufferPoolError(StorageError):
    """Buffer-pool protocol violation (e.g. unpinning an unpinned frame)."""


class DiskError(StorageError):
    """Out-of-range page id or other simulated-disk failure."""


class TransientIOError(StorageError):
    """A read or write failed transiently (injected or simulated).

    The stored page bytes are intact; retrying the same I/O may succeed.
    The buffer pool retries these under its
    :class:`~repro.storage.retry.RetryPolicy`, charging simulated backoff
    latency through the cost model, before escalating to
    :class:`RetryExhaustedError`.
    """


class RetryExhaustedError(StorageError):
    """An I/O kept failing transiently past the retry policy's budget.

    Raised in place of the final :class:`TransientIOError` once
    ``RetryPolicy.max_attempts`` is spent.  The operation did not take
    effect; in-memory state is unchanged.
    """


class CorruptPageError(StorageError):
    """Page bytes read from disk failed checksum or freshness validation.

    Confirmed corruption: re-reads did not produce a page whose CRC32
    stamp matches its contents (torn/partial write, at-rest bit flip) or
    whose stamp matches the last write-back (stuck page serving stale
    bytes).  The page is quarantined by the buffer pool; a
    :class:`~repro.faults.recovery.RecoveryManager` can self-heal pages
    whose contents are reconstructible (B+Tree nodes, cache windows).

    Attributes:
        page_id: the page that failed validation.
    """

    def __init__(self, page_id: int, message: str = "failed validation") -> None:
        super().__init__(f"page {page_id} {message}")
        self.page_id = page_id


class WalError(StorageError):
    """Write-ahead-log protocol violation or unreplayable log contents.

    Raised by :mod:`repro.wal` for malformed records handed to the
    writer, and by the replayer when a structurally valid log cannot be
    applied (e.g. a redo record that does not fit its page even after
    compaction).  Torn or bit-flipped log *tails* are NOT errors: the
    replayer detects them via CRC framing and truncates cleanly.
    """


class SimulatedCrashError(StorageError):
    """The simulated machine lost power mid-I/O.

    Raised by a :class:`~repro.faults.disk.FaultyDisk` when a
    ``CRASH_POINT`` fault fires (the page write is torn first, exactly
    as a real power cut leaves it) and by a
    :class:`~repro.wal.log.WalDevice` when an append runs past an armed
    crash byte.  Unlike :class:`TransientIOError` this must never be
    retried: the process is "dead" — harnesses catch it, throw away all
    in-memory state, and restart from disk + WAL.
    """


class FaultPlanError(StorageError):
    """Malformed fault specification or plan in :mod:`repro.faults`."""


class RecoveryError(StorageError):
    """Self-healing gave up: a heal failed or the heal budget ran out.

    Raised by :class:`~repro.faults.recovery.RecoveryManager` when an
    operation keeps hitting corrupt pages past ``max_heals``; the
    underlying :class:`CorruptPageError` is chained as the cause.
    """


class IndexError_(ReproError):
    """Base class for B+Tree failures.

    Named with a trailing underscore to avoid shadowing the builtin
    ``IndexError`` while keeping the obvious name.
    """


class DuplicateKeyError(IndexError_):
    """Insert of a key that already exists in a unique index."""


class KeyNotFoundError(IndexError_):
    """Delete or exact lookup of a key that is not present."""


class SchemaError(ReproError):
    """Schema definition or record-serialization failure."""


class TypeMismatchError(SchemaError):
    """A value cannot be stored in the declared column type."""


class CatalogError(ReproError):
    """Unknown or duplicate table/index name in the catalog."""


class QueryError(ReproError):
    """Malformed query against the :class:`repro.query.Database` facade."""


class TxnError(ReproError):
    """Base class for transaction/session-layer failures."""


class TxnStateError(TxnError):
    """A session was used outside the begin/commit/abort protocol
    (write without begin, double begin, commit of an idle session)."""


class TxnConflictError(TxnError):
    """First-writer-wins write/write conflict under snapshot isolation.

    Raised when a transaction writes a key that another in-flight
    transaction has a pending write on, or that committed a newer
    version after this transaction's snapshot.  The losing transaction
    is rolled back automatically before this propagates; the session is
    idle again and may retry with a fresh ``begin()``.
    """


class WorkloadError(ReproError):
    """Invalid workload or trace specification."""


class ObservabilityError(ReproError):
    """Misuse of the :mod:`repro.obs` metrics/tracing layer."""
