"""Exception hierarchy for the ``repro`` storage engine.

Every error raised by the library derives from :class:`ReproError` so callers
can catch library failures without catching unrelated bugs.  The hierarchy is
split by subsystem: storage, index, schema, and query.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every exception raised by this library."""


class StorageError(ReproError):
    """Base class for storage-layer failures (disk, page, buffer pool)."""


class PageFullError(StorageError):
    """A page has no room for the requested record or key."""


class PageFormatError(StorageError):
    """Page bytes do not parse as the expected on-page layout."""


class InvalidRidError(StorageError):
    """A record id does not name a live tuple (deleted slot, bad page)."""


class BufferPoolError(StorageError):
    """Buffer-pool protocol violation (e.g. unpinning an unpinned frame)."""


class DiskError(StorageError):
    """Out-of-range page id or other simulated-disk failure."""


class IndexError_(ReproError):
    """Base class for B+Tree failures.

    Named with a trailing underscore to avoid shadowing the builtin
    ``IndexError`` while keeping the obvious name.
    """


class DuplicateKeyError(IndexError_):
    """Insert of a key that already exists in a unique index."""


class KeyNotFoundError(IndexError_):
    """Delete or exact lookup of a key that is not present."""


class SchemaError(ReproError):
    """Schema definition or record-serialization failure."""


class TypeMismatchError(SchemaError):
    """A value cannot be stored in the declared column type."""


class CatalogError(ReproError):
    """Unknown or duplicate table/index name in the catalog."""


class QueryError(ReproError):
    """Malformed query against the :class:`repro.query.Database` facade."""


class WorkloadError(ReproError):
    """Invalid workload or trace specification."""


class ObservabilityError(ReproError):
    """Misuse of the :mod:`repro.obs` metrics/tracing layer."""
