"""Query layer: tables, indexes, predicates, and the Database facade."""

from repro.query.predicates import (
    And,
    ColumnEq,
    ColumnIn,
    ColumnRange,
    Not,
    Or,
    Predicate,
    TruePredicate,
)
from repro.query.table import PlainIndex, Table
from repro.query.database import Database
from repro.query.executor import FkJoinCache

__all__ = [
    "Predicate",
    "ColumnEq",
    "ColumnIn",
    "ColumnRange",
    "And",
    "Or",
    "Not",
    "TruePredicate",
    "PlainIndex",
    "Table",
    "Database",
    "FkJoinCache",
]
