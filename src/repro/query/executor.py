"""Execution extras: the §2.2 foreign-key join cache.

§2.2 ("Additional Directions") suggests the free-space-as-cache idea
generalises beyond index pages: "data pages can cache the results of
foreign key joins, to avoid additional disk accesses for join queries."

:class:`FkJoinCache` demonstrates exactly that, reusing the byte-level
:class:`~repro.core.index_cache.cache.IndexCache` machinery over *heap*
pages: when a query joins ``child.fk -> parent.pk``, the joined parent
fields are cached in the free window of the child tuple's own heap page.
The next join probe for that child tuple is answered from the page it was
already reading — no parent index descent, no parent heap access.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.index_cache.cache import IndexCache
from repro.core.index_cache.policy import CachePolicy
from repro.errors import QueryError
from repro.obs.registry import MetricsRegistry, resolve_registry
from repro.query.table import PlainIndex, Table
from repro.schema.record import pack_record_map, unpack_fields, unpack_record
from repro.storage.heap import Rid
from repro.util.rng import DeterministicRng


@dataclass
class JoinStats:
    """Where join probes were answered from."""

    probes: int = 0
    cache_hits: int = 0
    parent_lookups: int = 0

    @property
    def hit_rate(self) -> float:
        return self.cache_hits / self.probes if self.probes else 0.0


class FkJoinCache:
    """Caches parent join results in the child's heap-page free space."""

    def __init__(
        self,
        child: Table,
        parent: Table,
        parent_index_name: str,
        fk_column: str,
        parent_fields: tuple[str, ...],
        policy: CachePolicy | None = None,
        rng: DeterministicRng | None = None,
        registry: MetricsRegistry | None = None,
    ) -> None:
        if not child.schema.has_column(fk_column):
            raise QueryError(f"child has no column {fk_column!r}")
        parent_index = parent.index(parent_index_name)
        if not isinstance(parent_index, PlainIndex):
            raise QueryError("FkJoinCache expects a PlainIndex on the parent")
        if len(parent_index.key_columns) != 1:
            raise QueryError("FkJoinCache supports single-column parent keys")
        if parent_index.tree.key_size > 8:
            raise QueryError(
                "FkJoinCache parent keys must encode to at most 8 bytes "
                "(the cache's tuple-id width)"
            )
        self._child = child
        self._parent = parent
        self._parent_index = parent_index
        self._parent_index_name = parent_index_name
        self._fk_column = fk_column
        self._payload_schema = parent.schema.project(list(parent_fields))
        # Heap pages have no "key region" in the B+Tree sense; treat the
        # child record as the K of the stable-point formula.
        self._cache = IndexCache(
            self._payload_schema.record_size,
            entry_size=child.schema.record_size,
            policy=policy,
            rng=rng,
            registry=registry,
        )
        self.stats = JoinStats()
        reg = resolve_registry(registry)
        self._m_probe = reg.counter("query.join.probes")
        self._m_hit = reg.counter("query.join.hit")
        self._m_parent_lookup = reg.counter("query.join.parent_lookups")

    @property
    def cache(self) -> IndexCache:
        return self._cache

    def join_fetch(
        self, child_rid: Rid, project: tuple[str, ...]
    ) -> dict[str, object]:
        """Fetch child fields joined with cached-or-looked-up parent fields.

        ``project`` may name columns from either side; parent columns must
        be among the configured ``parent_fields``.
        """
        self.stats.probes += 1
        self._m_probe.inc()
        child_cols = [n for n in project if self._child.schema.has_column(n)]
        parent_cols = [n for n in project if n not in child_cols]
        unknown = [
            n for n in parent_cols if not self._payload_schema.has_column(n)
        ]
        if unknown:
            raise QueryError(f"columns {unknown} not in cached parent fields")

        pool = self._child.heap.pool
        with pool.page(child_rid.page_id) as page:
            record = page.read(child_rid.slot)
            row = unpack_fields(
                self._child.schema, record, child_cols + [self._fk_column]
            )
            if not parent_cols:
                return {n: row[n] for n in project}
            fk_value = row[self._fk_column]
            # Tuple id for the cache: the parent key in index encoding,
            # NUL-padded to the cache's fixed 8-byte tuple-id width.
            tid = self._parent_index.encode_key(fk_value).ljust(8, b"\x00")
            payload = self._cache.probe(page, tid)
            if payload is not None:
                self.stats.cache_hits += 1
                self._m_hit.inc()
                parent_values = dict(
                    zip(
                        self._payload_schema.names,
                        unpack_record(self._payload_schema, payload),
                    )
                )
            else:
                result = self._parent.lookup(
                    self._parent_index_name, fk_value,
                    project=tuple(self._payload_schema.names),
                )
                self.stats.parent_lookups += 1
                self._m_parent_lookup.inc()
                if not result.found or result.values is None:
                    raise QueryError(
                        f"dangling foreign key {self._fk_column}={fk_value!r}"
                    )
                parent_values = dict(result.values)
                self._cache.insert(
                    page, tid, pack_record_map(self._payload_schema, parent_values)
                )
            merged = {**{n: row[n] for n in child_cols}, **parent_values}
            return {n: merged[n] for n in project}
