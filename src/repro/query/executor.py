"""Execution extras: the §2.2 foreign-key join cache.

§2.2 ("Additional Directions") suggests the free-space-as-cache idea
generalises beyond index pages: "data pages can cache the results of
foreign key joins, to avoid additional disk accesses for join queries."

:class:`FkJoinCache` demonstrates exactly that, reusing the byte-level
:class:`~repro.core.index_cache.cache.IndexCache` machinery over *heap*
pages: when a query joins ``child.fk -> parent.pk``, the joined parent
fields are cached in the free window of the child tuple's own heap page.
The next join probe for that child tuple is answered from the page it was
already reading — no parent index descent, no parent heap access.

Consistency: the cache registers itself as a write observer on the parent
table, so every parent update/delete logs a predicate in a
:class:`~repro.core.index_cache.invalidation.CacheInvalidation` instance.
Each probe validates the child heap page against that log first
(:meth:`CacheInvalidation.validate_heap_page`), zeroing stale windows
before they can serve old parent fields.
"""

from __future__ import annotations

from contextlib import nullcontext
from dataclasses import dataclass

from repro.core.index_cache.cache import IndexCache
from repro.core.index_cache.invalidation import CacheInvalidation
from repro.core.index_cache.policy import CachePolicy
from repro.errors import QueryError
from repro.obs.registry import MetricsRegistry, resolve_registry
from repro.query.table import PlainIndex, Table
from repro.schema.record import pack_record_map, unpack_fields, unpack_record
from repro.storage.heap import Rid
from repro.util.rng import DeterministicRng

#: Shared no-op context for unprofiled probes (see query.table).
_UNPROFILED = nullcontext()


@dataclass
class JoinStats:
    """Where join probes were answered from."""

    probes: int = 0
    cache_hits: int = 0
    parent_lookups: int = 0
    invalidations: int = 0

    @property
    def hit_rate(self) -> float:
        return self.cache_hits / self.probes if self.probes else 0.0


class FkJoinCache:
    """Caches parent join results in the child's heap-page free space."""

    def __init__(
        self,
        child: Table,
        parent: Table,
        parent_index_name: str,
        fk_column: str,
        parent_fields: tuple[str, ...],
        policy: CachePolicy | None = None,
        rng: DeterministicRng | None = None,
        registry: MetricsRegistry | None = None,
        invalidation: CacheInvalidation | None = None,
    ) -> None:
        if not child.schema.has_column(fk_column):
            raise QueryError(f"child has no column {fk_column!r}")
        parent_index = parent.index(parent_index_name)
        if not isinstance(parent_index, PlainIndex):
            raise QueryError("FkJoinCache expects a PlainIndex on the parent")
        if len(parent_index.key_columns) != 1:
            raise QueryError("FkJoinCache supports single-column parent keys")
        if parent_index.tree.key_size > 8:
            raise QueryError(
                "FkJoinCache parent keys must encode to at most 8 bytes "
                "(the cache's tuple-id width)"
            )
        self._child = child
        self._parent = parent
        self._parent_index = parent_index
        self._parent_index_name = parent_index_name
        self._parent_key_column = parent_index.key_columns[0]
        self._fk_column = fk_column
        self._payload_schema = parent.schema.project(list(parent_fields))
        # Heap pages have no "key region" in the B+Tree sense; treat the
        # child record as the K of the stable-point formula.
        self._cache = IndexCache(
            self._payload_schema.record_size,
            entry_size=child.schema.record_size,
            policy=policy,
            rng=rng,
            registry=registry,
        )
        self._invalidation = (
            invalidation
            if invalidation is not None
            else CacheInvalidation(registry=registry)
        )
        parent.attach_write_observer(self)
        self.stats = JoinStats()
        reg = resolve_registry(registry)
        self._m_probe = reg.counter("query.join.probes")
        self._m_hit = reg.counter("query.join.hit")
        self._m_parent_lookup = reg.counter("query.join.parent_lookups")
        self._m_invalidation = reg.counter("query.join.stale_invalidations")

    @property
    def cache(self) -> IndexCache:
        return self._cache

    @property
    def invalidation(self) -> CacheInvalidation:
        return self._invalidation

    # -- parent write observation (invalidation) -----------------------------

    def note_parent_update(self, row: dict[str, object], changed: set) -> None:
        """Parent row updated: log a predicate if cached fields may be stale."""
        if self._parent_key_column in changed:
            # The parent key itself moved; entries cached under the old key
            # can no longer be identified from the new row.  Fall back to
            # the O(1) full invalidation.
            self._invalidation.invalidate_all()
            return
        if changed & set(self._payload_schema.names):
            self._invalidation.note_update(
                self._tid_for(row[self._parent_key_column])
            )

    def note_parent_delete(self, row: dict[str, object]) -> None:
        """Parent row deleted: cached join payloads for its key are stale."""
        self._invalidation.note_update(
            self._tid_for(row[self._parent_key_column])
        )

    # -- probes ----------------------------------------------------------------

    def _profile(self, op: str, project: tuple[str, ...], batch: int = 1):
        """The child table's profiling bracket for one join probe.

        Joins ride on the child table's profiler (the child heap page is
        the one being read), fingerprinted against the *parent* index the
        probe would descend on a cache miss.  The internal parent
        ``lookup``/``lookup_many`` fallbacks run inside this bracket, so
        their page and WAL traffic is charged to the join — the depth
        guard keeps them from double-counting as standalone lookups.
        """
        profiler = self._child.profiler
        if profiler is None:
            return _UNPROFILED
        return profiler.operation(
            op,
            self._child.name,
            index_name=self._parent_index_name,
            index=self._parent_index,
            project=project,
            batch=batch,
        )

    def join_fetch(
        self, child_rid: Rid, project: tuple[str, ...]
    ) -> dict[str, object]:
        """Fetch child fields joined with cached-or-looked-up parent fields.

        ``project`` may name columns from either side; parent columns must
        be among the configured ``parent_fields``.
        """
        with self._profile("join", project):
            return self._join_fetch(child_rid, project)

    def _join_fetch(
        self, child_rid: Rid, project: tuple[str, ...]
    ) -> dict[str, object]:
        self.stats.probes += 1
        self._m_probe.inc()
        child_cols, parent_cols, fetch_cols = self._split_projection(project)

        pool = self._child.heap.pool
        with pool.page(child_rid.page_id) as page:
            record = page.read(child_rid.slot)
            row = unpack_fields(self._child.schema, record, fetch_cols)
            if not parent_cols:
                return {n: row[n] for n in project}
            self._validate(page)
            fk_value = row[self._fk_column]
            tid = self._tid_for(fk_value)
            payload = self._cache.probe(page, tid)
            if payload is not None:
                self.stats.cache_hits += 1
                self._m_hit.inc()
                parent_values = dict(
                    zip(
                        self._payload_schema.names,
                        unpack_record(self._payload_schema, payload),
                    )
                )
            else:
                result = self._parent.lookup(
                    self._parent_index_name, fk_value,
                    project=tuple(self._payload_schema.names),
                )
                self.stats.parent_lookups += 1
                self._m_parent_lookup.inc()
                if not result.found or result.values is None:
                    raise QueryError(
                        f"dangling foreign key {self._fk_column}={fk_value!r}"
                    )
                parent_values = dict(result.values)
                self._cache.insert(
                    page, tid, pack_record_map(self._payload_schema, parent_values)
                )
            merged = {**{n: row[n] for n in child_cols}, **parent_values}
            return {n: merged[n] for n in project}

    def join_fetch_many(
        self, child_rids: list[Rid], project: tuple[str, ...]
    ) -> list[dict[str, object]]:
        """Batched :meth:`join_fetch`: one pin per child page, batched parent
        lookups for the misses.

        Child pages are pinned page-ordered via
        :meth:`~repro.storage.buffer_pool.BufferPool.pages_many` and every
        cache is probed while its page is held; only the missing parent
        keys go through the parent's batched
        :meth:`~repro.query.table.Table.lookup_many`.  Results align
        positionally with ``child_rids`` and equal a per-RID
        :meth:`join_fetch` loop (modulo which probes hit the cache: a key
        missed twice in one batch still counts one parent lookup per
        probe, exactly like the scalar loop, but is filled once).
        """
        with self._profile("join_many", project, batch=len(child_rids)):
            return self._join_fetch_many(child_rids, project)

    def _join_fetch_many(
        self, child_rids: list[Rid], project: tuple[str, ...]
    ) -> list[dict[str, object]]:
        child_cols, parent_cols, fetch_cols = self._split_projection(project)
        if not child_rids:
            return []

        pool = self._child.heap.pool
        results: list[dict[str, object] | None] = [None] * len(child_rids)
        # Probes the pinned pass could not answer: (position, child row,
        # fk value, cache tid, page_id).
        misses: list[tuple[int, dict[str, object], object, bytes, int]] = []
        with pool.pages_many(rid.page_id for rid in child_rids) as pages:
            for pos, rid in enumerate(child_rids):
                page = pages[rid.page_id]
                self.stats.probes += 1
                self._m_probe.inc()
                record = page.read(rid.slot)
                row = unpack_fields(self._child.schema, record, fetch_cols)
                if not parent_cols:
                    results[pos] = {n: row[n] for n in project}
                    continue
                self._validate(page)
                fk_value = row[self._fk_column]
                tid = self._tid_for(fk_value)
                payload = self._cache.probe(page, tid)
                if payload is None:
                    misses.append((pos, row, fk_value, tid, rid.page_id))
                    continue
                self.stats.cache_hits += 1
                self._m_hit.inc()
                parent_values = dict(
                    zip(
                        self._payload_schema.names,
                        unpack_record(self._payload_schema, payload),
                    )
                )
                merged = {**{n: row[n] for n in child_cols}, **parent_values}
                results[pos] = {n: merged[n] for n in project}

        if misses:
            # Parent lookups happen with no child pins held (the parent
            # descent needs buffer frames of its own) and are batched:
            # duplicate fk values resolve through one shared probe.
            looked_up = self._parent.lookup_many(
                self._parent_index_name,
                [fk_value for _, _, fk_value, _, _ in misses],
                project=tuple(self._payload_schema.names),
            )
            self.stats.parent_lookups += len(misses)
            self._m_parent_lookup.inc(len(misses))
            by_page: dict[int, list[tuple[bytes, bytes]]] = {}
            filled: set[tuple[int, bytes]] = set()
            for (pos, row, fk_value, tid, page_id), result in zip(
                misses, looked_up
            ):
                if not result.found or result.values is None:
                    raise QueryError(
                        f"dangling foreign key {self._fk_column}={fk_value!r}"
                    )
                parent_values = dict(result.values)
                merged = {**{n: row[n] for n in child_cols}, **parent_values}
                results[pos] = {n: merged[n] for n in project}
                if (page_id, tid) not in filled:
                    filled.add((page_id, tid))
                    by_page.setdefault(page_id, []).append(
                        (tid, pack_record_map(self._payload_schema, parent_values))
                    )
            for page_id in sorted(by_page):
                with pool.page(page_id) as page:
                    for tid, packed in by_page[page_id]:
                        self._cache.insert(page, tid, packed)
        return results  # type: ignore[return-value]

    # -- internals -----------------------------------------------------------

    def _split_projection(
        self, project: tuple[str, ...]
    ) -> tuple[list[str], list[str], list[str]]:
        """Split ``project`` into child/parent columns plus the unpack list.

        The unpack list always carries the FK column exactly once — naming
        it in ``project`` must not duplicate it (``unpack_fields`` would
        reject the repeat).
        """
        child_cols = [n for n in project if self._child.schema.has_column(n)]
        parent_cols = [n for n in project if n not in child_cols]
        unknown = [
            n for n in parent_cols if not self._payload_schema.has_column(n)
        ]
        if unknown:
            raise QueryError(f"columns {unknown} not in cached parent fields")
        fetch_cols = list(child_cols)
        if self._fk_column not in fetch_cols:
            fetch_cols.append(self._fk_column)
        return child_cols, parent_cols, fetch_cols

    def _tid_for(self, fk_value: object) -> bytes:
        # Tuple id for the cache: the parent key in index encoding,
        # NUL-padded to the cache's fixed 8-byte tuple-id width.
        return self._parent_index.encode_key(fk_value).ljust(8, b"\x00")

    def _validate(self, page) -> None:
        if self._invalidation.validate_heap_page(page, self._cache):
            self.stats.invalidations += 1
            self._m_invalidation.inc()
