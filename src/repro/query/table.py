"""Tables: a heap plus its indexes, with write fan-out.

A :class:`Table` owns exactly one heap.  Indexes attach to it as either a
:class:`PlainIndex` (classic key → RID, heap access on every lookup) or a
:class:`~repro.core.index_cache.cached_index.CachedBTree` (the §2.1 cached
variant).  Writes go to the heap once and fan out to every index; updates
notify cached indexes so stale cache entries are invalidated through the
§2.1.2 predicate log.
"""

from __future__ import annotations

from contextlib import nullcontext
from typing import Iterator, Union

from repro.btree.keycodec import KeyCodec, codec_for_columns
from repro.btree.rebuild import rebuild_tree_from_heap
from repro.btree.tree import BPlusTree
from repro.core.index_cache.cached_index import CachedBTree, LookupResult
from repro.errors import QueryError, ReproError
from repro.obs.tracer import NULL_TRACER, Tracer
from repro.query.predicates import Predicate, TruePredicate
from repro.schema.record import (
    pack_record_map,
    unpack_fields,
    unpack_record_map,
)
from repro.schema.schema import Schema
from repro.storage.heap import HeapFile, Rid, RID_SIZE

#: Shared no-op context for the profiler-off path: ``nullcontext`` is
#: stateless and reentrant, so one instance serves every unprofiled
#: operation without a per-call allocation.
_UNPROFILED = nullcontext()


class PlainIndex:
    """Classic uncached index: key → RID, tuple bytes fetched from the heap."""

    def __init__(
        self,
        tree: BPlusTree,
        heap: HeapFile,
        schema: Schema,
        key_columns: tuple[str, ...],
    ) -> None:
        if tree.value_size != RID_SIZE:
            raise QueryError("PlainIndex requires a RID-valued tree")
        self._tree = tree
        self._heap = heap
        self._schema = schema
        self._key_columns = tuple(key_columns)
        self._codec: KeyCodec = codec_for_columns(
            [schema.column(c) for c in key_columns]
        )
        self.lookups = 0
        self.heap_fetches = 0

    @property
    def tree(self) -> BPlusTree:
        return self._tree

    @property
    def key_columns(self) -> tuple[str, ...]:
        return self._key_columns

    def encode_key(self, key_value: object) -> bytes:
        if len(self._key_columns) == 1:
            if isinstance(key_value, (tuple, list)):
                (key_value,) = key_value
            return self._codec.encode(key_value)
        return self._codec.encode(tuple(key_value))  # type: ignore[arg-type]

    def insert_key(self, row: dict[str, object], rid: Rid) -> None:
        key = self.encode_key(tuple(row[c] for c in self._key_columns))
        self._tree.insert(key, rid.to_bytes())

    def delete_key(self, row: dict[str, object]) -> None:
        key = self.encode_key(tuple(row[c] for c in self._key_columns))
        self._tree.delete(key)

    def note_update(self, row: dict[str, object], changed: set[str]) -> None:
        """No cache, nothing to invalidate."""

    def find_rid(self, key_value: object) -> Rid | None:
        rid_bytes = self._tree.search(self.encode_key(key_value))
        return Rid.from_bytes(rid_bytes) if rid_bytes is not None else None

    def rebuild_from_heap(self) -> BPlusTree:
        """Reconstruct the whole index from the heap (corruption recovery).

        Index pages are redundant: every entry is recomputable from the
        heap, so a quarantined/corrupt node is healed by bulk-loading a
        fresh tree from a sorted heap scan.  The old tree's pages are
        orphaned (the simulated disk only grows, like a tablespace file).
        """
        self._tree = rebuild_tree_from_heap(
            self._tree, self._heap, self._schema, self._key_columns, self.encode_key
        )
        return self._tree

    def lookup(
        self, key_value: object, project: tuple[str, ...] | None = None
    ) -> LookupResult:
        project = project if project is not None else self._schema.names
        self.lookups += 1
        rid = self.find_rid(key_value)
        if rid is None:
            return LookupResult(None, found=False, from_cache=False)
        record = self._heap.fetch(rid)
        self.heap_fetches += 1
        return LookupResult(
            unpack_fields(self._schema, record, project),
            found=True,
            from_cache=False,
        )

    def lookup_many(
        self,
        key_values: list[object],
        project: tuple[str, ...] | None = None,
    ) -> list[LookupResult]:
        """Batched point lookups: shared index descents, page-ordered heap.

        Results align positionally with ``key_values`` and are identical
        to calling :meth:`lookup` per key; duplicate keys are resolved
        once.  The index is probed through
        :meth:`~repro.btree.tree.BPlusTree.lookup_many` (sorted probes,
        leaf-chain continuation) and the resulting RIDs are fetched
        through the page-ordered :meth:`~repro.storage.heap.HeapFile.fetch_many`.
        """
        project = project if project is not None else self._schema.names
        encoded = [self.encode_key(kv) for kv in key_values]
        if not encoded:
            return []
        self.lookups += len(set(encoded))
        rid_bytes = self._tree.lookup_many(encoded)
        rids = {
            key: Rid.from_bytes(value)
            for key, value in rid_bytes.items()
            if value is not None
        }
        records = self._heap.fetch_many(list(rids.values()))
        self.heap_fetches += len(rids)
        by_key: dict[bytes, LookupResult] = {}
        results: list[LookupResult] = []
        for key in encoded:
            result = by_key.get(key)
            if result is None:
                rid = rids.get(key)
                if rid is None:
                    result = LookupResult(None, found=False, from_cache=False)
                else:
                    result = LookupResult(
                        unpack_fields(self._schema, records[rid], project),
                        found=True,
                        from_cache=False,
                    )
                by_key[key] = result
            results.append(result)
        return results


AnyIndex = Union[PlainIndex, CachedBTree]


class Table:
    """One heap, many indexes, consistent writes."""

    def __init__(
        self,
        name: str,
        schema: Schema,
        heap: HeapFile,
        tracer: Tracer | None = None,
        wal=None,
        profiler=None,
    ) -> None:
        self._name = name
        self._schema = schema
        self._heap = heap
        self._indexes: dict[str, AnyIndex] = {}
        self._tracer = tracer if tracer is not None else NULL_TRACER
        #: Optional repro.obs.profiler.QueryProfiler (duck-typed).  When
        #: set, every operation runs inside ``profiler.operation(...)``
        #: and is charged to its normalized fingerprint; when None, the
        #: hot path pays one attribute test per operation.
        self._profiler = profiler
        #: Optional repro.wal.log.WalWriter (duck-typed to avoid the
        #: import cycle).  When set, every heap mutation follows the
        #: reserve-LSN / apply-with-LSN / append-record protocol, and the
        #: failure-atomic compensation paths log their undo as ordinary
        #: redo records so replay always lands on the state the engine
        #: actually reached.
        self._wal = wal
        #: Optional repro.obs.adaptive.AdaptiveController (duck-typed:
        #: anything with a ``tick()``).  When set, every operation ticks
        #: the controller *before* doing its work — no pins are held, so
        #: a triggered knob change (pool resize, WAL flush) is always
        #: safe.  When None, the hot path pays one attribute test.
        self._ticker = None
        #: Write observers (e.g. FkJoinCaches keyed on this table as the
        #: join parent) notified after every update/delete so derived
        #: caches living *outside* this table's indexes can invalidate.
        self._write_observers: list = []
        #: Optional repro.columnar.manager.TableColumnar binding
        #: (duck-typed).  When set, scans and aggregates whose predicate
        #: compiles to a batch kernel run over the columnar mirror, and
        #: every applied write is mirrored through note_insert/update/
        #: delete — exactly the index fan-out contract.  When None, the
        #: hot path pays one attribute test.
        self._columnar = None
        #: Optional repro.obs.trace.TraceCollector (duck-typed).  When
        #: set, every operation opens a §5j trace span (a fresh root at
        #: the facade, a child when nested inside a scatter-gather
        #: trace); ``trace_shard`` tags the span with the engine's shard
        #: id under a sharded facade.  When None, the hot path pays one
        #: attribute test.
        self._trace = None
        self._trace_shard: int | None = None

    # -- properties ----------------------------------------------------------

    @property
    def name(self) -> str:
        return self._name

    @property
    def schema(self) -> Schema:
        return self._schema

    @property
    def heap(self) -> HeapFile:
        return self._heap

    @property
    def num_rows(self) -> int:
        return self._heap.num_records

    @property
    def index_names(self) -> list[str]:
        return list(self._indexes)

    @property
    def identity_index_name(self) -> str:
        """Name of the identity (primary-key) index — the first attached
        index.  The session layer resolves and tracks row versions
        through it, so its key columns must uniquely identify a row."""
        if not self._indexes:
            raise QueryError(
                f"table {self._name!r} has no index to identify rows by"
            )
        return next(iter(self._indexes))

    def index(self, name: str) -> AnyIndex:
        try:
            return self._indexes[name]
        except KeyError:
            raise QueryError(
                f"table {self._name!r} has no index {name!r}"
            ) from None

    def attach_index(self, name: str, index: AnyIndex) -> None:
        """Register an index; existing rows are NOT back-filled (build the
        index before loading, or bulk-load it separately)."""
        if name in self._indexes:
            raise QueryError(f"index {name!r} already attached")
        self._indexes[name] = index

    def attach_write_observer(self, observer) -> None:
        """Register a write observer.

        Observers receive ``note_parent_update(row, changed)`` after every
        applied update and ``note_parent_delete(row)`` after every applied
        delete, with the *new* full row dict.  This is how caches derived
        from this table's rows but stored elsewhere (the §2.2 FkJoinCache
        keeps parent fields in child heap pages) hook into invalidation.
        """
        self._write_observers.append(observer)

    # -- writes ---------------------------------------------------------------

    @property
    def tracer(self) -> Tracer:
        return self._tracer

    @property
    def profiler(self):
        return self._profiler

    @profiler.setter
    def profiler(self, value) -> None:
        self._profiler = value

    @property
    def ticker(self):
        return self._ticker

    @ticker.setter
    def ticker(self, value) -> None:
        self._ticker = value

    @property
    def columnar(self):
        return self._columnar

    @columnar.setter
    def columnar(self, value) -> None:
        self._columnar = value

    @property
    def trace(self):
        return self._trace

    @trace.setter
    def trace(self, value) -> None:
        self._trace = value

    @property
    def trace_shard(self) -> int | None:
        return self._trace_shard

    @trace_shard.setter
    def trace_shard(self, value: int | None) -> None:
        self._trace_shard = value

    def _trace_op(self, op: str, **attrs):
        """The §5j trace bracket for one operation, or the shared no-op."""
        if self._trace is None:
            return _UNPROFILED
        return self._trace.span(
            op, shard=self._trace_shard, table=self._name, **attrs
        )

    def _profile(
        self,
        op: str,
        index_name: str | None = None,
        index=None,
        project: tuple[str, ...] | None = None,
        batch: int = 1,
    ):
        """The profiling bracket for one operation, or the shared no-op."""
        if self._profiler is None:
            return _UNPROFILED
        return self._profiler.operation(
            op,
            self._name,
            index_name=index_name,
            index=index,
            project=project,
            batch=batch,
        )

    def insert(self, row: dict[str, object], txn_id: int = 0) -> Rid:
        """Insert a row into the heap and every index.

        Failure-atomic: if an index insert fails (e.g. a corrupt index
        page), the heap row and any index keys already written are
        withdrawn before the error propagates, so a recovery layer that
        rebuilds indexes *from the heap* never resurrects a half-inserted
        row — and the insert can simply be retried.

        ``txn_id`` stamps the redo record with its owning transaction
        (0 = autocommit); the session layer passes it so crash recovery
        can tell committed writes from in-flight ones.
        """
        if self._ticker is not None:
            self._ticker.tick()
        with self._trace_op("query.insert"), self._profile(
            "insert"
        ), self._tracer.span("query.insert", table=self._name):
            record = pack_record_map(self._schema, row)
            rid = self._wal_insert(record, txn_id=txn_id)
            inserted: list[AnyIndex] = []
            try:
                for index in self._indexes.values():
                    index.insert_key(row, rid)
                    inserted.append(index)
            except BaseException:
                for index in inserted:
                    try:
                        index.delete_key(row)
                    except ReproError:
                        # This index is the broken one; rebuild-from-heap
                        # will reconstruct it without the withdrawn row.
                        pass
                self._wal_delete(rid, txn_id=txn_id)
                raise
            if self._columnar is not None:
                self._columnar.note_insert(rid, row)
            return rid

    def update(
        self, index_name: str, key_value: object, changes: dict[str, object],
        txn_id: int = 0,
    ) -> bool:
        """Update non-key fields of the row found via ``index_name``.

        Key columns of *any* attached index may not change (that would be
        a delete+insert, which callers do explicitly).
        """
        if self._ticker is not None:
            self._ticker.tick()
        for index in self._indexes.values():
            bad = set(changes) & set(index.key_columns)
            if bad:
                raise QueryError(
                    f"cannot update index key columns {sorted(bad)}"
                )
        with self._trace_op("query.update"), self._profile(
            "update", index_name=index_name, index=self.index(index_name)
        ), self._tracer.span("query.update", table=self._name):
            rid = self._find_rid(index_name, key_value)
            if rid is None:
                return False
            row = unpack_record_map(self._schema, self._heap.fetch(rid))
            row.update(changes)
            self._wal_update(rid, pack_record_map(self._schema, row), txn_id=txn_id)
            if self._columnar is not None:
                self._columnar.note_update(rid, row)
            changed = set(changes)
            for index in self._indexes.values():
                index.note_update(row, changed)
            for observer in self._write_observers:
                observer.note_parent_update(row, changed)
            return True

    def delete(
        self, index_name: str, key_value: object, txn_id: int = 0
    ) -> bool:
        """Delete the row found via ``index_name`` from heap and indexes.

        Failure-atomic, mirroring :meth:`insert`: index entries go first
        and the heap row last, so while the heap still holds the row a
        rebuild-from-heap reproduces every index key.  If any step fails,
        already-deleted keys are re-inserted before the error propagates —
        the delete either happens completely or not at all, and can be
        retried verbatim after a heal.
        """
        if self._ticker is not None:
            self._ticker.tick()
        with self._trace_op("query.delete"), self._profile(
            "delete", index_name=index_name, index=self.index(index_name)
        ), self._tracer.span("query.delete", table=self._name):
            rid = self._find_rid(index_name, key_value)
            if rid is None:
                return False
            row = unpack_record_map(self._schema, self._heap.fetch(rid))
            removed: list[AnyIndex] = []
            try:
                for index in self._indexes.values():
                    index.delete_key(row)
                    removed.append(index)
                self._wal_delete(rid, txn_id=txn_id)
            except BaseException:
                for index in removed:
                    try:
                        index.insert_key(row, rid)
                    except ReproError:
                        # The broken index; rebuild-from-heap restores the
                        # key because the heap row is still in place.
                        pass
                raise
            if self._columnar is not None:
                self._columnar.note_delete(rid)
            for observer in self._write_observers:
                observer.note_parent_delete(row)
            return True

    # -- reads ------------------------------------------------------------------

    def lookup(
        self,
        index_name: str,
        key_value: object,
        project: tuple[str, ...] | None = None,
    ) -> LookupResult:
        """Point lookup through the named index."""
        if self._ticker is not None:
            self._ticker.tick()
        index = self.index(index_name)
        with self._trace_op("query.lookup"), self._profile(
            "lookup", index_name=index_name, index=index, project=project
        ), self._tracer.span(
            "query.lookup", table=self._name, index=index_name
        ):
            return index.lookup(key_value, project)

    def lookup_many(
        self,
        index_name: str,
        key_values: list[object],
        project: tuple[str, ...] | None = None,
    ) -> list[LookupResult]:
        """Batched point lookups through the named index.

        The batched read fast path: probe keys are sorted so index
        descents are shared across adjacent keys, and heap RIDs are
        fetched page-ordered with each page pinned once (see
        ``BufferPool.fetch_many``).  Results align positionally with
        ``key_values`` and equal a per-key :meth:`lookup` loop.
        """
        if self._ticker is not None:
            self._ticker.tick()
        index = self.index(index_name)
        with self._trace_op(
            "query.lookup_many", batch=len(key_values)
        ), self._profile(
            "lookup_many",
            index_name=index_name,
            index=index,
            project=project,
            batch=len(key_values),
        ), self._tracer.span(
            "query.lookup_many", table=self._name, index=index_name
        ):
            return index.lookup_many(list(key_values), project)

    def fetch_rid(
        self, rid: Rid, project: tuple[str, ...] | None = None
    ) -> dict[str, object]:
        project = project if project is not None else self._schema.names
        return unpack_fields(self._schema, self._heap.fetch(rid), project)

    def scan(
        self,
        predicate: Predicate | None = None,
        project: tuple[str, ...] | None = None,
        use_columnar: bool = True,
    ) -> Iterator[dict[str, object]]:
        """Full scan with optional filter and projection.

        With a columnar binding attached and a predicate the batch
        kernels understand, the whole scan is computed vectorized inside
        one profiler bracket and an iterator over the materialized rows
        is returned — output order and content are identical to the row
        path.  ``use_columnar=False`` forces the row executor (the
        oracle path differential tests compare against).

        On the row path with profiling enabled, the bracket stays open
        until the iterator is exhausted (or closed), so operations
        interleaved with a half-drained scan are charged to the scan's
        fingerprint.
        """
        predicate = predicate if predicate is not None else TruePredicate()
        project = project if project is not None else self._schema.names
        if use_columnar and self._columnar is not None:
            # Plan *before* opening the bracket: an unsupported predicate
            # falls through to the row path without a second bracket.
            kernel = self._columnar.plan_scan(predicate)
            if kernel is not None:
                # The columnar path materializes inside the bracket, so
                # it can be trace-spanned; the lazy row path cannot (a
                # span over a half-drained iterator would dangle) — its
                # spans come from the scatter-gather facade instead.
                with self._trace_op("query.scan", columnar=True), \
                        self._profile("scan", project=project):
                    return iter(self._columnar.scan(kernel, predicate, project))
        if self._profiler is None:
            return self._scan_rows(predicate, project)
        return self._profiled_scan(predicate, project)

    def aggregate(
        self,
        specs: list[tuple[str, str | None]],
        predicate: Predicate | None = None,
        use_columnar: bool = True,
    ) -> dict[str, object]:
        """Aggregate over the (filtered) table: ``[("sum", "n"), ...]``.

        Supported ops: ``count`` (column ignored), ``sum``, ``min``,
        ``max``, ``avg``.  Returns ``{"sum(n)": ..., "count": ...}``.
        Empty selections yield count 0, sum 0, and None for min/max/avg.
        Runs vectorized over the columnar mirror when attached and the
        predicate compiles; otherwise folds over the row scan — both
        paths produce identical results.
        """
        # Lazy: repro.columnar ↔ repro.query would cycle at import time
        # (core.encoding's package init imports Table for migrate).
        from repro.columnar.executor import aggregate_rows, normalize_specs

        if self._ticker is not None:
            self._ticker.tick()
        predicate = predicate if predicate is not None else TruePredicate()
        normalized = tuple(normalize_specs(specs, self._schema))
        labels = tuple(
            "count" if op == "count" else f"{op}({column})"
            for op, column in normalized
        )
        if use_columnar and self._columnar is not None:
            kernel = self._columnar.plan_scan(predicate)
            if kernel is not None:
                with self._trace_op(
                    "query.aggregate", columnar=True
                ), self._profile("aggregate", project=labels):
                    return self._columnar.aggregate(
                        kernel, predicate, normalized
                    )
        with self._trace_op("query.aggregate"), self._profile(
            "aggregate", project=labels
        ):
            return aggregate_rows(
                self._scan_rows(predicate, self._schema.names), normalized
            )

    def _scan_rows(
        self, predicate: Predicate, project: tuple[str, ...]
    ) -> Iterator[dict[str, object]]:
        for _, record in self._heap.scan():
            row = unpack_record_map(self._schema, record)
            if predicate.matches(row):
                yield {name: row[name] for name in project}

    def _profiled_scan(
        self, predicate: Predicate, project: tuple[str, ...]
    ) -> Iterator[dict[str, object]]:
        with self._profile("scan", project=project):
            try:
                yield from self._scan_rows(predicate, project)
            except GeneratorExit:
                # An abandoned iterator (explicit close() or GC of a
                # half-drained scan) must still close the profiler
                # bracket — otherwise every subsequent operation is
                # mis-charged to this scan's fingerprint — and must not
                # be absorbed as a query *error*: returning converts the
                # throw into a normal exit for the ``with`` block.
                return

    # -- internals ---------------------------------------------------------------

    def _wal_insert(self, record: bytes, txn_id: int = 0) -> Rid:
        """Heap insert under the WAL protocol.

        The LSN is reserved *before* the heap touches any page (the
        dirtied frame must carry it), and the redo record is appended
        immediately after — before any other pool activity — so the
        flush-before-evict rule can never see a stamped frame whose
        record is not at least buffered.  A heap failure abandons the
        LSN: gaps are legal.
        """
        if self._wal is None:
            return self._heap.insert(record)
        lsn = self._wal.reserve_lsn()
        rid = self._heap.insert(record, lsn=lsn)
        self._wal.log_insert(self._name, rid, record, lsn=lsn, txn_id=txn_id)
        return rid

    def _wal_update(self, rid: Rid, record: bytes, txn_id: int = 0) -> None:
        if self._wal is None:
            self._heap.update(rid, record)
            return
        lsn = self._wal.reserve_lsn()
        self._heap.update(rid, record, lsn=lsn)
        self._wal.log_update(self._name, rid, record, lsn=lsn, txn_id=txn_id)

    def _wal_delete(self, rid: Rid, txn_id: int = 0) -> None:
        if self._wal is None:
            self._heap.delete(rid)
            return
        lsn = self._wal.reserve_lsn()
        self._heap.delete(rid, lsn=lsn)
        self._wal.log_delete(self._name, rid, lsn=lsn, txn_id=txn_id)

    def _find_rid(self, index_name: str, key_value: object) -> Rid | None:
        index = self.index(index_name)
        if isinstance(index, PlainIndex):
            return index.find_rid(key_value)
        rid_bytes = index.tree.search(index.encode_key(key_value))
        return Rid.from_bytes(rid_bytes) if rid_bytes is not None else None
