"""Row predicates for scans and deletes.

Deliberately small: equality, membership, range, and boolean composition —
enough for the experiments' scans and for expressing the §2.1.2
invalidation predicates at the query layer.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Mapping


class Predicate(ABC):
    """A boolean test over a row dict."""

    @abstractmethod
    def matches(self, row: Mapping[str, object]) -> bool:
        """True if the row satisfies the predicate."""

    def __and__(self, other: "Predicate") -> "Predicate":
        return And((self, other))

    def __or__(self, other: "Predicate") -> "Predicate":
        return Or((self, other))

    def __invert__(self) -> "Predicate":
        return Not(self)


@dataclass(frozen=True)
class TruePredicate(Predicate):
    """Matches everything (the default scan filter)."""

    def matches(self, row: Mapping[str, object]) -> bool:
        return True


@dataclass(frozen=True)
class ColumnEq(Predicate):
    """``column = value``."""

    column: str
    value: object

    def matches(self, row: Mapping[str, object]) -> bool:
        return row.get(self.column) == self.value


@dataclass(frozen=True)
class ColumnIn(Predicate):
    """``column IN values``."""

    column: str
    values: frozenset

    @classmethod
    def of(cls, column: str, values) -> "ColumnIn":
        return cls(column, frozenset(values))

    def matches(self, row: Mapping[str, object]) -> bool:
        return row.get(self.column) in self.values


@dataclass(frozen=True)
class ColumnRange(Predicate):
    """``lo <= column < hi`` (either bound optional)."""

    column: str
    lo: object | None = None
    hi: object | None = None

    def matches(self, row: Mapping[str, object]) -> bool:
        value = row.get(self.column)
        if value is None:
            return False
        if self.lo is not None and value < self.lo:  # type: ignore[operator]
            return False
        if self.hi is not None and value >= self.hi:  # type: ignore[operator]
            return False
        return True


@dataclass(frozen=True)
class And(Predicate):
    parts: tuple[Predicate, ...]

    def matches(self, row: Mapping[str, object]) -> bool:
        return all(p.matches(row) for p in self.parts)


@dataclass(frozen=True)
class Or(Predicate):
    parts: tuple[Predicate, ...]

    def matches(self, row: Mapping[str, object]) -> bool:
        return any(p.matches(row) for p in self.parts)


@dataclass(frozen=True)
class Not(Predicate):
    inner: Predicate

    def matches(self, row: Mapping[str, object]) -> bool:
        return not self.inner.matches(row)
