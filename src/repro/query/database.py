"""The Database facade: the library's friendly front door.

Wires a simulated disk, buffer pools, catalog, tables, and indexes into
one object so examples and downstream users don't assemble the plumbing
by hand.  Two pools by default:

* the **data pool** holds heap pages and is cost-hooked — this is where
  the paper's buffer-pool hit-rate economics play out;
* the **index pool** holds B+Tree pages; by default it shares the data
  pool, but experiments can split it (e.g. "the index is fully in memory"
  of Fig. 2b/2c, or the index-thrashes configuration of Fig. 3).
"""

from __future__ import annotations

import zlib

from repro.btree.keycodec import codec_for_columns
from repro.btree.tree import BPlusTree
from repro.core.index_cache.cached_index import CachedBTree
from repro.core.index_cache.invalidation import CacheInvalidation
from repro.core.index_cache.latching import LatchSimulator
from repro.core.index_cache.policy import CachePolicy
from repro.errors import CatalogError, QueryError
from repro.obs.registry import (
    MetricsRegistry,
    NULL_REGISTRY,
    get_default_registry,
)
from repro.obs.tracer import Tracer
from repro.query.table import PlainIndex, Table
from repro.schema.catalog import Catalog
from repro.schema.schema import Schema
from repro.sim.cost_model import CostModel
from repro.storage.buffer_pool import BufferPool, EvictionPolicy
from repro.storage.constants import DEFAULT_PAGE_SIZE
from repro.storage.disk import SimulatedDisk
from repro.storage.heap import HeapFile, RID_SIZE
from repro.util.rng import DeterministicRng
from repro.wal.log import index_meta, table_meta


class Database:
    """An embedded single-threaded database over the simulated substrate."""

    def __init__(
        self,
        page_size: int = DEFAULT_PAGE_SIZE,
        data_pool_pages: int = 1024,
        index_pool_pages: int | None = None,
        cost_model: CostModel | None = None,
        eviction: EvictionPolicy = EvictionPolicy.LRU,
        seed: int = 0,
        metrics: MetricsRegistry | None = None,
        fault_injector: "FaultInjector | None" = None,
        retry_policy: RetryPolicy | None = None,
        verify_checksums: bool = True,
        wal: "WalWriter | bool | None" = None,
        wal_group_commit: int = 8,
        disk: SimulatedDisk | None = None,
    ) -> None:
        """
        Args:
            page_size: bytes per page for every file in the database.
            data_pool_pages: buffer-pool capacity for heap pages.
            index_pool_pages: capacity of a *separate* index pool; ``None``
                shares the data pool (one unified buffer pool).
            cost_model: simulated-time model hooked into the data pool
                (and the index pool when separate) and the span tracer's
                clock; ``None`` creates a fresh :class:`CostModel`.
            eviction: frame replacement policy for the pools.
            seed: seed for cache policies and other stochastic choices.
            metrics: observability sink for every subsystem; ``None`` uses
                the ambient default registry if one is installed (see
                :func:`repro.obs.use_registry`), else a fresh
                :class:`MetricsRegistry`.  Pass
                :data:`repro.obs.NULL_REGISTRY` to switch metrics off.
            fault_injector: when given, the database runs on a
                :class:`~repro.faults.disk.FaultyDisk` driven by this
                injector instead of a pristine :class:`SimulatedDisk`.
            retry_policy: how the buffer pools respond to transient I/O
                faults; ``None`` uses the pools' default policy.
            verify_checksums: stamp a CRC32 on every page write-back and
                verify it on every pool miss (see ``repro.storage.page``).
            wal: durability.  ``True`` builds a fresh
                :class:`~repro.wal.log.WalWriter` (group commit of
                ``wal_group_commit`` records); a writer instance attaches
                as-is (how recovery hands a survived log back in);
                ``None``/``False`` runs without a WAL, as before.
            wal_group_commit: records per group-commit batch when
                ``wal=True``.
            disk: attach an existing disk instead of creating one — the
                crash-restart path, where the "hardware" (disk + WAL
                device) survives and only RAM is lost.  Mutually
                exclusive with ``fault_injector`` (pass a ready
                :class:`~repro.faults.disk.FaultyDisk` instead).
        """
        if metrics is None:
            ambient = get_default_registry()
            metrics = ambient if ambient is not NULL_REGISTRY else MetricsRegistry()
        self._metrics = metrics
        self._fault_injector = fault_injector
        if disk is not None:
            if fault_injector is not None:
                raise QueryError(
                    "pass either an existing disk or a fault_injector, not both"
                )
            if disk.page_size != page_size:
                raise QueryError(
                    f"attached disk has page_size {disk.page_size}, "
                    f"database wants {page_size}"
                )
            self._disk = disk
            self._fault_injector = getattr(disk, "injector", None)
        elif fault_injector is not None:
            from repro.faults.disk import FaultyDisk

            self._disk = FaultyDisk(page_size, fault_injector)
        else:
            self._disk = SimulatedDisk(page_size)
        if wal is True:
            from repro.wal.log import WalWriter

            wal = WalWriter(
                registry=metrics, group_commit_records=wal_group_commit
            )
        self._wal = wal or None
        # The cost model only accumulates simulated nanoseconds — never
        # consulted by the engine — so defaulting one in keeps behaviour
        # identical while giving the tracer a real clock.
        if cost_model is None:
            cost_model = CostModel()
        self._cost = cost_model
        self._tracer = Tracer(metrics, clock=cost_model)
        self._data_pool = BufferPool(
            self._disk, data_pool_pages, policy=eviction, cost_hook=cost_model,
            registry=metrics, retry_policy=retry_policy,
            verify_checksums=verify_checksums, wal=self._wal,
        )
        if index_pool_pages is None:
            self._index_pool = self._data_pool
        else:
            self._index_pool = BufferPool(
                self._disk, index_pool_pages, policy=eviction,
                cost_hook=cost_model, registry=metrics,
                retry_policy=retry_policy, verify_checksums=verify_checksums,
                wal=self._wal,
            )
        self._catalog = Catalog()
        self._rng = DeterministicRng(seed)
        self._recovery = None
        self._profiler = None
        self._adaptive = None
        self._txn_manager = None
        self._columnar = None
        self._trace = None
        self._trace_shard: int | None = None
        self._journal = None
        self._journal_shard: int | None = None
        #: Database-wide cache-fill admission fraction, pushed into every
        #: cached index (existing and future) by :meth:`set_cache_admission`.
        self._cache_admission = 1.0
        # Knob-state gauges (visible with the controller disabled too).
        self._m_knob_data_pages = metrics.gauge("adaptive.knob.pool.data_pages")
        self._m_knob_data_pages.set(float(self._data_pool.capacity))
        if self._index_pool is not self._data_pool:
            self._m_knob_index_pages = metrics.gauge(
                "adaptive.knob.pool.index_pages"
            )
            self._m_knob_index_pages.set(float(self._index_pool.capacity))
        else:
            self._m_knob_index_pages = None

    # -- properties ----------------------------------------------------------

    @property
    def disk(self) -> SimulatedDisk:
        return self._disk

    @property
    def data_pool(self) -> BufferPool:
        return self._data_pool

    @property
    def index_pool(self) -> BufferPool:
        return self._index_pool

    @property
    def catalog(self) -> Catalog:
        return self._catalog

    @property
    def cost_model(self) -> CostModel:
        return self._cost

    @property
    def metrics(self) -> MetricsRegistry:
        """The registry every subsystem of this database emits into."""
        return self._metrics

    @property
    def tracer(self) -> Tracer:
        """Span tracer charging simulated time from the cost model."""
        return self._tracer

    @property
    def fault_injector(self) -> "FaultInjector | None":
        """The injector driving this database's disk, if faults are wired."""
        return self._fault_injector

    @property
    def wal(self) -> "WalWriter | None":
        """The write-ahead log writer, when durability is on."""
        return self._wal

    @property
    def profiler(self) -> "QueryProfiler | None":
        """The query profiler, once :meth:`enable_profiling` has run."""
        return self._profiler

    @property
    def adaptive(self) -> "AdaptiveController | None":
        """The adaptive controller, once :meth:`enable_adaptive` has run."""
        return self._adaptive

    @property
    def trace(self) -> "TraceCollector | None":
        """The §5j trace collector, once :meth:`enable_tracing` has run."""
        return self._trace

    @property
    def journal(self) -> "EventJournal | None":
        """The §5j event journal, once :meth:`enable_events` has run."""
        return self._journal

    @property
    def pool_partition(self) -> float:
        """Fraction of total pool frames assigned to heap pages.

        1.0 for a shared pool (no partition boundary exists).
        """
        if self._index_pool is self._data_pool:
            return 1.0
        total = self._data_pool.capacity + self._index_pool.capacity
        return self._data_pool.capacity / total

    @property
    def cache_admission(self) -> float:
        """Database-wide cache-fill admission fraction (see the setter)."""
        return self._cache_admission

    # -- adaptive knob setters ----------------------------------------------

    def set_pool_partition(self, data_fraction: float) -> tuple[int, int]:
        """Move the frame boundary between the data and index pools.

        The total frame budget is preserved exactly: one pool shrinks
        (evicting surplus frames through the normal write-back path)
        before the other grows.  Each pool keeps at least one frame.
        Returns the new ``(data_pages, index_pages)`` split.
        """
        if self._index_pool is self._data_pool:
            raise QueryError(
                "pool partition requires split data/index pools "
                "(index_pool_pages=...)"
            )
        if not 0.0 < data_fraction < 1.0:
            raise QueryError(
                f"data_fraction must be in (0, 1), got {data_fraction}"
            )
        total = self._data_pool.capacity + self._index_pool.capacity
        data_pages = min(max(int(round(total * data_fraction)), 1), total - 1)
        index_pages = total - data_pages
        # Shrink first so the combined footprint never exceeds the budget.
        if data_pages < self._data_pool.capacity:
            self._data_pool.set_capacity(data_pages)
            self._index_pool.set_capacity(index_pages)
        else:
            self._index_pool.set_capacity(index_pages)
            self._data_pool.set_capacity(data_pages)
        self._m_knob_data_pages.set(float(data_pages))
        if self._m_knob_index_pages is not None:
            self._m_knob_index_pages.set(float(index_pages))
        return data_pages, index_pages

    def set_group_commit(self, group_commit_records: int) -> None:
        """Retune the WAL group-commit window (see
        :meth:`repro.wal.log.WalWriter.set_group_commit`)."""
        if self._wal is None:
            raise QueryError(
                "group-commit tuning requires a database built with wal="
            )
        self._wal.set_group_commit(group_commit_records)

    def set_cache_admission(self, fraction: float) -> None:
        """Set cache-fill admission on every cached index, now and future.

        Existing :class:`CachedBTree` indexes are retuned immediately;
        indexes created (or restored) later inherit the value at build
        time, so the knob survives DDL.
        """
        if not 0.0 <= fraction <= 1.0:
            raise QueryError(
                f"cache admission must be within [0, 1], got {fraction}"
            )
        self._cache_admission = float(fraction)
        for tentry in self._catalog.tables():
            for ientry in self._catalog.indexes_of(tentry.name):
                if isinstance(ientry.index, CachedBTree):
                    ientry.index.set_cache_admission(self._cache_admission)

    def enable_profiling(
        self,
        slow_log_size: int = 64,
        slow_threshold_ns: float = 0.0,
        max_fingerprints: int | None = None,
    ) -> "QueryProfiler":
        """Attach a :class:`~repro.obs.profiler.QueryProfiler`.

        Every table — existing and future — routes its operations through
        the profiler, which brackets each one with registry/WAL snapshots
        and charges the deltas to the query's normalized fingerprint.
        Idempotent: calling again returns the already-installed profiler.
        Profiling is strictly opt-in; until this runs, the per-operation
        cost is a single ``is not None`` test.
        """
        if self._profiler is None:
            from repro.obs.profiler import QueryProfiler

            kwargs = {}
            if max_fingerprints is not None:
                kwargs["max_fingerprints"] = max_fingerprints
            self._profiler = QueryProfiler(
                self._metrics,
                clock=self._cost,
                wal=self._wal,
                slow_log_size=slow_log_size,
                slow_threshold_ns=slow_threshold_ns,
                **kwargs,
            )
        for entry_name in self._catalog.table_names:
            self.table(entry_name).profiler = self._profiler
        return self._profiler

    @property
    def columnar(self) -> "ColumnarManager | None":
        """The columnar manager, once :meth:`enable_columnar` has run."""
        return self._columnar

    def enable_columnar(
        self, segment_rows: int | None = None, cache_entries: int = 256
    ) -> "ColumnarManager":
        """Attach the vectorized columnar executor (DESIGN.md §5h).

        Every table — existing and future — gains a column-major mirror
        of its heap: scans and aggregates whose predicate compiles to a
        batch kernel run over whole column vectors (one interpreter step
        per segment instead of per tuple), with reusable fragments cached
        under the PR-5 query fingerprint and invalidated by table epoch +
        engine CSN.  The row executor remains the oracle: unsupported
        predicates, or ``use_columnar=False``, take the unchanged row
        path.  Idempotent; strictly opt-in (until this runs, the
        per-operation cost is a single ``is not None`` test).
        """
        if self._columnar is None:
            from repro.columnar.manager import ColumnarManager
            from repro.columnar.store import SEGMENT_ROWS

            self._columnar = ColumnarManager(
                self,
                registry=self._metrics,
                segment_rows=segment_rows or SEGMENT_ROWS,
                cache_entries=cache_entries,
            )
            # Join the pool's full-obs-reset contract: a
            # ``reset_counters(reset_obs=True)`` between experiment
            # phases zeroes ``columnar.*`` alongside ``txn.*``/``wal.*``.
            self._data_pool.add_obs_reset_hook(self._columnar.reset_metrics)
        for entry_name in self._catalog.table_names:
            self._columnar.attach(self.table(entry_name))
        return self._columnar

    def enable_adaptive(
        self,
        rules=None,
        knobs=None,
        bindings=None,
        sampler: "TelemetrySampler | None" = None,
        interval_ns: float = 1_000_000.0,
        audit_capacity: int = 64,
    ) -> "AdaptiveController":
        """Attach an :class:`~repro.obs.adaptive.AdaptiveController`.

        Every table — existing and future — ticks the controller before
        each operation; the controller samples a telemetry window when
        ``interval_ns`` of *simulated* time has elapsed, judges the SLO
        rules, and steps the registered knobs (see
        :mod:`repro.obs.adaptive` for the hysteresis contract).

        Defaults wire the full loop for this database: the standard SLO
        rules (plus the WAL flush-amplification rule when a WAL is
        attached), :func:`~repro.obs.adaptive.database_knobs`, and
        :func:`~repro.obs.adaptive.default_bindings`.  Pass ``rules``/
        ``knobs``/``bindings`` explicitly to extend the loop (e.g. with
        hot/cold manager knobs).  Drivers that sample manually can hand
        in their own ``sampler`` (built on this database's cost model)
        and push points through ``controller.evaluate``.

        Idempotent: calling again returns the installed controller.
        Strictly opt-in; until this runs, the per-operation cost is a
        single ``is not None`` test.
        """
        if self._adaptive is None:
            from repro.obs.adaptive import (
                AdaptiveController,
                WAL_FLUSH_AMPLIFICATION_RULE,
                database_knobs,
                default_bindings,
            )
            from repro.obs.health import DEFAULT_SLO_RULES
            from repro.obs.sampler import TelemetrySampler

            if sampler is None:
                sampler = TelemetrySampler(
                    self._metrics, clock=self._cost, interval_ns=interval_ns
                )
            if rules is None:
                rules = DEFAULT_SLO_RULES
                if self._wal is not None:
                    rules = rules + (WAL_FLUSH_AMPLIFICATION_RULE,)
            if knobs is None:
                knobs = database_knobs(self)
            if bindings is None:
                bindings = default_bindings(knobs, rules)
            self._adaptive = AdaptiveController(
                sampler,
                rules=rules,
                knobs=knobs,
                bindings=bindings,
                registry=self._metrics,
                audit_capacity=audit_capacity,
            )
        for entry_name in self._catalog.table_names:
            self.table(entry_name).ticker = self._adaptive
        return self._adaptive

    def enable_tracing(self, capacity: int | None = None) -> "TraceCollector":
        """Attach a §5j :class:`~repro.obs.trace.TraceCollector`.

        Every table — existing and future — opens one trace per logical
        operation (auto-rooted at this facade); the WAL's group-commit
        flushes and session commit/abort nest inside whatever trace is
        active.  Finished traces land in a bounded ring, exportable as
        JSON or Chrome ``trace_event`` format.  Idempotent; strictly
        opt-in — until this runs, the per-operation cost is a single
        ``is None`` test per hook.
        """
        if self._trace is None:
            from repro.obs.trace import DEFAULT_TRACE_RING, TraceCollector

            self._trace = TraceCollector(
                clock=self._cost,
                registry=self._metrics,
                capacity=capacity or DEFAULT_TRACE_RING,
            )
            if self._wal is not None:
                self._wal.trace = self._trace
            if self._journal is not None:
                self._journal.trace_source = self._trace
        for entry_name in self._catalog.table_names:
            self.table(entry_name).trace = self._trace
        return self._trace

    def enable_events(self, capacity: int | None = None) -> "EventJournal":
        """Attach a §5j :class:`~repro.obs.events.EventJournal`.

        Checkpoints, fault heal transitions, recovery phases, tuning
        actions, and SLO breach/clear transitions journal themselves as
        causally-ordered typed events; with tracing also enabled each
        event carries the active trace id.  Idempotent; strictly opt-in
        (one ``is None`` test per emit site until this runs).
        """
        if self._journal is None:
            from repro.obs.events import (
                DEFAULT_JOURNAL_CAPACITY,
                EventJournal,
            )

            self._journal = EventJournal(
                clock=self._cost,
                registry=self._metrics,
                capacity=capacity or DEFAULT_JOURNAL_CAPACITY,
                trace_source=self._trace,
            )
        if self._wal is not None:
            self._wal.journal = self._journal
        if self._recovery is not None:
            self._recovery.journal = self._journal
        if self._adaptive is not None:
            self._adaptive.journal = self._journal
        return self._journal

    def attach_tracing(self, collector, shard: int | None = None) -> None:
        """Adopt an externally owned trace collector (the sharded
        facade's), tagging this engine's spans with ``shard``."""
        self._trace = collector
        self._trace_shard = shard
        if self._wal is not None:
            self._wal.trace = collector
            self._wal.journal_shard = shard
        if self._journal is not None:
            self._journal.trace_source = collector
        for entry_name in self._catalog.table_names:
            table = self.table(entry_name)
            table.trace = collector
            table.trace_shard = shard

    def attach_events(self, journal, shard: int | None = None) -> None:
        """Adopt an externally owned event journal (the sharded
        facade's), tagging this engine's events with ``shard``."""
        self._journal = journal
        self._journal_shard = shard
        if self._wal is not None:
            self._wal.journal = journal
            self._wal.journal_shard = shard
        if self._recovery is not None:
            self._recovery.journal = journal
            self._recovery.journal_shard = shard
        if self._adaptive is not None:
            self._adaptive.journal = journal

    def checkpoint(self) -> int:
        """Append a fuzzy checkpoint record (see
        :meth:`repro.wal.log.WalWriter.checkpoint`); returns its LSN."""
        if self._wal is None:
            raise QueryError("checkpoint requires a database built with wal=")
        return self._wal.checkpoint(self)

    @property
    def recovery(self) -> "RecoveryManager":
        """Lazily built self-healing driver for this database.

        Wrap fallible operations as ``db.recovery.call(fn, ...)`` to heal
        corrupt index pages (rebuild from heap) and retry transparently.
        """
        if self._recovery is None:
            from repro.faults.recovery import RecoveryManager

            self._recovery = RecoveryManager(self, registry=self._metrics)
            if self._journal is not None:
                self._recovery.journal = self._journal
                self._recovery.journal_shard = self._journal_shard
        return self._recovery

    def check(self) -> "CheckReport":
        """Run the :func:`repro.faults.checker.check_database` invariant
        walk over every table and index of this database."""
        from repro.faults.checker import check_database

        return check_database(self)

    # -- transactions ------------------------------------------------------------

    @property
    def txn_manager(self) -> "TransactionManager":
        """Lazily built MVCC transaction manager (see DESIGN.md §5g).

        One manager per database: it owns the CSN sequence, the
        per-tuple version store, and the write-claim table every
        session's conflict checks go through.
        """
        if self._txn_manager is None:
            from repro.txn.manager import TransactionManager

            self._txn_manager = TransactionManager(self, registry=self._metrics)
            # Join the pool's full-obs-reset contract: a
            # ``reset_counters(reset_obs=True)`` between experiment
            # phases zeroes ``txn.*`` alongside ``faults.*``/``wal.*``.
            self._data_pool.add_obs_reset_hook(self._txn_manager.reset_metrics)
        return self._txn_manager

    def session(self) -> "Session":
        """Open a logical client session — ``begin()``, snapshot reads
        and writes, ``commit()``/``abort()`` with first-writer-wins
        conflict detection.  Works with or without a WAL (without one,
        commits are not durable but isolation semantics are identical).
        """
        return self.txn_manager.session()

    # -- DDL --------------------------------------------------------------------

    def create_table(
        self, name: str, schema: Schema, append_only: bool = False
    ) -> Table:
        """Create an empty table."""
        heap = HeapFile(self._data_pool, append_only=append_only)
        table = Table(
            name, schema, heap, tracer=self._tracer, wal=self._wal,
            profiler=self._profiler,
        )
        self._catalog.register_table(name, schema, table)
        if self._adaptive is not None:
            table.ticker = self._adaptive
        if self._columnar is not None:
            self._columnar.attach(table)
        if self._trace is not None:
            table.trace = self._trace
            table.trace_shard = self._trace_shard
        if self._wal is not None:
            self._wal.log_create_table(table_meta(name, schema, heap))
        return table

    def create_index(
        self,
        table_name: str,
        index_name: str,
        key_columns: tuple[str, ...],
        split_fraction: float = 0.5,
    ) -> PlainIndex:
        """Create a classic (uncached) unique index on an empty table."""
        table = self.table(table_name)
        self._require_empty(table, index_name)
        codec = codec_for_columns(
            [table.schema.column(c) for c in key_columns]
        )
        tree = BPlusTree(
            self._index_pool, codec.size, RID_SIZE, name=index_name,
            split_fraction=split_fraction, registry=self._metrics,
        )
        index = PlainIndex(tree, table.heap, table.schema, key_columns)
        table.attach_index(index_name, index)
        entry = self._catalog.register_index(
            index_name, table_name, tuple(key_columns), index
        )
        if self._wal is not None:
            self._wal.log_create_index(index_meta(entry))
        return index

    def create_cached_index(
        self,
        table_name: str,
        index_name: str,
        key_columns: tuple[str, ...],
        cached_fields: tuple[str, ...],
        policy: CachePolicy | None = None,
        invalidation_log_threshold: int = 1024,
        latch_contention: float = 0.0,
        split_fraction: float = 0.5,
    ) -> CachedBTree:
        """Create a §2.1 cached index on an empty table."""
        table = self.table(table_name)
        self._require_empty(table, index_name)
        codec = codec_for_columns(
            [table.schema.column(c) for c in key_columns]
        )
        tree = BPlusTree(
            self._index_pool, codec.size, RID_SIZE, name=index_name,
            split_fraction=split_fraction, registry=self._metrics,
        )
        index = CachedBTree(
            tree,
            table.heap,
            table.schema,
            key_columns,
            cached_fields,
            policy=policy,
            # crc32, not hash(): str hashes are salted per process
            # (PYTHONHASHSEED), which made the swap policy's random
            # walk — and thus cache layout and metrics — differ
            # between otherwise identical runs.
            rng=self._rng.child(zlib.crc32(index_name.encode()) & 0xFFFF),
            invalidation=CacheInvalidation(
                invalidation_log_threshold, registry=self._metrics
            ),
            latch=LatchSimulator(latch_contention, self._rng.child(0x1A7C)),
            cost_model=self._cost,
            registry=self._metrics,
        )
        if self._cache_admission != 1.0:
            index.set_cache_admission(self._cache_admission)
        table.attach_index(index_name, index)
        entry = self._catalog.register_index(
            index_name, table_name, tuple(key_columns), index
        )
        if self._wal is not None:
            self._wal.log_create_index(index_meta(entry))
        return index

    # -- recovery DDL ------------------------------------------------------------
    #
    # The restore_* constructors are the WAL replayer's side door: they
    # re-register catalog objects over *existing* data (adopted heap
    # pages, indexes rebuilt from those heaps) and therefore skip both
    # the empty-table restriction and DDL logging — the log already
    # contains the original CREATE records.

    def restore_table(
        self,
        name: str,
        schema: Schema,
        page_ids: list[int],
        append_only: bool = False,
    ) -> Table:
        """Register a table over existing heap pages (WAL replay)."""
        heap = HeapFile(self._data_pool, append_only=append_only)
        heap.adopt_pages(list(page_ids))
        table = Table(
            name, schema, heap, tracer=self._tracer, wal=self._wal,
            profiler=self._profiler,
        )
        self._catalog.register_table(name, schema, table)
        if self._adaptive is not None:
            table.ticker = self._adaptive
        if self._columnar is not None:
            self._columnar.attach(table)
        if self._trace is not None:
            table.trace = self._trace
            table.trace_shard = self._trace_shard
        return table

    def restore_index(
        self,
        table_name: str,
        index_name: str,
        key_columns: tuple[str, ...],
        split_fraction: float = 0.5,
    ) -> PlainIndex:
        """Recreate a plain index and bulk-load it from the (restored)
        heap — indexes are derived data, never redone record-by-record."""
        table = self.table(table_name)
        codec = codec_for_columns(
            [table.schema.column(c) for c in key_columns]
        )
        tree = BPlusTree(
            self._index_pool, codec.size, RID_SIZE, name=index_name,
            split_fraction=split_fraction, registry=self._metrics,
        )
        index = PlainIndex(tree, table.heap, table.schema, key_columns)
        index.rebuild_from_heap()
        table.attach_index(index_name, index)
        self._catalog.register_index(
            index_name, table_name, tuple(key_columns), index
        )
        return index

    def restore_cached_index(
        self,
        table_name: str,
        index_name: str,
        key_columns: tuple[str, ...],
        cached_fields: tuple[str, ...],
        policy: CachePolicy | None = None,
        invalidation_log_threshold: int = 1024,
        latch_contention: float = 0.0,
        split_fraction: float = 0.5,
    ) -> CachedBTree:
        """Recreate a §2.1 cached index from the (restored) heap.

        The cache itself starts cold: cached tuple copies are the most
        derived data of all and are simply dropped by a crash.
        """
        table = self.table(table_name)
        codec = codec_for_columns(
            [table.schema.column(c) for c in key_columns]
        )
        tree = BPlusTree(
            self._index_pool, codec.size, RID_SIZE, name=index_name,
            split_fraction=split_fraction, registry=self._metrics,
        )
        index = CachedBTree(
            tree,
            table.heap,
            table.schema,
            key_columns,
            cached_fields,
            policy=policy,
            rng=self._rng.child(zlib.crc32(index_name.encode()) & 0xFFFF),
            invalidation=CacheInvalidation(
                invalidation_log_threshold, registry=self._metrics
            ),
            latch=LatchSimulator(latch_contention, self._rng.child(0x1A7C)),
            cost_model=self._cost,
            registry=self._metrics,
        )
        if self._cache_admission != 1.0:
            index.set_cache_admission(self._cache_admission)
        index.rebuild_from_heap()
        table.attach_index(index_name, index)
        self._catalog.register_index(
            index_name, table_name, tuple(key_columns), index
        )
        return index

    def drop_table(self, name: str) -> None:
        """Remove a table from the catalog (pages are not reclaimed —
        the simulated disk only grows, like a real tablespace file)."""
        self._catalog.drop_table(name)

    # -- access -----------------------------------------------------------------

    def table(self, name: str) -> Table:
        entry = self._catalog.table(name)
        table = entry.table
        if not isinstance(table, Table):  # pragma: no cover - registration bug
            raise CatalogError(f"catalog entry {name!r} is not a Table")
        return table

    # -- internals ---------------------------------------------------------------

    @staticmethod
    def _require_empty(table: Table, index_name: str) -> None:
        if table.num_rows:
            raise QueryError(
                f"cannot create index {index_name!r}: table "
                f"{table.name!r} already has rows (no back-fill support)"
            )
