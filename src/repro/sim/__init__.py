"""Simulated-time cost model and metric helpers for the experiments."""

from repro.sim.cost_model import (
    CostModel,
    CostPreset,
    END_TO_END_PRESET,
    PAPER_PRESET,
)
from repro.sim.metrics import LookupMetrics

__all__ = [
    "CostModel",
    "CostPreset",
    "END_TO_END_PRESET",
    "PAPER_PRESET",
    "LookupMetrics",
]
