"""Deterministic cost model: the substitute for the authors' testbed.

The paper's Figures 2(b), 2(c), and 3 report wall-clock per-lookup costs on
the authors' hardware.  We cannot (and need not) reproduce absolute times
from Python; what must hold is the *shape*: which configuration wins, where
lines cross, and the approximate factors.  Those are fully determined by
four latency constants:

* ``index_descent_ns`` — traversing the in-memory index to a leaf.
* ``cache_probe_ns`` — scanning a leaf's cache slots (the paper measures
  this overhead as ~0.3 µs in Fig. 2c).
* ``bp_access_ns`` — fetching a tuple from a buffer-pool-resident heap
  page.  Calibrated from Fig. 2c: the cache/nocache crossover sits at a
  ~35% cache hit rate, i.e. ``cache_probe = 0.35 × bp_access``.
* ``disk_read_ns`` — a random page read on a buffer-pool miss (~ms scale).

With these, Fig. 2c's end-to-end 2.7× improvement at 100% cache hit rate
and Fig. 2b's orders-of-magnitude spread across buffer-pool hit rates both
emerge from the model rather than being painted on.

The model doubles as the buffer pool's :class:`~repro.storage.buffer_pool.
CostHook`, so full-engine experiments (Fig. 3) charge the same constants.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class CostPreset:
    """Latency constants, in simulated nanoseconds."""

    index_descent_ns: float = 28.0
    cache_probe_ns: float = 300.0
    bp_access_ns: float = 857.0
    disk_read_ns: float = 5_000_000.0
    disk_write_ns: float = 5_000_000.0
    #: Fixed per-query execution overhead (parse/plan/execute).  Zero for
    #: the Fig-2 micro-benchmarks, which time the storage path alone;
    #: the Fig-3 end-to-end experiment uses a MySQL-era ~0.4 ms so its
    #: speedup ratios are measured against a realistic per-query floor,
    #: as the paper's were.
    query_overhead_ns: float = 0.0

    @property
    def nocache_lookup_ns(self) -> float:
        """Analytic cost of an in-memory lookup without index caching."""
        return self.index_descent_ns + self.bp_access_ns


#: Constants calibrated to the paper's Figure 2(c):
#: overhead 0.3 us, crossover at ~35% hit rate, 2.7x at 100%.
PAPER_PRESET = CostPreset()

#: End-to-end preset for Figure 3: same storage constants plus the
#: per-query execution floor.
END_TO_END_PRESET = CostPreset(query_overhead_ns=400_000.0)


@dataclass
class _Counters:
    bp_hits: int = 0
    bp_misses: int = 0
    disk_writes: int = 0
    cache_probes: int = 0
    index_descents: int = 0


class CostModel:
    """A simulated clock charged per storage event.

    Implements the buffer pool's cost hook protocol (``on_bp_hit`` /
    ``on_bp_miss`` / ``on_disk_write``) and offers explicit charges for the
    index-path events the buffer pool cannot see (descents, cache probes).
    """

    def __init__(self, preset: CostPreset = PAPER_PRESET) -> None:
        self._preset = preset
        self._now_ns = 0.0
        self._counters = _Counters()

    # -- clock --------------------------------------------------------------

    @property
    def preset(self) -> CostPreset:
        return self._preset

    @property
    def now_ns(self) -> float:
        """Simulated time elapsed since construction or :meth:`reset`."""
        return self._now_ns

    def reset(self) -> None:
        """Zero the clock and all event counters."""
        self._now_ns = 0.0
        self._counters = _Counters()

    def charge(self, ns: float) -> None:
        """Advance the clock by an arbitrary amount (experiment glue)."""
        self._now_ns += ns

    # -- buffer-pool hook protocol -------------------------------------------

    def on_bp_hit(self) -> None:
        self._counters.bp_hits += 1
        self._now_ns += self._preset.bp_access_ns

    def on_bp_miss(self) -> None:
        self._counters.bp_misses += 1
        self._now_ns += self._preset.bp_access_ns + self._preset.disk_read_ns

    def on_disk_write(self) -> None:
        self._counters.disk_writes += 1
        self._now_ns += self._preset.disk_write_ns

    # -- index-path charges ----------------------------------------------------

    def on_query(self) -> None:
        """Charge the fixed per-query execution overhead."""
        self._now_ns += self._preset.query_overhead_ns

    def on_index_descent(self) -> None:
        """Charge one in-memory root-to-leaf traversal."""
        self._counters.index_descents += 1
        self._now_ns += self._preset.index_descent_ns

    def on_cache_probe(self) -> None:
        """Charge one scan of a leaf's cache slots (§2.1.1)."""
        self._counters.cache_probes += 1
        self._now_ns += self._preset.cache_probe_ns

    # -- counters ---------------------------------------------------------------

    @property
    def bp_hits(self) -> int:
        return self._counters.bp_hits

    @property
    def bp_misses(self) -> int:
        return self._counters.bp_misses

    @property
    def disk_writes(self) -> int:
        return self._counters.disk_writes

    @property
    def cache_probes(self) -> int:
        return self._counters.cache_probes

    @property
    def index_descents(self) -> int:
        return self._counters.index_descents

    # -- analytic expectations (used by Fig 2b/2c and their tests) -----------

    def expected_lookup_ns(
        self, cache_hit_rate: float, bp_hit_rate: float, cached: bool = True
    ) -> float:
        """Closed-form per-lookup cost at the given hit rates.

        ``cached=False`` models the paper's ``nocache`` baseline: every
        lookup pays the buffer-pool access (and the disk read on a pool
        miss), with no probe overhead.
        """
        p = self._preset
        heap_access = p.bp_access_ns + (1.0 - bp_hit_rate) * p.disk_read_ns
        if not cached:
            return p.index_descent_ns + heap_access
        return (
            p.index_descent_ns
            + p.cache_probe_ns
            + (1.0 - cache_hit_rate) * heap_access
        )
