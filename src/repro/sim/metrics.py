"""Derived per-lookup metrics collected while driving a workload.

:class:`LookupMetrics` predates the engine-wide :mod:`repro.obs` registry;
it now *is* a thin view over registry instruments (a hit/miss counter pair
plus a ``cost_ns`` histogram) kept for back-compat with the experiments
and their tests.  Pass an explicit registry to fold a workload's lookup
stream into a shared snapshot; the default is a private registry so the
historical ``LookupMetrics()`` construction keeps working unchanged.
"""

from __future__ import annotations

from repro.obs.registry import MetricsRegistry
from repro.sim.cost_model import CostModel
from repro.util.units import NS_PER_MS, NS_PER_US


class LookupMetrics:
    """Accumulates lookups against a cost model and derives rates."""

    def __init__(
        self,
        registry: MetricsRegistry | None = None,
        prefix: str = "lookup",
    ) -> None:
        if registry is None:
            registry = MetricsRegistry()
        self._registry = registry
        self._prefix = prefix
        self._hits = registry.counter(f"{prefix}.hit")
        self._misses = registry.counter(f"{prefix}.miss")
        self._cost = registry.histogram(f"{prefix}.cost_ns")

    @property
    def registry(self) -> MetricsRegistry:
        return self._registry

    def record(self, hit: bool, cost_ns: float) -> None:
        """Fold one lookup's outcome into the totals."""
        if hit:
            self._hits.inc()
        else:
            self._misses.inc()
        self._cost.record(cost_ns)

    # -- derived rates (the historical dataclass surface) ---------------------

    @property
    def lookups(self) -> int:
        return self._cost.count

    @property
    def cache_hits(self) -> int:
        return self._hits.value

    @property
    def cache_misses(self) -> int:
        return self._misses.value

    @property
    def total_cost_ns(self) -> float:
        return self._cost.sum

    @property
    def cache_hit_rate(self) -> float:
        return self.cache_hits / self.lookups if self.lookups else 0.0

    @property
    def cost_per_lookup_ns(self) -> float:
        return self.total_cost_ns / self.lookups if self.lookups else 0.0

    @property
    def cost_per_lookup_us(self) -> float:
        return self.cost_per_lookup_ns / NS_PER_US

    @property
    def cost_per_lookup_ms(self) -> float:
        return self.cost_per_lookup_ns / NS_PER_MS


class PhaseTimer:
    """Measures simulated time across an experiment phase.

    Usage::

        timer = PhaseTimer(cost_model)
        ... drive workload ...
        elapsed = timer.elapsed_ns
    """

    def __init__(self, cost_model: CostModel) -> None:
        self._cost_model = cost_model
        self._start_ns = cost_model.now_ns

    @property
    def elapsed_ns(self) -> float:
        return self._cost_model.now_ns - self._start_ns

    def restart(self) -> None:
        self._start_ns = self._cost_model.now_ns
