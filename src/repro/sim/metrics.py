"""Derived per-lookup metrics collected while driving a workload."""

from __future__ import annotations

from dataclasses import dataclass

from repro.sim.cost_model import CostModel
from repro.util.units import NS_PER_MS, NS_PER_US


@dataclass
class LookupMetrics:
    """Accumulates lookups against a cost model and derives rates."""

    lookups: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    total_cost_ns: float = 0.0

    def record(self, hit: bool, cost_ns: float) -> None:
        """Fold one lookup's outcome into the totals."""
        self.lookups += 1
        if hit:
            self.cache_hits += 1
        else:
            self.cache_misses += 1
        self.total_cost_ns += cost_ns

    @property
    def cache_hit_rate(self) -> float:
        return self.cache_hits / self.lookups if self.lookups else 0.0

    @property
    def cost_per_lookup_ns(self) -> float:
        return self.total_cost_ns / self.lookups if self.lookups else 0.0

    @property
    def cost_per_lookup_us(self) -> float:
        return self.cost_per_lookup_ns / NS_PER_US

    @property
    def cost_per_lookup_ms(self) -> float:
        return self.cost_per_lookup_ns / NS_PER_MS


class PhaseTimer:
    """Measures simulated time across an experiment phase.

    Usage::

        timer = PhaseTimer(cost_model)
        ... drive workload ...
        elapsed = timer.elapsed_ns
    """

    def __init__(self, cost_model: CostModel) -> None:
        self._cost_model = cost_model
        self._start_ns = cost_model.now_ns

    @property
    def elapsed_ns(self) -> float:
        return self._cost_model.now_ns - self._start_ns

    def restart(self) -> None:
        self._start_ns = self._cost_model.now_ns
