"""Deterministic interleaving of N client sessions on the CostModel clock.

There are no threads anywhere in this simulation — "concurrency" is a
scheduler round-robin over generator-based client scripts, one logical
step per resumption.  That buys exact reproducibility: a seed fully
determines the interleaving (and therefore every conflict, every group-
commit batch composition, and every crash-point state), while
:func:`interleavings` enumerates *every* schedule of small scripts for
exhaustive isolation-invariant checks.

A client script is a generator function ``script(client_index, session)``
that yields between steps::

    def client(i, session):
        session.begin()
        yield
        session.update("accounts", i, {"balance": 0})
        yield
        session.commit()

Scripts end by returning; exceptions propagate to :meth:`SimScheduler.run`
unless they are conflict aborts, which mark the script finished (the
losing transaction is already rolled back — retry is a new script).
"""

from __future__ import annotations

from repro.errors import TxnConflictError, TxnError
from repro.util.rng import DeterministicRng

#: Simulated cost of one scheduler dispatch (context-switch stand-in).
SCHEDULER_STEP_NS = 150.0


class SimScheduler:
    """Seeded (or explicitly scheduled) interleaver of client scripts."""

    def __init__(self, db, n_sessions: int, seed: int = 0) -> None:
        if n_sessions < 1:
            raise TxnError("SimScheduler needs at least one session")
        self._db = db
        self._sessions = [db.session() for _ in range(n_sessions)]
        self._rng = DeterministicRng(seed).child(0xC0DE)
        self._trace: list[int] = []
        self.conflicts = 0

    @property
    def sessions(self) -> list:
        return self._sessions

    @property
    def trace(self) -> tuple[int, ...]:
        """Session index dispatched at each completed step."""
        return tuple(self._trace)

    def run(self, make_script, schedule=None) -> tuple[int, ...]:
        """Drive every session's script to completion; returns the trace.

        ``make_script(i, session)`` builds client ``i``'s generator.
        With ``schedule`` (an iterable of session indexes) the dispatch
        order is exactly that sequence — indexes of finished scripts are
        skipped — otherwise the seeded policy picks uniformly among
        unfinished scripts.  Each dispatch charges
        :data:`SCHEDULER_STEP_NS` to the CostModel clock.
        """
        scripts = [
            make_script(i, session) for i, session in enumerate(self._sessions)
        ]
        live = set(range(len(scripts)))
        planned = list(schedule) if schedule is not None else None
        cost = getattr(self._db, "cost_model", None)
        while live:
            if planned is not None:
                idx = None
                while planned:
                    candidate = planned.pop(0)
                    if candidate in live:
                        idx = candidate
                        break
                if idx is None:
                    idx = sorted(live)[0]
            else:
                idx = sorted(live)[self._rng.randrange(len(live))]
            if cost is not None:
                cost.charge(SCHEDULER_STEP_NS)
            try:
                next(scripts[idx])
            except StopIteration:
                live.discard(idx)
            except TxnConflictError:
                # The loser is already rolled back; its script is over.
                self.conflicts += 1
                live.discard(idx)
            self._trace.append(idx)
        return tuple(self._trace)


def interleavings(step_counts: list[int]):
    """Yield every merge order of ``len(step_counts)`` scripts.

    Each schedule is a tuple of script indexes in which script ``i``
    appears exactly ``step_counts[i]`` times, in order — the full
    schedule space the exhaustive isolation matrix walks (for two
    scripts of n and m steps that is C(n+m, n) schedules).
    """
    def rec(remaining):
        if not any(remaining):
            yield ()
            return
        for i, left in enumerate(remaining):
            if left:
                rest = list(remaining)
                rest[i] -= 1
                for tail in rec(rest):
                    yield (i,) + tail

    yield from rec(list(step_counts))
