"""Transaction-aware oracle folds over a WAL record sequence.

Two independent ways to compute "the state a correct engine must be in"
from a (possibly crash-truncated) log:

* :func:`committed_positional_fold` — physical: fold heap ops slot by
  slot, skipping records of in-flight transactions (those past the
  durable prefix's last TXN_COMMIT/TXN_ABORT).  Aborted transactions
  need no skipping: their compensation records net them out.
* :func:`serial_fold` — logical: replay committed transactions one at a
  time **in commit-CSN order** (after the autocommit base load), keyed
  by identity column.  This is the serial execution the snapshot-
  isolation schedule must be equivalent to for write sets.

Crash tests assert recovered-engine state == both folds; agreement of
the physical and logical folds is itself evidence the conflict rules
admitted only serializable write interleavings.
"""

from __future__ import annotations

from repro.schema.record import unpack_record_map
from repro.wal.record import HEAP_OP_TYPES, RecordType, WalRecord


def txn_outcomes(records) -> tuple[dict[int, int], set[int], set[int]]:
    """Classify every txn id in ``records``.

    Returns ``(committed, aborted, in_flight)`` where ``committed`` maps
    txn id -> commit CSN.  Txn id 0 (autocommit) is never classified.
    """
    seen: set[int] = set()
    committed: dict[int, int] = {}
    aborted: set[int] = set()
    for rec in records:
        if rec.txn_id:
            seen.add(rec.txn_id)
        if rec.rtype is RecordType.TXN_COMMIT:
            committed[rec.txn_id] = rec.csn
        elif rec.rtype is RecordType.TXN_ABORT:
            aborted.add(rec.txn_id)
    in_flight = seen - set(committed) - aborted
    return committed, aborted, in_flight


def committed_positional_fold(records) -> dict[tuple, bytes]:
    """``(table, page_id, slot) -> payload`` of the committed prefix.

    In-flight transactions' heap ops are skipped.  That is positionally
    safe because an in-flight op never *frees* a slot another record
    could reuse: inserts/updates keep their slots occupied, and DELETE
    records are deferred to the commit protocol (logged contiguously
    just before TXN_COMMIT), so an in-flight transaction's deletes can
    only sit at the torn end of the log with nothing after them.
    """
    _, _, in_flight = txn_outcomes(records)
    state: dict[tuple, bytes] = {}
    for rec in records:
        if rec.rtype not in HEAP_OP_TYPES or rec.txn_id in in_flight:
            continue
        addr = (rec.table, rec.page_id, rec.slot)
        if rec.rtype is RecordType.DELETE:
            state.pop(addr, None)
        else:
            state[addr] = rec.payload
    return state


def serial_fold(
    records, table_name: str, schema, key_column: str
) -> dict[object, dict]:
    """``key -> row`` by serial replay of committed txns in CSN order.

    The autocommit stream (txn id 0) is applied first in log order —
    it is the pre-concurrency base load.  Each committed transaction's
    logical ops then apply atomically in commit order; DELETE ops are
    resolved to their key via the positional pre-image at the point the
    record was logged.  Aborted transactions contribute nothing (ops
    and compensations share a txn id and are excluded wholesale).
    """
    committed, _, _ = txn_outcomes(records)
    pos: dict[tuple[int, int], bytes] = {}
    base_ops: list[tuple[RecordType, object, dict | None]] = []
    txn_ops: dict[int, list[tuple[RecordType, object, dict | None]]] = {}
    for rec in records:
        if rec.rtype not in HEAP_OP_TYPES or rec.table != table_name:
            continue
        addr = (rec.page_id, rec.slot)
        if rec.rtype is RecordType.DELETE:
            row = unpack_record_map(schema, pos[addr])
            pos.pop(addr, None)
        else:
            row = unpack_record_map(schema, rec.payload)
            pos[addr] = rec.payload
        op = (rec.rtype, row[key_column], row)
        if rec.txn_id == 0:
            base_ops.append(op)
        elif rec.txn_id in committed:
            txn_ops.setdefault(rec.txn_id, []).append(op)
    rows: dict[object, dict] = {}
    def apply(ops):
        for rtype, key, row in ops:
            if rtype is RecordType.DELETE:
                rows.pop(key, None)
            else:
                rows[key] = row
    apply(base_ops)
    for txn_id in sorted(committed, key=committed.get):
        apply(txn_ops.get(txn_id, []))
    return rows
