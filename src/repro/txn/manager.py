"""MVCC transactions over the redo-only WAL.

The engine's index cache already tracks a commit sequence number (CSN)
for invalidation; this module generalises it into **per-tuple
visibility** — classic snapshot isolation:

* :meth:`Session.begin` pins the current CSN as the transaction's
  *snapshot*; every read resolves to the newest committed version with
  ``csn <= begin_csn`` (plus the session's own writes).
* Inserts and updates apply to the heap immediately — stamped with the
  transaction's id in their redo records — but stay invisible to other
  sessions: the manager keeps a committed **version chain** per identity
  key, seeded with the pre-write committed row, and readers of a tracked
  key never touch the dirty heap row.  **Deletes are deferred**: the
  physical delete (and its redo record) happens inside :meth:`commit`,
  immediately before the ``TXN_COMMIT`` record.  An uncommitted delete
  therefore never frees a heap slot — so no later transaction can reuse
  the slot while the deleter might still roll back, which is exactly
  what keeps positional (rid-level) undo and log folds sound.
* Conflicts are **first-writer-wins** on write/write: touching a key
  with a pending write by another live transaction, or a committed
  version newer than the snapshot, rolls the toucher back and raises
  :class:`~repro.errors.TxnConflictError`.
* :meth:`Session.commit` allocates the commit CSN, appends a
  ``TXN_COMMIT`` record (group-committed across sessions — the commit
  is durable iff that frame reaches the device), and publishes the
  version chain.
* :meth:`Session.abort` undoes in reverse op order by issuing
  **compensation records** — ordinary INSERT/UPDATE/DELETE redo records
  carrying the same ``txn_id`` — so recovery stays redo-only: replaying
  the whole log positionally reproduces the net (rolled-back) state,
  and the crash matrix applies unchanged.

Everything is synchronous and deterministic: "concurrency" is N logical
sessions interleaved by :class:`repro.txn.scheduler.SimScheduler` on the
CostModel clock, which is exactly what makes crash-during-concurrent-
commit reproducible.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import (
    DuplicateKeyError,
    TxnConflictError,
    TxnStateError,
)
from repro.obs.registry import MetricsRegistry, resolve_registry
from repro.wal.record import RecordType, scan_wal

#: Version-chain key: ``(table_name, encoded_identity_key)``.
VKey = tuple


@dataclass(frozen=True)
class _Version:
    """One committed version of a row (``value=None`` = deleted)."""

    csn: int
    value: dict | None


@dataclass
class SessionStats:
    """Per-session attribution counters (mirrors the global ``txn.*``
    instruments, scoped to one logical client for experiment output)."""

    begins: int = 0
    commits: int = 0
    aborts: int = 0
    conflicts: int = 0
    reads: int = 0
    writes: int = 0


class TransactionManager:
    """CSN allocator, version store, and conflict detector for one db."""

    def __init__(self, db, registry: MetricsRegistry | None = None) -> None:
        self._db = db
        reg = resolve_registry(registry if registry is not None else db.metrics)
        self._versions: dict[VKey, list[_Version]] = {}
        self._pending: dict[VKey, int] = {}
        self._active: dict[int, Session] = {}
        self._next_session_id = 1
        # Continue the txn-id / CSN sequences of whatever the WAL already
        # holds (a manager over a recovered database must not reuse ids).
        max_txn = 0
        max_csn = 0
        if db.wal is not None:
            for rec in scan_wal(db.wal.all_bytes()).records:
                if rec.txn_id > max_txn:
                    max_txn = rec.txn_id
                if rec.rtype is RecordType.TXN_COMMIT:
                    max_csn = max(max_csn, rec.csn)
        self._next_txn_id = max_txn + 1
        self._current_csn = max_csn
        self._m_sessions = reg.counter("txn.sessions")
        self._m_begins = reg.counter("txn.begins")
        self._m_commits = reg.counter("txn.commits")
        self._m_aborts = reg.counter("txn.aborts")
        self._m_conflicts = reg.counter("txn.conflicts")
        self._m_undo = reg.counter("txn.undo_records")
        self._m_active = reg.gauge("txn.active")
        self._m_tracked = reg.gauge("txn.tracked_keys")
        self._m_snapshot_age = reg.histogram("txn.snapshot_age")

    def reset_metrics(self) -> None:
        """Zero the ``txn.*`` counters and histogram; re-sync the gauges.

        Same contract as the pool's ``faults.*`` reset: counters restart
        from zero for a fresh experiment phase, while ``txn.active`` and
        ``txn.tracked_keys`` are state gauges and re-read current state.
        """
        self._m_sessions.reset()
        self._m_begins.reset()
        self._m_commits.reset()
        self._m_aborts.reset()
        self._m_conflicts.reset()
        self._m_undo.reset()
        self._m_snapshot_age.reset()
        self._m_active.set(float(len(self._active)))
        self._m_tracked.set(float(len(self._versions)))

    # -- properties ----------------------------------------------------------

    @property
    def database(self):
        return self._db

    @property
    def current_csn(self) -> int:
        """CSN of the most recent commit (new snapshots read this)."""
        return self._current_csn

    @property
    def active_txns(self) -> int:
        return len(self._active)

    @property
    def tracked_keys(self) -> int:
        """Identity keys currently carrying a version chain."""
        return len(self._versions)

    def session(self) -> "Session":
        """Open a new logical client session (idle until ``begin()``)."""
        sid = self._next_session_id
        self._next_session_id += 1
        self._m_sessions.inc()
        return Session(self, sid)

    # -- txn lifecycle (called by Session) ------------------------------------

    def _begin(self, session: "Session") -> int:
        txn_id = self._next_txn_id
        self._next_txn_id += 1
        self._active[txn_id] = session
        self._m_begins.inc()
        self._m_active.set(float(len(self._active)))
        return txn_id

    def _end(self, txn_id: int, begin_csn: int) -> None:
        self._active.pop(txn_id, None)
        self._m_active.set(float(len(self._active)))
        self._m_snapshot_age.record(self._current_csn - begin_csn)
        self._prune()

    def _allocate_csn(self) -> int:
        return self._current_csn + 1

    def _publish(self, txn_id: int, csn: int, writes: dict[VKey, dict | None]) -> None:
        for vkey, value in writes.items():
            chain = self._versions.setdefault(vkey, [])
            chain.append(_Version(csn, dict(value) if value is not None else None))
            if self._pending.get(vkey) == txn_id:
                del self._pending[vkey]
        self._current_csn = csn
        self._m_commits.inc()
        self._m_tracked.set(float(len(self._versions)))

    def _release(self, txn_id: int, vkeys) -> None:
        """Drop an aborting transaction's pending claims."""
        for vkey in vkeys:
            if self._pending.get(vkey) == txn_id:
                del self._pending[vkey]
        self._m_aborts.inc()

    # -- visibility ----------------------------------------------------------

    def _is_tracked(self, vkey: VKey) -> bool:
        return vkey in self._versions

    def _visible(self, vkey: VKey, begin_csn: int) -> tuple[bool, dict | None]:
        """``(tracked, row)`` — newest committed version at the snapshot.

        Untracked keys return ``(False, None)``: the caller reads the
        heap, which holds only committed data for keys no transaction
        has ever claimed.
        """
        chain = self._versions.get(vkey)
        if chain is None:
            return False, None
        for version in reversed(chain):
            if version.csn <= begin_csn:
                return True, version.value
        # Tracked but born after this snapshot: invisible.
        return True, None

    def _check_conflict(self, txn_id: int, begin_csn: int, vkey: VKey) -> None:
        holder = self._pending.get(vkey)
        if holder is not None and holder != txn_id:
            self._m_conflicts.inc()
            raise TxnConflictError(
                f"txn {txn_id}: key {vkey!r} has a pending write by txn {holder}"
            )
        chain = self._versions.get(vkey)
        if chain and chain[-1].csn > begin_csn:
            self._m_conflicts.inc()
            raise TxnConflictError(
                f"txn {txn_id}: key {vkey!r} committed csn {chain[-1].csn} "
                f"after snapshot {begin_csn}"
            )

    def _claim(self, txn_id: int, vkey: VKey, committed_row: dict | None) -> None:
        """Mark ``vkey`` write-pending and seed its version chain.

        The seed version carries CSN 0 — it is the committed state from
        before any tracking, visible to every snapshot — so readers of
        this key stop consulting the (about to be dirtied) heap row.
        """
        if vkey not in self._versions:
            self._versions[vkey] = [
                _Version(0, dict(committed_row) if committed_row is not None else None)
            ]
            self._m_tracked.set(float(len(self._versions)))
        self._pending[vkey] = txn_id

    def _prune(self) -> None:
        """Garbage-collect version chains no live snapshot can need.

        The floor is the oldest active snapshot (or the current CSN when
        idle): versions strictly older than the newest version at/below
        the floor are unreachable.  A chain collapsed to its newest
        committed version with no pending writer equals the heap row, so
        the whole entry is dropped and reads return to the heap path.
        """
        floor = min(
            (s.begin_csn for s in self._active.values() if s.begin_csn is not None),
            default=self._current_csn,
        )
        for vkey in list(self._versions):
            chain = self._versions[vkey]
            keep_from = 0
            for i, version in enumerate(chain):
                if version.csn <= floor:
                    keep_from = i
            if keep_from:
                del chain[:keep_from]
            if (
                len(chain) == 1
                and vkey not in self._pending
                and chain[0].csn <= floor
            ):
                del self._versions[vkey]
        self._m_tracked.set(float(len(self._versions)))


class Session:
    """One logical client: ``begin() → reads/writes → commit()/abort()``.

    Reads outside a transaction raise; use :meth:`transaction` as a
    context manager for commit-on-success / abort-on-error blocks.  All
    row access goes through the target table's **identity index** (its
    first attached index), whose key uniquely identifies a row.
    """

    def __init__(self, manager: TransactionManager, session_id: int) -> None:
        self._mgr = manager
        self._id = session_id
        self._txn_id: int | None = None
        self._begin_csn: int | None = None
        self._began_logged = False
        #: Net effect per vkey (row dict, or None for delete) — published
        #: as the committed versions at commit CSN.
        self._writes: dict[VKey, dict | None] = {}
        #: Deletes deferred to commit: vkey -> (table, key, heap row at
        #: defer time).  Until commit the row stays physically in place.
        self._deferred: dict[VKey, tuple] = {}
        #: Reverse-order undo program: ("insert", table, key) |
        #: ("update", table, key, old_changes).  Deferred deletes need no
        #: undo — aborting simply drops them.
        self._undo: list[tuple] = []
        self.stats = SessionStats()

    # -- properties ----------------------------------------------------------

    @property
    def session_id(self) -> int:
        return self._id

    @property
    def txn_id(self) -> int | None:
        return self._txn_id

    @property
    def begin_csn(self) -> int | None:
        return self._begin_csn

    @property
    def in_txn(self) -> bool:
        return self._txn_id is not None

    # -- lifecycle -----------------------------------------------------------

    def begin(self) -> int:
        """Start a transaction; returns the snapshot (begin) CSN."""
        if self._txn_id is not None:
            raise TxnStateError(f"session {self._id}: transaction already open")
        self._txn_id = self._mgr._begin(self)
        self._begin_csn = self._mgr.current_csn
        self._began_logged = False
        self._writes = {}
        self._deferred = {}
        self._undo = []
        self.stats.begins += 1
        return self._begin_csn

    def commit(self, flush: bool = False) -> int:
        """Commit; returns the commit CSN (read-only: the begin CSN).

        The ``TXN_COMMIT`` record rides the group-commit buffer — the
        durability point is its frame reaching the device, batched with
        other sessions' commits.  ``flush=True`` forces it out now
        (synchronous commit).

        Deferred deletes apply here, immediately before the commit
        record, so a transaction's DELETE records occupy a contiguous
        block just ahead of its TXN_COMMIT in the log: a torn tail that
        strands the deletes without the commit record cannot have any
        *later* surviving record either, which keeps the recovery
        rollback's slot-positional compensation sound.
        """
        txn_id = self._require_txn()
        trace = getattr(self._mgr.database, "trace", None)
        if trace is None:
            return self._commit_inner(txn_id, flush)
        # One span tree per logical commit: the deferred deletes and the
        # group-commit WAL flush below nest inside it, tagged with the
        # owning transaction via baggage.
        with trace.trace("txn.commit", txn_id=txn_id, session=self._id):
            return self._commit_inner(txn_id, flush)

    def _commit_inner(self, txn_id: int, flush: bool) -> int:
        begin_csn = self._begin_csn
        if not self._writes:
            self._mgr._m_commits.inc()
            self.stats.commits += 1
            self._finish(txn_id, begin_csn)
            return begin_csn
        db = self._mgr.database
        while self._deferred:
            vkey = next(iter(self._deferred))
            table_name, key_value, _pre = self._deferred[vkey]
            table = db.table(table_name)
            # Popped after each apply so a fault-healed retry resumes
            # with the remaining deletes instead of restarting.
            table.delete(table.identity_index_name, key_value, txn_id=txn_id)
            del self._deferred[vkey]
        csn = self._mgr._allocate_csn()
        wal = self._mgr.database.wal
        if wal is not None:
            wal.log_txn_commit(txn_id, csn)
            if flush:
                wal.flush()
        self._mgr._publish(txn_id, csn, self._writes)
        self.stats.commits += 1
        self._finish(txn_id, begin_csn)
        return csn

    def abort(self) -> None:
        """Roll back every write and end the transaction.

        Undo runs in reverse op order through the normal Table write
        paths, so each step appends a compensation record (an ordinary
        redo record with this transaction's id) — the log redoes to the
        rolled-back state.  The closing ``TXN_ABORT`` marks the txn
        resolved for recovery; losing it to a crash is harmless (the
        recovery rollback re-derives and re-appends the compensation).
        """
        txn_id = self._require_txn()
        trace = getattr(self._mgr.database, "trace", None)
        if trace is not None:
            with trace.trace("txn.abort", txn_id=txn_id, session=self._id):
                self._rollback(txn_id)
        else:
            self._rollback(txn_id)
        self.stats.aborts += 1
        self._finish(txn_id, self._begin_csn)

    def transaction(self):
        """``with session.transaction():`` — commit on success, abort on
        error (a conflict has already aborted; the error just passes)."""
        return _TxnContext(self)

    # -- reads ---------------------------------------------------------------

    def lookup(
        self,
        table_name: str,
        key_value: object,
        project: tuple[str, ...] | None = None,
    ):
        """Snapshot point lookup through the table's identity index."""
        self._require_txn()
        table = self._mgr.database.table(table_name)
        vkey = self._vkey(table, key_value)
        self.stats.reads += 1
        if vkey in self._writes:
            return self._as_result(table, self._writes[vkey], project)
        tracked, row = self._mgr._visible(vkey, self._begin_csn)
        if tracked:
            return self._as_result(table, row, project)
        # Never tracked: the heap row is committed; use the normal read
        # path (index cache, batching, metrics all apply).
        return table.lookup(table.identity_index_name, key_value, project)

    def scan(self, table_name: str) -> list[dict]:
        """Snapshot scan: full rows, heap order then tracked-key order."""
        self._require_txn()
        table = self._mgr.database.table(table_name)
        out: list[dict] = []
        overlaid: list[VKey] = []
        for row in table.scan():
            vkey = self._vkey_of_row(table, row)
            if vkey in self._writes or self._mgr._is_tracked(vkey):
                continue
            out.append(row)
        seen = set()
        for vkey in list(self._mgr._versions) + list(self._writes):
            if vkey[0] != table_name or vkey in seen:
                continue
            seen.add(vkey)
            overlaid.append(vkey)
        for vkey in sorted(overlaid, key=lambda v: v[1]):
            if vkey in self._writes:
                row = self._writes[vkey]
            else:
                _, row = self._mgr._visible(vkey, self._begin_csn)
            if row is not None:
                out.append(dict(row))
        return out

    # -- writes --------------------------------------------------------------

    def insert(self, table_name: str, row: dict) -> None:
        txn_id = self._require_txn()
        table = self._mgr.database.table(table_name)
        vkey = self._vkey_of_row(table, row)
        old, fresh_claim = self._write_base(table, vkey, row=row)
        if old is not None:
            if fresh_claim:
                self._mgr._pending.pop(vkey, None)
            raise DuplicateKeyError(
                f"insert into {table_name!r}: key already visible"
            )
        key_value = self._key_of_row(table, row)
        if vkey in self._deferred:
            # The session deleted this key earlier, but the delete is
            # deferred — the heap row is still physically there.  Reuse
            # it: overwrite in place and cancel the pending delete.
            _tn, _kv, pre = self._deferred.pop(vkey)
            key_cols = set(table.index(table.identity_index_name).key_columns)
            changes = {
                c: row[c] for c in table.schema.names if c not in key_cols
            }
            if changes:
                table.update(
                    table.identity_index_name, key_value, changes, txn_id=txn_id
                )
                self._undo.append(
                    ("update", table_name, key_value,
                     {c: pre[c] for c in changes})
                )
        else:
            table.insert(row, txn_id=txn_id)
            self._undo.append(("insert", table_name, key_value))
        self._writes[vkey] = dict(row)
        self.stats.writes += 1

    def update(self, table_name: str, key_value: object, changes: dict) -> bool:
        txn_id = self._require_txn()
        table = self._mgr.database.table(table_name)
        vkey = self._vkey(table, key_value)
        old, fresh_claim = self._write_base(table, vkey, key_value=key_value)
        if old is None:
            if fresh_claim:
                self._mgr._pending.pop(vkey, None)
            return False
        applied = table.update(
            table.identity_index_name, key_value, changes, txn_id=txn_id
        )
        if not applied:  # pragma: no cover - heap/version divergence guard
            return False
        self._undo.append(
            ("update", table_name, key_value, {c: old[c] for c in changes})
        )
        new_row = dict(old)
        new_row.update(changes)
        self._writes[vkey] = new_row
        self.stats.writes += 1
        return True

    def delete(self, table_name: str, key_value: object) -> bool:
        """Snapshot-visible delete; the heap row is only removed (and the
        DELETE record only logged) at commit — see :meth:`commit`."""
        self._require_txn()
        table = self._mgr.database.table(table_name)
        vkey = self._vkey(table, key_value)
        old, fresh_claim = self._write_base(table, vkey, key_value=key_value)
        if old is None:
            if fresh_claim:
                self._mgr._pending.pop(vkey, None)
            return False
        self._deferred[vkey] = (table_name, key_value, dict(old))
        self._writes[vkey] = None
        self.stats.writes += 1
        return True

    # -- internals -----------------------------------------------------------

    def _require_txn(self) -> int:
        if self._txn_id is None:
            raise TxnStateError(f"session {self._id}: no open transaction")
        return self._txn_id

    def _finish(self, txn_id: int, begin_csn: int) -> None:
        self._txn_id = None
        self._begin_csn = None
        self._writes = {}
        self._deferred = {}
        self._undo = []
        self._mgr._end(txn_id, begin_csn)

    def _write_base(self, table, vkey, row=None, key_value=None):
        """Conflict-check and claim ``vkey``; return ``(base_row, fresh)``.

        ``base_row`` is what the write acts on: the session's own last
        write if it already touched the key, else the latest committed
        row (which the no-conflict check proves is also the snapshot-
        visible one).  First write of the transaction logs TXN_BEGIN.
        """
        txn_id = self._txn_id
        if vkey in self._writes:
            return self._writes[vkey], False
        try:
            self._mgr._check_conflict(txn_id, self._begin_csn, vkey)
        except TxnConflictError:
            self._rollback(txn_id)
            self.stats.conflicts += 1
            self.stats.aborts += 1
            self._finish(txn_id, self._begin_csn)
            raise
        tracked, committed = self._mgr._visible(vkey, self._begin_csn)
        if not tracked:
            key_value = key_value if key_value is not None else self._key_of_row(
                table, row
            )
            result = table.lookup(table.identity_index_name, key_value)
            committed = dict(result.values) if result.found else None
        if not self._began_logged:
            wal = self._mgr.database.wal
            if wal is not None:
                wal.log_txn_begin(txn_id)
            self._began_logged = True
        self._mgr._claim(txn_id, vkey, committed)
        return committed, True

    def _rollback(self, txn_id: int) -> None:
        """Apply the undo program in reverse, popping as it goes (so a
        retried abort after a mid-undo fault resumes, not restarts)."""
        db = self._mgr.database
        # Deferred deletes never touched the heap — dropping them is the
        # whole rollback for those keys.
        self._deferred = {}
        undone = 0
        while self._undo:
            entry = self._undo[-1]
            kind, table_name = entry[0], entry[1]
            table = db.table(table_name)
            if kind == "insert":
                table.delete(table.identity_index_name, entry[2], txn_id=txn_id)
            else:
                table.update(
                    table.identity_index_name, entry[2], entry[3], txn_id=txn_id
                )
            self._undo.pop()
            undone += 1
        self._mgr._m_undo.inc(undone)
        wal = db.wal
        if wal is not None and self._began_logged:
            wal.log_txn_abort(txn_id)
        self._mgr._release(txn_id, list(self._writes))
        self._writes = {}

    def _vkey(self, table, key_value) -> VKey:
        index = table.index(table.identity_index_name)
        return (table.name, bytes(index.encode_key(key_value)))

    def _key_of_row(self, table, row: dict):
        cols = table.index(table.identity_index_name).key_columns
        if len(cols) == 1:
            return row[cols[0]]
        return tuple(row[c] for c in cols)

    def _vkey_of_row(self, table, row: dict) -> VKey:
        return self._vkey(table, self._key_of_row(table, row))

    def _as_result(self, table, row: dict | None, project):
        from repro.core.index_cache.cached_index import LookupResult

        if row is None:
            return LookupResult(values=None, found=False, from_cache=False)
        names = project if project is not None else table.schema.names
        return LookupResult(
            values={name: row[name] for name in names},
            found=True,
            from_cache=False,
        )


@dataclass
class _TxnContext:
    session: Session

    def __enter__(self) -> Session:
        self.session.begin()
        return self.session

    def __exit__(self, exc_type, exc, tb) -> bool:
        if exc_type is None:
            self.session.commit()
        elif self.session.in_txn:
            self.session.abort()
        return False
