"""Concurrent sessions: MVCC snapshot isolation over the redo-only WAL.

See DESIGN.md §5g.  Entry points:

* ``db.session()`` — open a :class:`~repro.txn.manager.Session`
  (``begin()/commit()/abort()`` with snapshot reads and first-writer-
  wins conflicts).
* :class:`~repro.txn.scheduler.SimScheduler` — deterministic seeded
  interleaving of N client scripts on the CostModel clock.
* :mod:`repro.txn.oracle` — independent committed-state folds for
  crash tests.
"""

from repro.txn.manager import Session, SessionStats, TransactionManager
from repro.txn.oracle import (
    committed_positional_fold,
    serial_fold,
    txn_outcomes,
)
from repro.txn.scheduler import SimScheduler, interleavings

__all__ = [
    "Session",
    "SessionStats",
    "SimScheduler",
    "TransactionManager",
    "committed_positional_fold",
    "interleavings",
    "serial_fold",
    "txn_outcomes",
]
