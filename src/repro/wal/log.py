"""The write-ahead log: an append-only device and a group-commit writer.

``repro``'s durability rule is **flush-before-evict** (redo-only,
ARIES-lite): an operation reserves an LSN, applies its page changes with
that LSN stamped on every dirtied frame, then appends a redo record.
Records sit in the writer's in-memory buffer until either

* a *group commit* fills (``group_commit_records`` buffered frames are
  appended to the device as one blob — one simulated device write for N
  records), or
* the buffer pool is about to write back a page whose ``page_lsn``
  exceeds the durable LSN, in which case :meth:`WalWriter.flush_to`
  forces the buffer out first — the classic WAL invariant that no data
  page reaches disk ahead of its log.

A crash loses the buffer (those operations were never durable, exactly
like a lost ``fsync``); the device's byte prefix is what survives.  The
log is never truncated in this simulation — checkpoints bound *replay
time*, not log size, standing in for archival to cold storage.

Imports nothing from ``repro.query``: checkpointing walks the database
duck-typed (catalog + heaps + pools), so ``Database`` can import this
module without a cycle.
"""

from __future__ import annotations

from repro.errors import SimulatedCrashError, WalError
from repro.obs.registry import MetricsRegistry, resolve_registry
from repro.storage.heap import Rid
from repro.wal.record import RecordType, WalRecord, encode_frame, scan_wal


class WalDevice:
    """Append-only simulated log device with crash hooks.

    ``crash_after(n)`` arms a power cut at absolute byte ``n``: the
    append that would cross it keeps only the prefix up to ``n`` (a torn
    log tail, detected later by frame CRCs) and raises
    :class:`~repro.errors.SimulatedCrashError`.  ``truncate_at`` is the
    restart-side counterpart used to discard a detected torn tail.
    """

    def __init__(self, initial: bytes = b"") -> None:
        self._data = bytearray(initial)
        self._appends = 0
        self._crash_at: int | None = None

    @property
    def data(self) -> bytes:
        """The durable byte stream (what survives a crash)."""
        return bytes(self._data)

    @property
    def size(self) -> int:
        return len(self._data)

    @property
    def appends(self) -> int:
        """Completed device appends (the group-commit denominator)."""
        return self._appends

    def crash_after(self, total_bytes: int) -> None:
        """Arm a simulated power cut at absolute byte ``total_bytes``."""
        if total_bytes < len(self._data):
            raise WalError(
                f"crash byte {total_bytes} is already durable "
                f"({len(self._data)} bytes on device)"
            )
        self._crash_at = total_bytes

    def append(self, blob: bytes) -> None:
        if self._crash_at is not None:
            if len(self._data) + len(blob) > self._crash_at:
                keep = self._crash_at - len(self._data)
                self._data += blob[:keep]
                self._crash_at = None
                raise SimulatedCrashError(
                    f"power cut mid-append at log byte {len(self._data)}"
                )
        self._data += blob
        self._appends += 1

    def truncate_at(self, n_bytes: int) -> None:
        """Discard everything past byte ``n_bytes`` (torn-tail cleanup)."""
        if not 0 <= n_bytes <= len(self._data):
            raise WalError(
                f"truncate point {n_bytes} outside device of {len(self._data)}"
            )
        del self._data[n_bytes:]


class WalWriter:
    """LSN allocator + group-commit redo-record writer.

    The LSN protocol: callers :meth:`reserve_lsn` *before* touching any
    page (so dirtied frames can be stamped), then append the matching
    record once the operation's page changes are applied.  An operation
    that fails between the two simply abandons its LSN — gaps are legal
    (see :mod:`repro.wal.record`) — and appends compensation records for
    whatever it undid, reusing the normal record types, so the log
    always redoes to the state the engine actually reached.
    """

    def __init__(
        self,
        device: WalDevice | None = None,
        registry: MetricsRegistry | None = None,
        group_commit_records: int = 8,
    ) -> None:
        if group_commit_records < 1:
            raise WalError("group_commit_records must be >= 1")
        self._device = device if device is not None else WalDevice()
        self._group = group_commit_records
        #: Optional §5j hooks, set by ``Database.enable_tracing`` /
        #: ``enable_events`` (or the sharded facade, which also sets
        #: ``journal_shard`` to this engine's shard id).  Off path: one
        #: is-None test per flush/checkpoint.
        self.trace = None
        self.journal = None
        self.journal_shard: int | None = None
        self._buffer: list[bytes] = []
        self._buffered_lsn = 0
        # Continue the LSN sequence of whatever the device already holds
        # (a writer over a survived log after restart).
        durable = scan_wal(self._device.data)
        self._flushed_lsn = durable.max_lsn
        self._next_lsn = durable.max_lsn + 1
        self._last_checkpoint_lsn = 0
        reg = resolve_registry(registry)
        self._m_records = reg.counter("wal.records")
        self._m_bytes = reg.counter("wal.bytes")
        self._m_flushes = reg.counter("wal.flushes")
        self._m_batch = reg.histogram("wal.group_commit.batch_records")
        self._m_checkpoints = reg.counter("wal.checkpoints")
        self._m_kind = {
            rtype: reg.counter(f"wal.kind.{rtype.name.lower()}")
            for rtype in RecordType
        }
        self._m_group_knob = reg.gauge("adaptive.knob.wal.group_commit_records")
        self._m_group_knob.set(float(self._group))

    # -- properties ----------------------------------------------------------

    @property
    def device(self) -> WalDevice:
        return self._device

    @property
    def next_lsn(self) -> int:
        """The LSN the next reservation will return."""
        return self._next_lsn

    @property
    def flushed_lsn(self) -> int:
        """Highest LSN known durable on the device."""
        return self._flushed_lsn

    @property
    def buffered_records(self) -> int:
        """Records waiting in the group-commit buffer (lost on crash)."""
        return len(self._buffer)

    @property
    def pending_bytes(self) -> int:
        """Encoded bytes waiting in the group-commit buffer.

        The ``wal.bytes`` counter moves only at flush time; the query
        profiler adds this to it so a record's bytes are attributed to
        the operation that *logged* it, independent of group-commit
        flush timing.
        """
        return sum(len(frame) for frame in self._buffer)

    @property
    def last_checkpoint_lsn(self) -> int:
        return self._last_checkpoint_lsn

    @property
    def group_commit_records(self) -> int:
        """Records per group-commit device append (the adaptive knob)."""
        return self._group

    def set_group_commit(self, group_commit_records: int) -> None:
        """Retune the group-commit window on a live writer.

        Durability is unaffected: records already buffered stay buffered
        (or flush immediately if the new, smaller window is already
        full), and ``flush_to`` still forces the buffer out whenever the
        buffer pool needs it.  Only the *batching* of future device
        appends changes.
        """
        if group_commit_records < 1:
            raise WalError("group_commit_records must be >= 1")
        self._group = int(group_commit_records)
        self._m_group_knob.set(float(self._group))
        if len(self._buffer) >= self._group:
            self.flush()

    # -- LSN + record protocol ----------------------------------------------

    def reserve_lsn(self) -> int:
        """Allocate the next LSN (call before applying page changes)."""
        lsn = self._next_lsn
        self._next_lsn += 1
        return lsn

    def log_insert(
        self, table: str, rid: Rid, payload: bytes, lsn: int | None = None,
        txn_id: int = 0,
    ) -> int:
        return self._log(WalRecord(
            lsn=self._resolve(lsn), rtype=RecordType.INSERT, table=table,
            page_id=rid.page_id, slot=rid.slot, payload=bytes(payload),
            txn_id=txn_id,
        ))

    def log_update(
        self, table: str, rid: Rid, payload: bytes, lsn: int | None = None,
        txn_id: int = 0,
    ) -> int:
        return self._log(WalRecord(
            lsn=self._resolve(lsn), rtype=RecordType.UPDATE, table=table,
            page_id=rid.page_id, slot=rid.slot, payload=bytes(payload),
            txn_id=txn_id,
        ))

    def log_delete(
        self, table: str, rid: Rid, lsn: int | None = None, txn_id: int = 0
    ) -> int:
        return self._log(WalRecord(
            lsn=self._resolve(lsn), rtype=RecordType.DELETE, table=table,
            page_id=rid.page_id, slot=rid.slot, txn_id=txn_id,
        ))

    def log_txn_begin(self, txn_id: int) -> int:
        return self._log(WalRecord(
            lsn=self.reserve_lsn(), rtype=RecordType.TXN_BEGIN,
            meta={"txn": txn_id}, txn_id=txn_id,
        ))

    def log_txn_commit(self, txn_id: int, csn: int) -> int:
        """Append the commit point for ``txn_id``.

        The record rides the normal group-commit buffer, so commits
        from many sessions batch into one device append; a session that
        needs synchronous durability calls :meth:`flush` after.
        """
        return self._log(WalRecord(
            lsn=self.reserve_lsn(), rtype=RecordType.TXN_COMMIT,
            meta={"txn": txn_id, "csn": csn}, txn_id=txn_id,
        ))

    def log_txn_abort(self, txn_id: int) -> int:
        return self._log(WalRecord(
            lsn=self.reserve_lsn(), rtype=RecordType.TXN_ABORT,
            meta={"txn": txn_id}, txn_id=txn_id,
        ))

    def log_create_table(self, meta: dict) -> int:
        return self._log(WalRecord(
            lsn=self.reserve_lsn(), rtype=RecordType.CREATE_TABLE, meta=meta
        ))

    def log_create_index(self, meta: dict) -> int:
        return self._log(WalRecord(
            lsn=self.reserve_lsn(), rtype=RecordType.CREATE_INDEX, meta=meta
        ))

    def log_hot_cold_move(self, label: str, src: Rid, dst: Rid) -> int:
        return self._log(WalRecord(
            lsn=self.reserve_lsn(), rtype=RecordType.HOT_COLD_MOVE, table=label,
            page_id=src.page_id, slot=src.slot,
            aux_page=dst.page_id, aux_slot=dst.slot,
        ))

    def log_shard_migrate(self, meta: dict) -> int:
        """Append a cross-shard migration intent (to the *dst* shard's
        log; ``meta`` carries table, JSON-safe key, src, dst, seq)."""
        return self._log(WalRecord(
            lsn=self.reserve_lsn(), rtype=RecordType.SHARD_MIGRATE, meta=meta
        ))

    def log_index_cache_drop(self, index_name: str) -> int:
        return self._log(WalRecord(
            lsn=self.reserve_lsn(), rtype=RecordType.INDEX_CACHE_DROP,
            table=index_name,
        ))

    # -- durability ----------------------------------------------------------

    def flush(self) -> None:
        """Append every buffered frame to the device as one blob."""
        if not self._buffer:
            return
        if self.trace is not None:
            with self.trace.span(
                "wal.flush",
                shard=self.journal_shard,
                records=len(self._buffer),
                bytes=sum(len(b) for b in self._buffer),
            ):
                self._flush_locked()
            return
        self._flush_locked()

    def _flush_locked(self) -> None:
        blob = b"".join(self._buffer)
        batch = len(self._buffer)
        # On a crash mid-append the buffer is conceptually lost with the
        # rest of RAM; clearing it first keeps this object honest if a
        # harness keeps using it after catching SimulatedCrashError.
        self._buffer = []
        buffered_lsn = self._buffered_lsn
        self._device.append(blob)
        self._flushed_lsn = buffered_lsn
        self._m_flushes.inc()
        self._m_batch.record(batch)
        self._m_bytes.inc(len(blob))

    def flush_to(self, lsn: int) -> None:
        """Make every record with LSN <= ``lsn`` durable (WAL rule hook).

        The buffer pool calls this before writing back a page stamped
        with ``page_lsn = lsn``; group commit means the whole buffer
        goes, not just the prefix.
        """
        if lsn > self._flushed_lsn:
            self.flush()

    def checkpoint(self, db) -> int:
        """Append a fuzzy checkpoint for ``db`` and flush.

        No pages are forced out.  The record carries a catalog snapshot
        (tables with their page lists and schemas, indexes with their
        geometry) plus ``redo_from`` — the minimum ``rec_lsn`` over
        dirty data-pool frames.  Every change with a smaller LSN is
        already on disk, so replay after a later crash starts there.
        """
        dirty = db.data_pool.dirty_rec_lsns()
        if db.index_pool is not db.data_pool:
            dirty = list(dirty) + list(db.index_pool.dirty_rec_lsns())
        lsn = self.reserve_lsn()
        redo_from = min([x for x in dirty if x > 0], default=lsn)
        meta = checkpoint_meta(db)
        meta["redo_from"] = min(redo_from, lsn)
        self._log(WalRecord(lsn=lsn, rtype=RecordType.CHECKPOINT, meta=meta))
        self.flush()
        self._last_checkpoint_lsn = lsn
        self._m_checkpoints.inc()
        if self.journal is not None:
            self.journal.emit(
                "wal.checkpoint",
                shard=self.journal_shard,
                lsn=lsn,
                redo_from=meta["redo_from"],
            )
        return lsn

    def all_bytes(self) -> bytes:
        """Durable bytes plus the still-buffered frames (for *in-process*
        consumers like the heap-page healer; a crash sees only
        ``device.data``)."""
        return self._device.data + b"".join(self._buffer)

    def reset_metrics(self) -> None:
        """Zero every ``wal.*`` instrument this writer increments."""
        self._m_records.reset()
        self._m_bytes.reset()
        self._m_flushes.reset()
        self._m_batch.reset()
        self._m_checkpoints.reset()
        for counter in self._m_kind.values():
            counter.reset()

    # -- internals -----------------------------------------------------------

    def _resolve(self, lsn: int | None) -> int:
        return lsn if lsn is not None else self.reserve_lsn()

    def _log(self, record: WalRecord) -> int:
        self._buffer.append(encode_frame(record))
        if record.lsn > self._buffered_lsn:
            self._buffered_lsn = record.lsn
        self._m_records.inc()
        self._m_kind[record.rtype].inc()
        if len(self._buffer) >= self._group:
            self.flush()
        return record.lsn


# -- catalog metadata ---------------------------------------------------------


def schema_meta(schema) -> list[list]:
    """JSON-safe encoding of a :class:`~repro.schema.schema.Schema`."""
    return [
        [c.name, c.ctype.kind.value, c.ctype.size, c.ctype.name]
        for c in schema.columns
    ]


def table_meta(name: str, schema, heap) -> dict:
    """CREATE_TABLE / checkpoint entry for one table."""
    return {
        "name": name,
        "append_only": bool(heap.append_only),
        "page_ids": list(heap.page_ids),
        "schema": schema_meta(schema),
    }


def index_meta(entry) -> dict:
    """CREATE_INDEX / checkpoint entry for one catalog index entry."""
    index = entry.index
    cached_fields = getattr(index, "cached_fields", None)
    return {
        "name": entry.name,
        "table": entry.table_name,
        "key_columns": list(entry.key_columns),
        "kind": "cached" if cached_fields is not None else "plain",
        "cached_fields": list(cached_fields) if cached_fields is not None else [],
        "split_fraction": index.tree.split_fraction,
    }


def checkpoint_meta(db) -> dict:
    """Catalog snapshot for a fuzzy checkpoint (duck-typed db walk)."""
    tables = []
    indexes = []
    for tentry in db.catalog.tables():
        tables.append(table_meta(tentry.name, tentry.schema, tentry.table.heap))
        for ientry in db.catalog.indexes_of(tentry.name):
            indexes.append(index_meta(ientry))
    return {"tables": tables, "indexes": indexes}
