"""Write-ahead logging: redo records, group commit, crash recovery.

The package splits along the import graph:

* :mod:`repro.wal.record` — the frame codec (CRC-framed, LSN-stamped
  redo records) and the torn-tail-tolerant scanner.
* :mod:`repro.wal.log` — the simulated log device and the
  :class:`WalWriter` (group commit, fuzzy checkpoints).
* :mod:`repro.wal.replay` — crash recovery.  **Not** re-exported here:
  ``repro.query.database`` imports this package at module load, and the
  replayer imports ``Database`` back, so pulling replay in at package
  level would create an import cycle.  Import it explicitly as
  ``from repro.wal.replay import recover``.
"""

from repro.wal.log import (
    WalDevice,
    WalWriter,
    checkpoint_meta,
    index_meta,
    schema_meta,
    table_meta,
)
from repro.wal.record import (
    FRAME_HEADER_SIZE,
    HEAP_OP_TYPES,
    MAX_PAYLOAD,
    PAYLOAD_PREFIX_SIZE,
    RecordType,
    ScanResult,
    WalRecord,
    encode_frame,
    frame_boundaries,
    scan_wal,
)

__all__ = [
    "FRAME_HEADER_SIZE",
    "HEAP_OP_TYPES",
    "MAX_PAYLOAD",
    "PAYLOAD_PREFIX_SIZE",
    "RecordType",
    "ScanResult",
    "WalDevice",
    "WalRecord",
    "WalWriter",
    "checkpoint_meta",
    "encode_frame",
    "frame_boundaries",
    "index_meta",
    "scan_wal",
    "schema_meta",
    "table_meta",
]
