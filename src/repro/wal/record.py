"""WAL record types and the CRC-framed on-log encoding.

The log is a flat byte stream of self-delimiting frames::

    frame   = [u32 payload_len][u32 crc32(payload)][payload]
    payload = [u64 lsn][u8 record_type][body]

Everything downstream leans on two properties of this framing:

* **Torn tails are detectable.**  A crash can cut the stream at any
  byte; :func:`scan_wal` walks frames from the front and stops at the
  first one whose length field runs past the end or whose CRC does not
  match — the classic redo-log rule that a record is durable iff its
  whole frame is.  Bit flips inside a frame are caught the same way
  (CRC32 detects every single-bit error), so a damaged *middle* frame
  also truncates the replayable prefix instead of applying garbage.
* **LSN gaps are legal.**  Writers reserve an LSN *before* applying an
  operation (so the page can be stamped) and append the record after;
  an operation that fails mid-way leaves a reserved-but-never-logged
  LSN behind.  Replay orders by position, not by LSN arithmetic.

Record bodies are type-specific; heap ops carry the physical
``(page_id, slot)`` so redo is slot-exact, DDL and checkpoint records
carry JSON catalog metadata.
"""

from __future__ import annotations

import json
import zlib
from dataclasses import dataclass, field
from enum import IntEnum

from repro.errors import WalError

#: Frame header width: u32 payload length + u32 CRC32.
FRAME_HEADER_SIZE = 8
#: Payload prefix width: u64 LSN + u8 record type.
PAYLOAD_PREFIX_SIZE = 9
#: Sanity cap on a single payload (a record is one tuple or one JSON
#: catalog snapshot, never anywhere near this).
MAX_PAYLOAD = 1 << 24


class RecordType(IntEnum):
    """Redo record taxonomy (see DESIGN.md §5d)."""

    #: A tuple landed at ``(page_id, slot)`` with the given bytes.
    INSERT = 1
    #: The tuple at ``(page_id, slot)`` was overwritten in place.
    UPDATE = 2
    #: The tuple at ``(page_id, slot)`` was tombstoned.
    DELETE = 3
    #: A table was created (body: name, schema, placement mode).
    CREATE_TABLE = 4
    #: An index was created (body: name, table, keys, kind, geometry).
    CREATE_INDEX = 5
    #: Fuzzy checkpoint: catalog snapshot + the LSN redo may start from.
    CHECKPOINT = 6
    #: A hot/cold clustering move relocated a tuple (informational; the
    #: copy and delete are themselves logged as INSERT + DELETE).
    HOT_COLD_MOVE = 7
    #: An index cache was dropped wholesale (e.g. by a heal); replay
    #: rebuilds indexes from the heap anyway, so this is an audit mark.
    INDEX_CACHE_DROP = 8
    #: A transaction issued its first write (body: ``{"txn": id}``).
    TXN_BEGIN = 9
    #: A transaction committed (body: ``{"txn": id, "csn": csn}``).  The
    #: commit point: a txn is durable iff this frame is in the durable
    #: prefix — group commit batches commit records across sessions.
    TXN_COMMIT = 10
    #: A transaction finished rolling back (body: ``{"txn": id}``).  Its
    #: compensation records — ordinary heap ops stamped with the same
    #: ``txn_id`` — all precede this frame in log order.
    TXN_ABORT = 11
    #: A cross-shard migration intent (body: ``{"table", "key", "src",
    #: "dst", "seq"}``), appended to the **destination** shard's log
    #: immediately before the copy-insert.  Single-engine replay ignores
    #: it; :func:`repro.shard.recovery.recover_sharded` uses it to
    #: resolve a key found resident on two shards after a crash
    #: mid-migration to exactly one owner (DESIGN.md §5i).
    SHARD_MIGRATE = 12


#: Record types that redo mutates heap pages for.
HEAP_OP_TYPES = frozenset({RecordType.INSERT, RecordType.UPDATE, RecordType.DELETE})
#: Transaction bracket records (JSON bodies carrying ``{"txn": id}``).
TXN_TYPES = frozenset(
    {RecordType.TXN_BEGIN, RecordType.TXN_COMMIT, RecordType.TXN_ABORT}
)
#: Record types whose body is a JSON document (``meta`` is populated).
_JSON_TYPES = frozenset(
    {RecordType.CREATE_TABLE, RecordType.CREATE_INDEX, RecordType.CHECKPOINT,
     RecordType.SHARD_MIGRATE}
) | TXN_TYPES


@dataclass(frozen=True)
class WalRecord:
    """One decoded redo record.

    Which fields are meaningful depends on ``rtype``:

    * heap ops (INSERT/UPDATE/DELETE): ``table``, ``page_id``, ``slot``,
      the owning ``txn_id`` (0 = autocommit, outside any transaction),
      and for insert/update the tuple ``payload``;
    * HOT_COLD_MOVE: ``table`` (the partitioned table's label), source
      ``(page_id, slot)`` and destination ``(aux_page, aux_slot)``;
    * INDEX_CACHE_DROP: ``table`` holds the index name;
    * JSON types (CREATE_TABLE/CREATE_INDEX/CHECKPOINT and the TXN
      brackets): ``meta``; txn brackets also mirror ``meta["txn"]``
      into ``txn_id``.
    """

    lsn: int
    rtype: RecordType
    table: str = ""
    page_id: int = 0
    slot: int = 0
    payload: bytes = b""
    meta: dict | None = field(default=None, hash=False)
    aux_page: int = 0
    aux_slot: int = 0
    txn_id: int = 0

    @property
    def redo_from(self) -> int:
        """Checkpoint records only: the LSN redo may start from."""
        if self.rtype is not RecordType.CHECKPOINT or self.meta is None:
            raise WalError("redo_from is only defined on CHECKPOINT records")
        return int(self.meta["redo_from"])

    @property
    def csn(self) -> int:
        """TXN_COMMIT records only: the commit sequence number."""
        if self.rtype is not RecordType.TXN_COMMIT or self.meta is None:
            raise WalError("csn is only defined on TXN_COMMIT records")
        return int(self.meta["csn"])


def _encode_name(name: str) -> bytes:
    raw = name.encode("utf-8")
    if len(raw) > 0xFFFF:
        raise WalError(f"name too long for WAL record: {len(raw)} bytes")
    return len(raw).to_bytes(2, "little") + raw


def _encode_body(record: WalRecord) -> bytes:
    rtype = record.rtype
    if rtype in _JSON_TYPES:
        if record.meta is None:
            raise WalError(f"{rtype.name} record requires meta")
        if rtype in TXN_TYPES and "txn" not in record.meta:
            raise WalError(f"{rtype.name} record requires meta['txn']")
        return json.dumps(record.meta, sort_keys=True).encode("utf-8")
    head = _encode_name(record.table)
    addr = record.page_id.to_bytes(4, "little") + record.slot.to_bytes(4, "little")
    if rtype in HEAP_OP_TYPES:
        if record.txn_id < 0 or record.txn_id > 0xFFFFFFFF:
            raise WalError(f"txn_id {record.txn_id} outside u32 range")
        addr += record.txn_id.to_bytes(4, "little")
    if rtype in (RecordType.INSERT, RecordType.UPDATE):
        if not record.payload:
            raise WalError(f"{rtype.name} record requires tuple payload")
        return head + addr + record.payload
    if rtype is RecordType.DELETE:
        return head + addr
    if rtype is RecordType.HOT_COLD_MOVE:
        dst = record.aux_page.to_bytes(4, "little") + record.aux_slot.to_bytes(
            4, "little"
        )
        return head + addr + dst
    if rtype is RecordType.INDEX_CACHE_DROP:
        return head
    raise WalError(f"unencodable record type {rtype!r}")  # pragma: no cover


def encode_frame(record: WalRecord) -> bytes:
    """Encode one record as a complete, CRC-stamped frame."""
    if record.lsn < 1:
        raise WalError(f"LSNs are 1-based, got {record.lsn}")
    payload = (
        record.lsn.to_bytes(8, "little")
        + bytes([int(record.rtype)])
        + _encode_body(record)
    )
    if len(payload) > MAX_PAYLOAD:
        raise WalError(f"payload of {len(payload)} bytes exceeds MAX_PAYLOAD")
    return (
        len(payload).to_bytes(4, "little")
        + zlib.crc32(payload).to_bytes(4, "little")
        + payload
    )


def _decode_body(lsn: int, rtype: RecordType, body: bytes) -> WalRecord:
    if rtype in _JSON_TYPES:
        meta = json.loads(body.decode("utf-8"))
        if not isinstance(meta, dict):
            raise WalError("JSON record body must be an object")
        txn_id = 0
        if rtype in TXN_TYPES:
            if "txn" not in meta:
                raise WalError(f"{rtype.name} record body lacks 'txn'")
            txn_id = int(meta["txn"])
        return WalRecord(lsn=lsn, rtype=rtype, meta=meta, txn_id=txn_id)
    if len(body) < 2:
        raise WalError("record body too short for name prefix")
    name_len = int.from_bytes(body[:2], "little")
    if len(body) < 2 + name_len:
        raise WalError("record body shorter than its name field")
    table = body[2 : 2 + name_len].decode("utf-8")
    rest = body[2 + name_len :]
    if rtype is RecordType.INDEX_CACHE_DROP:
        return WalRecord(lsn=lsn, rtype=rtype, table=table)
    if len(rest) < 8:
        raise WalError("record body shorter than its page address")
    page_id = int.from_bytes(rest[:4], "little")
    slot = int.from_bytes(rest[4:8], "little")
    rest = rest[8:]
    txn_id = 0
    if rtype in HEAP_OP_TYPES:
        if len(rest) < 4:
            raise WalError(f"{rtype.name} record body lacks its txn id")
        txn_id = int.from_bytes(rest[:4], "little")
        rest = rest[4:]
    if rtype in (RecordType.INSERT, RecordType.UPDATE):
        if not rest:
            raise WalError(f"{rtype.name} record has no tuple payload")
        return WalRecord(
            lsn=lsn, rtype=rtype, table=table, page_id=page_id, slot=slot,
            payload=bytes(rest), txn_id=txn_id,
        )
    if rtype is RecordType.DELETE:
        if rest:
            raise WalError("DELETE record has trailing bytes")
        return WalRecord(
            lsn=lsn, rtype=rtype, table=table, page_id=page_id, slot=slot,
            txn_id=txn_id,
        )
    if rtype is RecordType.HOT_COLD_MOVE:
        if len(rest) != 8:
            raise WalError("HOT_COLD_MOVE record needs a destination address")
        return WalRecord(
            lsn=lsn, rtype=rtype, table=table, page_id=page_id, slot=slot,
            aux_page=int.from_bytes(rest[:4], "little"),
            aux_slot=int.from_bytes(rest[4:8], "little"),
        )
    raise WalError(f"undecodable record type {rtype!r}")  # pragma: no cover


@dataclass(frozen=True)
class ScanResult:
    """Outcome of walking a log byte stream from the front.

    ``valid_bytes`` is the length of the replayable prefix: every frame
    wholly inside it decoded and passed its CRC.  ``torn`` is True when
    trailing bytes past that prefix exist (a cut-off or damaged frame) —
    the torn-tail case the writer truncates away on restart.
    """

    records: tuple[WalRecord, ...]
    valid_bytes: int
    torn: bool

    @property
    def max_lsn(self) -> int:
        """Highest durable LSN (0 on an empty log)."""
        return max((r.lsn for r in self.records), default=0)

    @property
    def lsns(self) -> frozenset[int]:
        """The set of durable LSNs — an op "committed" iff its LSN is here."""
        return frozenset(r.lsn for r in self.records)


def scan_wal(data: bytes) -> ScanResult:
    """Decode the valid frame prefix of ``data``; never raises on damage.

    Stops — treating the remainder as a torn tail — at the first frame
    that is incomplete, fails its CRC, or does not decode as a known
    record type.  Garbage is never returned as a record.
    """
    records: list[WalRecord] = []
    pos = 0
    n = len(data)
    while pos + FRAME_HEADER_SIZE <= n:
        payload_len = int.from_bytes(data[pos : pos + 4], "little")
        if payload_len < PAYLOAD_PREFIX_SIZE or payload_len > MAX_PAYLOAD:
            break
        end = pos + FRAME_HEADER_SIZE + payload_len
        if end > n:
            break
        crc = int.from_bytes(data[pos + 4 : pos + 8], "little")
        payload = data[pos + FRAME_HEADER_SIZE : end]
        if zlib.crc32(payload) != crc:
            break
        lsn = int.from_bytes(payload[:8], "little")
        try:
            rtype = RecordType(payload[8])
            record = _decode_body(lsn, rtype, payload[9:])
        except (ValueError, WalError, UnicodeDecodeError,
                json.JSONDecodeError):
            break
        if lsn < 1:
            break
        records.append(record)
        pos = end
    return ScanResult(
        records=tuple(records), valid_bytes=pos, torn=pos != n
    )


def frame_boundaries(data: bytes) -> list[int]:
    """Byte offsets of every frame end in the valid prefix of ``data``.

    ``frame_boundaries(log)[i]`` is the stream length after which exactly
    ``i + 1`` records are durable — the crash-point grid the matrix test
    walks.
    """
    valid = scan_wal(data).valid_bytes
    boundaries: list[int] = []
    pos = 0
    while pos < valid:
        payload_len = int.from_bytes(data[pos : pos + 4], "little")
        pos += FRAME_HEADER_SIZE + payload_len
        boundaries.append(pos)
    return boundaries
