"""CLI for the WAL crash-restart drill: ``python -m repro.wal``.

A seeded mixed workload runs against a WAL-backed database while power
cuts land at *arbitrary log byte positions*: each cycle arms
:meth:`~repro.wal.log.WalDevice.crash_after` a few bytes past the current
durable tail, keeps operating until a group-commit append tears on it,
then restarts with :func:`repro.wal.replay.recover` and verifies the
survivor against ground truth folded independently from the durable log:
every durable record's effect must be present, nothing else may survive,
and the invariant walker must come back clean.

Exits non-zero unless every restart verified exactly.
"""

from __future__ import annotations

import argparse
import sys
from dataclasses import dataclass, field

from repro.errors import SimulatedCrashError
from repro.schema.record import unpack_record_map
from repro.schema.schema import Schema
from repro.schema.types import UINT32, char
from repro.util.rng import DeterministicRng
from repro.wal.record import HEAP_OP_TYPES, RecordType, scan_wal

#: The drill's table: a tiny fixed-width row so small pages churn.
DRILL_SCHEMA = Schema.of(("id", UINT32), ("name", char(12)), ("score", UINT32))


@dataclass
class WalDrillReport:
    """What the crash-restart smoke drill did and whether it verified."""

    seed: int
    operations: int
    crashes: int
    torn_tails: int
    checkpoints: int
    records_durable: int
    page_rebuilds: int
    wrong_results: int
    check_ok: bool
    check_problems: list[str] = field(default_factory=list)

    @property
    def passed(self) -> bool:
        return self.wrong_results == 0 and self.check_ok

    def summary(self) -> str:
        verdict = "PASS" if self.passed else "FAIL"
        return (
            f"wal drill [{verdict}] seed={self.seed}: {self.operations} ops, "
            f"{self.crashes} crash(es), {self.torn_tails} torn tail(s) "
            f"truncated, {self.checkpoints} checkpoint(s), "
            f"{self.records_durable} durable record(s), "
            f"{self.page_rebuilds} page(s) rebuilt from log, "
            f"{self.wrong_results} wrong result(s), "
            f"check={'OK' if self.check_ok else 'FAILED'}"
        )


def _oracle(records) -> dict[int, tuple[str, int]]:
    """Fold durable heap records into ``id -> (name, score)`` truth."""
    by_rid: dict[tuple[int, int], bytes] = {}
    for rec in records:
        if rec.rtype not in HEAP_OP_TYPES:
            continue
        rid = (rec.page_id, rec.slot)
        if rec.rtype is RecordType.DELETE:
            by_rid.pop(rid, None)
        else:
            by_rid[rid] = rec.payload
    oracle: dict[int, tuple[str, int]] = {}
    for payload in by_rid.values():
        row = unpack_record_map(DRILL_SCHEMA, payload)
        oracle[row["id"]] = (row["name"], row["score"])
    return oracle


def run_wal_drill(
    seed: int = 0,
    n_ops: int = 2_000,
    crashes: int = 4,
    group_commit: int = 8,
    checkpoint_every: int = 400,
    page_size: int = 1024,
    pool_pages: int = 8,
) -> WalDrillReport:
    """Run the crash-restart smoke drill; deterministic per argument set."""
    from repro.faults.checker import check_database  # late: faults ← wal
    from repro.query.database import Database
    from repro.wal.replay import recover

    rng = DeterministicRng(seed)
    db = Database(
        seed=seed, wal=True, wal_group_commit=group_commit,
        page_size=page_size, data_pool_pages=pool_pages,
    )
    db.create_table("t", DRILL_SCHEMA)
    db.create_index("t", "by_id", ("id",))
    table = db.table("t")

    live: set[int] = set()  # ids the engine currently acks (pre-crash view)
    next_id = 0
    ops_done = 0
    crashes_done = 0
    torn_tails = 0
    checkpoints = 0
    page_rebuilds = 0
    wrong = 0
    crash_budget = max(1, n_ops // (crashes + 1))

    def one_op() -> None:
        nonlocal next_id, checkpoints, wrong
        draw = rng.random()
        if draw < 0.5 or not live:
            row = {"id": next_id, "name": f"r{next_id}", "score": next_id % 997}
            table.insert(row)
            live.add(next_id)
            next_id += 1
        elif draw < 0.75:
            target = sorted(live)[rng.randrange(len(live))]
            table.update("by_id", target, {"score": rng.randrange(10_000)})
        elif draw < 0.85:
            target = sorted(live)[rng.randrange(len(live))]
            if table.delete("by_id", target):
                live.discard(target)
        else:
            target = rng.randrange(max(1, next_id))
            result = table.lookup("by_id", target)
            if result.found != (target in live):
                wrong += 1
        if checkpoint_every and ops_done % checkpoint_every == checkpoint_every - 1:
            db.checkpoint()
            checkpoints += 1

    while ops_done < n_ops:
        if crashes_done < crashes and ops_done >= crash_budget * (crashes_done + 1):
            # Arm a power cut a few bytes past the durable tail: the next
            # group-commit append that crosses it keeps only a torn
            # prefix, which recovery must detect by CRC and truncate.
            db.wal.device.crash_after(db.wal.device.size + rng.randint(1, 300))
        try:
            one_op()
            ops_done += 1
        except SimulatedCrashError:
            crashes_done += 1
            db, report = recover(
                db.wal, disk=db.disk,
                page_size=page_size, data_pool_pages=pool_pages, seed=seed,
            )
            table = db.table("t")
            torn_tails += int(report.torn_tail)
            page_rebuilds += report.page_rebuilds
            oracle = _oracle(scan_wal(db.wal.device.data).records)
            got = {
                r["id"]: (r["name"], r["score"]) for r in table.scan()
            }
            wrong += sum(
                1 for k in set(oracle) | set(got) if oracle.get(k) != got.get(k)
            )
            for k in sorted(oracle):
                result = table.lookup("by_id", k)
                if not result.found:
                    wrong += 1
            check = check_database(db)
            if not check.ok:
                wrong += len(check.problems)
            live.clear()
            live.update(oracle)

    db.wal.flush()
    final_oracle = _oracle(scan_wal(db.wal.device.data).records)
    got = {r["id"]: (r["name"], r["score"]) for r in table.scan()}
    wrong += sum(
        1 for k in set(final_oracle) | set(got)
        if final_oracle.get(k) != got.get(k)
    )
    check = check_database(db)
    return WalDrillReport(
        seed=seed,
        operations=ops_done,
        crashes=crashes_done,
        torn_tails=torn_tails,
        checkpoints=checkpoints,
        records_durable=len(scan_wal(db.wal.device.data).records),
        page_rebuilds=page_rebuilds,
        wrong_results=wrong,
        check_ok=check.ok,
        check_problems=list(check.problems),
    )


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.wal",
        description=(
            "Run a seeded workload through power cuts at arbitrary WAL "
            "byte positions and verify crash recovery after each restart."
        ),
    )
    parser.add_argument("--seed", type=int, default=0, help="drill seed")
    parser.add_argument(
        "--ops", type=int, default=2_000, help="mixed operations to run"
    )
    parser.add_argument(
        "--crashes", type=int, default=4, help="power cuts to schedule"
    )
    parser.add_argument(
        "--group-commit", type=int, default=8,
        help="records per group-commit batch",
    )
    parser.add_argument(
        "--checkpoint-every", type=int, default=400,
        help="ops between fuzzy checkpoints (0 = never)",
    )
    args = parser.parse_args(argv)

    report = run_wal_drill(
        seed=args.seed,
        n_ops=args.ops,
        crashes=args.crashes,
        group_commit=args.group_commit,
        checkpoint_every=args.checkpoint_every,
    )
    print(report.summary())
    for problem in report.check_problems:
        print(f"  check: {problem}", file=sys.stderr)
    return 0 if report.passed else 1


if __name__ == "__main__":
    raise SystemExit(main())
