"""WAL replay: rebuild a :class:`Database` to the last durable LSN.

Two recovery shapes share one code path, :func:`recover`:

* **Fresh-disk replay** (``disk=None``): the data files are gone; every
  heap change in the log is redone onto a blank disk (filler pages are
  allocated so logged page ids land where they should).  This is what
  the crash-point matrix test drives at every record boundary.
* **Crash-restart** (``disk=`` the survived disk): RAM died, the disk
  and the log device survived.  Redo starts at the last fuzzy
  checkpoint's ``redo_from`` — every change below it is provably on
  disk — and each record is applied *test-and-redo* style: page state
  is compared slot-by-slot so redoing an already-durable change is a
  no-op, and replaying the in-order suffix converges even when slots
  were reused across delete/insert cycles.

Indexes are never redone record-by-record: they are derived data, and
recovery rebuilds every index from its restored heap (exactly the
self-healing primitive PR 2 introduced for corrupt index pages).  Cached
tuple copies start cold.

The module also exports :func:`rebuild_heap_page` — materialize one heap
page purely from the log's full history — which
:class:`~repro.faults.recovery.RecoveryManager` uses to heal torn or
bit-flipped heap pages at runtime: the pages PR 2 had to declare
"honestly unrecoverable" are now redo-recovered.

Imports ``repro.query`` (to build the Database), so ``repro.wal.__init__``
must not import this module — reach it as ``repro.wal.replay``.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.errors import CorruptPageError, WalError
from repro.obs.registry import (
    MetricsRegistry,
    NULL_REGISTRY,
    get_default_registry,
)
from repro.schema.schema import Column, Schema
from repro.schema.types import PhysicalType, TypeKind
from repro.storage.constants import DEFAULT_PAGE_SIZE, PageType
from repro.storage.page import SlottedPage
from repro.wal.log import WalDevice, WalWriter
from repro.wal.record import (
    HEAP_OP_TYPES,
    RecordType,
    WalRecord,
    scan_wal,
)


@dataclass(frozen=True)
class RecoveryReport:
    """What one :func:`recover` call scanned, truncated, and redid."""

    valid_bytes: int
    torn_tail: bool
    records_scanned: int
    records_applied: int
    checkpoint_lsn: int
    redo_from: int
    max_lsn: int
    #: Every durable LSN — an operation "committed" iff its LSN is here.
    lsns: frozenset[int]
    #: Heap pages materialized from full log history because their
    #: on-disk bytes failed validation during redo.
    page_rebuilds: int
    #: table name -> live rows after recovery.
    tables: dict[str, int] = field(default_factory=dict)
    replay_ns: int = 0
    #: In-flight transactions (heap ops durable, no TXN_COMMIT/TXN_ABORT
    #: in the durable prefix) rolled back by appending compensation
    #: records — the crash-during-commit losers.
    txns_rolled_back: int = 0
    #: Compensation records appended for those rollbacks.
    undo_records: int = 0
    #: §5j forensics: the ``recovery.*`` EngineEvents this recovery
    #: emitted (as dicts), when a journal was passed to :func:`recover`.
    events: tuple = ()


def schema_from_meta(columns: list) -> Schema:
    """Inverse of :func:`repro.wal.log.schema_meta`."""
    return Schema(tuple(
        Column(name, PhysicalType(TypeKind(kind), int(size), type_name))
        for name, kind, size, type_name in columns
    ))


# -- page materialization -----------------------------------------------------


def _page_history_state(
    records: tuple[WalRecord, ...], page_id: int
) -> tuple[dict[int, bytes], int]:
    """Fold the full log history of one page into ``slot -> bytes`` plus
    the directory size (max slot ever used + 1)."""
    live: dict[int, bytes] = {}
    top = 0
    for rec in records:
        if rec.rtype not in HEAP_OP_TYPES or rec.page_id != page_id:
            continue
        top = max(top, rec.slot + 1)
        if rec.rtype is RecordType.DELETE:
            live.pop(rec.slot, None)
        else:
            live[rec.slot] = rec.payload
    return live, top


def rebuild_heap_page(
    records: tuple[WalRecord, ...], page_id: int, page_size: int
) -> bytes:
    """Materialize a heap page's bytes from its complete log history.

    The log is redo-complete for heap pages (every insert/update/delete
    is logged before the page can reach disk), so the fold of all
    records touching ``page_id`` *is* the page's last logged state —
    which is how a torn or bit-flipped heap page is healed at runtime.
    Compaction isn't logged, so the rebuilt layout may differ physically
    (records packed fresh from the footer) while agreeing on every
    ``(slot, bytes)`` pair, which is all RIDs and scans observe.
    """
    live, top = _page_history_state(records, page_id)
    buf = bytearray(page_size)
    page = SlottedPage.format(buf, page_id, PageType.HEAP)
    for slot in sorted(live):
        page.place_at(slot, live[slot])
    page.reserve_tombstones(top)
    return bytes(buf)


# -- redo application ---------------------------------------------------------


def _apply_heap_redo(page: SlottedPage, rec: WalRecord) -> bool:
    """Test-and-redo one heap record against current page state.

    Returns True if the page changed.  Convergence argument: the disk
    holds a *prefix-complete* state of each page (everything up to its
    last flush), and every logged change past ``redo_from`` is replayed
    in log order — so any "stale skip" here is corrected by a later
    record in the same replay.
    """
    count = page.slot_count
    live = rec.slot < count and page.slot_is_live(rec.slot)
    if rec.rtype is RecordType.INSERT:
        if live:
            return False  # already durable (or newer state; later records fix it)
        page.place_at(rec.slot, rec.payload)
        return True
    if rec.rtype is RecordType.UPDATE:
        if live:
            current = page.read(rec.slot)
            if current == rec.payload:
                return False
            if len(current) == len(rec.payload):
                page.update(rec.slot, rec.payload)
                return True
            page.delete(rec.slot)
        page.place_at(rec.slot, rec.payload)
        return True
    if rec.rtype is RecordType.DELETE:
        if not live:
            return False
        page.delete(rec.slot)
        return True
    raise WalError(f"not a heap redo record: {rec.rtype!r}")  # pragma: no cover


def recover(
    wal,
    *,
    disk=None,
    page_size: int = DEFAULT_PAGE_SIZE,
    data_pool_pages: int = 1024,
    index_pool_pages: int | None = None,
    seed: int = 0,
    metrics: MetricsRegistry | None = None,
    retry_policy=None,
    group_commit_records: int = 8,
    journal=None,
    journal_shard: int | None = None,
):
    """Restore a Database from a WAL (+ optionally a survived disk).

    Args:
        wal: the log to recover from — raw ``bytes``, a
            :class:`~repro.wal.log.WalDevice`, or a
            :class:`~repro.wal.log.WalWriter` (whose unflushed buffer is
            *discarded*, exactly as a crash would).  A device/writer's
            torn tail, if any, is truncated in place.
        disk: the survived disk, or ``None`` to replay onto a blank one.
        page_size, data_pool_pages, index_pool_pages, seed,
        retry_policy: forwarded to the rebuilt
            :class:`~repro.query.database.Database`.
        metrics: registry for the new database and the ``wal.replay.*``
            instruments; defaults like ``Database`` (ambient or fresh).
        group_commit_records: group-commit size for the new writer,
            which continues the survived log device.
        journal: optional :class:`~repro.obs.events.EventJournal`; the
            recovery phases (``recovery.begin`` → ``recovery.redo`` →
            ``recovery.end``) are journaled under ``journal_shard`` and
            the emitted events ride back on ``report.events``.

    Returns:
        ``(database, report)`` — the database holds every committed
        (durable-LSN) write and nothing else, with all indexes rebuilt.
    """
    from repro.query.database import Database  # late: avoids import cycle

    started = time.perf_counter_ns()
    if metrics is None:
        ambient = get_default_registry()
        metrics = ambient if ambient is not NULL_REGISTRY else MetricsRegistry()
    m_torn = metrics.counter("wal.torn_tail_truncations")
    m_applied = metrics.counter("wal.replay.records_applied")
    m_rebuilds = metrics.counter("wal.replay.page_rebuilds")
    m_replay_ns = metrics.histogram("wal.replay.ns")
    # The pool counts a faults.detected when redo trips over a torn
    # page; the rebuild below is its resolution, keeping the
    # detected == recovered + unrecoverable ledger balanced.
    m_recovered = metrics.counter("faults.recovered")

    if isinstance(wal, WalWriter):
        device = wal.device  # the buffer dies with the "process"
    elif isinstance(wal, WalDevice):
        device = wal
    else:
        device = WalDevice(initial=bytes(wal))
    scan = scan_wal(device.data)
    if scan.torn:
        device.truncate_at(scan.valid_bytes)
        m_torn.inc()
    records = scan.records
    journal_events = []

    def _emit(kind: str, **payload) -> None:
        if journal is not None:
            journal_events.append(
                journal.emit(kind, shard=journal_shard, **payload)
            )

    _emit(
        "recovery.begin",
        valid_bytes=scan.valid_bytes,
        torn_tail=scan.torn,
        records=len(records),
    )

    # -- catalog definitions -------------------------------------------------
    # CREATE records from the (never truncated) full history, overlaid
    # with the newest checkpoint's catalog snapshot for page lists.
    checkpoint: WalRecord | None = None
    table_defs: dict[str, dict] = {}
    index_defs: dict[str, dict] = {}
    for rec in records:
        if rec.rtype is RecordType.CREATE_TABLE:
            table_defs.setdefault(rec.meta["name"], dict(rec.meta))
        elif rec.rtype is RecordType.CREATE_INDEX:
            index_defs.setdefault(rec.meta["name"], dict(rec.meta))
        elif rec.rtype is RecordType.CHECKPOINT:
            checkpoint = rec
    if checkpoint is not None:
        for meta in checkpoint.meta["tables"]:
            table_defs[meta["name"]] = dict(meta)
        for meta in checkpoint.meta["indexes"]:
            index_defs[meta["name"]] = dict(meta)

    # With a survived disk, changes below the checkpoint's redo_from are
    # provably on disk; a blank disk needs the whole history.
    checkpoint_lsn = checkpoint.lsn if checkpoint is not None else 0
    redo_from = checkpoint.redo_from if disk is not None and checkpoint else 1

    # -- page ownership ------------------------------------------------------
    # name -> ordered page ids: checkpoint baseline + first appearance in
    # the log (pages never migrate between heaps; the disk only grows).
    pages_of: dict[str, list[int]] = {
        name: list(meta.get("page_ids", ())) for name, meta in table_defs.items()
    }
    owned: dict[str, set[int]] = {
        name: set(ids) for name, ids in pages_of.items()
    }
    for rec in records:
        if rec.rtype in HEAP_OP_TYPES and rec.table in pages_of:
            if rec.page_id not in owned[rec.table]:
                owned[rec.table].add(rec.page_id)
                pages_of[rec.table].append(rec.page_id)

    db = Database(
        page_size=page_size,
        data_pool_pages=data_pool_pages,
        index_pool_pages=index_pool_pages,
        seed=seed,
        metrics=metrics,
        retry_policy=retry_policy,
        wal=WalWriter(
            device=device,
            registry=metrics,
            group_commit_records=group_commit_records,
        ),
        disk=disk,
    )

    # -- redo ----------------------------------------------------------------
    pool = db.data_pool
    applied = 0
    page_rebuilds = 0
    for rec in records:
        if rec.rtype not in HEAP_OP_TYPES or rec.lsn < redo_from:
            continue
        while db.disk.num_pages <= rec.page_id:
            db.disk.allocate_page()
        try:
            changed = _redo_one(pool, rec)
        except CorruptPageError:
            # The crash tore or corrupted this heap page's last write.
            # Its full history is in the log: materialize and retry.
            pool.restore_page(
                rec.page_id,
                rebuild_heap_page(records, rec.page_id, page_size),
            )
            page_rebuilds += 1
            m_rebuilds.inc()
            m_recovered.inc()
            changed = _redo_one(pool, rec)
        if changed:
            applied += 1
            m_applied.inc()
    _emit(
        "recovery.redo",
        redo_from=redo_from,
        applied=applied,
        page_rebuilds=page_rebuilds,
    )

    # -- heap page validation ------------------------------------------------
    # Restoring a table walks its heap pages and rebuilding an index
    # scans them all, so a heap page the crash (or at-rest corruption
    # before it) mangled *below* the redo window would fail mid-restore.
    # Validate every known heap page up front and materialize the bad
    # ones from full log history; the restores below then run clean
    # (recovery is expected to run with fault injection disarmed).
    for name in table_defs:
        for pid in pages_of[name]:
            try:
                with pool.page(pid):
                    pass
            except CorruptPageError:
                pool.restore_page(
                    pid, rebuild_heap_page(records, pid, page_size)
                )
                page_rebuilds += 1
                m_rebuilds.inc()
                m_recovered.inc()

    # -- loser-transaction rollback ------------------------------------------
    # Redo-only recovery replayed *everything* durable, including heap
    # ops of transactions whose TXN_COMMIT never reached the device.
    # Undo them here exactly the way a live abort would: compensation
    # records (ordinary heap redo records with the loser's txn id) in
    # reverse log order, closed by TXN_ABORT — so the log stays
    # redo-only and a crash *during this rollback* just leaves a longer
    # in-flight tail for the next recovery to converge on.
    txns_rolled_back, undo_records = _rollback_in_flight(
        db, records, page_size
    )
    if txns_rolled_back:
        metrics.counter("wal.replay.txn_rollbacks").inc(txns_rolled_back)

    # -- catalog + index rebuild ---------------------------------------------
    tables: dict[str, int] = {}
    for name, meta in table_defs.items():
        table = db.restore_table(
            name,
            schema_from_meta(meta["schema"]),
            pages_of[name],
            append_only=bool(meta.get("append_only", False)),
        )
        tables[name] = table.num_rows
    for name, meta in index_defs.items():
        if meta["kind"] == "cached":
            db.restore_cached_index(
                meta["table"], name, tuple(meta["key_columns"]),
                tuple(meta["cached_fields"]),
                split_fraction=float(meta["split_fraction"]),
            )
        else:
            db.restore_index(
                meta["table"], name, tuple(meta["key_columns"]),
                split_fraction=float(meta["split_fraction"]),
            )

    elapsed = time.perf_counter_ns() - started
    m_replay_ns.record(elapsed)
    _emit(
        "recovery.end",
        tables=len(tables),
        txns_rolled_back=txns_rolled_back,
        max_lsn=scan.max_lsn,
    )
    if journal is not None:
        # The rebuilt engine keeps journaling into the same log.
        db.attach_events(journal, shard=journal_shard)
    report = RecoveryReport(
        valid_bytes=scan.valid_bytes,
        torn_tail=scan.torn,
        records_scanned=len(records),
        records_applied=applied,
        checkpoint_lsn=checkpoint_lsn,
        redo_from=redo_from,
        max_lsn=scan.max_lsn,
        lsns=scan.lsns,
        page_rebuilds=page_rebuilds,
        tables=tables,
        replay_ns=elapsed,
        txns_rolled_back=txns_rolled_back,
        undo_records=undo_records,
        events=tuple(e.as_dict() for e in journal_events),
    )
    return db, report


def _rollback_in_flight(db, records, page_size: int) -> tuple[int, int]:
    """Undo every in-flight transaction's durable heap ops.

    A transaction is in flight when its heap ops appear in the durable
    prefix but neither its TXN_COMMIT nor its TXN_ABORT does — commit
    records are logged after every op, so a torn tail can only strand a
    *suffix* of a transaction, and the committed prefix of the log is
    untouched.  One forward positional fold captures each loser
    record's pre-image; compensation then applies in reverse log order
    (the pre-image of op *k* is the post-image of op *k-1* on that
    slot, so reverse replay restores the original bytes even across
    repeated crash/recover cycles that already half-compensated).
    """
    from repro.storage.heap import Rid

    seen: set[int] = set()
    resolved: set[int] = set()
    for rec in records:
        if rec.txn_id:
            seen.add(rec.txn_id)
        if rec.rtype in (RecordType.TXN_COMMIT, RecordType.TXN_ABORT):
            resolved.add(rec.txn_id)
    losers = seen - resolved
    if not losers:
        return 0, 0
    state: dict[tuple[str, int, int], bytes] = {}
    loser_ops: list[tuple[WalRecord, bytes | None]] = []
    for rec in records:
        if rec.rtype not in HEAP_OP_TYPES:
            continue
        addr = (rec.table, rec.page_id, rec.slot)
        if rec.txn_id in losers:
            loser_ops.append((rec, state.get(addr)))
        if rec.rtype is RecordType.DELETE:
            state.pop(addr, None)
        else:
            state[addr] = rec.payload
    writer = db.wal
    pool = db.data_pool
    undo_records = 0
    for rec, pre in reversed(loser_ops):
        rid = Rid(rec.page_id, rec.slot)
        lsn = writer.reserve_lsn()
        if rec.rtype is RecordType.DELETE:
            if pre is None:  # pragma: no cover - delete of a dead slot
                continue
            comp = WalRecord(
                lsn=lsn, rtype=RecordType.INSERT, table=rec.table,
                page_id=rec.page_id, slot=rec.slot, payload=pre,
                txn_id=rec.txn_id,
            )
            writer.log_insert(rec.table, rid, pre, lsn=lsn, txn_id=rec.txn_id)
        elif pre is not None:
            comp = WalRecord(
                lsn=lsn, rtype=RecordType.UPDATE, table=rec.table,
                page_id=rec.page_id, slot=rec.slot, payload=pre,
                txn_id=rec.txn_id,
            )
            writer.log_update(rec.table, rid, pre, lsn=lsn, txn_id=rec.txn_id)
        else:
            comp = WalRecord(
                lsn=lsn, rtype=RecordType.DELETE, table=rec.table,
                page_id=rec.page_id, slot=rec.slot, txn_id=rec.txn_id,
            )
            writer.log_delete(rec.table, rid, lsn=lsn, txn_id=rec.txn_id)
        _redo_one(pool, comp)
        undo_records += 1
    for txn_id in sorted(losers):
        writer.log_txn_abort(txn_id)
    writer.flush()
    return len(losers), undo_records


def _redo_one(pool, rec: WalRecord) -> bool:
    """Apply one heap record through the pool (formatting blank pages).

    The frame is stamped with the record's LSN exactly like a live
    operation would: replayed-but-not-yet-flushed changes must keep
    their ``rec_lsn`` so a post-restart checkpoint cannot claim them
    durable and strand them in a later crash's skipped redo window.
    """
    with pool.page(rec.page_id, dirty=True, lsn=rec.lsn) as page:
        if not page.is_formatted:
            page = SlottedPage.format(page.buffer, rec.page_id, PageType.HEAP)
        return _apply_heap_redo(page, rec)
