"""Sharding scale-out: the §3 locality argument across machines.

One engine holding the 10× Wikipedia revision table on a fixed buffer
pool lives the §3.1 pathology: 99.9% of reads hit latest revisions, but
those hot tuples are scattered ~one per heap page, so the hot *page* set
dwarfs the pool and every lookup pays a disk read.  Sharding the table
over N engines — each modeling a machine with the *same* pool — shrinks
every shard's partition until, at 4 shards, the whole hot partition fits
in RAM ("Tidying Up the Address Space", PAPERS.md): lookups become pool
hits and scatter-gather scans run over N shards in parallel.

Timing is **simulated and deterministic**: every engine charges its cost
model per pool hit/miss, and the facade advances one clock by the *max*
over the shards an operation touched (shards are independent machines).
The same seed therefore produces the same throughputs to the digit on
any host — which is what lets ``benchmarks/bench_shard.py`` gate on the
scaling floor exactly.

The router runs in ``zipf`` mode: a warm-up phase feeds the live access
tracker, one :meth:`rebalance` migrates the hot head of the Zipf
distribution round-robin across shards, and the measured phase then
verifies the spread — no shard may carry more than 40% of hot-key
traffic (ISSUE 9 / "Exploiting Data Skew for Improved Query
Performance", PAPERS.md).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.shard.database import ShardedDatabase
from repro.workload.wikipedia import (
    REVISION_SCHEMA,
    WikipediaConfig,
    generate,
    revision_lookup_trace,
)

#: Shard counts swept by :func:`run`; 1 is the unsharded baseline.
SHARD_COUNTS = (1, 2, 4)

#: 10× the fault drill's table: 3 000 pages × ~4 revisions ≈ 12 000 rows.
N_PAGES = 3_000
REVISIONS_PER_PAGE = 4

#: Buffer-pool frames **per shard** — each shard models a machine with
#: this much RAM, so scaling out adds memory, exactly the trade the
#: paper prices.  One shard's ~160-page partition thrashes in 64 frames;
#: a 4-shard partition (~40 heap pages + index) fits.
POOL_PAGES = 64

#: Lookups per phase (warm-up feeds the tracker; measurement follows).
TRACE_LEN = 4_000

#: Full scatter-gather scans + aggregates in the measured phase.
N_SCANS = 4


@dataclass(frozen=True)
class ShardPoint:
    """One shard count's measured phase (simulated time — deterministic)."""

    n_shards: int
    ops: int
    sim_s: float
    pool_hit_rate: float
    keys_moved: int

    @property
    def throughput(self) -> float:
        """Measured-phase operations per simulated second."""
        return self.ops / max(1e-12, self.sim_s)


@dataclass(frozen=True)
class ShardScalingResult:
    """The sweep plus the hot-key spread evidence at the widest point."""

    n_rows: int
    points: tuple[ShardPoint, ...]
    #: Fraction of measured hot-key traffic each shard carries at the
    #: widest sweep point, before and after the rebalance.
    hot_shares_before: tuple[float, ...]
    hot_shares_after: tuple[float, ...]
    #: Cross-config identity: every sweep point returned the same
    #: aggregate totals and found every traced key.
    verified: bool

    def point(self, n_shards: int) -> ShardPoint:
        for p in self.points:
            if p.n_shards == n_shards:
                return p
        raise KeyError(n_shards)

    def speedup(self, n_shards: int) -> float:
        return self.point(n_shards).throughput / self.point(1).throughput

    @property
    def max_hot_share(self) -> float:
        return max(self.hot_shares_after)


def _hot_shares(sdb: ShardedDatabase, trace, hot_ids) -> tuple[float, ...]:
    """Share of the trace's hot-key accesses each shard would serve under
    the router's *current* placement (pure metadata — no I/O)."""
    counts = [0] * sdb.n_shards
    for rev_id in trace:
        if rev_id in hot_ids:
            counts[sdb.router.placement(rev_id)] += 1
    total = max(1, sum(counts))
    return tuple(c / total for c in counts)


def run(
    shard_counts: tuple[int, ...] = SHARD_COUNTS,
    n_pages: int = N_PAGES,
    revisions_per_page: int = REVISIONS_PER_PAGE,
    pool_pages: int = POOL_PAGES,
    trace_len: int = TRACE_LEN,
    seed: int = 0,
) -> ShardScalingResult:
    data = generate(
        WikipediaConfig(
            n_pages=n_pages,
            revisions_per_page_mean=revisions_per_page,
            seed=seed,
        )
    )
    hot_ids = data.hot_rev_ids
    warm_trace = revision_lookup_trace(data, trace_len, seed=100)
    measured_trace = revision_lookup_trace(data, trace_len, seed=101)

    widest = max(shard_counts)
    points = []
    agg_totals = []
    shares_before = shares_after = (1.0,)
    verified = True
    for n in shard_counts:
        sdb = ShardedDatabase(
            n,
            mode="zipf",
            data_pool_pages=pool_pages,
            seed=seed,
        )
        sdb.create_table("revision", REVISION_SCHEMA)
        # A *plain* index: the experiment prices heap-page residency, so
        # lookups must reach the heap (the §2.1 cached index would hide
        # the pool economics the sweep exists to show).
        sdb.create_index("revision", "rev_pk", ("rev_id",))
        table = sdb.table("revision")
        for row in data.revision_rows:
            table.insert(row)

        # Warm-up: feed the tracker (and the pools) with real traffic,
        # then spread the observed hot head across the shards.
        for rev_id in warm_trace:
            table.lookup("rev_pk", rev_id)
        if n == widest:
            shares_before = _hot_shares(sdb, measured_trace, hot_ids)
        report = sdb.rebalance()
        if n == widest:
            shares_after = _hot_shares(sdb, measured_trace, hot_ids)

        # Measured phase: the lookup trace plus scatter-gather analytics,
        # timed on the facade's parallel sim clock.
        start_ns = sdb.sim_now_ns
        ops = 0
        found_all = True
        for rev_id in measured_trace:
            result = table.lookup("rev_pk", rev_id)
            found_all = found_all and result.found
            ops += 1
        for _ in range(N_SCANS):
            ops += sum(1 for _ in table.scan(project=("rev_id", "rev_len")))
        totals = table.aggregate(
            [("count", None), ("sum", "rev_len"), ("max", "rev_id")]
        )
        ops += totals["count"]
        sim_s = (sdb.sim_now_ns - start_ns) / 1e9

        agg_totals.append(totals)
        verified = verified and found_all
        hits = misses = 0
        for i in range(n):
            snap = sdb.shard_registry(i).snapshot().get("bufferpool", {})
            hits += snap.get("hit", 0)
            misses += snap.get("miss", 0)
        points.append(
            ShardPoint(
                n_shards=n,
                ops=ops,
                sim_s=sim_s,
                pool_hit_rate=hits / max(1, hits + misses),
                keys_moved=report.keys_moved,
            )
        )
    verified = verified and all(t == agg_totals[0] for t in agg_totals)
    return ShardScalingResult(
        n_rows=len(data.revision_rows),
        points=tuple(points),
        hot_shares_before=shares_before,
        hot_shares_after=shares_after,
        verified=verified,
    )


def main() -> None:
    from repro.experiments.runner import print_table

    result = run()
    base = result.point(1)
    print_table(
        ["shards", "measured ops", "sim time", "throughput", "speedup",
         "pool hit rate", "hot keys moved"],
        [
            (p.n_shards, p.ops, f"{p.sim_s * 1e3:.1f} ms",
             f"{p.throughput:,.0f} ops/s",
             f"{p.throughput / base.throughput:.1f}x",
             f"{p.pool_hit_rate:.0%}", p.keys_moved)
            for p in result.points
        ],
        title=(
            f"Sharded scale-out on the 10x Zipf wikipedia workload "
            f"({result.n_rows} rows, {POOL_PAGES} pool frames per shard, "
            f"simulated time; results verified identical: "
            f"{result.verified})"
        ),
    )
    fmt = lambda shares: " / ".join(f"{s:.0%}" for s in shares)  # noqa: E731
    print_table(
        ["fact", "value"],
        [
            ("hot-key traffic by shard, before rebalance",
             fmt(result.hot_shares_before)),
            ("hot-key traffic by shard, after rebalance",
             fmt(result.hot_shares_after)),
            ("max hot-key share after rebalance (gate: <= 40%)",
             f"{result.max_hot_share:.0%}"),
        ],
        title="Zipf-aware hot-key spreading at the widest sweep point",
    )


if __name__ == "__main__":
    main()
