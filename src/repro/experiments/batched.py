"""Batched read fast path: pool-access savings, measured.

The tentpole claim: resolving a Zipf-skewed batch of point lookups
through :meth:`~repro.query.table.Table.lookup_many` (sorted probes,
shared index descents, page-ordered heap fetches, each page pinned once)
costs *several times fewer* buffer-pool accesses than the per-key loop —
with bit-identical results.  This driver measures that on a plain RID
index and on a §2.1 cached index, plus the free-space-map side dish: the
size-bucketed :class:`~repro.storage.freespace.FreeSpaceMap` examines a
deterministic, near-constant number of candidate pages per insert where
the old first-fit walk examined O(#pages).

All numbers are deterministic operation counts (pool hits+misses, pages
examined), never wall time, so they are safe to gate in CI.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.query.database import Database
from repro.schema.schema import Schema
from repro.schema.types import UINT32, UINT64, char
from repro.storage.freespace import FreeSpaceMap
from repro.util.rng import DeterministicRng
from repro.workload.distributions import ZipfianDistribution

SCHEMA = Schema.of(
    ("rev_id", UINT64), ("rev_page", UINT64), ("rev_len", UINT32),
    ("pad", char(48)),
)
CACHED_FIELDS = ("rev_page", "rev_len")
PROJECTION = ("rev_id",) + CACHED_FIELDS


@dataclass(frozen=True)
class BatchedReadResult:
    """Deterministic access counts for scalar vs batched lookups."""

    n_rows: int
    batch_size: int
    n_batches: int
    plain_scalar_fetches: int
    plain_batched_fetches: int
    cached_scalar_fetches: int
    cached_batched_fetches: int
    fsm_linear_examined: int
    fsm_bucketed_examined: int

    @property
    def plain_reduction(self) -> float:
        """How many times fewer pool accesses the batched plain path does."""
        return self.plain_scalar_fetches / max(1, self.plain_batched_fetches)

    @property
    def cached_reduction(self) -> float:
        return self.cached_scalar_fetches / max(1, self.cached_batched_fetches)

    @property
    def fsm_speedup(self) -> float:
        """Candidate examinations: first-fit scan ÷ size-bucketed."""
        return self.fsm_linear_examined / max(1, self.fsm_bucketed_examined)


class _LinearFsmReference:
    """The pre-bucketing first-fit scan, kept only to count its cost."""

    def __init__(self) -> None:
        self._free: dict[int, int] = {}
        self.pages_examined = 0

    def note(self, page_id: int, free_bytes: int) -> None:
        self._free[page_id] = free_bytes

    def find_page_with(self, need_bytes: int) -> int | None:
        for page_id, free in self._free.items():
            self.pages_examined += 1
            if free >= need_bytes:
                return page_id
        return None


def _build(cached: bool, n_rows: int, pool_pages: int, seed: int):
    # No explicit registry: emit into the ambient default so the
    # ``experiments.all --json`` convention (per-driver snapshots) holds.
    db = Database(data_pool_pages=pool_pages, seed=seed)
    table = db.create_table("revision", SCHEMA)
    if cached:
        db.create_cached_index("revision", "pk", ("rev_id",), CACHED_FIELDS)
    else:
        db.create_index("revision", "pk", ("rev_id",))
    rng = DeterministicRng(seed)
    for i in range(n_rows):
        table.insert({
            "rev_id": i,
            "rev_page": i % 97,
            "rev_len": rng.randint(100, 200_000),
            "pad": f"pad-{i}",
        })
    return db, table


def _measure(
    cached: bool,
    batches: list[list[int]],
    n_rows: int,
    pool_pages: int,
    seed: int,
) -> tuple[int, int]:
    """(scalar_fetches, batched_fetches) over identical fresh tables."""
    counts = []
    for use_batch in (False, True):
        db, table = _build(cached, n_rows, pool_pages, seed)
        pool = table.heap.pool
        answers = []
        pool.reset_counters()
        start = pool.hits + pool.misses
        for batch in batches:
            if use_batch:
                results = table.lookup_many("pk", batch, PROJECTION)
            else:
                results = [
                    table.lookup("pk", key, PROJECTION) for key in batch
                ]
            answers.append([r.values for r in results])
        counts.append((pool.hits + pool.misses - start, answers))
    (scalar_fetches, scalar_answers), (batched_fetches, batched_answers) = counts
    if scalar_answers != batched_answers:
        raise AssertionError("batched lookups diverged from scalar results")
    return scalar_fetches, batched_fetches


def _measure_fsm(n_pages: int, n_finds: int, seed: int) -> tuple[int, int]:
    """Drive the bucketed map and the first-fit reference through one
    identical note/find trace; return (linear, bucketed) examinations."""
    rng = DeterministicRng(seed)
    bucketed = FreeSpaceMap()
    linear = _LinearFsmReference()
    for page_id in range(n_pages):
        free = rng.randint(0, 600)
        bucketed.note(page_id, free)
        linear.note(page_id, free)
    for _ in range(n_finds):
        need = rng.randint(200, 4000)
        got_b = bucketed.find_page_with(need)
        got_l = linear.find_page_with(need)
        # Policies differ (best fit vs first fit) but feasibility must
        # agree: both find a page, or neither does.
        assert (got_b is None) == (got_l is None)
        # Mimic a consumed insert so the trace stays realistic.
        if got_b is not None:
            new_free = max(0, bucketed.free_of(got_b) - need)
            bucketed.note(got_b, new_free)
        if got_l is not None:
            linear.note(got_l, max(0, linear._free[got_l] - need))
    return linear.pages_examined, bucketed.pages_examined


def run(
    n_rows: int = 4_000,
    batch_size: int = 64,
    n_batches: int = 30,
    pool_pages: int = 48,
    alpha: float = 1.0,
    seed: int = 0,
) -> BatchedReadResult:
    """Measure scalar vs batched pool accesses on a Zipf batch workload.

    The pool is deliberately much smaller than the table so repeated
    scalar probes of the same hot pages still cost pool traffic, exactly
    the regime where pinning each page once per batch pays.
    """
    rng = DeterministicRng(seed + 1)
    zipf = ZipfianDistribution(n_rows, alpha, rng)
    batches = [
        [zipf.sample() % n_rows for _ in range(batch_size)]
        for _ in range(n_batches)
    ]
    plain_scalar, plain_batched = _measure(
        False, batches, n_rows, pool_pages, seed
    )
    cached_scalar, cached_batched = _measure(
        True, batches, n_rows, pool_pages, seed
    )
    fsm_linear, fsm_bucketed = _measure_fsm(
        n_pages=800, n_finds=2_000, seed=seed
    )
    return BatchedReadResult(
        n_rows=n_rows,
        batch_size=batch_size,
        n_batches=n_batches,
        plain_scalar_fetches=plain_scalar,
        plain_batched_fetches=plain_batched,
        cached_scalar_fetches=cached_scalar,
        cached_batched_fetches=cached_batched,
        fsm_linear_examined=fsm_linear,
        fsm_bucketed_examined=fsm_bucketed,
    )


def main() -> None:
    from repro.experiments.runner import print_table

    result = run()
    print_table(
        ["path", "scalar fetches", "batched fetches", "reduction"],
        [
            ("plain index", result.plain_scalar_fetches,
             result.plain_batched_fetches,
             f"{result.plain_reduction:.2f}x"),
            ("cached index", result.cached_scalar_fetches,
             result.cached_batched_fetches,
             f"{result.cached_reduction:.2f}x"),
        ],
        title=(
            f"Batched read fast path: {result.n_batches} Zipf batches "
            f"of {result.batch_size} over {result.n_rows} rows"
        ),
    )
    print_table(
        ["free-space map", "pages examined"],
        [
            ("first-fit linear scan", result.fsm_linear_examined),
            ("size-bucketed", result.fsm_bucketed_examined),
        ],
        title=f"FSM candidate search ({result.fsm_speedup:.1f}x fewer)",
    )


if __name__ == "__main__":
    main()
