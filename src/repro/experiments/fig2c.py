"""Figure 2(c): caching overhead at a 100% buffer-pool hit rate.

The paper's point: even when *everything* is in RAM, index caching wins —
a cache hit skips the buffer-pool memory access entirely.  Claims:

* the ``cache`` line starts ~0.3 µs above ``nocache`` at a 0% hit rate
  (the probe overhead);
* the overhead "disappears when the cache hit rate exceeds 35%"
  (crossover);
* at 100% hit rate caching is ~2.7× faster.

Two reproductions:

* **analytic/simulated sweep** over imposed hit rates (like Fig. 2b);
* **engine validation** (:func:`run_engine`) — a real CachedBTree vs a
  real PlainIndex over the same heap with everything buffer-pool
  resident, measuring simulated cost per lookup at the cache's *natural*
  hit rate.  The speedup must land on the analytic curve.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.btree.tree import BPlusTree
from repro.core.index_cache.cached_index import CachedBTree
from repro.experiments.runner import print_table
from repro.query.table import PlainIndex
from repro.schema.schema import Schema
from repro.schema.types import UINT32, UINT64, char
from repro.sim.cost_model import CostModel, CostPreset, PAPER_PRESET
from repro.storage.buffer_pool import BufferPool
from repro.storage.disk import SimulatedDisk
from repro.storage.heap import HeapFile
from repro.util.rng import DeterministicRng
from repro.util.units import NS_PER_US
from repro.workload.distributions import ZipfianDistribution

CACHE_HIT_RATES = tuple(x / 100 for x in range(0, 101, 5))


@dataclass(frozen=True)
class Fig2cPoint:
    """One x-position: cost with and without the index cache."""

    cache_hit_rate: float
    cache_cost_us: float
    nocache_cost_us: float


@dataclass(frozen=True)
class Fig2cSummary:
    """The three headline numbers of the figure."""

    overhead_at_zero_us: float       # paper: ~0.3 us
    crossover_hit_rate: float        # paper: ~0.35
    speedup_at_full: float           # paper: ~2.7x


def run(
    preset: CostPreset = PAPER_PRESET,
    cache_hit_rates: tuple[float, ...] = CACHE_HIT_RATES,
) -> tuple[list[Fig2cPoint], Fig2cSummary]:
    """Analytic sweep at bp_hit_rate = 1.0."""
    model = CostModel(preset)
    nocache = model.expected_lookup_ns(0.0, 1.0, cached=False) / NS_PER_US
    points = [
        Fig2cPoint(
            cache_hit_rate=h,
            cache_cost_us=model.expected_lookup_ns(h, 1.0) / NS_PER_US,
            nocache_cost_us=nocache,
        )
        for h in cache_hit_rates
    ]
    crossover = next(
        (p.cache_hit_rate for p in points if p.cache_cost_us <= p.nocache_cost_us),
        1.0,
    )
    summary = Fig2cSummary(
        overhead_at_zero_us=points[0].cache_cost_us - nocache,
        crossover_hit_rate=crossover,
        speedup_at_full=nocache / points[-1].cache_cost_us,
    )
    return points, summary


@dataclass(frozen=True)
class EngineValidation:
    """Real-engine measurement at the cache's natural hit rate."""

    natural_hit_rate: float
    cache_cost_us: float
    nocache_cost_us: float
    predicted_cache_cost_us: float

    @property
    def speedup(self) -> float:
        return self.nocache_cost_us / self.cache_cost_us


_SCHEMA = Schema.of(
    ("id", UINT64),
    ("payload_a", UINT32),
    ("payload_b", UINT32),
    ("filler", char(40)),
)


def run_engine(
    n_rows: int = 4_000,
    n_lookups: int = 30_000,
    alpha: float = 1.0,
    preset: CostPreset = PAPER_PRESET,
    seed: int = 0,
) -> EngineValidation:
    """Drive real cached/uncached indexes, everything RAM-resident.

    Pools are sized to hold the whole database so every heap access is a
    buffer-pool *hit* — isolating exactly the effect Fig. 2c measures.
    The index pool is unhooked ("index fully in memory"); descents and
    probes are charged through the cached index's cost hooks.
    """
    def build(cost_model: CostModel, cached: bool):
        disk = SimulatedDisk(4096)
        index_pool = BufferPool(disk, 100_000)
        heap_pool = BufferPool(disk, 100_000, cost_hook=cost_model)
        heap = HeapFile(heap_pool)
        tree = BPlusTree(index_pool, key_size=8, value_size=8)
        if cached:
            index = CachedBTree(
                tree, heap, _SCHEMA, ("id",), ("payload_a", "payload_b"),
                rng=DeterministicRng(seed), cost_model=cost_model,
            )
        else:
            index = PlainIndex(tree, heap, _SCHEMA, ("id",))
        for i in range(n_rows):
            row = {
                "id": i, "payload_a": i % 97, "payload_b": i % 31,
                "filler": "x" * 20,
            }
            if cached:
                index.insert_row(row)
            else:
                from repro.schema.record import pack_record_map

                rid = heap.insert(pack_record_map(_SCHEMA, row))
                index.insert_key(row, rid)
        return index, heap_pool

    project = ("id", "payload_a", "payload_b")

    # nocache baseline — charge descents explicitly to mirror the model.
    model_nc = CostModel(preset)
    plain, pool_nc = build(model_nc, cached=False)
    zipf = ZipfianDistribution(n_rows, alpha, DeterministicRng(seed + 1))
    warm = [zipf.sample() for _ in range(n_lookups)]
    model_nc.reset()
    for key in warm:
        model_nc.on_index_descent()
        plain.lookup(key, project)
    nocache_us = model_nc.now_ns / n_lookups / NS_PER_US

    # cached index — warm the cache first, then measure.
    model_c = CostModel(preset)
    cached_idx, pool_c = build(model_c, cached=True)
    zipf2 = ZipfianDistribution(n_rows, alpha, DeterministicRng(seed + 1))
    for _ in range(n_lookups):
        cached_idx.lookup(zipf2.sample(), project)
    model_c.reset()
    cached_idx.stats.lookups = 0
    cached_idx.stats.found = 0
    cached_idx.stats.answered_from_cache = 0
    for _ in range(n_lookups):
        cached_idx.lookup(zipf2.sample(), project)
    cache_us = model_c.now_ns / n_lookups / NS_PER_US
    hit_rate = cached_idx.stats.cache_answer_rate

    predicted = CostModel(preset).expected_lookup_ns(hit_rate, 1.0) / NS_PER_US
    return EngineValidation(
        natural_hit_rate=hit_rate,
        cache_cost_us=cache_us,
        nocache_cost_us=nocache_us,
        predicted_cache_cost_us=predicted,
    )


def main() -> None:
    points, summary = run()
    print_table(
        ["cache hit %", "cache (us)", "nocache (us)"],
        [
            (int(p.cache_hit_rate * 100), p.cache_cost_us, p.nocache_cost_us)
            for p in points
        ],
        title="Figure 2(c): per-lookup cost at buffer-pool hit rate 100%",
    )
    print(
        f"\noverhead at 0% hit: {summary.overhead_at_zero_us:.2f} us "
        f"(paper ~0.3)\ncrossover: {summary.crossover_hit_rate:.0%} "
        f"(paper ~35%)\nspeedup at 100%: {summary.speedup_at_full:.2f}x "
        f"(paper ~2.7x)"
    )
    validation = run_engine()
    print(
        f"\nengine validation: natural hit rate "
        f"{validation.natural_hit_rate:.1%}, cache "
        f"{validation.cache_cost_us:.3f} us vs nocache "
        f"{validation.nocache_cost_us:.3f} us -> {validation.speedup:.2f}x "
        f"(analytic prediction {validation.predicted_cache_cost_us:.3f} us)"
    )


if __name__ == "__main__":
    main()
