"""Figure 3: per-query cost under access-based clustering and partitioning.

Paper setup (§3.1): Wikipedia's revision table; 99.9% of lookups hit the
~5% of tuples that are each page's latest revision; those hot tuples are
scattered roughly one per heap page.  Four configurations:

* **0%** — the table as ingested (baseline),
* **54% / 100%** — that fraction of hot tuples relocated to the tail by
  the delete+append clustering operator,
* **Partition** — hot tuples in their own partition with their own
  (small) index.

Claims to reproduce (shape, not absolute ms): clustering 54% ≈ 1.8×,
clustering 100% ≈ 2.15×, partitioning ≈ 8.4×, and the hot-partition index
~19× smaller than the full index (the paper's 27.1 GB → 1.4 GB).

This experiment runs the *real engine*: real heaps, real B+Trees, one
cost-hooked buffer pool sized well below the full working set, so the
factors emerge from page-touch behaviour rather than being painted on.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.hot_cold.cluster import cluster_hot_tuples
from repro.core.hot_cold.partitioner import (
    HotColdPartitionedTable,
    Partition,
)
from repro.experiments.runner import print_table
from repro.query.table import PlainIndex, Table
from repro.sim.cost_model import CostModel, CostPreset, END_TO_END_PRESET
from repro.storage.buffer_pool import BufferPool
from repro.storage.disk import SimulatedDisk
from repro.storage.heap import HeapFile, RID_SIZE
from repro.btree.tree import BPlusTree
from repro.util.rng import DeterministicRng
from repro.util.units import NS_PER_MS
from repro.workload.wikipedia import (
    REVISION_SCHEMA,
    WikipediaConfig,
    WikipediaData,
    generate,
    revision_lookup_trace,
)

_PROJECT = ("rev_id", "rev_page", "rev_text_id", "rev_len")


@dataclass(frozen=True)
class Fig3Row:
    """One bar of the figure."""

    label: str
    cost_ms_per_lookup: float
    disk_reads_per_lookup: float
    index_bytes: int          # the index the hot path descends
    total_index_bytes: int    # all indexes of the configuration
    speedup: float            # vs the 0% baseline


@dataclass(frozen=True)
class Fig3Config:
    """Scale knobs; defaults keep a full run under ~2 minutes."""

    n_pages: int = 1_500
    revisions_per_page_mean: int = 20
    n_lookups: int = 12_000
    warmup_lookups: int = 4_000
    pool_pages: int = 96
    page_size: int = 4_096
    seed: int = 0


def _build_flat(
    data: WikipediaData, config: Fig3Config, cost: CostModel
) -> tuple[Table, PlainIndex, BufferPool]:
    """The unpartitioned revision table, ingested in temporal order."""
    disk = SimulatedDisk(config.page_size)
    pool = BufferPool(disk, config.pool_pages, cost_hook=cost)
    heap = HeapFile(pool, append_only=True)
    table = Table("revision", REVISION_SCHEMA, heap)
    tree = BPlusTree(pool, key_size=4, value_size=RID_SIZE, name="rev_pk")
    index = PlainIndex(tree, heap, REVISION_SCHEMA, ("rev_id",))
    table.attach_index("rev_pk", index)
    for row in data.revision_rows:
        table.insert(row)
    return table, index, pool


def _build_partitioned(
    data: WikipediaData, config: Fig3Config, cost: CostModel
) -> tuple[HotColdPartitionedTable, BufferPool]:
    """Hot/cold partitioned layout: latest revisions get their own
    partition and index."""
    disk = SimulatedDisk(config.page_size)
    pool = BufferPool(disk, config.pool_pages, cost_hook=cost)
    hot = Partition(
        heap=HeapFile(pool, append_only=True),
        tree=BPlusTree(pool, key_size=4, value_size=RID_SIZE, name="rev_hot"),
    )
    cold = Partition(
        heap=HeapFile(pool, append_only=True),
        tree=BPlusTree(pool, key_size=4, value_size=RID_SIZE, name="rev_cold"),
    )
    table = HotColdPartitionedTable(REVISION_SCHEMA, ("rev_id",), hot, cold)
    hot_ids = data.hot_rev_ids
    for row in data.revision_rows:
        table.insert(row, hot=row["rev_id"] in hot_ids)
    return table, pool


def _measure(
    lookup, trace: list[int], warmup: int, cost: CostModel, pool: BufferPool
) -> tuple[float, float]:
    """Warm up, then measure simulated cost and disk reads per lookup."""
    for rev_id in trace[:warmup]:
        lookup(rev_id)
    cost.reset()
    pool.reset_counters()
    reads_before = pool.disk.reads
    measured = trace[warmup:]
    for rev_id in measured:
        cost.on_query()
        lookup(rev_id)
    n = len(measured)
    return (
        cost.now_ns / n / NS_PER_MS,
        (pool.disk.reads - reads_before) / n,
    )


def run(
    config: Fig3Config = Fig3Config(),
    preset: CostPreset = END_TO_END_PRESET,
    cluster_fractions: tuple[float, ...] = (0.0, 0.54, 1.0),
) -> list[Fig3Row]:
    """Build and measure every configuration; rows in figure order."""
    data = generate(
        WikipediaConfig(
            n_pages=config.n_pages,
            revisions_per_page_mean=config.revisions_per_page_mean,
            seed=config.seed,
        )
    )
    total = config.warmup_lookups + config.n_lookups
    trace = revision_lookup_trace(data, total, seed=config.seed + 17)
    rows: list[Fig3Row] = []
    baseline_cost: float | None = None

    for fraction in cluster_fractions:
        cost = CostModel(preset)
        table, index, pool = _build_flat(data, config, cost)
        if fraction > 0:
            hot_keys = [
                index.encode_key(rev_id) for rev_id in sorted(data.hot_rev_ids)
            ]
            cluster_hot_tuples(
                table.heap, index.tree, hot_keys, fraction,
                rng=DeterministicRng(config.seed + 23),
            )
        cost_ms, reads = _measure(
            lambda rid: table.lookup("rev_pk", rid, _PROJECT),
            trace, config.warmup_lookups, cost, pool,
        )
        if baseline_cost is None:
            baseline_cost = cost_ms
        rows.append(
            Fig3Row(
                label=f"{fraction:.0%} clustered",
                cost_ms_per_lookup=cost_ms,
                disk_reads_per_lookup=reads,
                index_bytes=index.tree.size_bytes,
                total_index_bytes=index.tree.size_bytes,
                speedup=baseline_cost / cost_ms if cost_ms else float("inf"),
            )
        )

    cost = CostModel(preset)
    part_table, pool = _build_partitioned(data, config, cost)
    cost_ms, reads = _measure(
        lambda rid: part_table.lookup(rid, _PROJECT),
        trace, config.warmup_lookups, cost, pool,
    )
    stats = part_table.stats()
    assert baseline_cost is not None
    rows.append(
        Fig3Row(
            label="Partition",
            cost_ms_per_lookup=cost_ms,
            disk_reads_per_lookup=reads,
            index_bytes=stats.hot_index_bytes,
            total_index_bytes=stats.hot_index_bytes + stats.cold_index_bytes,
            speedup=baseline_cost / cost_ms if cost_ms else float("inf"),
        )
    )
    return rows


def main() -> None:
    rows = run()
    print_table(
        ["config", "cost/lookup (ms)", "disk reads/lookup",
         "hot-path index (KiB)", "speedup"],
        [
            (r.label, r.cost_ms_per_lookup, r.disk_reads_per_lookup,
             r.index_bytes // 1024, f"{r.speedup:.2f}x")
            for r in rows
        ],
        title="Figure 3: query cost under clustering/partitioning",
    )
    full = rows[0].index_bytes
    hot = rows[-1].index_bytes
    print(
        f"\nindex the hot path descends: {full / 1024:.0f} KiB -> "
        f"{hot / 1024:.0f} KiB ({full / hot:.1f}x smaller; paper: 19x)"
    )


if __name__ == "__main__":
    main()
