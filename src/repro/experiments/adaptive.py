"""Adaptive control: the telemetry loop closed over a shifting workload.

Two identical engines run the same three-phase workload from the same
deliberately mistuned static configuration:

* group commit of **1** (every WAL record pays a device append),
* index-cache admission of **0.25** (three of four piggy-back cache
  fills are thrown away),
* a data pool far below the heap working set, and
* a hot/cold rebalance epoch longer than the whole run (the hot
  partition never converges).

Phases: **A** a steady skewed scan, **B** a hot-set rotation with a
flatter skew (every phase reshuffles which ids are hot), **C** the same
rotated workload under a transient-fault storm.  The *static* engine
keeps its configuration; the *adaptive* engine runs the
:class:`~repro.obs.adaptive.AdaptiveController` end to end: sampler
windows feed SLO rules, sustained breaches step the live knobs (pool
partition, WAL group commit, cache admission, hot/cold cadence and
capacity), and every move lands in the audit ring printed below.

The demonstration this driver exists for: the tuned engine *holds* SLOs
the static configuration breaches for the whole run — while returning
bit-identical query answers, fault storm included.  Everything is
simulated-clock deterministic; rerunning produces the same breach
tallies and the same audit trail.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.btree.tree import BPlusTree
from repro.core.hot_cold.manager import OnlineHotColdManager
from repro.core.hot_cold.partitioner import HotColdPartitionedTable, Partition
from repro.faults.injector import FaultInjector
from repro.faults.plan import FaultKind, FaultPlan, FaultSpec
from repro.obs.adaptive import (
    AdaptiveController,
    KnobBinding,
    TuningAction,
    WAL_FLUSH_AMPLIFICATION_RULE,
    database_knobs,
    default_bindings,
    hot_cold_knobs,
)
from repro.obs.health import (
    DEFAULT_SLO_RULES,
    HealthChecker,
    HealthReport,
    SloRule,
)
from repro.obs.registry import MetricsRegistry
from repro.obs.sampler import TelemetrySampler
from repro.query.database import Database
from repro.schema import UINT32, Schema, char
from repro.storage.buffer_pool import BufferPool
from repro.storage.disk import SimulatedDisk
from repro.storage.heap import HeapFile, RID_SIZE
from repro.storage.retry import RetryPolicy
from repro.util.rng import DeterministicRng
from repro.workload.distributions import ZipfianDistribution

SCHEMA = Schema.of(("k", UINT32), ("pad", char(24)), ("n", UINT32))
HC_SCHEMA = Schema.of(("item_id", UINT32), ("body", char(16)))

#: Experiment-local SLO: the managed hot partition must serve at least
#: half the tracked lookups per window.  Fed by the manager's per-lookup
#: ``hotcold.hit``/``hotcold.miss`` counters through the sampler's
#: derived-hit-rate selector.
HOTCOLD_HIT_RATE_RULE = SloRule(
    name="hotcold-hit-rate-floor",
    selector="derived.hotcold.hit_rate",
    op=">=",
    threshold=0.5,
    window=3,
    description="the hot partition must absorb the skewed lookups",
)


@dataclass(frozen=True)
class AdaptiveConfig:
    """Scale knobs; defaults keep the full two-engine run under ~30 s."""

    n_rows: int = 480
    n_items: int = 400
    ops_per_phase: int = 800
    chunk: int = 100           # ops per telemetry window
    page_size: int = 256
    data_pool_pages: int = 12  # static misconfig: heap working set ≫ pool
    index_pool_pages: int = 36
    hc_pool_pages: int = 16
    hot_capacity: int = 24
    ops_per_epoch: int = 5_000  # static misconfig: longer than the run
    migration_budget: int = 64
    admission: float = 0.25     # static misconfig: cache fills wasted
    group_commit: int = 1       # static misconfig: no commit batching
    seed: int = 0


@dataclass
class EngineRun:
    """What one engine did across the whole three-phase run."""

    label: str
    windows: int
    #: rule name -> breach-window count across the run.
    breach_windows: dict[str, int]
    final: HealthReport
    actions: list[TuningAction]
    hot_hit_rate: float
    wrong_results: int
    controller: AdaptiveController | None = None
    #: (phase label, rule name) -> breach windows, for the narrative.
    by_phase: dict[tuple[str, str], int] = field(default_factory=dict)


@dataclass
class _Engine:
    db: Database
    table: object
    manager: OnlineHotColdManager
    injector: FaultInjector
    sampler: TelemetrySampler
    checker: HealthChecker
    controller: AdaptiveController | None


def _build(config: AdaptiveConfig, adaptive: bool) -> _Engine:
    metrics = MetricsRegistry()
    injector = FaultInjector(
        seed=config.seed, page_size=config.page_size, registry=metrics
    )
    db = Database(
        page_size=config.page_size,
        data_pool_pages=config.data_pool_pages,
        index_pool_pages=config.index_pool_pages,
        seed=config.seed,
        metrics=metrics,
        fault_injector=injector,
        retry_policy=RetryPolicy(corrupt_rereads=3),
        wal=True,
        wal_group_commit=config.group_commit,
    )
    db.set_cache_admission(config.admission)
    table = db.create_table("t", SCHEMA)
    db.create_cached_index("t", "pk", ("k",), cached_fields=("n",))
    for i in range(config.n_rows):
        table.insert({"k": i, "pad": f"p{i:010d}", "n": i % 97})

    # The hot/cold bundle lives on its own (small) pool but shares the
    # metrics registry and the simulated clock, so its hit/miss counters
    # land in the same telemetry windows the controller judges.
    hc_pool = BufferPool(
        SimulatedDisk(config.page_size),
        config.hc_pool_pages,
        cost_hook=db.cost_model,
        registry=metrics,
    )

    def partition() -> Partition:
        return Partition(
            heap=HeapFile(hc_pool, append_only=True),
            tree=BPlusTree(hc_pool, key_size=4, value_size=RID_SIZE),
        )

    hc_table = HotColdPartitionedTable(
        HC_SCHEMA, ("item_id",), partition(), partition()
    )
    for i in range(config.n_items):
        hc_table.insert({"item_id": i, "body": f"b{i:06d}"}, hot=False)
    manager = OnlineHotColdManager(
        hc_table,
        hot_capacity=config.hot_capacity,
        ops_per_epoch=config.ops_per_epoch,
        migration_budget=config.migration_budget,
        registry=metrics,
    )

    rules = DEFAULT_SLO_RULES + (
        WAL_FLUSH_AMPLIFICATION_RULE,
        HOTCOLD_HIT_RATE_RULE,
    )
    sampler = TelemetrySampler(
        metrics, clock=db.cost_model, interval_ns=float("inf"), capacity=32
    )
    checker = HealthChecker(sampler, rules)
    controller = None
    if adaptive:
        knobs = database_knobs(db) + hot_cold_knobs(manager)
        bindings = default_bindings(
            knobs, rules, breach_windows=2, cooldown_windows=1
        ) + [
            KnobBinding(
                "hotcold-hit-rate-floor", "hotcold.ops_per_epoch", "down",
                breach_windows=2, cooldown_windows=1,
            ),
            KnobBinding(
                "hotcold-hit-rate-floor", "hotcold.hot_capacity", "up",
                breach_windows=2, cooldown_windows=1,
            ),
        ]
        controller = db.enable_adaptive(
            rules=rules, knobs=knobs, bindings=bindings, sampler=sampler
        )
    sampler.sample()  # baseline window; rates start with the next sample
    return _Engine(db, table, manager, injector, sampler, checker, controller)


#: (label, zipf alpha, rng child, faults armed).  Each phase's fresh
#: distribution reshuffles rank->id, so B *rotates* the hot set away
#: from A's; C keeps B's rotation (same child) and adds the storm.
_PHASES: tuple[tuple[str, float, int, bool], ...] = (
    ("A steady zipf", 1.4, 1, False),
    ("B hot-set rotation", 0.9, 2, False),
    ("C fault storm", 0.9, 2, True),
)

_STORM = FaultPlan.of(
    FaultSpec(FaultKind.TRANSIENT_READ_ERROR, probability=0.02),
    FaultSpec(FaultKind.READ_BIT_FLIP, probability=0.01),
)


def _run_engine(config: AdaptiveConfig, adaptive: bool) -> EngineRun:
    engine = _build(config, adaptive)
    rng = DeterministicRng(config.seed + 101)
    mirror = {i: i % 97 for i in range(config.n_rows)}
    wrong = 0
    windows = 0
    tally: dict[str, int] = {}
    by_phase: dict[tuple[str, str], int] = {}

    def close_window(phase: str) -> None:
        nonlocal windows
        point = engine.sampler.sample()
        windows += 1
        report = engine.checker.evaluate()
        for result in report.breaches:
            tally[result.rule.name] = tally.get(result.rule.name, 0) + 1
            key = (phase, result.rule.name)
            by_phase[key] = by_phase.get(key, 0) + 1
        if engine.controller is not None:
            engine.controller.evaluate(point)

    op_serial = 0
    for phase, alpha, child, faults in _PHASES:
        db_dist = ZipfianDistribution(
            config.n_rows, alpha, rng.child(10 + child)
        )
        hc_dist = ZipfianDistribution(
            config.n_items, alpha, rng.child(20 + child)
        )
        if faults:
            engine.injector.arm(_STORM)
        for _ in range(config.ops_per_phase):
            op_serial += 1
            key = db_dist.sample()
            if rng.random() < 0.25:
                value = (key * 7 + op_serial) % 1_000
                applied = engine.db.recovery.call(
                    engine.table.update, "pk", key, {"n": value}
                )
                if applied:
                    mirror[key] = value
                else:
                    wrong += 1
            else:
                result = engine.db.recovery.call(
                    engine.table.lookup, "pk", key, ("k", "n")
                )
                if not result.found or result.values != {
                    "k": key, "n": mirror[key]
                }:
                    wrong += 1
            engine.manager.lookup(hc_dist.sample())
            if op_serial % config.chunk == 0:
                close_window(phase)
        if faults:
            engine.injector.disarm()

    final = engine.checker.evaluate()
    return EngineRun(
        label="adaptive" if adaptive else "static",
        windows=windows,
        breach_windows=tally,
        final=final,
        actions=engine.controller.actions if engine.controller else [],
        hot_hit_rate=engine.manager.hot_hit_rate(),
        wrong_results=wrong,
        controller=engine.controller,
        by_phase=by_phase,
    )


def run(config: AdaptiveConfig = AdaptiveConfig()) -> dict[str, EngineRun]:
    """Both engines over the identical seeded workload; keys static/adaptive."""
    return {
        "static": _run_engine(config, adaptive=False),
        "adaptive": _run_engine(config, adaptive=True),
    }


def main() -> dict[str, EngineRun]:
    from repro.experiments.runner import print_table

    runs = run()
    static, adaptive = runs["static"], runs["adaptive"]
    rule_names = [r.rule.name for r in static.final.results]
    status = {
        label: {r.rule.name: r.status for r in e.final.results}
        for label, e in runs.items()
    }
    print_table(
        ["SLO rule", "static breach windows", "adaptive breach windows",
         "static end", "adaptive end"],
        [
            (
                name,
                f"{static.breach_windows.get(name, 0)}/{static.windows}",
                f"{adaptive.breach_windows.get(name, 0)}/{adaptive.windows}",
                status["static"][name],
                status["adaptive"][name],
            )
            for name in rule_names
        ],
        title="SLO breaches: static misconfiguration vs adaptive control",
    )
    print()
    print_table(
        ["engine", "hot-partition hit rate", "wrong results", "knob moves"],
        [
            (e.label, f"{e.hot_hit_rate:.2f}", e.wrong_results,
             len(e.actions))
            for e in (static, adaptive)
        ],
        title="same answers, different service levels",
    )
    assert adaptive.controller is not None
    print()
    print(adaptive.controller.format_knobs(title="adaptive knobs (end state)"))
    print()
    print(adaptive.controller.format_audit(title="tuning audit trail"))
    held = [
        name for name in rule_names
        if status["static"][name] == "breach"
        and status["adaptive"][name] == "ok"
    ]
    print(
        f"\nadaptive control holds {len(held)} SLO(s) the static "
        f"configuration ends in breach of: {', '.join(held) or '(none)'}"
    )
    return runs


if __name__ == "__main__":
    main()
