"""Vectorized columnar executor: batch kernels vs the row oracle, measured.

The §5h claim: on a scan/aggregate-heavy analytical slice of the hot
partition, running filter/project/aggregate over encoded column vectors
(no per-row dict materialization until output) is *several times* faster
than the row-at-a-time executor — with list-identical results — and the
column-major mirror re-captures the §4 encoding savings (delta varints,
bit-packing, dictionaries) that the row format leaves on the table.

Two timing regimes are reported because both are design points:

* **cold** — fragment cache cleared before every query, so the number
  is pure kernel-vs-row-loop execution;
* **reused** — the analytical loop repeats its query shapes, so the
  intermediate-result cache (keyed by normalized fingerprint + predicate
  constants, invalidated by write epoch and commit CSN) serves copies.

Wall time is inherently machine-dependent; the identity check and the
compression ratio are exact, and the CI gate lives in
``benchmarks/bench_columnar.py``.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from repro.query.database import Database
from repro.query.predicates import And, ColumnEq, ColumnRange
from repro.schema.schema import Schema
from repro.schema.types import BOOL, INT32, UINT32, UINT64, char
from repro.util.rng import DeterministicRng
from repro.workload.distributions import ZipfianDistribution

SCHEMA = Schema.of(
    ("id", UINT64), ("cat", char(4)), ("n", UINT32), ("d", INT32),
    ("flag", BOOL),
)

AGG_SPECS = [
    ("count", None), ("sum", "n"), ("min", "n"), ("max", "n"), ("avg", "d"),
]


@dataclass(frozen=True)
class ColumnarResult:
    """Wall timings plus the exact (machine-independent) side facts."""

    n_rows: int
    n_queries: int
    row_scan_s: float
    col_scan_cold_s: float
    col_scan_reused_s: float
    row_agg_s: float
    col_agg_cold_s: float
    col_agg_reused_s: float
    cache_hits: int
    cache_misses: int
    encoded_bytes: int
    raw_bytes: int
    verified: bool

    @property
    def scan_speedup_cold(self) -> float:
        return self.row_scan_s / max(1e-9, self.col_scan_cold_s)

    @property
    def scan_speedup_reused(self) -> float:
        return self.row_scan_s / max(1e-9, self.col_scan_reused_s)

    @property
    def agg_speedup_cold(self) -> float:
        return self.row_agg_s / max(1e-9, self.col_agg_cold_s)

    @property
    def agg_speedup_reused(self) -> float:
        return self.row_agg_s / max(1e-9, self.col_agg_reused_s)

    @property
    def cache_hit_rate(self) -> float:
        total = self.cache_hits + self.cache_misses
        return self.cache_hits / max(1, total)

    @property
    def compression_ratio(self) -> float:
        """Row-format bytes ÷ encoded column bytes for the same rows."""
        return self.raw_bytes / max(1, self.encoded_bytes)


def _build(n_rows: int, seed: int, segment_rows: int | None):
    db = Database(seed=seed, wal=False)
    table = db.create_table("hot", SCHEMA)
    db.create_index("hot", "pk", ("id",))
    rng = DeterministicRng(seed)
    for i in range(n_rows):
        table.insert({
            "id": i,
            "cat": f"c{i % 6}",
            "n": (i * 13) % 500,
            "d": rng.randint(-200, 200),
            "flag": i % 4 == 0,
        })
    manager = db.enable_columnar(segment_rows=segment_rows)
    return db, table, manager


def _query_mix(n_queries: int, seed: int):
    """Zipf over a small family of predicate shapes — analytical loops
    repeat their shapes, which is exactly what the fragment cache banks on."""
    rng = DeterministicRng(seed + 1)
    shapes = [
        ColumnRange("n", 0, 120),
        ColumnRange("n", 250, 499),
        ColumnEq("cat", "c2"),
        And((ColumnRange("n", 100, 400), ColumnEq("flag", False))),
        ColumnEq("flag", True),
        ColumnRange("d", -50, 50),
        And((ColumnEq("cat", "c1"), ColumnRange("d", 0, 200))),
        ColumnRange("n", 60, 70),
    ]
    zipf = ZipfianDistribution(len(shapes), 1.2, rng)
    return [shapes[zipf.sample()] for _ in range(n_queries)]


def _time_scans(table, predicates, use_columnar: bool) -> float:
    start = time.perf_counter()
    for predicate in predicates:
        list(table.scan(predicate, ("id", "n"), use_columnar=use_columnar))
    return time.perf_counter() - start


def _time_aggs(table, predicates, use_columnar: bool) -> float:
    start = time.perf_counter()
    for predicate in predicates:
        table.aggregate(AGG_SPECS, predicate, use_columnar=use_columnar)
    return time.perf_counter() - start


def run(
    n_rows: int = 12_000,
    n_queries: int = 40,
    seed: int = 0,
    segment_rows: int | None = None,
) -> ColumnarResult:
    db, table, manager = _build(n_rows, seed, segment_rows)
    predicates = _query_mix(n_queries, seed)

    # Identity first: every predicate shape, both verbs, both executors.
    verified = True
    for predicate in set(predicates):
        if list(table.scan(predicate)) != list(
            table.scan(predicate, use_columnar=False)
        ):
            verified = False
        if table.aggregate(AGG_SPECS, predicate) != table.aggregate(
            AGG_SPECS, predicate, use_columnar=False
        ):
            verified = False

    row_scan_s = _time_scans(table, predicates, use_columnar=False)
    row_agg_s = _time_aggs(table, predicates, use_columnar=False)

    # Cold: clear the fragment cache before each query so the number is
    # kernel execution, not memoization.
    def cold(timer):
        total = 0.0
        for predicate in predicates:
            manager.cache.clear()
            total += timer(table, [predicate], use_columnar=True)
        return total

    col_scan_cold_s = cold(_time_scans)
    col_agg_cold_s = cold(_time_aggs)

    # Reused: the repeated-shape loop as-is, cache warm from here on.
    manager.cache.clear()
    manager.reset_metrics()
    col_scan_reused_s = _time_scans(table, predicates, use_columnar=True)
    col_agg_reused_s = _time_aggs(table, predicates, use_columnar=True)
    cache_hits = manager.cache.hits
    cache_misses = manager.cache.misses

    encoded, raw = manager.refresh_encoding_stats()
    return ColumnarResult(
        n_rows=n_rows,
        n_queries=n_queries,
        row_scan_s=row_scan_s,
        col_scan_cold_s=col_scan_cold_s,
        col_scan_reused_s=col_scan_reused_s,
        row_agg_s=row_agg_s,
        col_agg_cold_s=col_agg_cold_s,
        col_agg_reused_s=col_agg_reused_s,
        cache_hits=cache_hits,
        cache_misses=cache_misses,
        encoded_bytes=encoded,
        raw_bytes=raw,
        verified=verified,
    )


def main() -> None:
    from repro.experiments.runner import print_table

    result = run()
    ms = lambda s: f"{s * 1e3:.1f} ms"  # noqa: E731
    print_table(
        ["verb", "row executor", "columnar cold", "columnar reused",
         "speedup cold", "speedup reused"],
        [
            ("scan+project", ms(result.row_scan_s),
             ms(result.col_scan_cold_s), ms(result.col_scan_reused_s),
             f"{result.scan_speedup_cold:.1f}x",
             f"{result.scan_speedup_reused:.1f}x"),
            ("aggregate", ms(result.row_agg_s),
             ms(result.col_agg_cold_s), ms(result.col_agg_reused_s),
             f"{result.agg_speedup_cold:.1f}x",
             f"{result.agg_speedup_reused:.1f}x"),
        ],
        title=(
            f"Vectorized columnar executor: {result.n_queries} Zipf-shaped "
            f"queries over {result.n_rows} rows "
            f"(results verified identical: {result.verified})"
        ),
    )
    print_table(
        ["fact", "value"],
        [
            ("fragment-cache hit rate",
             f"{result.cache_hit_rate:.0%} "
             f"({result.cache_hits} hits / {result.cache_misses} misses)"),
            ("column encoding", f"{result.raw_bytes} B row-format -> "
             f"{result.encoded_bytes} B encoded "
             f"({result.compression_ratio:.1f}x)"),
        ],
        title="Side facts (exact, machine-independent)",
    )


if __name__ == "__main__":
    main()
