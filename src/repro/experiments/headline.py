"""§1 headline claims: memory ÷ up-to-17.8×, queries × up-to-8.

"We show that these techniques effectively reduce memory requirements for
real scenarios from the Wikipedia database (by up to 17.8×) while
increasing query performance (by up to 8×)."

The memory scenario: RAM needed to serve the hot revision workload.

* **before** — the revision table as deployed: MediaWiki's declared
  encoding (INT64 ids, 14-byte timestamp strings) in one flat table; the
  hot tuples are scattered, so serving them keeps nearly every heap page
  *and* the full index resident.
* **after** — all three techniques: hot/cold partitioning (§3.1) so only
  hot pages matter, the optimized physical encoding (§4.1) shrinking each
  tuple, and the small hot index.

Both sides are *measured from real pages*: we build both layouts and
count the distinct pages the hot workload actually touches.

The query-performance side is Figure 3's partition speedup, reused.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.btree.tree import BPlusTree
from repro.experiments import fig3
from repro.experiments.runner import print_table
from repro.query.table import PlainIndex, Table
from repro.storage.buffer_pool import BufferPool
from repro.storage.disk import SimulatedDisk
from repro.storage.heap import HeapFile, RID_SIZE
from repro.util.units import fmt_bytes
from repro.workload.wikipedia import (
    REVISION_SCHEMA,
    REVISION_SCHEMA_DECLARED,
    WikipediaConfig,
    declared_revision_row,
    generate,
)


@dataclass(frozen=True)
class HeadlineResult:
    """The two §1 numbers, measured."""

    baseline_ram_bytes: int
    optimized_ram_bytes: int
    memory_reduction: float      # paper: up to 17.8x
    query_speedup: float         # paper: up to 8x


def _hot_working_set_bytes(
    table: Table, index: PlainIndex, hot_rev_ids: set[int], page_size: int
) -> int:
    """Bytes of pages the hot workload touches: distinct heap pages holding
    hot tuples, distinct index leaves owning hot keys, plus index
    internals (always resident on the descent path)."""
    heap_pages: set[int] = set()
    leaf_pages: set[int] = set()
    for rev_id in hot_rev_ids:
        key = index.encode_key(rev_id)
        rid = index.find_rid(rev_id)
        assert rid is not None
        heap_pages.add(rid.page_id)
        leaf_pages.add(index.tree.find_leaf(key))
    internals = len(index.tree.internal_page_ids)
    return (len(heap_pages) + len(leaf_pages) + internals) * page_size


def run(
    n_pages: int = 1_000,
    revisions_per_page: int = 20,
    seed: int = 0,
    page_size: int = 4_096,
    measure_query_speedup: bool = True,
) -> HeadlineResult:
    """Measure both headline numbers on the synthetic revision scenario."""
    data = generate(
        WikipediaConfig(
            n_pages=n_pages, revisions_per_page_mean=revisions_per_page,
            seed=seed,
        )
    )
    hot = data.hot_rev_ids

    # Baseline: flat table, declared (wasteful) physical encoding.
    disk = SimulatedDisk(page_size)
    pool = BufferPool(disk, 1 << 20)
    heap = HeapFile(pool, append_only=True)
    table = Table("revision", REVISION_SCHEMA_DECLARED, heap)
    tree = BPlusTree(pool, key_size=8, value_size=RID_SIZE, name="rev_pk")
    index = PlainIndex(tree, heap, REVISION_SCHEMA_DECLARED, ("rev_id",))
    table.attach_index("rev_pk", index)
    for row in data.revision_rows:
        table.insert(declared_revision_row(row))
    baseline_ram = _hot_working_set_bytes(table, index, hot, page_size)

    # Optimized: hot partition only, compact physical encoding.
    disk2 = SimulatedDisk(page_size)
    pool2 = BufferPool(disk2, 1 << 20)
    hot_heap = HeapFile(pool2, append_only=True)
    hot_table = Table("revision_hot", REVISION_SCHEMA, hot_heap)
    hot_tree = BPlusTree(pool2, key_size=4, value_size=RID_SIZE,
                         name="rev_hot_pk")
    hot_index = PlainIndex(hot_tree, hot_heap, REVISION_SCHEMA, ("rev_id",))
    hot_table.attach_index("rev_hot_pk", hot_index)
    for row in data.revision_rows:
        if row["rev_id"] in hot:
            hot_table.insert(row)
    optimized_ram = _hot_working_set_bytes(hot_table, hot_index, hot, page_size)

    speedup = 0.0
    if measure_query_speedup:
        rows = fig3.run(
            fig3.Fig3Config(
                n_pages=n_pages,
                revisions_per_page_mean=revisions_per_page,
                seed=seed,
            )
        )
        speedup = rows[-1].speedup

    return HeadlineResult(
        baseline_ram_bytes=baseline_ram,
        optimized_ram_bytes=optimized_ram,
        memory_reduction=baseline_ram / optimized_ram,
        query_speedup=speedup,
    )


def main() -> None:
    result = run()
    print_table(
        ["quantity", "value"],
        [
            ("hot working set, deployed layout",
             fmt_bytes(result.baseline_ram_bytes)),
            ("hot working set, partitioned + re-encoded",
             fmt_bytes(result.optimized_ram_bytes)),
            ("memory reduction",
             f"{result.memory_reduction:.1f}x (paper: up to 17.8x)"),
            ("query speedup (Fig 3 partition)",
             f"{result.query_speedup:.1f}x (paper: up to 8x)"),
        ],
        title="Headline claims (Section 1)",
    )


if __name__ == "__main__":
    main()
