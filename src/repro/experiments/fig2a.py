"""Figure 2(a): cache hit rate vs cache size, Swap and Shrink scenarios.

Paper setup: zipf lookups ("α = .5"), 100k lookups per point, x-axis the
cache size as a percentage of the total number of items.  Claims to
reproduce:

* both curves rise steeply and saturate;
* the swap policy tracks the clairvoyant oracle closely;
* ``Shrink`` (half the cache overwritten at a constant rate) costs only a
  few points of hit rate versus ``Swap`` — "showing that swapping
  effectively moves hot items towards the middle".

**Parameterization note** (also in EXPERIMENTS.md): under the standard
zipf convention ``p(rank) ∝ rank^-α``, α = 0.5 mathematically caps *any*
cache at 25% capacity to a 50% hit rate — the paper's ">90% at 25%" is
only consistent with a heavier-tailed convention.  We therefore sweep α
and report the paper's headline numbers at α = 1.5 (where the 25%-cache
oracle is ≈97%) while preserving the swap-vs-shrink *shape* at every α.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.runner import oracle_hit_rate, print_table
from repro.workload.trace import run_shrink_scenario, run_swap_scenario

DEFAULT_SIZES_PCT = (5, 10, 25, 50, 75, 100)


@dataclass(frozen=True)
class Fig2aPoint:
    """One x-position of the figure."""

    cache_pct: int
    swap_hit_rate: float
    shrink_hit_rate: float
    oracle_hit_rate: float

    @property
    def shrink_penalty(self) -> float:
        """Hit-rate points lost to cache shrinkage (paper: ~5)."""
        return self.swap_hit_rate - self.shrink_hit_rate


def run(
    n_items: int = 10_000,
    n_lookups: int = 100_000,
    alpha: float = 0.5,
    sizes_pct: tuple[int, ...] = DEFAULT_SIZES_PCT,
    bucket_slots: int = 4,
    seed: int = 0,
) -> list[Fig2aPoint]:
    """Sweep cache sizes and measure Swap/Shrink hit rates."""
    points = []
    for pct in sizes_pct:
        capacity = max(1, n_items * pct // 100)
        swap = run_swap_scenario(
            n_items, capacity, n_lookups, alpha=alpha,
            bucket_slots=bucket_slots, seed=seed,
        )
        shrink = run_shrink_scenario(
            n_items, capacity, n_lookups, alpha=alpha,
            bucket_slots=bucket_slots, seed=seed,
        )
        points.append(
            Fig2aPoint(
                cache_pct=pct,
                swap_hit_rate=swap.hit_rate,
                shrink_hit_rate=shrink.hit_rate,
                oracle_hit_rate=oracle_hit_rate(n_items, alpha, pct / 100),
            )
        )
    return points


def main() -> None:
    for alpha in (0.5, 1.0, 1.5):
        points = run(alpha=alpha)
        print_table(
            ["cache %", "Swap", "Shrink", "oracle"],
            [
                (p.cache_pct, p.swap_hit_rate, p.shrink_hit_rate,
                 p.oracle_hit_rate)
                for p in points
            ],
            title=f"\nFigure 2(a): hit rate vs cache size (zipf alpha={alpha})",
        )


if __name__ == "__main__":
    main()
