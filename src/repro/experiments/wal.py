"""Durability tax, measured: what the redo log costs per operation.

The WAL's price has two deterministic components: bytes appended per
logical operation (frame header + LSN + record body) and device flushes
per operation (amortized by group commit).  This driver runs the same
seeded mixed workload at several group-commit batch sizes and reports
records, bytes, and flushes — all operation counts, never wall time, so
they are safe to gate in CI.  The wall-clock counterpart (the <10%
overhead gate) lives in ``benchmarks/bench_wal_overhead.py``.

The last column reports the crash-restart smoke drill at the same batch
size: every configuration must come back with zero wrong results, so the
batching knob trades flushes for lost-on-crash window, never
correctness.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.obs import MetricsRegistry
from repro.query.database import Database
from repro.schema.schema import Schema
from repro.schema.types import UINT32, UINT64, char
from repro.util.rng import DeterministicRng

SCHEMA = Schema.of(("k", UINT64), ("name", char(12)), ("n", UINT32))

GROUP_COMMIT_SIZES = (1, 4, 8, 32)


@dataclass(frozen=True)
class WalCostRow:
    """Deterministic log counters for one group-commit batch size."""

    group_commit: int
    n_ops: int
    records: int
    bytes: int
    flushes: int
    checkpoints: int
    drill_crashes: int
    drill_wrong: int

    @property
    def bytes_per_record(self) -> float:
        return self.bytes / max(1, self.records)

    @property
    def records_per_flush(self) -> float:
        return self.records / max(1, self.flushes)


def _run_one(group_commit: int, n_ops: int, seed: int) -> WalCostRow:
    metrics = MetricsRegistry()
    db = Database(
        seed=seed, wal=True, wal_group_commit=group_commit,
        data_pool_pages=32, metrics=metrics,
    )
    t = db.create_table("t", SCHEMA)
    db.create_index("t", "pk", ("k",))
    rng = DeterministicRng(seed)
    live: list[int] = []
    next_k = 0
    for op_i in range(n_ops):
        draw = rng.random()
        if draw < 0.55 or not live:
            t.insert({"k": next_k, "name": f"r{next_k}", "n": next_k % 97})
            live.append(next_k)
            next_k += 1
        elif draw < 0.8:
            t.update("pk", live[rng.randrange(len(live))],
                     {"n": rng.randrange(1_000)})
        else:
            t.delete("pk", live.pop(rng.randrange(len(live))))
        if op_i % 500 == 499:
            db.checkpoint()
    db.wal.flush()
    wal_stats = metrics.snapshot()["wal"]

    from repro.wal.__main__ import run_wal_drill  # late: heavier deps

    drill = run_wal_drill(
        seed=seed, n_ops=400, crashes=2, group_commit=group_commit,
        checkpoint_every=150,
    )
    return WalCostRow(
        group_commit=group_commit,
        n_ops=n_ops,
        records=wal_stats["records"],
        bytes=wal_stats["bytes"],
        flushes=wal_stats["flushes"],
        checkpoints=wal_stats["checkpoints"],
        drill_crashes=drill.crashes,
        drill_wrong=drill.wrong_results,
    )


def run(n_ops: int = 2_000, seed: int = 0) -> list[WalCostRow]:
    return [_run_one(gc, n_ops, seed) for gc in GROUP_COMMIT_SIZES]


def main() -> list[WalCostRow]:
    from repro.experiments.runner import print_table

    rows = run()
    print_table(
        ["group commit", "records", "bytes/record", "flushes",
         "records/flush", "drill"],
        [
            (
                row.group_commit,
                row.records,
                f"{row.bytes_per_record:.1f}",
                row.flushes,
                f"{row.records_per_flush:.1f}",
                f"{row.drill_crashes} crashes, {row.drill_wrong} wrong",
            )
            for row in rows
        ],
        title="WAL durability tax vs group-commit batch size",
    )
    assert all(row.drill_wrong == 0 for row in rows)
    # Batching must amortize: flushes strictly decrease as batches grow.
    flushes = [row.flushes for row in rows]
    assert flushes == sorted(flushes, reverse=True)
    return rows


if __name__ == "__main__":
    main()
