"""MVCC contention sweep and crash-during-commit survival demo (§5g).

Two deterministic tables, all operation counts (never wall time):

* **Contention sweep** — the sessions-mode fault drill on a deliberately
  tiny key space, at 1..8 concurrent sessions.  Commits, first-writer-
  wins conflicts, and aborts all scale with the session count while
  wrong results stay at zero and the report digest stays bit-for-bit
  reproducible — concurrency changes throughput accounting, never
  answers.

* **Crash-point matrix** — a three-session history (commits, an abort,
  an in-flight straggler) cut at every WAL frame boundary and recovered
  onto a blank disk.  Each cut's recovered engine state is checked
  against both independent oracles (`serial_fold`, the logical commit-
  order replay, and `committed_positional_fold`, the physical slot
  fold); the row reports how many cuts stranded a transaction and that
  every single one agreed.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.faults.harness import run_fault_drill

SESSION_COUNTS = (1, 2, 4, 8)


@dataclass(frozen=True)
class ContentionRow:
    """One sessions-mode drill at a fixed concurrency level."""

    sessions: int
    commits: int
    aborts: int
    conflicts: int
    wrong_results: int
    digest: str

    @property
    def conflict_rate(self) -> float:
        return self.conflicts / max(1, self.commits + self.aborts)


@dataclass(frozen=True)
class CrashMatrixRow:
    """Boundary-cut recovery sweep over one multi-session log."""

    crash_points: int
    cuts_with_rollback: int
    distinct_states: int
    oracle_mismatches: int


def run_contention(
    n_ops: int = 800, seed: int = 3
) -> list[ContentionRow]:
    rows = []
    for n in SESSION_COUNTS:
        report = run_fault_drill(
            seed=seed, n_pages=6, revisions_per_page=2,
            n_ops=n_ops, sessions=n,
        )
        rows.append(
            ContentionRow(
                sessions=n,
                commits=report.txn_commits,
                aborts=report.txn_aborts,
                conflicts=report.txn_conflicts,
                wrong_results=report.wrong_results,
                digest=report.digest,
            )
        )
    return rows


def run_crash_matrix(seed: int = 20260808) -> CrashMatrixRow:
    from repro.query.database import Database
    from repro.schema.record import unpack_record_map
    from repro.schema.schema import Schema
    from repro.schema.types import UINT32, char
    from repro.txn.oracle import committed_positional_fold, serial_fold
    from repro.wal.record import frame_boundaries, scan_wal
    from repro.wal.replay import recover

    schema = Schema.of(("id", UINT32), ("name", char(8)), ("score", UINT32))
    db = Database(
        seed=seed, wal=True, wal_group_commit=4,
        page_size=512, data_pool_pages=8,
    )
    db.create_table("t", schema)
    db.create_index("t", "by_id", ("id",))
    for i in range(1, 9):
        db.table("t").insert({"id": i, "name": f"r{i}", "score": i * 10})
    a, b, c = db.session(), db.session(), db.session()
    a.begin(); b.begin()
    a.update("t", 1, {"score": 111})
    b.insert("t", {"id": 20, "name": "b20", "score": 200})
    a.delete("t", 5)
    a.commit()
    b.commit(flush=True)
    c.begin()
    c.update("t", 3, {"score": 333})
    c.abort()
    b.begin()
    b.update("t", 6, {"score": 666})   # left in flight at the tail
    db.wal.flush()
    log = bytes(db.wal.device.data)

    crash_points = 0
    rollbacks = 0
    mismatches = 0
    states = set()
    for cut in frame_boundaries(log):
        prefix = log[:cut]
        records = scan_wal(prefix).records
        recovered, report = recover(
            prefix, page_size=512, data_pool_pages=8, seed=seed,
        )
        crash_points += 1
        rollbacks += int(report.txns_rolled_back > 0)
        try:
            table = recovered.table("t")
            got = {r["id"]: r["score"] for r in table.scan()}
        except Exception:
            got = {}
        serial = {
            k: r["score"]
            for k, r in serial_fold(records, "t", schema, "id").items()
        }
        positional = {}
        for (tname, _pid, _slot), payload in committed_positional_fold(
            records
        ).items():
            if tname == "t":
                row = unpack_record_map(schema, payload)
                positional[row["id"]] = row["score"]
        if got != serial or got != positional:
            mismatches += 1
        states.add(frozenset(got.items()))
    return CrashMatrixRow(
        crash_points=crash_points,
        cuts_with_rollback=rollbacks,
        distinct_states=len(states),
        oracle_mismatches=mismatches,
    )


def main() -> list[ContentionRow]:
    from repro.experiments.runner import print_table

    rows = run_contention()
    print_table(
        ["sessions", "commits", "aborts", "conflicts", "conflict rate",
         "wrong", "digest"],
        [
            (
                row.sessions,
                row.commits,
                row.aborts,
                row.conflicts,
                f"{row.conflict_rate:.3f}",
                row.wrong_results,
                row.digest[:12],
            )
            for row in rows
        ],
        title="MVCC contention sweep (fault drill, 6-page key space)",
    )
    assert all(row.wrong_results == 0 for row in rows)
    # Contention must actually materialize at the top of the sweep.
    assert rows[-1].conflicts > 0

    matrix = run_crash_matrix()
    print_table(
        ["crash points", "cuts w/ rollback", "distinct states",
         "oracle mismatches"],
        [
            (
                matrix.crash_points,
                matrix.cuts_with_rollback,
                matrix.distinct_states,
                matrix.oracle_mismatches,
            )
        ],
        title="Crash-during-commit matrix (every WAL frame boundary)",
    )
    assert matrix.oracle_mismatches == 0
    assert matrix.cuts_with_rollback > 0
    return rows


if __name__ == "__main__":
    main()
