"""Shared experiment utilities: table printing and oracle hit rates."""

from __future__ import annotations

from typing import Sequence


def print_table(
    headers: Sequence[str], rows: Sequence[Sequence[object]], title: str | None = None
) -> str:
    """Format (and return) a fixed-width text table; also prints it."""
    cells = [[str(h) for h in headers]] + [
        [_fmt(v) for v in row] for row in rows
    ]
    widths = [max(len(r[i]) for r in cells) for i in range(len(headers))]
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(cells[0], widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in cells[1:]:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    text = "\n".join(lines)
    print(text)
    return text


def _fmt(value: object) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"  # covers -0.0 too: no stray sign on zeros
        # Exact integers stored as floats print as integers (12.0 -> "12",
        # -3.0 -> "-3") instead of "12.000"; magnitude-based rules below
        # use abs() so negative values format like their positive twins.
        if value.is_integer() and abs(value) < 1e15:
            return str(int(value))
        if abs(value) >= 1000 or abs(value) < 0.001:
            return f"{value:.3g}"
        return f"{value:.3f}"
    return str(value)


def oracle_hit_rate(n_items: int, alpha: float, cache_fraction: float) -> float:
    """Hit rate of a clairvoyant cache pinning the hottest items.

    Upper-bounds any online policy under a zipf(``alpha``) workload; the
    Fig-2a experiment plots the swap policy against this.
    """
    if n_items <= 0:
        # No items means no hits; guards the sum(weights) == 0 division.
        return 0.0
    if cache_fraction <= 0:
        return 0.0
    if cache_fraction >= 1:
        return 1.0
    k = max(1, int(n_items * cache_fraction))
    weights = [(r + 1) ** -alpha for r in range(n_items)]
    return sum(weights[:k]) / sum(weights)
