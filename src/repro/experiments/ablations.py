"""Ablations for the design choices DESIGN.md calls out (A1–A4).

* **A1** — cache replacement policy: the paper's stable-point swap versus
  a random cache and a (cheating, out-of-band) LRU, under concurrent key
  inserts that clobber the window's periphery.  The swap policy's whole
  argument is that position encodes hotness; random placement should lose
  more hit rate when the window shrinks.
* **A2** — predicate-log threshold (§2.1.2): small thresholds degenerate
  to frequent full invalidations (cheap bookkeeping, cold caches); large
  thresholds keep caches warm under updates.
* **A3** — vertical partitioning (§3.2): bytes read per query for the
  split vs unsplit revision table, including the merge penalty, compared
  against the analytic recommendation.
* **A4** — routing state (§4.2): lookup-table router vs embedded-id
  router at increasing tuple counts.
* **A5** — cached index vs covering index (§2.1's stated alternative):
  "covering indices still store cold data, waste space and bloat the
  index size".  Both answer covered projections without the heap; the
  comparison is index bytes and buffer-pool pressure under skew.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.btree.tree import BPlusTree
from repro.core.hot_cold.vertical import (
    VerticallyPartitionedTable,
    recommend_vertical_split,
)
from repro.core.index_cache.cached_index import CachedBTree
from repro.core.index_cache.covering import CoveringIndex
from repro.core.index_cache.invalidation import CacheInvalidation
from repro.core.index_cache.policy import (
    LruPolicy,
    RandomPolicy,
    SwapPolicy,
)
from repro.core.semantic_ids.embedding import EmbeddedId, plan_reassignment
from repro.core.semantic_ids.routing import RoutingComparison, compare_routers
from repro.experiments.runner import print_table
from repro.query.table import Table
from repro.schema.schema import Schema
from repro.schema.types import UINT32, UINT64, char
from repro.storage.buffer_pool import BufferPool
from repro.storage.disk import SimulatedDisk
from repro.storage.heap import HeapFile, RID_SIZE
from repro.util.rng import DeterministicRng
from repro.workload.distributions import ZipfianDistribution
from repro.workload.wikipedia import REVISION_SCHEMA, WikipediaConfig, generate

# ---------------------------------------------------------------------------
# A1: replacement policy under key-region growth
# ---------------------------------------------------------------------------

_A1_SCHEMA = Schema.of(
    ("id", UINT64),
    ("val_a", UINT32),
    ("val_b", UINT32),
    ("pad", char(16)),
)

#: Cache all non-key fields (24 B payload -> 34 B items) so per-leaf
#: capacity is scarce and the replacement policy actually matters.
_A1_CACHED = ("val_a", "val_b", "pad")


@dataclass(frozen=True)
class PolicyAblationRow:
    """A1 result row: one policy's hit rates in both phases."""

    policy: str
    hit_rate_stable: float   # read-only phase
    hit_rate_growth: float   # with concurrent key inserts


def _policy_run(
    make_policy, n_rows: int, n_lookups: int, alpha: float, seed: int
) -> PolicyAblationRow:
    """Existing rows use even ids; the growth phase inserts odd ids, so
    splits and key growth land across the whole tree and clobber cache
    windows everywhere — the situation the stable-point design targets."""

    def build():
        pool = BufferPool(SimulatedDisk(4096), 1 << 20)
        heap = HeapFile(pool)
        tree = BPlusTree(pool, key_size=8, value_size=RID_SIZE)
        rng = DeterministicRng(seed)
        index = CachedBTree(
            tree, heap, _A1_SCHEMA, ("id",), _A1_CACHED,
            policy=make_policy(rng), rng=rng,
        )
        ids = [2 * i for i in range(n_rows)]
        DeterministicRng(seed + 9).shuffle(ids)
        for i in ids:
            index.insert_row(
                {"id": i, "val_a": i % 97, "val_b": i % 31, "pad": "x"}
            )
        return index

    project = ("id", "val_a", "val_b", "pad")
    zipf_seed = seed + 1

    # Stable phase: warm, then measure with no index growth.
    index = build()
    zipf = ZipfianDistribution(n_rows, alpha, DeterministicRng(zipf_seed))
    for _ in range(n_lookups):
        index.lookup(2 * zipf.sample(), project)
    index.stats.found = 0
    index.stats.answered_from_cache = 0
    for _ in range(n_lookups):
        index.lookup(2 * zipf.sample(), project)
    stable = index.stats.cache_answer_rate

    # Growth phase: fresh build, then interleave lookups with inserts of
    # odd ids — leaf splits and key growth eat cache slots tree-wide.
    index = build()
    zipf = ZipfianDistribution(n_rows, alpha, DeterministicRng(zipf_seed))
    grow_rng = DeterministicRng(seed + 5)
    for _ in range(n_lookups):
        index.lookup(2 * zipf.sample(), project)
    index.stats.found = 0
    index.stats.answered_from_cache = 0
    odd_ids = [2 * i + 1 for i in range(n_rows)]
    grow_rng.shuffle(odd_ids)
    inserted = 0
    for i in range(n_lookups):
        index.lookup(2 * zipf.sample(), project)
        if i % 3 == 0 and inserted < len(odd_ids):
            new_id = odd_ids[inserted]
            inserted += 1
            index.insert_row(
                {"id": new_id, "val_a": 1, "val_b": 2, "pad": "y"}
            )
    growth = index.stats.cache_answer_rate
    return PolicyAblationRow(
        policy=make_policy(DeterministicRng(0)).__class__.__name__,
        hit_rate_stable=stable,
        hit_rate_growth=growth,
    )


def run_policy_ablation(
    n_rows: int = 3_000,
    n_lookups: int = 12_000,
    alpha: float = 1.0,
    seed: int = 0,
) -> list[PolicyAblationRow]:
    """A1: Swap vs Random vs LRU, with and without index growth."""
    makers = [
        lambda rng: SwapPolicy(rng),
        lambda rng: RandomPolicy(rng),
        lambda rng: LruPolicy(rng),
    ]
    return [
        _policy_run(make, n_rows, n_lookups, alpha, seed) for make in makers
    ]


# ---------------------------------------------------------------------------
# A2: predicate-log threshold
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class ThresholdAblationRow:
    """A2 result row: one log-threshold operating point."""

    threshold: int
    hit_rate: float
    full_invalidations: int
    pages_zeroed: int


def run_threshold_ablation(
    thresholds: tuple[int, ...] = (4, 64, 4096),
    n_rows: int = 3_000,
    n_ops: int = 12_000,
    update_fraction: float = 0.1,
    alpha: float = 1.0,
    seed: int = 0,
) -> list[ThresholdAblationRow]:
    """A2: sweep the §2.1.2 log threshold under a lookup/update mix."""
    rows = []
    for threshold in thresholds:
        pool = BufferPool(SimulatedDisk(4096), 1 << 20)
        heap = HeapFile(pool)
        tree = BPlusTree(pool, key_size=8, value_size=RID_SIZE)
        invalidation = CacheInvalidation(log_threshold=threshold)
        index = CachedBTree(
            tree, heap, _A1_SCHEMA, ("id",), ("val_a", "val_b"),
            rng=DeterministicRng(seed), invalidation=invalidation,
        )
        for i in range(n_rows):
            index.insert_row(
                {"id": i, "val_a": i % 97, "val_b": i % 31, "pad": "x"}
            )
        zipf = ZipfianDistribution(n_rows, alpha, DeterministicRng(seed + 1))
        rng = DeterministicRng(seed + 2)
        project = ("id", "val_a", "val_b")
        for _ in range(n_ops):  # warm
            index.lookup(zipf.sample(), project)
        index.stats.found = 0
        index.stats.answered_from_cache = 0
        for _ in range(n_ops):
            key = zipf.sample()
            if rng.random() < update_fraction:
                index.update_row(key, {"val_a": rng.randrange(97)})
            else:
                index.lookup(key, project)
        rows.append(
            ThresholdAblationRow(
                threshold=threshold,
                hit_rate=index.stats.cache_answer_rate,
                full_invalidations=invalidation.full_invalidations,
                pages_zeroed=invalidation.pages_zeroed,
            )
        )
    return rows


# ---------------------------------------------------------------------------
# A3: vertical partitioning
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class VerticalAblationResult:
    """A3 result: predicted vs measured bytes/query, split vs unsplit."""

    predicted_bytes_unsplit: float
    predicted_bytes_split: float
    measured_bytes_unsplit: float
    measured_bytes_split: float
    merge_fraction: float


#: The Fig-3 projection (hot) vs full-row history reads (rare).
_HOT_PROJ = frozenset({"rev_page", "rev_text_id", "rev_len"})
_FULL_PROJ = frozenset(
    {"rev_page", "rev_text_id", "rev_len", "rev_user", "rev_timestamp",
     "rev_minor_edit", "rev_comment"}
)


def run_vertical_ablation(
    n_pages: int = 400,
    revisions_per_page: int = 5,
    n_lookups: int = 4_000,
    hot_query_fraction: float = 0.95,
    seed: int = 0,
) -> VerticalAblationResult:
    """A3: measured bytes/query for split vs unsplit revision storage."""
    query_classes = [
        (_HOT_PROJ, hot_query_fraction),
        (_FULL_PROJ, 1.0 - hot_query_fraction),
    ]
    plan = recommend_vertical_split(
        REVISION_SCHEMA, ("rev_id",), query_classes, hot_threshold=0.5
    )
    data = generate(
        WikipediaConfig(
            n_pages=n_pages, revisions_per_page_mean=revisions_per_page,
            seed=seed,
        )
    )

    # Unsplit baseline.
    pool = BufferPool(SimulatedDisk(4096), 1 << 20)
    heap = HeapFile(pool)
    table = Table("revision", REVISION_SCHEMA, heap)
    rids = {}
    for row in data.revision_rows:
        rids[row["rev_id"]] = table.insert(row)

    # Split table per the recommendation.
    pool2 = BufferPool(SimulatedDisk(4096), 1 << 20)
    fragments = (plan.hot_columns, plan.cold_columns)
    heaps = [HeapFile(pool2) for _ in fragments]
    trees = [
        BPlusTree(pool2, key_size=4, value_size=RID_SIZE) for _ in fragments
    ]
    vtable = VerticallyPartitionedTable(
        REVISION_SCHEMA, ("rev_id",), fragments, heaps, trees
    )
    for row in data.revision_rows:
        vtable.insert(row)

    rng = DeterministicRng(seed + 3)
    rev_ids = [row["rev_id"] for row in data.revision_rows]
    unsplit_bytes = 0
    for _ in range(n_lookups):
        rev_id = rng.choice(rev_ids)
        project = (
            tuple(_HOT_PROJ) if rng.random() < hot_query_fraction
            else tuple(_FULL_PROJ)
        )
        record = table.heap.fetch(rids[rev_id])
        unsplit_bytes += len(record)
        vtable.lookup(rev_id, project)
    return VerticalAblationResult(
        predicted_bytes_unsplit=plan.bytes_per_query_unsplit,
        predicted_bytes_split=plan.bytes_per_query_split,
        measured_bytes_unsplit=unsplit_bytes / n_lookups,
        measured_bytes_split=vtable.bytes_read / vtable.lookups,
        merge_fraction=plan.merge_fraction,
    )


# ---------------------------------------------------------------------------
# A5: cached index vs covering index
# ---------------------------------------------------------------------------


#: A5 schema: covered hot fields plus an uncovered blob, so a realistic
#: fraction of queries needs the heap regardless of the index style.
_A5_SCHEMA = Schema.of(
    ("id", UINT64),
    ("val_a", UINT32),
    ("val_b", UINT32),
    ("pad", char(16)),
    ("extra", char(40)),  # never covered/cached
)
_A5_COVERED = ("val_a", "val_b", "pad")


@dataclass(frozen=True)
class CoveringAblationRow:
    """A5 result row: one indexing approach's size and pressure costs."""

    approach: str
    index_bytes: int
    answered_from_index: float   # fraction of lookups with no heap access
    disk_reads_per_lookup: float


def run_covering_ablation(
    n_rows: int = 3_000,
    n_lookups: int = 10_000,
    alpha: float = 1.0,
    pool_pages: int = 48,
    uncovered_query_fraction: float = 0.3,
    seed: int = 0,
) -> list[CoveringAblationRow]:
    """A5: same workload, cached vs covering index, under RAM pressure.

    ``uncovered_query_fraction`` of lookups project the uncovered column,
    forcing heap pages into the pool for both approaches — the realistic
    regime where the covering index's duplicated bytes are pure added
    pressure ("wastes more total bytes, and increases pressure on RAM").

    The default pool roughly fits the hot working set, the regime the
    paper implicitly assumes (production pools are provisioned near their
    working sets).  Under extreme thrash (pool ≪ working set) the
    covering index wins back on reads because it never touches the heap
    for covered projections — the honest crossover is reported in
    EXPERIMENTS.md.
    """
    covered_proj = ("id", "val_a", "val_b", "pad")
    full_proj = covered_proj + ("extra",)

    def row_of(i: int) -> dict[str, object]:
        return {
            "id": i, "val_a": i % 97, "val_b": i % 31, "pad": "x",
            "extra": f"blob-{i}",
        }

    def drive(index, pool) -> tuple[float, float]:
        zipf = ZipfianDistribution(n_rows, alpha, DeterministicRng(seed + 1))
        proj_rng = DeterministicRng(seed + 3)
        def one_lookup():
            proj = (
                full_proj if proj_rng.random() < uncovered_query_fraction
                else covered_proj
            )
            index.lookup(zipf.sample(), proj)
        for _ in range(n_lookups):  # warm
            one_lookup()
        pool.reset_counters()
        reads_before = pool.disk.reads
        stats = index.stats
        stats.found = 0
        if hasattr(stats, "answered_from_cache"):
            stats.answered_from_cache = 0
            answered = lambda: stats.answered_from_cache  # noqa: E731
        else:
            stats.answered_from_index = 0
            answered = lambda: stats.answered_from_index  # noqa: E731
        for _ in range(n_lookups):
            one_lookup()
        return (
            answered() / stats.found if stats.found else 0.0,
            (pool.disk.reads - reads_before) / n_lookups,
        )

    def load(index) -> None:
        ids = list(range(n_rows))
        DeterministicRng(seed + 2).shuffle(ids)
        for i in ids:
            index.insert_row(row_of(i))

    rows = []

    # Cached index.
    pool = BufferPool(SimulatedDisk(4096), pool_pages)
    heap = HeapFile(pool)
    tree = BPlusTree(pool, key_size=8, value_size=RID_SIZE)
    cached = CachedBTree(
        tree, heap, _A5_SCHEMA, ("id",), _A5_COVERED,
        rng=DeterministicRng(seed),
    )
    load(cached)
    answer_rate, reads = drive(cached, pool)
    rows.append(
        CoveringAblationRow(
            approach="cached index (paper)",
            index_bytes=tree.size_bytes,
            answered_from_index=answer_rate,
            disk_reads_per_lookup=reads,
        )
    )

    # Covering index.
    pool2 = BufferPool(SimulatedDisk(4096), pool_pages)
    heap2 = HeapFile(pool2)
    value_size = CoveringIndex.value_size_for(_A5_SCHEMA, _A5_COVERED)
    tree2 = BPlusTree(pool2, key_size=8, value_size=value_size)
    covering = CoveringIndex(tree2, heap2, _A5_SCHEMA, ("id",), _A5_COVERED)
    load(covering)
    answer_rate, reads = drive(covering, pool2)
    rows.append(
        CoveringAblationRow(
            approach="covering index",
            index_bytes=tree2.size_bytes,
            answered_from_index=answer_rate,
            disk_reads_per_lookup=reads,
        )
    )
    return rows


# ---------------------------------------------------------------------------
# A4: routing state
# ---------------------------------------------------------------------------


def run_routing_ablation(
    sizes: tuple[int, ...] = (10_000, 100_000),
    partitions: int = 16,
    seed: int = 0,
) -> list[RoutingComparison]:
    """A4: routing-table bytes vs embedded-id bytes at increasing scale."""
    scheme = EmbeddedId(partition_bits=8)
    rng = DeterministicRng(seed)
    results = []
    for n in sizes:
        placement = {i: rng.randrange(partitions) for i in range(n)}
        plan = plan_reassignment(scheme, placement)
        embedded = {plan.new_id(i): p for i, p in placement.items()}
        probes = rng.sample(list(embedded), min(1_000, n))
        results.append(compare_routers(embedded, scheme, probes))
    return results


def main() -> None:
    """Print every ablation table (A1-A5)."""
    print_table(
        ["policy", "hit rate (stable)", "hit rate (growth)"],
        [
            (r.policy, r.hit_rate_stable, r.hit_rate_growth)
            for r in run_policy_ablation()
        ],
        title="A1: replacement policy under index growth",
    )
    print_table(
        ["log threshold", "hit rate", "full invalidations", "pages zeroed"],
        [
            (r.threshold, r.hit_rate, r.full_invalidations, r.pages_zeroed)
            for r in run_threshold_ablation()
        ],
        title="\nA2: predicate-log threshold (10% updates)",
    )
    v = run_vertical_ablation()
    print_table(
        ["metric", "unsplit", "split"],
        [
            ("predicted B/query", v.predicted_bytes_unsplit,
             v.predicted_bytes_split),
            ("measured B/query", v.measured_bytes_unsplit,
             v.measured_bytes_split),
        ],
        title="\nA3: vertical partitioning (merge fraction "
        f"{v.merge_fraction:.0%})",
    )
    print_table(
        ["tuples", "routing table", "embedded id"],
        [
            (r.tuples, f"{r.lookup_table_bytes} B", f"{r.embedded_bytes} B")
            for r in run_routing_ablation()
        ],
        title="\nA4: routing state, per-tuple placement",
    )
    print_table(
        ["approach", "index bytes", "answered from index", "disk reads/lookup"],
        [
            (r.approach, r.index_bytes, r.answered_from_index,
             r.disk_reads_per_lookup)
            for r in run_covering_ablation()
        ],
        title="\nA5: cached vs covering index",
    )


if __name__ == "__main__":
    main()
