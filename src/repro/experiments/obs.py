"""Observability showcase: the v2 telemetry pipeline on one workload.

Runs the same seeded Zipf replay the ``python -m repro.obs`` CLI drives
at two buffer-pool sizes and prints what each telemetry surface sees:

* the **profiler**'s EXPLAIN-ANALYZE rollup (top fingerprints by total
  simulated cost, with their page-pin and cache-hit splits);
* the **sampler**'s windowed series, reduced to last-window values; and
* the **health checker**'s SLO verdicts.

The point being demonstrated: shrinking the pool moves cost between
columns (reused pins become reads) without changing a single result row
— and every layer of the telemetry stack shows it from its own angle.
All numbers are simulated-clock deterministic and safe to diff.
"""

from __future__ import annotations

from repro.obs.__main__ import ObservedRun, run_observed_workload

POOL_SIZES = (6, 64)


def run(
    n_rows: int = 2_000, n_ops: int = 3_000, seed: int = 0
) -> dict[int, ObservedRun]:
    return {
        pool: run_observed_workload(
            n_rows=n_rows, n_ops=n_ops, seed=seed, pool_pages=pool,
        )
        for pool in POOL_SIZES
    }


def main() -> dict[int, "ObservedRun"]:
    from repro.experiments.runner import print_table

    runs = run()
    print_table(
        ["pool pages", "profiled ops", "fingerprints", "pages reused",
         "pages read", "cache hit rate", "health"],
        [
            (
                pool,
                r.profiler.operations,
                len(r.profiler.top()),
                sum(s.pages_reused for s in r.profiler.top()),
                sum(s.pages_read for s in r.profiler.top()),
                f"{_overall_cache_hit_rate(r):.2f}",
                "OK" if r.health.ok else f"{len(r.health.breaches)} breach",
            )
            for pool, r in runs.items()
        ],
        title="telemetry pipeline across pool sizes (same workload, same rows)",
    )
    largest = runs[POOL_SIZES[-1]]
    print()
    print(largest.profiler.format_top(5, title="top fingerprints (largest pool)"))
    print()
    print(largest.health.format())
    return runs


def _overall_cache_hit_rate(r: ObservedRun) -> float:
    hits = sum(s.cache_hits for s in r.profiler.top())
    probes = hits + sum(s.cache_misses for s in r.profiler.top())
    return hits / probes if probes else 0.0


if __name__ == "__main__":
    main()
