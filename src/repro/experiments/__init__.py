"""Experiment drivers: one module per table/figure of the paper.

Each module exposes a ``run(...)`` returning structured rows and a
``main()`` that prints the same table/series the paper reports.  The
``benchmarks/`` tree wraps these with pytest-benchmark and asserts the
paper's *shape* claims (who wins, crossovers, approximate factors).

Modules are imported explicitly (``from repro.experiments import fig2a``)
rather than re-exported here, so ``python -m repro.experiments.fig2a``
works without double-import warnings.
"""
