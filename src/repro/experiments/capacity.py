"""§2.1.4 capacity analysis: how many cache items fits Wikipedia's
name_title index, and can it answer the popular query class?

Paper's arithmetic: the name_title index holds 360 MB of key data at a 68%
fill factor; with 25-byte cache items the free space holds ~7.9 M items —
over 70% of the page table's tuples — and the measured cache hit rate on
the Wikipedia trace exceeds 90%, answering the 40%-of-workload query
class almost entirely from the index.

Two parts:

* :func:`analytic` — the same back-of-envelope at the paper's constants;
* :func:`run_measured` — a real cached name_title index over the
  synthetic page table, measuring actual free bytes, actual capacity, and
  the actual trace hit rate.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.btree.stats import collect_stats
from repro.btree.tree import BPlusTree
from repro.core.index_cache.cached_index import CachedBTree
from repro.experiments.runner import print_table
from repro.storage.buffer_pool import BufferPool
from repro.storage.disk import SimulatedDisk
from repro.storage.heap import HeapFile, RID_SIZE
from repro.util.rng import DeterministicRng
from repro.util.units import MiB
from repro.workload.wikipedia import (
    PAGE_SCHEMA,
    WikipediaConfig,
    generate,
    name_title_lookup_trace,
)


@dataclass(frozen=True)
class AnalyticCapacity:
    """The paper's §2.1.4 arithmetic at given constants."""

    key_data_bytes: float
    fill_factor: float
    item_size: int
    page_table_tuples: int
    cache_items: int
    tuple_coverage: float


def analytic(
    key_data_bytes: float = 360 * MiB,
    fill_factor: float = 0.68,
    item_size: int = 25,
    page_table_tuples: int = 11_000_000,
) -> AnalyticCapacity:
    """Free space = key_data × (1/fill − 1); items = free / item size."""
    free = key_data_bytes * (1.0 / fill_factor - 1.0)
    items = int(free // item_size)
    return AnalyticCapacity(
        key_data_bytes=key_data_bytes,
        fill_factor=fill_factor,
        item_size=item_size,
        page_table_tuples=page_table_tuples,
        cache_items=items,
        tuple_coverage=items / page_table_tuples,
    )


@dataclass(frozen=True)
class MeasuredCapacity:
    """Measured counterpart on the synthetic page table."""

    page_table_tuples: int
    leaf_fill_factor: float
    free_bytes: int
    item_size: int
    cache_capacity: int
    tuple_coverage: float
    trace_hit_rate: float
    answered_from_cache: float


#: The §2.1.4 query class: key (namespace, title) plus 4 projected fields.
CACHED_FIELDS = ("page_id", "page_latest", "page_touched", "page_len")
QUERY_PROJECTION = ("page_namespace", "page_title") + CACHED_FIELDS


def run_measured(
    n_pages: int = 4_000,
    n_lookups: int = 40_000,
    read_alpha: float = 1.2,
    seed: int = 0,
) -> MeasuredCapacity:
    """Build the cached name_title index and replay the lookup trace.

    ``read_alpha`` defaults steeper than the edit skew: page-view
    popularity on the web is heavier-tailed than edit activity, and the
    paper's >90% measured hit rate implies the read-side skew.
    """
    data = generate(
        WikipediaConfig(
            n_pages=n_pages, revisions_per_page_mean=2,
            read_alpha=read_alpha, seed=seed,
        )
    )
    disk = SimulatedDisk(4096)
    pool = BufferPool(disk, 100_000)
    heap = HeapFile(pool)
    # Composite key: namespace (1 B) + title char(24) = 25 bytes.
    key_size = 1 + 24
    tree = BPlusTree(pool, key_size=key_size, value_size=RID_SIZE,
                     name="name_title")
    index = CachedBTree(
        tree, heap, PAGE_SCHEMA,
        key_columns=("page_namespace", "page_title"),
        cached_fields=CACHED_FIELDS,
        rng=DeterministicRng(seed),
    )
    # Insert in shuffled order: page rows are generated in title order, and
    # purely sequential key inserts would leave every leaf at the split
    # fraction; random arrival reproduces the ~68% steady state.
    rows = list(data.page_rows)
    DeterministicRng(seed + 1).shuffle(rows)
    for row in rows:
        index.insert_row(row)
    # The tree was grown by inserts, so its fill is whatever splits left;
    # report it rather than forcing `leaf_fill`.
    stats = collect_stats(tree)
    capacity = index.cache_capacity_total()

    trace = name_title_lookup_trace(data, n_lookups, seed=seed + 5)
    for key in trace[: n_lookups // 2]:
        index.lookup(key, QUERY_PROJECTION)
    index.stats.lookups = 0
    index.stats.found = 0
    index.stats.answered_from_cache = 0
    index.cache.stats.probes = 0
    index.cache.stats.hits = 0
    for key in trace[n_lookups // 2 :]:
        index.lookup(key, QUERY_PROJECTION)

    return MeasuredCapacity(
        page_table_tuples=n_pages,
        leaf_fill_factor=stats.leaf_fill_mean,
        free_bytes=stats.free_bytes_total,
        item_size=index.cache.item_size,
        cache_capacity=capacity,
        tuple_coverage=capacity / n_pages,
        trace_hit_rate=index.cache.stats.hit_rate,
        answered_from_cache=index.stats.cache_answer_rate,
    )


def main() -> None:
    a = analytic()
    print_table(
        ["quantity", "value"],
        [
            ("key data", f"{a.key_data_bytes / MiB:.0f} MiB"),
            ("fill factor", a.fill_factor),
            ("item size", f"{a.item_size} B"),
            ("cache items", f"{a.cache_items / 1e6:.1f} M (paper: 7.9 M)"),
            ("tuple coverage", f"{a.tuple_coverage:.0%} (paper: >70%)"),
        ],
        title="Sec 2.1.4 analytic capacity (paper constants)",
    )
    m = run_measured()
    print_table(
        ["quantity", "value"],
        [
            ("page tuples", m.page_table_tuples),
            ("leaf fill", f"{m.leaf_fill_factor:.2f}"),
            ("item size", f"{m.item_size} B"),
            ("cache capacity", m.cache_capacity),
            ("tuple coverage", f"{m.tuple_coverage:.0%}"),
            ("trace hit rate", f"{m.trace_hit_rate:.1%} (paper: >90%)"),
            ("answered from cache", f"{m.answered_from_cache:.1%}"),
        ],
        title="\nSec 2.1.4 measured (synthetic page table)",
    )


if __name__ == "__main__":
    main()
