"""§2 fill-factor statistics: the 68% textbook figure and CarTel's 45%.

Three measurements on real trees:

* **random inserts** — steady-state fill under uniform random key arrival
  converges near ln 2 ≈ 0.69 (Yao's 2-3 tree analysis the paper cites as
  "average fill factor ... 68%").
* **bulk load** — our loader targets 0.68 directly (sanity anchor).
* **churn** — the CarTel regime: a FIFO retention workload (append new
  telemetry, expire old) plus random deletes, with no node merging, drags
  the average leaf fill far below the textbook figure.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.btree.keycodec import UIntKey
from repro.btree.tree import BPlusTree
from repro.experiments.runner import print_table
from repro.storage.buffer_pool import BufferPool
from repro.storage.disk import SimulatedDisk
from repro.util.rng import DeterministicRng
from repro.workload.cartel import churn_tree


@dataclass(frozen=True)
class FillFactorResult:
    """Measured occupancy for the three regimes."""

    random_insert_fill: float   # expect ~0.65-0.72
    bulk_load_fill: float       # expect ~0.68
    churn_initial_fill: float
    churn_final_fill: float     # expect well below 0.68 (CarTel saw 0.45)


def _fresh_tree(key_size: int = 8) -> BPlusTree:
    pool = BufferPool(SimulatedDisk(4096), 1 << 20)
    return BPlusTree(pool, key_size=key_size, value_size=8)


def run(
    n_keys: int = 20_000,
    churn_ops: int = 20_000,
    delete_fraction: float = 0.52,
    seed: int = 0,
) -> FillFactorResult:
    """Measure leaf fill under the three regimes (see module docstring)."""
    codec = UIntKey(8)

    # Random arrival order.
    tree_random = _fresh_tree()
    keys = list(range(n_keys))
    DeterministicRng(seed).shuffle(keys)
    for k in keys:
        tree_random.insert(codec.encode(k), k.to_bytes(8, "little"))
    random_fill = tree_random.leaf_fill_factor()

    # Bulk load at the paper's 68%.
    pool = BufferPool(SimulatedDisk(4096), 1 << 20)
    entries = [(codec.encode(k), k.to_bytes(8, "little")) for k in range(n_keys)]
    tree_bulk = BPlusTree.bulk_load(pool, entries, 8, 8, leaf_fill=0.68)
    bulk_fill = tree_bulk.leaf_fill_factor()

    # CarTel-style churn: FIFO expiry + appends, no merging.
    tree_churn = _fresh_tree()
    report = churn_tree(
        tree_churn, codec.encode, n_initial=n_keys, churn_ops=churn_ops,
        seed=seed + 1, delete_fraction=delete_fraction,
    )
    return FillFactorResult(
        random_insert_fill=random_fill,
        bulk_load_fill=bulk_fill,
        churn_initial_fill=report.initial_fill,
        churn_final_fill=report.final_fill,
    )


def main() -> None:
    result = run()
    print_table(
        ["regime", "mean leaf fill"],
        [
            ("random inserts", f"{result.random_insert_fill:.3f} (paper: ~0.68)"),
            ("bulk load @0.68", f"{result.bulk_load_fill:.3f}"),
            ("churn: before", f"{result.churn_initial_fill:.3f}"),
            ("churn: after", f"{result.churn_final_fill:.3f} (CarTel: 0.45)"),
        ],
        title="Fill factors (Section 2)",
    )


if __name__ == "__main__":
    main()
