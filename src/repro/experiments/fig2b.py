"""Figure 2(b): cost/lookup (ms) vs index-cache hit rate × buffer-pool hit
rate.

Paper setup: "We assume that the index is fully in memory, and simulate
the index and buffer pool using large in-memory arrays.  An index cache
miss must access a random page in the buffer pool, and a buffer pool miss
must read a page from an on-disk file."  Lines for buffer-pool hit rates
0%, 60%, 90%, 96%, 100%; log-scale y from ~0.0001 to ~10 ms.

We reproduce it two ways that must agree:

* **analytic** — the closed form in
  :meth:`repro.sim.cost_model.CostModel.expected_lookup_ns`;
* **monte carlo** — drawing hit/miss outcomes per lookup and charging the
  simulated clock, exercising the counter machinery end to end.

Shape claims: orders of magnitude between the 0% and 100% buffer-pool
lines at low cache hit rates; every line collapses to the same floor as
the cache hit rate approaches 100% (a cache hit touches neither the pool
nor the disk).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.runner import print_table
from repro.sim.cost_model import CostModel, CostPreset, PAPER_PRESET
from repro.util.rng import DeterministicRng
from repro.util.units import NS_PER_MS

BP_HIT_RATES = (0.0, 0.60, 0.90, 0.96, 1.0)
CACHE_HIT_RATES = tuple(x / 100 for x in range(0, 101, 10))


@dataclass(frozen=True)
class Fig2bPoint:
    """One (line, x) point of the figure."""

    bp_hit_rate: float
    cache_hit_rate: float
    cost_ms_analytic: float
    cost_ms_simulated: float


def run(
    preset: CostPreset = PAPER_PRESET,
    bp_hit_rates: tuple[float, ...] = BP_HIT_RATES,
    cache_hit_rates: tuple[float, ...] = CACHE_HIT_RATES,
    lookups_per_point: int = 20_000,
    seed: int = 0,
) -> list[Fig2bPoint]:
    """Sweep both hit rates; returns one point per (line, x) pair."""
    rng = DeterministicRng(seed)
    points = []
    for bp_hit in bp_hit_rates:
        for cache_hit in cache_hit_rates:
            model = CostModel(preset)
            analytic = model.expected_lookup_ns(cache_hit, bp_hit) / NS_PER_MS
            simulated = _simulate(
                model, cache_hit, bp_hit, lookups_per_point, rng
            )
            points.append(
                Fig2bPoint(
                    bp_hit_rate=bp_hit,
                    cache_hit_rate=cache_hit,
                    cost_ms_analytic=analytic,
                    cost_ms_simulated=simulated,
                )
            )
    return points


def _simulate(
    model: CostModel,
    cache_hit_rate: float,
    bp_hit_rate: float,
    lookups: int,
    rng: DeterministicRng,
) -> float:
    """Monte-carlo draw of the paper's micro-benchmark loop."""
    model.reset()
    for _ in range(lookups):
        model.on_index_descent()
        model.on_cache_probe()
        if rng.random() < cache_hit_rate:
            continue  # answered from the leaf's cache slots
        if rng.random() < bp_hit_rate:
            model.on_bp_hit()
        else:
            model.on_bp_miss()
    return model.now_ns / lookups / NS_PER_MS


def main() -> None:
    points = run()
    by_line: dict[float, list[Fig2bPoint]] = {}
    for p in points:
        by_line.setdefault(p.bp_hit_rate, []).append(p)
    headers = ["cache hit %"] + [f"bp={int(b * 100)}%" for b in sorted(by_line)]
    rows = []
    for i, cache_hit in enumerate(CACHE_HIT_RATES):
        row: list[object] = [int(cache_hit * 100)]
        for bp_hit in sorted(by_line):
            row.append(by_line[bp_hit][i].cost_ms_simulated)
        rows.append(row)
    print_table(
        headers, rows,
        title="Figure 2(b): cost/lookup (ms) vs cache and buffer-pool hit rates",
    )


if __name__ == "__main__":
    main()
