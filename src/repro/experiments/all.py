"""Run every experiment driver and print every figure/table.

Usage::

    python -m repro.experiments.all           # everything (~3-4 minutes)
    python -m repro.experiments.all fig2a fig3  # just the named ones
"""

from __future__ import annotations

import sys

from repro.experiments import (
    ablations,
    capacity,
    encoding_waste,
    fig2a,
    fig2b,
    fig2c,
    fig3,
    fill_factor,
    headline,
)

_DRIVERS = {
    "fig2a": fig2a.main,
    "fig2b": fig2b.main,
    "fig2c": fig2c.main,
    "fig3": fig3.main,
    "capacity": capacity.main,
    "encoding": encoding_waste.main,
    "fill_factor": fill_factor.main,
    "headline": headline.main,
    "ablations": ablations.main,
}


def main(names: list[str] | None = None) -> None:
    chosen = names or list(_DRIVERS)
    unknown = [n for n in chosen if n not in _DRIVERS]
    if unknown:
        raise SystemExit(
            f"unknown experiments {unknown}; available: {list(_DRIVERS)}"
        )
    for name in chosen:
        print(f"\n{'=' * 72}\n{name}\n{'=' * 72}")
        _DRIVERS[name]()


if __name__ == "__main__":
    main(sys.argv[1:] or None)
