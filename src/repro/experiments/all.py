"""Run every experiment driver and print every figure/table.

Usage::

    python -m repro.experiments.all                # everything (~3-4 min)
    python -m repro.experiments.all fig2a fig3     # just the named ones
    python -m repro.experiments.all --json         # + metrics JSON to
                                                   #   experiments_metrics.json
    python -m repro.experiments.all --json=out.json fig2b

With ``--json`` each driver runs under its own
:class:`repro.obs.MetricsRegistry` (installed as the ambient default, so
every pool/tree/cache the driver builds emits into it) and the combined
per-experiment snapshots are written through the
:func:`repro.obs.export_json` exporter.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

from repro.experiments import (
    ablations,
    adaptive,
    batched,
    capacity,
    columnar,
    encoding_waste,
    fig2a,
    fig2b,
    fig2c,
    fig3,
    fill_factor,
    headline,
    obs,
    shard,
    txn,
    wal,
)
from repro.obs import MetricsRegistry, derived_rates, use_registry

_DRIVERS = {
    "fig2a": fig2a.main,
    "fig2b": fig2b.main,
    "fig2c": fig2c.main,
    "fig3": fig3.main,
    "capacity": capacity.main,
    "encoding": encoding_waste.main,
    "fill_factor": fill_factor.main,
    "headline": headline.main,
    "ablations": ablations.main,
    "batched": batched.main,
    "columnar": columnar.main,
    "shard": shard.main,
    "wal": wal.main,
    "obs": obs.main,
    "adaptive": adaptive.main,
    "txn": txn.main,
}

DEFAULT_JSON_PATH = "experiments_metrics.json"


def main(names: list[str] | None = None, json_path: str | None = None) -> None:
    chosen = names or list(_DRIVERS)
    unknown = [n for n in chosen if n not in _DRIVERS]
    if unknown:
        raise SystemExit(
            f"unknown experiments {unknown}; available: {list(_DRIVERS)}"
        )
    snapshots: dict[str, dict] = {}
    for name in chosen:
        print(f"\n{'=' * 72}\n{name}\n{'=' * 72}")
        if json_path is None:
            _DRIVERS[name]()
        else:
            registry = MetricsRegistry()
            with use_registry(registry):
                _DRIVERS[name]()
            snapshots[name] = {
                "metrics": registry.snapshot(),
                "derived": derived_rates(registry),
            }
    if json_path is not None:
        document = {"label": "repro.experiments.all", "experiments": snapshots}
        Path(json_path).write_text(
            json.dumps(document, indent=2, sort_keys=True) + "\n"
        )
        print(f"\nwrote per-experiment metrics to {json_path}")


def _parse_argv(argv: list[str]) -> tuple[list[str] | None, str | None]:
    names: list[str] = []
    json_path: str | None = None
    for arg in argv:
        if arg == "--json":
            json_path = DEFAULT_JSON_PATH
        elif arg.startswith("--json="):
            json_path = arg.split("=", 1)[1] or DEFAULT_JSON_PATH
        else:
            names.append(arg)
    return (names or None), json_path


if __name__ == "__main__":
    cli_names, cli_json = _parse_argv(sys.argv[1:])
    main(cli_names, json_path=cli_json)
