"""§4.1: encoding-waste analysis across the synthetic database.

Paper claims: "We analyzed several of the largest tables in the Cartel
and Wikipedia databases and found that they can all reduce their physical
encoding waste by 16% to 83% through simple techniques. ... the total
amounted to over 23.5 GB (20%) of waste in the tables we inspected."

We regenerate the analysis over the synthetic Wikipedia (page, revision)
and CarTel tables, plus a ``text`` table of pre-compressed blobs with
essentially no reclaimable waste.  The blob table is what anchors the
database-wide *weighted* total near 20% even though individual metadata
tables waste far more — same phenomenon as the paper's corpus, where
bulk storage is dominated by already-dense payloads.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.encoding.report import (
    TableWasteReport,
    analyze_table_waste,
    database_waste_fraction,
    format_waste_report,
)
from repro.schema.schema import Schema
from repro.schema.types import INT64, char
from repro.util.rng import DeterministicRng
from repro.workload.cartel import CARTEL_SCHEMA_DECLARED, cartel_rows
from repro.workload.wikipedia import (
    PAGE_SCHEMA_DECLARED,
    REVISION_SCHEMA_DECLARED,
    WikipediaConfig,
    declared_revision_row,
    generate,
)

#: Pre-compressed article text: id + blob.  A compressed blob has no
#: reclaimable encoding waste, but dominates total bytes.
TEXT_SCHEMA_DECLARED = Schema.of(
    ("old_id", INT64),
    ("old_text", char(1024)),
)


@dataclass(frozen=True)
class DatabaseWaste:
    """The §4.1 bottom line."""

    reports: tuple[TableWasteReport, ...]
    total_waste_fraction: float

    def report_for(self, table: str) -> TableWasteReport:
        for report in self.reports:
            if report.table == table:
                return report
        raise KeyError(table)


def _declared_page_row(row: dict[str, object]) -> dict[str, object]:
    import time

    out = dict(row)
    out["page_touched"] = time.strftime(
        "%Y%m%d%H%M%S", time.gmtime(int(row["page_touched"]))  # type: ignore[arg-type]
    )
    return out


def _text_rows(n: int, seed: int) -> list[dict[str, object]]:
    rng = DeterministicRng(seed)
    rows = []
    for i in range(n):
        # Compressed text is byte-soup: model it as high-entropy latin-1
        # filling most of the declared blob width.
        blob = rng.bytes(rng.randint(900, 1023)).decode("latin-1")
        blob = blob.replace("\x00", "x")
        rows.append({"old_id": 2**33 + i * 7, "old_text": blob})
    return rows


def run(
    n_pages: int = 800,
    revisions_per_page: int = 5,
    n_cartel: int = 2_000,
    n_text: int = 2_000,
    seed: int = 0,
) -> DatabaseWaste:
    """Analyze every table and produce the database-wide report."""
    data = generate(
        WikipediaConfig(
            n_pages=n_pages, revisions_per_page_mean=revisions_per_page,
            seed=seed,
        )
    )
    rev_rows = [declared_revision_row(r) for r in data.revision_rows]
    page_rows = [_declared_page_row(r) for r in data.page_rows]
    car_rows = cartel_rows(n_cartel, seed=seed + 1)
    text_rows = _text_rows(n_text, seed=seed + 2)

    reports = (
        analyze_table_waste(
            "wikipedia.revision",
            REVISION_SCHEMA_DECLARED,
            _columns(REVISION_SCHEMA_DECLARED, rev_rows),
        ),
        analyze_table_waste(
            "wikipedia.page",
            PAGE_SCHEMA_DECLARED,
            _columns(PAGE_SCHEMA_DECLARED, page_rows),
        ),
        analyze_table_waste(
            "cartel.readings",
            CARTEL_SCHEMA_DECLARED,
            _columns(CARTEL_SCHEMA_DECLARED, car_rows),
        ),
        analyze_table_waste(
            "wikipedia.text",
            TEXT_SCHEMA_DECLARED,
            _columns(TEXT_SCHEMA_DECLARED, text_rows),
        ),
    )
    return DatabaseWaste(
        reports=reports,
        total_waste_fraction=database_waste_fraction(list(reports)),
    )


def _columns(schema: Schema, rows: list[dict[str, object]]) -> dict[str, list[object]]:
    return {name: [row[name] for row in rows] for name in schema.names}


def main() -> None:
    result = run()
    for report in result.reports:
        print(format_waste_report(report))
        print()
    print(
        f"database-wide waste: {result.total_waste_fraction:.0%} "
        f"(paper: ~20%, per-table 16%-83%)"
    )


if __name__ == "__main__":
    main()
