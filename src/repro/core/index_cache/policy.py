"""Cache replacement policies (§2.1.1) plus baselines for ablation.

The paper's policy ("Swap"):

* The cache is logically split into buckets of N slots, ordered by
  distance from the stable point S.
* First insert of an item goes to a *random free* slot; if none is free it
  evicts a random item in a *peripheral* bucket.
* On a lookup hit, the item swaps with a random slot in the adjacent
  bucket one step closer to S.

The effect: hot items random-walk toward the interior, so when index
growth eats the window from both ends, the least-accessed items are the
ones overwritten.  ``RandomPolicy`` and ``LruPolicy`` exist as ablation
baselines (A1 in DESIGN.md).
"""

from __future__ import annotations

from abc import ABC, abstractmethod

from repro.core.index_cache.layout import CacheGeometry
from repro.util.rng import DeterministicRng


class CachePolicy(ABC):
    """Chooses where items land and how hits reposition them.

    Policies see only slot indices and occupancy; the cache handles bytes.
    ``page_key`` is an opaque identity (the page id) for policies that keep
    per-page auxiliary state.
    """

    @abstractmethod
    def choose_slot(
        self,
        geo: CacheGeometry,
        free: list[int],
        occupied: list[int],
        page_key: int,
    ) -> int | None:
        """Slot to write a new item into, or ``None`` to skip caching."""

    @abstractmethod
    def on_hit(
        self, geo: CacheGeometry, slot: int, page_key: int
    ) -> int | None:
        """Called after a hit in ``slot``.

        Returns a slot to swap the item with (the cache performs the swap),
        or ``None`` to leave it in place.
        """

    def on_evict(self, slot: int, page_key: int) -> None:
        """Notification that ``slot``'s item was dropped (aux bookkeeping)."""

    def on_insert(self, slot: int, page_key: int) -> None:
        """Notification that a new item landed in ``slot``."""


class SwapPolicy(CachePolicy):
    """The paper's bucketed swap-toward-the-stable-point policy."""

    def __init__(self, rng: DeterministicRng, bucket_slots: int = 4) -> None:
        if bucket_slots <= 0:
            raise ValueError("bucket_slots must be positive")
        self._rng = rng
        self._bucket_slots = bucket_slots

    @property
    def bucket_slots(self) -> int:
        return self._bucket_slots

    def choose_slot(
        self,
        geo: CacheGeometry,
        free: list[int],
        occupied: list[int],
        page_key: int,
    ) -> int | None:
        if free:
            return self._rng.choice(free)
        if not occupied:
            return None
        # Evict a random item from the outermost bucket that has any.
        occupied_set = set(occupied)
        for bucket in reversed(geo.buckets(self._bucket_slots)):
            victims = [s for s in bucket if s in occupied_set]
            if victims:
                return self._rng.choice(victims)
        return None  # pragma: no cover - occupied implies a bucket has items

    def on_hit(
        self, geo: CacheGeometry, slot: int, page_key: int
    ) -> int | None:
        buckets = geo.buckets(self._bucket_slots)
        for b, bucket in enumerate(buckets):
            if slot in bucket:
                if b == 0:
                    return None  # already in the innermost bucket
                return self._rng.choice(buckets[b - 1])
        return None  # slot no longer in the geometry (window moved)


class RandomPolicy(CachePolicy):
    """Random placement, random eviction, no promotion (ablation baseline)."""

    def __init__(self, rng: DeterministicRng) -> None:
        self._rng = rng

    def choose_slot(
        self,
        geo: CacheGeometry,
        free: list[int],
        occupied: list[int],
        page_key: int,
    ) -> int | None:
        if free:
            return self._rng.choice(free)
        if not occupied:
            return None
        return self._rng.choice(occupied)

    def on_hit(
        self, geo: CacheGeometry, slot: int, page_key: int
    ) -> int | None:
        return None


class LruPolicy(CachePolicy):
    """True LRU via auxiliary in-memory recency (ablation baseline).

    Note this policy cheats relative to the paper's constraints: it keeps
    per-page recency state *outside* the page bytes, which a real system
    would have to persist or rebuild.  It exists to quantify how close the
    paper's stateless swap scheme gets to proper LRU (ablation A1).

    LRU also ignores slot *position*, so under index growth it loses hot
    items that happen to sit at the periphery — the exact failure mode the
    stable-point design avoids.
    """

    def __init__(self, rng: DeterministicRng) -> None:
        self._rng = rng
        self._clock = 0
        self._last_use: dict[tuple[int, int], int] = {}

    def _tick(self) -> int:
        self._clock += 1
        return self._clock

    def choose_slot(
        self,
        geo: CacheGeometry,
        free: list[int],
        occupied: list[int],
        page_key: int,
    ) -> int | None:
        if free:
            return self._rng.choice(free)
        if not occupied:
            return None
        return min(
            occupied, key=lambda s: self._last_use.get((page_key, s), 0)
        )

    def on_hit(
        self, geo: CacheGeometry, slot: int, page_key: int
    ) -> int | None:
        self._last_use[(page_key, slot)] = self._tick()
        return None

    def on_insert(self, slot: int, page_key: int) -> None:
        self._last_use[(page_key, slot)] = self._tick()

    def on_evict(self, slot: int, page_key: int) -> None:
        self._last_use.pop((page_key, slot), None)
