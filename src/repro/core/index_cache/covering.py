"""Covering index: the alternative the paper argues against (§2.1).

"As an alternative to a caching-based approach, one could imagine using
covering indexes (i.e., adding all of the fields used in any query to the
index key), which can also avoid accessing the heap to answer queries.
However, covering indices still store cold data, waste space and bloat
the index size, which wastes more total bytes, and increases pressure on
RAM."

We implement it so the claim can be measured (ablation A5): a
:class:`CoveringIndex` stores the projected fields *inside the leaf
entry's value* (RID + covered fields), for every tuple, hot or cold.
Lookups never touch the heap for covered projections — but every leaf
holds covered bytes for cold tuples too, so the index is strictly larger
than a plain index and there is no free window left to recycle.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.btree.keycodec import KeyCodec, codec_for_columns
from repro.btree.tree import BPlusTree
from repro.core.index_cache.cached_index import LookupResult
from repro.errors import QueryError
from repro.schema.record import pack_record_map, unpack_fields, unpack_record
from repro.schema.schema import Schema
from repro.storage.heap import HeapFile, Rid, RID_SIZE


@dataclass
class CoveringIndexStats:
    """Lookup accounting, mirroring :class:`CachedIndexStats`."""

    lookups: int = 0
    found: int = 0
    answered_from_index: int = 0
    heap_fetches: int = 0


class CoveringIndex:
    """Unique index whose leaf values carry RID + covered fields."""

    def __init__(
        self,
        tree: BPlusTree,
        heap: HeapFile,
        schema: Schema,
        key_columns: tuple[str, ...],
        covered_fields: tuple[str, ...],
    ) -> None:
        if not covered_fields:
            raise QueryError("covering index needs at least one covered field")
        overlap = set(key_columns) & set(covered_fields)
        if overlap:
            raise QueryError(
                f"fields {sorted(overlap)} are index keys already"
            )
        self._tree = tree
        self._heap = heap
        self._schema = schema
        self._key_columns = tuple(key_columns)
        self._covered_fields = tuple(covered_fields)
        self._codec: KeyCodec = codec_for_columns(
            [schema.column(c) for c in key_columns]
        )
        if self._codec.size != tree.key_size:
            raise QueryError(
                f"tree key size {tree.key_size} != codec size {self._codec.size}"
            )
        self._covered_schema = schema.project(list(covered_fields))
        expected_value = RID_SIZE + self._covered_schema.record_size
        if tree.value_size != expected_value:
            raise QueryError(
                f"tree value size must be {expected_value} "
                f"(rid + covered fields), got {tree.value_size}"
            )
        self._answerable = set(key_columns) | set(covered_fields)
        self.stats = CoveringIndexStats()

    # -- properties ----------------------------------------------------------

    @property
    def tree(self) -> BPlusTree:
        return self._tree

    @property
    def key_columns(self) -> tuple[str, ...]:
        return self._key_columns

    @property
    def covered_fields(self) -> tuple[str, ...]:
        return self._covered_fields

    @classmethod
    def value_size_for(
        cls, schema: Schema, covered_fields: tuple[str, ...]
    ) -> int:
        """Tree value size needed for a given covered-field set."""
        return RID_SIZE + schema.project(list(covered_fields)).record_size

    def encode_key(self, key_value: object) -> bytes:
        if len(self._key_columns) == 1:
            if isinstance(key_value, (tuple, list)):
                (key_value,) = key_value
            return self._codec.encode(key_value)
        return self._codec.encode(tuple(key_value))  # type: ignore[arg-type]

    # -- data plane ------------------------------------------------------------

    def _encode_value(self, rid: Rid, row: dict[str, object]) -> bytes:
        covered = pack_record_map(
            self._covered_schema,
            {n: row[n] for n in self._covered_schema.names},
        )
        return rid.to_bytes() + covered

    def insert_row(self, row: dict[str, object]) -> Rid:
        """Heap insert + index entry carrying the covered copy."""
        record = pack_record_map(self._schema, row)
        rid = self._heap.insert(record)
        key = self.encode_key(tuple(row[c] for c in self._key_columns))
        self._tree.insert(key, self._encode_value(rid, row))
        return rid

    def insert_key(self, row: dict[str, object], rid: Rid) -> None:
        """Index-maintenance-only insert (Table fan-out protocol)."""
        key = self.encode_key(tuple(row[c] for c in self._key_columns))
        self._tree.insert(key, self._encode_value(rid, row))

    def delete_key(self, row: dict[str, object]) -> None:
        key = self.encode_key(tuple(row[c] for c in self._key_columns))
        self._tree.delete(key)

    def note_update(self, row: dict[str, object], changed: set[str]) -> None:
        """Covered copies are *authoritative duplicates*: unlike the cache,
        they must be synchronously rewritten on update — one of the hidden
        costs of covering indexes."""
        if changed & set(self._covered_fields):
            key = self.encode_key(tuple(row[c] for c in self._key_columns))
            value = self._tree.search(key)
            if value is not None:
                rid = Rid.from_bytes(value[:RID_SIZE])
                self._tree.update_value(key, self._encode_value(rid, row))

    def lookup(
        self, key_value: object, project: tuple[str, ...] | None = None
    ) -> LookupResult:
        """Point lookup; covered projections never touch the heap."""
        project = project if project is not None else self._schema.names
        for name in project:
            if not self._schema.has_column(name):
                raise QueryError(f"unknown projected column {name!r}")
        key = self.encode_key(key_value)
        self.stats.lookups += 1
        value = self._tree.search(key)
        if value is None:
            return LookupResult(None, found=False, from_cache=False)
        self.stats.found += 1
        if set(project) <= self._answerable:
            self.stats.answered_from_index += 1
            values = self._assemble(key, value[RID_SIZE:], project)
            return LookupResult(values, found=True, from_cache=True)
        rid = Rid.from_bytes(value[:RID_SIZE])
        record = self._heap.fetch(rid)
        self.stats.heap_fetches += 1
        return LookupResult(
            unpack_fields(self._schema, record, project),
            found=True,
            from_cache=False,
        )

    # -- internals ---------------------------------------------------------------

    def _assemble(
        self, key: bytes, covered: bytes, project: tuple[str, ...]
    ) -> dict[str, object]:
        values: dict[str, object] = {}
        decoded = self._codec.decode(key)
        if len(self._key_columns) == 1:
            values[self._key_columns[0]] = decoded
        else:
            values.update(zip(self._key_columns, decoded))  # type: ignore[arg-type]
        values.update(
            zip(
                self._covered_schema.names,
                unpack_record(self._covered_schema, covered),
            )
        )
        return {name: values[name] for name in project}
