"""CachedBTree: a B+Tree whose leaf free space caches hot tuple fields.

This is the end-to-end assembly of §2.1: lookups descend the tree, probe
the leaf's cache window for the tuple id, and — when the query's projection
is covered by ``index key ∪ cached fields`` — return without ever touching
the heap (no buffer-pool access, no disk).  Misses fetch the heap tuple
through the buffer pool and then piggy-back a cache fill, exactly the
"piggy-back off normal query processing" maintenance the paper prescribes.

Cost accounting contract (how the experiments recreate the paper's setup):

* Pass a :class:`~repro.sim.cost_model.CostModel` here to charge the
  in-memory index path: one ``index_descent`` per lookup plus one
  ``cache_probe`` per cache scan.
* Hook the *heap's* buffer pool with the same model so heap fetches charge
  a buffer-pool access and, on pool misses, a disk read.
* Leave the *index* pool unhooked to model the paper's "index is fully in
  memory" assumption (Fig. 2b/2c); hook it too for the all-costs-real
  configuration (Fig. 3).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.btree.keycodec import KeyCodec, codec_for_columns
from repro.btree.node import LeafNode
from repro.btree.rebuild import rebuild_tree_from_heap
from repro.btree.tree import BPlusTree
from repro.core.index_cache.cache import IndexCache
from repro.core.index_cache.invalidation import CacheInvalidation
from repro.core.index_cache.latching import LatchSimulator
from repro.core.index_cache.policy import CachePolicy
from repro.errors import QueryError
from repro.obs.registry import MetricsRegistry, resolve_registry
from repro.schema.record import (
    pack_record_map,
    unpack_fields,
    unpack_record,
    unpack_record_map,
)
from repro.schema.schema import Schema
from repro.sim.cost_model import CostModel
from repro.storage.heap import HeapFile, Rid, RID_SIZE
from repro.util.rng import DeterministicRng


@dataclass
class CachedIndexStats:
    """Where lookups were answered from."""

    lookups: int = 0
    found: int = 0
    answered_from_cache: int = 0
    heap_fetches: int = 0
    not_answerable: int = 0
    cache_fills: int = 0
    fills_skipped_latch: int = 0
    fills_skipped_admission: int = 0

    @property
    def cache_answer_rate(self) -> float:
        return self.answered_from_cache / self.found if self.found else 0.0


@dataclass
class LookupResult:
    """Outcome of one point lookup."""

    values: dict[str, object] | None
    found: bool
    from_cache: bool


class CachedBTree:
    """Unique secondary index with the §2.1 in-leaf tuple cache."""

    def __init__(
        self,
        tree: BPlusTree,
        heap: HeapFile,
        schema: Schema,
        key_columns: tuple[str, ...],
        cached_fields: tuple[str, ...],
        policy: CachePolicy | None = None,
        rng: DeterministicRng | None = None,
        invalidation: CacheInvalidation | None = None,
        latch: LatchSimulator | None = None,
        cost_model: CostModel | None = None,
        registry: MetricsRegistry | None = None,
    ) -> None:
        if not key_columns:
            raise QueryError("index needs at least one key column")
        overlap = set(key_columns) & set(cached_fields)
        if overlap:
            raise QueryError(
                f"fields {sorted(overlap)} are index keys; caching them "
                "would duplicate bytes the leaf already stores"
            )
        self._tree = tree
        self._heap = heap
        self._schema = schema
        self._key_columns = tuple(key_columns)
        self._cached_fields = tuple(cached_fields)
        self._codec: KeyCodec = codec_for_columns(
            [schema.column(c) for c in key_columns]
        )
        if self._codec.size != tree.key_size:
            raise QueryError(
                f"tree key size {tree.key_size} != codec size {self._codec.size}"
            )
        if tree.value_size != RID_SIZE:
            raise QueryError("cached index requires RID-valued tree")
        self._payload_schema = schema.project(list(cached_fields)) if cached_fields else None
        payload_size = (
            self._payload_schema.record_size if self._payload_schema else 0
        )
        if payload_size <= 0:
            raise QueryError("cached_fields must have positive total width")
        self._cache = IndexCache(
            payload_size,
            entry_size=tree.key_size + tree.value_size,
            policy=policy,
            rng=rng,
            registry=registry,
        )
        self._invalidation = invalidation
        self._latch = latch if latch is not None else LatchSimulator(0.0)
        self._cost = cost_model
        self._answerable = set(key_columns) | set(cached_fields)
        self.stats = CachedIndexStats()
        #: Admission aggressiveness: the fraction of piggy-back fill
        #: opportunities actually written into leaf cache windows.  1.0
        #: (the default) admits everything — the paper's behaviour; the
        #: adaptive controller lowers it to shed fill work under churn.
        self._admission = 1.0
        self._admission_credit = 0.0
        reg = resolve_registry(registry)
        self._m_lookup = reg.counter("index_cache.lookup")
        self._m_hit = reg.counter("index_cache.hit")
        self._m_miss = reg.counter("index_cache.miss")
        self._m_heap_fetch = reg.counter("index_cache.heap_fetch")
        self._m_not_answerable = reg.counter("index_cache.not_answerable")
        self._m_fill = reg.counter("index_cache.fill")
        self._m_fill_skipped = reg.counter("index_cache.fill_skipped_latch")
        self._m_fill_skipped_admission = reg.counter(
            "index_cache.fill_skipped_admission"
        )
        self._m_admission_knob = reg.gauge("adaptive.knob.index_cache.admission")
        self._m_admission_knob.set(self._admission)

    # -- properties ----------------------------------------------------------

    @property
    def tree(self) -> BPlusTree:
        return self._tree

    @property
    def heap(self) -> HeapFile:
        return self._heap

    @property
    def cache(self) -> IndexCache:
        return self._cache

    @property
    def invalidation(self) -> CacheInvalidation | None:
        return self._invalidation

    @property
    def latch(self) -> LatchSimulator:
        return self._latch

    @property
    def key_columns(self) -> tuple[str, ...]:
        return self._key_columns

    @property
    def cached_fields(self) -> tuple[str, ...]:
        return self._cached_fields

    @property
    def cache_admission(self) -> float:
        """Fraction of piggy-back fill opportunities admitted (0..1)."""
        return self._admission

    def set_cache_admission(self, fraction: float) -> None:
        """Retune cache-fill admission (the adaptive knob).

        Deterministic credit accounting, not coin flips: each skipped
        opportunity accrues ``fraction`` of a fill credit and the next
        opportunity with a whole credit is admitted, so a long run of
        fills converges on exactly the requested admission rate.
        """
        if not 0.0 <= fraction <= 1.0:
            raise QueryError(
                f"cache admission must be within [0, 1], got {fraction}"
            )
        self._admission = float(fraction)
        self._m_admission_knob.set(self._admission)

    def encode_key(self, key_value: object) -> bytes:
        """Encode a key value (scalar or tuple for composite keys)."""
        if len(self._key_columns) == 1:
            if isinstance(key_value, (tuple, list)):
                (key_value,) = key_value
            return self._codec.encode(key_value)
        return self._codec.encode(tuple(key_value))  # type: ignore[arg-type]

    # -- data plane ------------------------------------------------------------

    def insert_row(self, row: dict[str, object]) -> Rid:
        """Insert a full row: heap append + index maintenance.

        The tree insert may consume leaf free space, silently clobbering
        peripheral cache slots — by design, no coordination needed.
        """
        record = pack_record_map(self._schema, row)
        rid = self._heap.insert(record)
        key = self.encode_key(tuple(row[c] for c in self._key_columns))
        self._tree.insert(key, rid.to_bytes())
        return rid

    def insert_key(self, row: dict[str, object], rid: Rid) -> None:
        """Index-maintenance-only insert: the heap row already exists.

        Used by :class:`repro.query.table.Table`, which owns the heap write
        and fans out to every index on the table.
        """
        key = self.encode_key(tuple(row[c] for c in self._key_columns))
        self._tree.insert(key, rid.to_bytes())

    def delete_key(self, row: dict[str, object]) -> None:
        """Index-maintenance-only delete (heap row handled by the caller)."""
        key = self.encode_key(tuple(row[c] for c in self._key_columns))
        self._tree.delete(key)
        if self._invalidation is not None:
            self._invalidation.note_update(key)

    def note_update(self, row: dict[str, object], changed: set[str]) -> None:
        """Invalidate this index's cached copy after a heap update."""
        if self._invalidation is not None and changed & set(self._cached_fields):
            key = self.encode_key(tuple(row[c] for c in self._key_columns))
            self._invalidation.note_update(key)

    def lookup(
        self, key_value: object, project: tuple[str, ...] | None = None
    ) -> LookupResult:
        """Point lookup with projection (the paper's workhorse query)."""
        project = project if project is not None else self._schema.names
        for name in project:
            if not self._schema.has_column(name):
                raise QueryError(f"unknown projected column {name!r}")
        key = self.encode_key(key_value)
        self.stats.lookups += 1
        self._m_lookup.inc()
        if self._cost is not None:
            self._cost.on_index_descent()
        leaf_id = self._tree.find_leaf(key)
        pool = self._tree.pool
        with pool.page(leaf_id) as page:
            leaf = LeafNode(page, self._tree.key_size, self._tree.value_size)
            pos, found = leaf.find(key)
            if not found:
                return LookupResult(None, found=False, from_cache=False)
            self.stats.found += 1
            tid = leaf.value_at(pos)
            if self._invalidation is not None:
                count = leaf.count
                first = leaf.key_at(0) if count else None
                last = leaf.key_at(count - 1) if count else None
                self._invalidation.validate_page(page, self._cache, first, last)
            answerable = set(project) <= self._answerable
            if answerable:
                if self._cost is not None:
                    self._cost.on_cache_probe()
                payload = self._cache.probe(page, tid)
                if payload is not None:
                    self.stats.answered_from_cache += 1
                    self._m_hit.inc()
                    values = self._assemble(key, payload, project)
                    return LookupResult(values, found=True, from_cache=True)
                self._m_miss.inc()
            else:
                self.stats.not_answerable += 1
                self._m_not_answerable.inc()
            # Cache miss (or unanswerable projection): go to the heap.
            rid = Rid.from_bytes(tid)
            record = self._heap.fetch(rid)
            self.stats.heap_fetches += 1
            self._m_heap_fetch.inc()
            values = unpack_fields(self._schema, record, project)
            self._fill_cache(page, tid, record)
            return LookupResult(values, found=True, from_cache=False)

    def lookup_many(
        self,
        key_values: list[object],
        project: tuple[str, ...] | None = None,
    ) -> list["LookupResult"]:
        """Batched point lookups: one descent and one cache probe per leaf
        *run* instead of per key, heap misses fetched page-ordered.

        Results are positionally aligned with ``key_values`` and identical
        to calling :meth:`lookup` per key.  The batch is probed in three
        phases: (1) walk the sorted keys through
        :meth:`BPlusTree.leaf_runs`, validating each leaf's CSN once and
        probing its cache window for every key in the run; (2) fetch all
        cache misses from the heap through the page-ordered
        :meth:`HeapFile.fetch_many` (each heap page pinned once); (3)
        piggy-back cache fills grouped by leaf.  Duplicate keys are
        probed once.  Cost accounting: one ``index_descent`` per leaf run
        (the descent really is shared) and one ``cache_probe`` per unique
        answerable key.
        """
        project = project if project is not None else self._schema.names
        for name in project:
            if not self._schema.has_column(name):
                raise QueryError(f"unknown projected column {name!r}")
        encoded = [self.encode_key(kv) for kv in key_values]
        by_key: dict[bytes, LookupResult] = {}
        if not encoded:
            return []
        answerable = set(project) <= self._answerable
        #: cache misses to resolve from the heap: encoded key -> (rid, leaf)
        misses: list[tuple[bytes, Rid, int]] = []
        for leaf_id, page, run in self._tree.leaf_runs(encoded):
            if self._cost is not None:
                self._cost.on_index_descent()
            leaf = LeafNode(page, self._tree.key_size, self._tree.value_size)
            if self._invalidation is not None:
                count = leaf.count
                first = leaf.key_at(0) if count else None
                last = leaf.key_at(count - 1) if count else None
                self._invalidation.validate_page(page, self._cache, first, last)
            for key in run:
                self.stats.lookups += 1
                self._m_lookup.inc()
                pos, found = leaf.find(key)
                if not found:
                    by_key[key] = LookupResult(None, found=False, from_cache=False)
                    continue
                self.stats.found += 1
                tid = leaf.value_at(pos)
                if answerable:
                    if self._cost is not None:
                        self._cost.on_cache_probe()
                    payload = self._cache.probe(page, tid)
                    if payload is not None:
                        self.stats.answered_from_cache += 1
                        self._m_hit.inc()
                        by_key[key] = LookupResult(
                            self._assemble(key, payload, project),
                            found=True,
                            from_cache=True,
                        )
                        continue
                    self._m_miss.inc()
                else:
                    self.stats.not_answerable += 1
                    self._m_not_answerable.inc()
                misses.append((key, Rid.from_bytes(tid), leaf_id))
        if misses:
            records = self._heap.fetch_many([rid for _, rid, _ in misses])
            fills_by_leaf: dict[int, list[tuple[bytes, bytes]]] = {}
            for key, rid, leaf_id in misses:
                record = records[rid]
                self.stats.heap_fetches += 1
                self._m_heap_fetch.inc()
                by_key[key] = LookupResult(
                    unpack_fields(self._schema, record, project),
                    found=True,
                    from_cache=False,
                )
                fills_by_leaf.setdefault(leaf_id, []).append(
                    (rid.to_bytes(), record)
                )
            pool = self._tree.pool
            for leaf_id, fills in fills_by_leaf.items():
                with pool.page(leaf_id) as page:
                    for tid, record in fills:
                        self._fill_cache(page, tid, record)
        return [by_key[key] for key in encoded]

    def update_row(self, key_value: object, changes: dict[str, object]) -> bool:
        """Update non-key fields of the row at ``key_value``.

        Updates go to the heap tuple (the paper: "updates must access the
        updated field values in the heap tuple") and append an
        invalidation predicate so stale cache copies get zeroed lazily.
        """
        bad = set(changes) & set(self._key_columns)
        if bad:
            raise QueryError(f"cannot update key columns {sorted(bad)}")
        key = self.encode_key(key_value)
        tid = self._tree.search(key)
        if tid is None:
            return False
        rid = Rid.from_bytes(tid)
        record = bytearray(self._heap.fetch(rid))
        row = unpack_record_map(self._schema, bytes(record))
        row.update(changes)
        self._heap.update(rid, pack_record_map(self._schema, row))
        if self._invalidation is not None and (
            set(changes) & set(self._cached_fields)
        ):
            self._invalidation.note_update(key)
        return True

    def delete_row(self, key_value: object) -> bool:
        """Delete the row at ``key_value`` from heap and index."""
        key = self.encode_key(key_value)
        tid = self._tree.search(key)
        if tid is None:
            return False
        self._heap.delete(Rid.from_bytes(tid))
        self._tree.delete(key)
        if self._invalidation is not None:
            self._invalidation.note_update(key)
        return True

    def scan_range(
        self,
        lo_value: object | None = None,
        hi_value: object | None = None,
        project: tuple[str, ...] | None = None,
    ):
        """Yield projected rows with key in ``[lo_value, hi_value)``.

        Range scans read every qualifying tuple, so the cache offers no
        shortcut (it holds random hot subsets, not contiguous ranges);
        rows come from the heap.  Projection still prunes decode work.
        """
        project = project if project is not None else self._schema.names
        lo = self.encode_key(lo_value) if lo_value is not None else None
        hi = self.encode_key(hi_value) if hi_value is not None else None
        for _, rid_bytes in self._tree.range_scan(lo, hi):
            record = self._heap.fetch(Rid.from_bytes(rid_bytes))
            yield unpack_fields(self._schema, record, project)

    # -- recovery ----------------------------------------------------------------

    def drop_cache(self) -> None:
        """Drop every cached tuple copy wholesale (recovery path).

        Cached copies are pure derived state, so the cheapest correct
        response to *any* doubt about them is to throw them all away: one
        O(1) epoch bump when CSN invalidation is wired, else an explicit
        zeroing sweep over the leaf windows.
        """
        if self._invalidation is not None:
            self._invalidation.invalidate_all()
            return
        pool = self._tree.pool
        for page_id in self._tree.leaf_page_ids:
            with pool.page(page_id, dirty=True) as page:
                self._cache.zero_window(page)

    def rebuild_from_heap(self) -> BPlusTree:
        """Reconstruct the index from the heap (corruption recovery).

        The replacement tree starts with empty cache windows, and
        :meth:`drop_cache` bumps the invalidation epoch so no stale cached
        copy — in memory or already written back — can ever be served.
        Subsequent lookups refill the cache by the usual piggy-back path.
        """
        self._tree = rebuild_tree_from_heap(
            self._tree, self._heap, self._schema, self._key_columns, self.encode_key
        )
        self.drop_cache()
        return self._tree

    # -- introspection -----------------------------------------------------------

    def cache_capacity_total(self) -> int:
        """Sum of current cache slots across every leaf."""
        total = 0
        pool = self._tree.pool
        for page_id in self._tree.leaf_page_ids:
            with pool.page(page_id) as page:
                total += self._cache.capacity(page)
        return total

    def cached_item_count(self) -> int:
        """Number of valid cache items across every leaf."""
        total = 0
        pool = self._tree.pool
        for page_id in self._tree.leaf_page_ids:
            with pool.page(page_id) as page:
                total += len(self._cache.entries(page))
        return total

    # -- internals ---------------------------------------------------------------

    def _assemble(
        self, key: bytes, payload: bytes, project: tuple[str, ...]
    ) -> dict[str, object]:
        values: dict[str, object] = {}
        decoded = self._codec.decode(key)
        if len(self._key_columns) == 1:
            values[self._key_columns[0]] = decoded
        else:
            values.update(zip(self._key_columns, decoded))  # type: ignore[arg-type]
        assert self._payload_schema is not None
        # The payload is a packed record over the cached-field schema.
        values.update(
            zip(self._payload_schema.names, unpack_record(self._payload_schema, payload))
        )
        return {name: values[name] for name in project}

    def _fill_cache(self, page, tid: bytes, record: bytes) -> None:
        if self._admission < 1.0:
            self._admission_credit += self._admission
            if self._admission_credit < 1.0:
                self.stats.fills_skipped_admission += 1
                self._m_fill_skipped_admission.inc()
                return
            self._admission_credit -= 1.0
        if not self._latch.try_acquire():
            self.stats.fills_skipped_latch += 1
            self._m_fill_skipped.inc()
            return
        assert self._payload_schema is not None
        fields = unpack_fields(self._schema, record, self._payload_schema.names)
        payload = pack_record_map(self._payload_schema, fields)
        if self._cache.insert(page, tid, payload):
            self.stats.cache_fills += 1
            self._m_fill.inc()
