"""Abstract swap-cache simulator — the Figure 2(a) methodology.

The paper's hit-rate study is itself a simulation ("We ran a simulation to
study how the hit rate varies with the cache size...").  This module
mirrors that: a bare array of slots managed by the exact §2.1.1 algorithm,
with no pages or bytes, so hit rates can be measured across cache sizes in
milliseconds.

Slot order here *is* stability order: slot 0 is the stable point S, the
last slot is the periphery.  The two scenarios:

* **Swap** — read-only: the slot array never changes size.
* **Shrink** — read/insert: index growth overwrites the periphery;
  modelled (as the paper does) by removing peripheral slots at a constant
  rate until half the cache is gone by the end of the run.

The byte-level :class:`~repro.core.index_cache.cache.IndexCache` runs the
same algorithm via :class:`~repro.core.index_cache.policy.SwapPolicy`;
integration tests assert the two implementations agree on hit rates.
"""

from __future__ import annotations

from typing import Hashable

from repro.errors import ReproError
from repro.util.rng import DeterministicRng


class SwapCacheSimulator:
    """Bucketed swap cache over abstract items."""

    def __init__(
        self,
        capacity: int,
        bucket_slots: int = 4,
        rng: DeterministicRng | None = None,
    ) -> None:
        if capacity < 0:
            raise ReproError("capacity must be non-negative")
        if bucket_slots <= 0:
            raise ReproError("bucket_slots must be positive")
        self._slots: list[Hashable | None] = [None] * capacity
        self._where: dict[Hashable, int] = {}
        self._bucket_slots = bucket_slots
        self._rng = rng if rng is not None else DeterministicRng(0)
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    # -- properties ----------------------------------------------------------

    @property
    def capacity(self) -> int:
        return len(self._slots)

    @property
    def occupancy(self) -> int:
        return len(self._where)

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def reset_counters(self) -> None:
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def __contains__(self, item: Hashable) -> bool:
        return item in self._where

    # -- the §2.1.1 algorithm ---------------------------------------------------

    def lookup(self, item: Hashable) -> bool:
        """One probe: hit promotes toward S, miss inserts.  Returns hit."""
        slot = self._where.get(item)
        if slot is not None:
            self.hits += 1
            self._promote(slot)
            return True
        self.misses += 1
        self._insert(item)
        return False

    def _promote(self, slot: int) -> None:
        """Swap the item with a random slot in the adjacent bucket closer
        to the stable point (bucket 0)."""
        bucket = slot // self._bucket_slots
        if bucket == 0:
            return
        lo = (bucket - 1) * self._bucket_slots
        hi = min(lo + self._bucket_slots, len(self._slots))
        target = self._rng.randint(lo, hi - 1)
        self._swap(slot, target)

    def _insert(self, item: Hashable) -> None:
        if not self._slots:
            return
        free = [i for i, v in enumerate(self._slots) if v is None]
        if free:
            slot = self._rng.choice(free)
        else:
            slot = self._peripheral_victim()
            victim = self._slots[slot]
            if victim is not None:
                del self._where[victim]
                self.evictions += 1
        self._slots[slot] = item
        self._where[item] = slot

    def _peripheral_victim(self) -> int:
        """Random occupied slot in the outermost occupied bucket."""
        n = len(self._slots)
        last_bucket_start = ((n - 1) // self._bucket_slots) * self._bucket_slots
        for lo in range(last_bucket_start, -1, -self._bucket_slots):
            hi = min(lo + self._bucket_slots, n)
            occupied = [i for i in range(lo, hi) if self._slots[i] is not None]
            if occupied:
                return self._rng.choice(occupied)
        raise ReproError("no occupied slot to evict")  # pragma: no cover

    def _swap(self, a: int, b: int) -> None:
        item_a = self._slots[a]
        item_b = self._slots[b]
        self._slots[a], self._slots[b] = item_b, item_a
        if item_a is not None:
            self._where[item_a] = b
        if item_b is not None:
            self._where[item_b] = a

    # -- the Shrink scenario -----------------------------------------------------

    def shrink(self, n_slots: int = 1) -> None:
        """Index growth claims ``n_slots`` peripheral slots.

        Items living there are lost without notice — the simulation
        analogue of key bytes overwriting the window's edges.
        """
        for _ in range(min(n_slots, len(self._slots))):
            victim = self._slots.pop()  # the outermost slot
            if victim is not None:
                del self._where[victim]
