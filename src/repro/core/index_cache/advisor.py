"""Cached-field selection heuristics (§2.1.4).

The paper hand-picked fields and reports two heuristics that pull against
each other:

1. cached fields should be **stable** (rarely updated) — updates must go
   to the heap anyway, and each update poisons cache entries;
2. cached fields should **fully answer a large class of queries** —
   a cache item only helps when ``projection ⊆ index key ∪ cached fields``.

There is a third, implicit force: every byte cached shrinks the number of
slots a page holds, so wider payloads mean fewer cached tuples and a lower
hit rate.  ``select_cached_fields`` runs a greedy search over field sets
scoring all three, which is the "automated tool" direction the paper
gestures at.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.index_cache.layout import item_size_for_payload
from repro.errors import ReproError
from repro.schema.schema import Schema


@dataclass(frozen=True)
class FieldStats:
    """Per-column workload statistics fed to the advisor.

    Attributes:
        name: column name.
        update_rate: fraction of workload operations that modify this
            column (0 = perfectly stable).
    """

    name: str
    update_rate: float


@dataclass(frozen=True)
class QueryClass:
    """A class of queries: the fields it projects and its frequency."""

    projected: frozenset[str]
    frequency: float

    @classmethod
    def of(cls, projected: list[str] | tuple[str, ...], frequency: float) -> "QueryClass":
        return cls(frozenset(projected), frequency)


@dataclass(frozen=True)
class AdvisorChoice:
    """The advisor's output: the fields plus the scores that justify them."""

    fields: tuple[str, ...]
    coverage: float
    stability: float
    capacity_factor: float
    score: float
    payload_bytes: int


def _score(
    candidate: set[str],
    key_columns: set[str],
    schema: Schema,
    stats_by_name: dict[str, FieldStats],
    queries: list[QueryClass],
    free_bytes_per_page: float,
) -> AdvisorChoice:
    answerable = key_columns | candidate
    total_freq = sum(q.frequency for q in queries) or 1.0
    coverage = (
        sum(q.frequency for q in queries if q.projected <= answerable) / total_freq
    )
    # Stability: expected fraction of cache items NOT poisoned per unit of
    # workload — the product over cached fields of (1 - update rate).
    stability = 1.0
    for name in candidate:
        stability *= 1.0 - min(1.0, stats_by_name[name].update_rate)
    payload = sum(schema.column(n).size for n in candidate)
    slots = int(free_bytes_per_page // item_size_for_payload(payload)) if payload else 0
    # Capacity factor: slots relative to the narrowest useful payload
    # (1 B), passed through a square root because cache hit rate under a
    # skewed workload is strongly concave in slot count — halving the
    # slots costs far less than half the hits.
    max_slots = free_bytes_per_page // item_size_for_payload(1)
    capacity_factor = (slots / max_slots) ** 0.5 if max_slots else 0.0
    score = coverage * stability * capacity_factor
    return AdvisorChoice(
        fields=tuple(sorted(candidate)),
        coverage=coverage,
        stability=stability,
        capacity_factor=capacity_factor,
        score=score,
        payload_bytes=payload,
    )


def select_cached_fields(
    schema: Schema,
    key_columns: tuple[str, ...],
    field_stats: list[FieldStats],
    query_classes: list[QueryClass],
    free_bytes_per_page: float,
    max_fields: int | None = None,
) -> AdvisorChoice:
    """Greedily pick the cached-field set maximising coverage × stability ×
    capacity.

    Args:
        schema: the table schema (provides field widths).
        key_columns: the index key (always answerable, never cached).
        field_stats: update rates for candidate columns; columns without
            stats are assumed stable.
        query_classes: the workload's projection classes with frequencies.
        free_bytes_per_page: average free window per leaf (from
            :func:`repro.btree.stats.collect_stats`).
        max_fields: optional cap on the number of cached fields.

    Returns the best :class:`AdvisorChoice` found; its ``fields`` may be
    empty when no field set beats caching nothing (score 0).
    """
    if free_bytes_per_page <= 0:
        raise ReproError("free_bytes_per_page must be positive")
    key_set = set(key_columns)
    stats_by_name = {s.name: s for s in field_stats}
    candidates = [
        c.name for c in schema.columns if c.name not in key_set
    ]
    for name in candidates:
        stats_by_name.setdefault(name, FieldStats(name, 0.0))

    # A query class only becomes answerable when *all* its non-key fields
    # are cached, so single-field greedy steps can be blind (every
    # singleton scores zero coverage).  Candidate moves are therefore the
    # per-class field groups as well as the single fields.
    groups: list[frozenset[str]] = [frozenset({name}) for name in candidates]
    for query in query_classes:
        group = frozenset(query.projected - key_set)
        if group and group <= set(candidates) and group not in groups:
            groups.append(group)

    chosen: set[str] = set()
    best = AdvisorChoice(
        fields=(), coverage=0.0, stability=1.0, capacity_factor=0.0,
        score=0.0, payload_bytes=0,
    )
    limit = max_fields if max_fields is not None else len(candidates)
    while len(chosen) < limit:
        round_best: AdvisorChoice | None = None
        round_group: frozenset[str] | None = None
        for group in groups:
            addition = group - chosen
            if not addition or len(chosen | group) > limit:
                continue
            choice = _score(
                chosen | group, key_set, schema, stats_by_name,
                query_classes, free_bytes_per_page,
            )
            if round_best is None or choice.score > round_best.score:
                round_best = choice
                round_group = group
        if round_best is None or round_best.score <= best.score:
            break
        best = round_best
        assert round_group is not None
        chosen |= round_group
    return best
