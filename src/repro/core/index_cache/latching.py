"""Latch-contention simulation (§2.1.3).

The paper's concern: turning every index-leaf read into a (cache) write
could raise latch contention.  Its answer: cache writes take only short
latches, and a write simply *gives up* if the latch is not immediately
available — correctness never depends on a cache write landing.

We are single-threaded, so instead of real latches we inject contention
probabilistically: with probability ``contention_prob`` a try-latch fails
and the cache write is skipped.  Experiments use this to confirm the
graceful degradation property (hit rate falls smoothly, nothing breaks).
"""

from __future__ import annotations

from repro.errors import ReproError
from repro.util.rng import DeterministicRng


class LatchSimulator:
    """Injectable try-latch: fails with a configured probability."""

    def __init__(
        self, contention_prob: float = 0.0, rng: DeterministicRng | None = None
    ) -> None:
        if not 0.0 <= contention_prob <= 1.0:
            raise ReproError("contention_prob must be in [0, 1]")
        self._prob = contention_prob
        self._rng = rng if rng is not None else DeterministicRng(0)
        self.acquired = 0
        self.given_up = 0

    @property
    def contention_prob(self) -> float:
        return self._prob

    def try_acquire(self) -> bool:
        """Attempt the short-term latch for a cache write.

        Returns False (and counts a give-up) when simulated contention
        wins; the caller must skip its cache write, never block.
        """
        if self._prob and self._rng.random() < self._prob:
            self.given_up += 1
            return False
        self.acquired += 1
        return True

    @property
    def give_up_rate(self) -> float:
        total = self.acquired + self.given_up
        return self.given_up / total if total else 0.0
