"""Aggregate caching in index pages (§2.2 "Additional Directions").

"There are many other types of data that might be cached in index pages,
for example: statistics, pre-computed query results ..."

This module caches *per-leaf aggregates* (COUNT and SUM of one heap
field) in the same free-space windows the tuple cache uses.  A range
aggregate then walks the leaves: any leaf fully inside the range whose
aggregate item is present and fresh contributes in O(1) — no heap
fetches, no per-entry work.  Cold leaves are computed the slow way (one
heap fetch per entry) and their aggregate is cached for next time,
piggy-backing on query processing exactly like the tuple cache.

**Freshness.**  Aggregate items are only valid for the exact entry set
they summarised.  Rather than hooking every index mutation, the payload
embeds a fingerprint of the leaf — its slot count and record-region
bound — and a reader recomputes whenever the fingerprint mismatches.
Clobbering by index growth is already handled by the slot checksums.

Aggregate items share the window with tuple-cache items of a *different*
item size; to avoid aliasing, each cache instance claims the window
exclusively (one cache kind per index — a real system would partition the
window; we document the simplification).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.btree.node import LeafNode
from repro.core.index_cache.cache import IndexCache
from repro.errors import QueryError
from repro.schema.record import unpack_fields
from repro.schema.schema import Schema
from repro.storage.heap import HeapFile, Rid
from repro.util.rng import DeterministicRng

#: Aggregate payload: fingerprint (slot_count u16 | free_hi u16) then
#: count u32 and sum i64.
_AGG_PAYLOAD_SIZE = 2 + 2 + 4 + 8


@dataclass
class AggregateStats:
    """Where range-aggregate work was answered from."""

    leaves_visited: int = 0
    leaves_from_cache: int = 0
    leaves_computed: int = 0
    partial_leaves: int = 0
    heap_fetches: int = 0

    @property
    def cache_rate(self) -> float:
        full = self.leaves_from_cache + self.leaves_computed
        return self.leaves_from_cache / full if full else 0.0


class AggregateCachingReader:
    """Range COUNT/SUM over one numeric heap field, leaf-aggregate cached."""

    def __init__(
        self,
        tree,
        heap: HeapFile,
        schema: Schema,
        field: str,
        rng: DeterministicRng | None = None,
    ) -> None:
        if not schema.has_column(field):
            raise QueryError(f"unknown aggregate field {field!r}")
        kind = schema.column(field).ctype.kind.value
        if kind not in ("int", "uint", "timestamp", "date", "year", "bool"):
            raise QueryError(f"field {field!r} is not integer-valued")
        self._tree = tree
        self._heap = heap
        self._schema = schema
        self._field = field
        self._cache = IndexCache(
            _AGG_PAYLOAD_SIZE,
            entry_size=tree.key_size + tree.value_size,
            rng=rng if rng is not None else DeterministicRng(0),
        )
        self.stats = AggregateStats()

    @property
    def cache(self) -> IndexCache:
        return self._cache

    # -- payload encoding ------------------------------------------------------

    @staticmethod
    def _tid_for(page_id: int) -> bytes:
        """Tuple id namespace for aggregate items: tag byte + page id."""
        return b"\xa6GG" + page_id.to_bytes(4, "little") + b"\x00"

    @staticmethod
    def _encode(fingerprint: tuple[int, int], count: int, total: int) -> bytes:
        slot_count, free_hi = fingerprint
        return (
            slot_count.to_bytes(2, "little")
            + free_hi.to_bytes(2, "little")
            + count.to_bytes(4, "little")
            + total.to_bytes(8, "little", signed=True)
        )

    @staticmethod
    def _decode(payload: bytes) -> tuple[tuple[int, int], int, int]:
        return (
            (
                int.from_bytes(payload[0:2], "little"),
                int.from_bytes(payload[2:4], "little"),
            ),
            int.from_bytes(payload[4:8], "little"),
            int.from_bytes(payload[8:16], "little", signed=True),
        )

    # -- the aggregate -----------------------------------------------------------

    def range_aggregate(
        self, lo: bytes | None = None, hi: bytes | None = None
    ) -> tuple[int, int]:
        """``(count, sum)`` of the field over keys in ``[lo, hi)``.

        Walks the leaf chain once.  Interior leaves use (or fill) their
        cached aggregate; boundary leaves are computed per entry for just
        the in-range prefix/suffix.
        """
        pool = self._tree.pool
        page_id = (
            self._tree.find_leaf(lo) if lo is not None
            else self._leftmost_leaf()
        )
        count = 0
        total = 0
        while page_id is not None:
            with pool.page(page_id) as page:
                leaf = LeafNode(page, self._tree.key_size, self._tree.value_size)
                n = leaf.count
                self.stats.leaves_visited += 1
                start = 0
                if lo is not None:
                    start, _ = leaf.find(lo)
                end = n
                done = False
                if hi is not None and n:
                    end, _ = leaf.find(hi)
                    if end < n:
                        done = True
                if start == 0 and end == n and n > 0:
                    c, s = self._whole_leaf(page, leaf)
                else:
                    self.stats.partial_leaves += 1
                    c, s = self._compute(leaf, start, end)
                count += c
                total += s
                page_id = None if done else page.next_page
            lo = None  # only the first leaf is lower-bounded
        return count, total

    # -- internals ---------------------------------------------------------------

    def _whole_leaf(self, page, leaf: LeafNode) -> tuple[int, int]:
        fingerprint = (page.slot_count, page.free_window()[1])
        tid = self._tid_for(page.page_id)
        payload = self._cache.probe(page, tid)
        if payload is not None:
            cached_fp, count, total = self._decode(payload)
            if cached_fp == fingerprint:
                self.stats.leaves_from_cache += 1
                return count, total
        count, total = self._compute(leaf, 0, leaf.count)
        self.stats.leaves_computed += 1
        self._cache.insert(
            page, tid, self._encode(fingerprint, count, total)
        )
        return count, total

    def _compute(self, leaf: LeafNode, start: int, end: int) -> tuple[int, int]:
        count = 0
        total = 0
        for pos in range(start, end):
            rid = Rid.from_bytes(leaf.value_at(pos))
            record = self._heap.fetch(rid)
            self.stats.heap_fetches += 1
            value = unpack_fields(self._schema, record, [self._field])[self._field]
            count += 1
            total += int(value)  # type: ignore[arg-type]
        return count, total

    def _leftmost_leaf(self) -> int:
        leaf_ids = self._tree.leaf_page_ids
        if not leaf_ids:
            raise QueryError("tree has no leaves")
        return leaf_ids[0]
