"""Cache consistency: CSNs and the predicate log (§2.1.2).

Two mechanisms, exactly as the paper sketches:

1. **Full invalidation via sequence numbers.**  Every page header carries a
   cache sequence number ``CSN_p`` and the index keeps a global
   ``CSN_idx``, preserving the invariants (i) ``CSN_p <= CSN_idx`` and
   (ii) a page's cache is valid only when ``CSN_p == CSN_idx``.
   Incrementing ``CSN_idx`` therefore invalidates every page's cache in
   O(1) — pages lazily notice the mismatch on their next read, zero their
   window, and re-stamp.

2. **Predicate log for targeted invalidation.**  Updates append a
   predicate that uniquely identifies the modified tuple (here: its exact
   index key) to an in-memory log.  When a page is read during normal
   query execution, any logged predicate matching a key in the page zeroes
   that page's cache.  If the log exceeds a threshold, we increment
   ``CSN_idx`` and clear it — trading precision for bounded memory.

Implementation note: the 8-byte on-page CSN field is split into a 32-bit
*epoch* (the paper's CSN) and a 32-bit *log position*: the position lets a
page remember how much of the predicate log it has already checked, so
re-reads only scan new predicates.  Positions reset when the epoch bumps.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.index_cache.cache import IndexCache
from repro.errors import ReproError
from repro.obs.registry import MetricsRegistry, resolve_registry
from repro.storage.page import SlottedPage

_EPOCH_SHIFT = 32
_POS_MASK = 0xFFFFFFFF


@dataclass(frozen=True)
class UpdatePredicate:
    """A predicate uniquely identifying one updated tuple by its index key."""

    key: bytes

    def matches_range(self, first_key: bytes, last_key: bytes) -> bool:
        """True if the key could be in a page covering [first, last]."""
        return first_key <= self.key <= last_key


class CacheInvalidation:
    """Global CSN + predicate log for one cached index."""

    def __init__(
        self,
        log_threshold: int = 1024,
        registry: MetricsRegistry | None = None,
    ) -> None:
        if log_threshold <= 0:
            raise ReproError("log_threshold must be positive")
        self._epoch = 1  # start above the zero freshly-formatted pages carry
        self._log: list[UpdatePredicate] = []
        self._threshold = log_threshold
        self.full_invalidations = 0
        self.predicates_logged = 0
        self.pages_zeroed = 0
        reg = resolve_registry(registry)
        self._m_csn = reg.counter("index_cache.invalidation.csn")
        self._m_predicates = reg.counter("index_cache.invalidation.predicates")
        self._m_zeroed = reg.counter("index_cache.invalidation.pages_zeroed")

    # -- properties ----------------------------------------------------------

    @property
    def csn_index(self) -> int:
        """The global CSN (the paper's ``CSN_idx``)."""
        return self._epoch

    @property
    def log_size(self) -> int:
        return len(self._log)

    @property
    def log_threshold(self) -> int:
        return self._threshold

    @classmethod
    def after_restart(
        cls, max_persisted_csn: int, log_threshold: int = 1024
    ) -> "CacheInvalidation":
        """Recover the invalidation state after a crash (§2.1.2).

        The predicate log was in memory and is gone; any cache contents
        that reached disk (as a side effect of dirty-page write-back) may
        be stale.  Correctness needs ``CSN_idx`` to exceed every persisted
        page stamp, so every surviving cache reads as invalid on first
        touch.  ``max_persisted_csn`` is the highest ``cache_csn`` found
        while scanning index pages at startup (the epoch half of the
        stamp is what matters).
        """
        instance = cls(log_threshold=log_threshold)
        persisted_epoch = max_persisted_csn >> _EPOCH_SHIFT
        instance._epoch = (persisted_epoch + 1) & _POS_MASK or 1
        return instance

    # -- write-side ------------------------------------------------------------

    def note_update(self, key: bytes) -> None:
        """Record that the tuple with index key ``key`` was modified."""
        self._log.append(UpdatePredicate(bytes(key)))
        self.predicates_logged += 1
        self._m_predicates.inc()
        if len(self._log) > self._threshold:
            self.invalidate_all()

    def invalidate_all(self) -> None:
        """Increment ``CSN_idx``: every page cache becomes invalid at once."""
        self._epoch = (self._epoch + 1) & _POS_MASK or 1
        self._log.clear()
        self.full_invalidations += 1
        self._m_csn.inc()

    # -- read-side ---------------------------------------------------------------

    def validate_page(
        self,
        page: SlottedPage,
        cache: IndexCache,
        first_key: bytes | None,
        last_key: bytes | None,
    ) -> bool:
        """Enforce the CSN invariants on a page just read (§2.1.2).

        Called on the normal query path before the cache is probed.  Zeroes
        the page's cache window if the page is stale (epoch mismatch) or if
        a new logged predicate matches the page's key range, then re-stamps
        the page as current.

        Returns True if the window was zeroed.
        """
        stamp = page.cache_csn
        epoch_p = stamp >> _EPOCH_SHIFT
        pos_p = stamp & _POS_MASK
        current_pos = len(self._log)
        if epoch_p != self._epoch:
            # Invariant: CSN_p != CSN_idx  =>  cache invalid.
            cache.zero_window(page)
            self._stamp(page, current_pos)
            self.pages_zeroed += 1
            self._m_zeroed.inc()
            return True
        if pos_p < current_pos and first_key is not None and last_key is not None:
            for predicate in self._log[pos_p:current_pos]:
                if predicate.matches_range(first_key, last_key):
                    cache.zero_window(page)
                    self._stamp(page, current_pos)
                    self.pages_zeroed += 1
                    self._m_zeroed.inc()
                    return True
        self._stamp(page, current_pos)
        return False

    def validate_heap_page(self, page: SlottedPage, cache: IndexCache) -> bool:
        """The :meth:`validate_page` variant for caches over *heap* pages.

        A heap page has no sorted key region, so there is no page key
        range to match predicates against.  What the predicates identify
        is the cached items' *tuple ids* (the §2.2 FkJoinCache uses the
        parent's encoded key as the tuple id), so the match range is
        derived from the tids actually cached in the page's window.
        Epoch semantics are identical to :meth:`validate_page`; the tid
        scan only happens when the page is behind the predicate log.

        Returns True if the window was zeroed.
        """
        stamp = page.cache_csn
        epoch_p = stamp >> _EPOCH_SHIFT
        pos_p = stamp & _POS_MASK
        current_pos = len(self._log)
        if epoch_p != self._epoch:
            cache.zero_window(page)
            self._stamp(page, current_pos)
            self.pages_zeroed += 1
            self._m_zeroed.inc()
            return True
        if pos_p < current_pos:
            tids = [tid for _, tid, _ in cache.entries(page)]
            if tids:
                first, last = min(tids), max(tids)
                for predicate in self._log[pos_p:current_pos]:
                    if predicate.matches_range(first, last):
                        cache.zero_window(page)
                        self._stamp(page, current_pos)
                        self.pages_zeroed += 1
                        self._m_zeroed.inc()
                        return True
        self._stamp(page, current_pos)
        return False

    def _stamp(self, page: SlottedPage, position: int) -> None:
        # Stamping is a cache modification: it must not dirty the page, so
        # it only touches frame bytes (the caller unpins with dirty=False).
        page.cache_csn = (self._epoch << _EPOCH_SHIFT) | position
