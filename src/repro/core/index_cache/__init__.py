"""Index caching (§2.1): recycling B+Tree free space as a tuple cache."""

from repro.core.index_cache.layout import CacheGeometry, ITEM_HEADER_SIZE, ITEM_CHECKSUM_SIZE
from repro.core.index_cache.policy import (
    CachePolicy,
    LruPolicy,
    RandomPolicy,
    SwapPolicy,
)
from repro.core.index_cache.cache import IndexCache
from repro.core.index_cache.invalidation import CacheInvalidation, UpdatePredicate
from repro.core.index_cache.latching import LatchSimulator
from repro.core.index_cache.cached_index import CachedBTree, LookupResult
from repro.core.index_cache.covering import CoveringIndex
from repro.core.index_cache.agg_cache import AggregateCachingReader
from repro.core.index_cache.advisor import (
    AdvisorChoice,
    FieldStats,
    QueryClass,
    select_cached_fields,
)
from repro.core.index_cache.simulator import SwapCacheSimulator

__all__ = [
    "CacheGeometry",
    "ITEM_HEADER_SIZE",
    "ITEM_CHECKSUM_SIZE",
    "CachePolicy",
    "SwapPolicy",
    "RandomPolicy",
    "LruPolicy",
    "IndexCache",
    "CacheInvalidation",
    "UpdatePredicate",
    "LatchSimulator",
    "CachedBTree",
    "CoveringIndex",
    "AggregateCachingReader",
    "LookupResult",
    "FieldStats",
    "QueryClass",
    "AdvisorChoice",
    "select_cached_fields",
    "SwapCacheSimulator",
]
