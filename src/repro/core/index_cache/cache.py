"""The index cache proper: byte-level slot I/O plus policy orchestration.

One :class:`IndexCache` instance serves a whole index; it is stateless with
respect to individual pages (all cache state lives in the page bytes), so
it can be pointed at any leaf page the B+Tree hands it.  Every operation
re-derives the slot geometry from the page's *current* free window —
because the window may have shrunk since the item was written, and reads
must never trust stale layout.

Key invariants (and where the paper states them):

* Cache reads/writes never dirty the page — "cache modifications do not
  dirty the page" (§2.1.1).  The cache layer itself never calls unpin; the
  caller holds the pin and decides dirtiness (always False for cache-only
  touches).
* A slot is empty iff its checksum fails (zeroed slots fail trivially);
  index growth can therefore clobber any slot at any time.
* The cache never grows the window or blocks an index insert.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.index_cache.layout import (
    CacheGeometry,
    ITEM_CHECKSUM_SIZE,
    ITEM_HEADER_SIZE,
    checksum,
    item_size_for_payload,
)
from repro.core.index_cache.policy import CachePolicy, SwapPolicy
from repro.errors import ReproError
from repro.obs.registry import MetricsRegistry, resolve_registry
from repro.storage.page import SlottedPage
from repro.util.rng import DeterministicRng


@dataclass
class CacheStats:
    """Aggregate counters across every page this cache instance touched."""

    probes: int = 0
    hits: int = 0
    misses: int = 0
    inserts: int = 0
    evictions: int = 0
    promotions: int = 0
    skipped_no_room: int = 0

    @property
    def hit_rate(self) -> float:
        return self.hits / self.probes if self.probes else 0.0


class IndexCache:
    """Reads and writes cache items inside leaf-page free windows."""

    def __init__(
        self,
        payload_size: int,
        entry_size: int,
        policy: CachePolicy | None = None,
        rng: DeterministicRng | None = None,
        registry: MetricsRegistry | None = None,
    ) -> None:
        """
        Args:
            payload_size: width of the cached field payload, bytes.
            entry_size: the leaf's key+value record width (the paper's K),
                needed for the stable-point formula.
            policy: replacement policy; defaults to the paper's SwapPolicy.
            rng: random source for the default policy.
            registry: metrics sink for ``index_cache.swap.*`` instruments.
        """
        self._payload_size = payload_size
        self._entry_size = entry_size
        self._item_size = item_size_for_payload(payload_size)
        if policy is None:
            policy = SwapPolicy(rng if rng is not None else DeterministicRng(0))
        self._policy = policy
        self.stats = CacheStats()
        reg = resolve_registry(registry)
        self._m_probe = reg.counter("index_cache.swap.probes")
        self._m_hit = reg.counter("index_cache.swap.hit")
        self._m_miss = reg.counter("index_cache.swap.miss")
        self._m_promotion = reg.counter("index_cache.swap.promotions")
        self._m_insert = reg.counter("index_cache.swap.inserts")
        self._m_eviction = reg.counter("index_cache.swap.evictions")
        self._m_no_room = reg.counter("index_cache.swap.skipped_no_room")

    # -- geometry ------------------------------------------------------------

    @property
    def payload_size(self) -> int:
        return self._payload_size

    @property
    def item_size(self) -> int:
        return self._item_size

    @property
    def policy(self) -> CachePolicy:
        return self._policy

    def geometry(self, page: SlottedPage) -> CacheGeometry:
        """Slot layout for the page's current free window."""
        return CacheGeometry.of(page, self._payload_size, self._entry_size)

    def capacity(self, page: SlottedPage) -> int:
        """How many items this page can hold right now."""
        return self.geometry(page).num_slots

    # -- slot I/O --------------------------------------------------------------

    def read_slot(
        self, page: SlottedPage, geo: CacheGeometry, slot: int
    ) -> tuple[bytes, bytes] | None:
        """``(tuple_id, payload)`` if the slot holds a valid item, else None."""
        off = geo.slot_offset(slot)
        buf = page.buffer
        stored = int.from_bytes(
            buf[off + self._item_size - ITEM_CHECKSUM_SIZE : off + self._item_size],
            "little",
        )
        if stored == 0:
            return None
        tid = bytes(buf[off : off + ITEM_HEADER_SIZE])
        payload = bytes(
            buf[off + ITEM_HEADER_SIZE : off + ITEM_HEADER_SIZE + self._payload_size]
        )
        if checksum(tid, payload) != stored:
            return None  # clobbered by index growth; reads as empty
        return tid, payload

    def write_slot(
        self,
        page: SlottedPage,
        geo: CacheGeometry,
        slot: int,
        tuple_id: bytes,
        payload: bytes,
    ) -> None:
        """Write one item; does not dirty the page (caller's contract)."""
        if len(tuple_id) != ITEM_HEADER_SIZE:
            raise ReproError(
                f"tuple_id must be {ITEM_HEADER_SIZE} bytes, got {len(tuple_id)}"
            )
        if len(payload) != self._payload_size:
            raise ReproError(
                f"payload must be {self._payload_size} bytes, got {len(payload)}"
            )
        off = geo.slot_offset(slot)
        buf = page.buffer
        buf[off : off + ITEM_HEADER_SIZE] = tuple_id
        buf[off + ITEM_HEADER_SIZE : off + ITEM_HEADER_SIZE + self._payload_size] = payload
        crc = checksum(tuple_id, payload)
        buf[
            off + self._item_size - ITEM_CHECKSUM_SIZE : off + self._item_size
        ] = crc.to_bytes(ITEM_CHECKSUM_SIZE, "little")

    def clear_slot(self, page: SlottedPage, geo: CacheGeometry, slot: int) -> None:
        """Zero one slot."""
        off = geo.slot_offset(slot)
        page.buffer[off : off + self._item_size] = bytes(self._item_size)

    def zero_window(self, page: SlottedPage) -> None:
        """Zero the entire free window (full-page cache invalidation)."""
        lo, hi = page.free_window()
        page.buffer[lo:hi] = bytes(hi - lo)

    # -- scanning ----------------------------------------------------------------

    def occupancy(
        self, page: SlottedPage, geo: CacheGeometry | None = None
    ) -> tuple[list[int], list[int]]:
        """``(free_slots, occupied_slots)`` for the current geometry."""
        if geo is None:
            geo = self.geometry(page)
        free: list[int] = []
        occupied: list[int] = []
        for slot in range(geo.num_slots):
            if self.read_slot(page, geo, slot) is None:
                free.append(slot)
            else:
                occupied.append(slot)
        return free, occupied

    def entries(self, page: SlottedPage) -> list[tuple[int, bytes, bytes]]:
        """Every valid item as ``(slot, tuple_id, payload)``."""
        geo = self.geometry(page)
        out = []
        for slot in range(geo.num_slots):
            item = self.read_slot(page, geo, slot)
            if item is not None:
                out.append((slot, item[0], item[1]))
        return out

    def find(
        self, page: SlottedPage, geo: CacheGeometry, tuple_id: bytes
    ) -> tuple[int, bytes] | None:
        """Scan the slots for ``tuple_id``; returns ``(slot, payload)``.

        Uses ``bytes.find`` to locate candidate positions quickly, then
        validates alignment and checksum — semantically identical to the
        linear scan the paper describes, just not O(n) in Python-level
        work.
        """
        if geo.num_slots == 0:
            return None
        buf = page.buffer
        base = geo.first_slot_index * self._item_size
        end = base + geo.num_slots * self._item_size
        pos = buf.find(tuple_id, base, end)
        while pos != -1:
            rel = pos - base
            if rel % self._item_size == 0:
                slot = rel // self._item_size
                item = self.read_slot(page, geo, slot)
                if item is not None and item[0] == tuple_id:
                    return slot, item[1]
            pos = buf.find(tuple_id, pos + 1, end)
        return None

    # -- the paper's operations -------------------------------------------------

    def probe(self, page: SlottedPage, tuple_id: bytes) -> bytes | None:
        """Look up ``tuple_id`` in the page's cache (§2.1.1 read path).

        On a hit the policy may migrate the item one bucket closer to the
        stable point (the "swap" in Swap); the displaced occupant, if any,
        takes the vacated slot.
        """
        geo = self.geometry(page)
        self.stats.probes += 1
        self._m_probe.inc()
        found = self.find(page, geo, tuple_id)
        if found is None:
            self.stats.misses += 1
            self._m_miss.inc()
            return None
        slot, payload = found
        self.stats.hits += 1
        self._m_hit.inc()
        target = self._policy.on_hit(geo, slot, page.page_id)
        if target is not None and target != slot:
            self._swap_slots(page, geo, slot, target)
            self.stats.promotions += 1
            self._m_promotion.inc()
        return payload

    def insert(
        self, page: SlottedPage, tuple_id: bytes, payload: bytes
    ) -> bool:
        """Cache an item after a miss (§2.1.1 fill path).

        Returns False when the window has no slot at all (page too full) or
        the policy declines.  Never splits pages, never dirties.
        """
        geo = self.geometry(page)
        if geo.num_slots == 0:
            self.stats.skipped_no_room += 1
            self._m_no_room.inc()
            return False
        free, occupied = self.occupancy(page, geo)
        slot = self._policy.choose_slot(geo, free, occupied, page.page_id)
        if slot is None:
            self.stats.skipped_no_room += 1
            self._m_no_room.inc()
            return False
        if slot in occupied:
            self.stats.evictions += 1
            self._m_eviction.inc()
            self._policy.on_evict(slot, page.page_id)
        self.write_slot(page, geo, slot, tuple_id, payload)
        self._policy.on_insert(slot, page.page_id)
        self.stats.inserts += 1
        self._m_insert.inc()
        return True

    def invalidate_tuple(self, page: SlottedPage, tuple_id: bytes) -> bool:
        """Drop one tuple's item from this page's cache if present."""
        geo = self.geometry(page)
        found = self.find(page, geo, tuple_id)
        if found is None:
            return False
        self.clear_slot(page, geo, found[0])
        return True

    # -- internals ------------------------------------------------------------

    def _swap_slots(
        self, page: SlottedPage, geo: CacheGeometry, a: int, b: int
    ) -> None:
        item_a = self.read_slot(page, geo, a)
        item_b = self.read_slot(page, geo, b)
        if item_a is None:  # pragma: no cover - caller just validated a
            return
        if item_b is None:
            self.write_slot(page, geo, b, *item_a)
            self.clear_slot(page, geo, a)
        else:
            self.write_slot(page, geo, b, *item_a)
            self.write_slot(page, geo, a, *item_b)
