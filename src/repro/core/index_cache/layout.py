"""Cache-slot geometry inside a leaf page's free window (§2.1.1).

The free window ``[free_lo, free_hi)`` between the directory and the key
region is carved into *slots* whose start offsets are aligned to the item
size — the paper's example: "if the item size is 25 bytes, then the start
of each slot is a multiple of 25".  Alignment makes slot boundaries a pure
function of the item size, so a reader needs no per-page slot table: it
derives the same slots the writer used even after the window has shrunk.

Each slot holds one self-describing item::

    tuple_id (8 B) | payload (fixed) | checksum (2 B)

A zeroed slot is empty.  A slot half-clobbered by index growth fails its
checksum and *reads as* empty — this is what lets key inserts "freely
overwrite the periphery of the cache space" without any coordination.

**Stable point.**  The paper derives the location overwritten last as
``S = K/(K+D) × P`` for its Figure-1 layout (keys grow down from the
header, directory grows up from the footer).  Our pages mirror that layout
(directory low, keys high), so the same meeting point measured in our
coordinates is ``S = H + U·D/(K+D)`` where ``H`` is the header size and
``U`` the usable bytes — the point where the two growing regions collide.
Slots are ranked by distance from S into buckets; hits migrate items
bucket-by-bucket toward S so the hottest items die last.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ReproError
from repro.storage.constants import PAGE_FOOTER_SIZE, PAGE_HEADER_SIZE, SLOT_ENTRY_SIZE
from repro.storage.page import SlottedPage

#: Bytes of tuple id at the start of every cache item.
ITEM_HEADER_SIZE = 8

#: Trailing checksum bytes.
ITEM_CHECKSUM_SIZE = 2


def item_size_for_payload(payload_size: int) -> int:
    """Full slot width for a given cached-payload width."""
    if payload_size <= 0:
        raise ReproError("cache payload size must be positive")
    return ITEM_HEADER_SIZE + payload_size + ITEM_CHECKSUM_SIZE


def checksum(tuple_id: bytes, payload: bytes) -> int:
    """16-bit multiplicative checksum over an item, never zero.

    Zero is reserved to mean "empty slot", so a computed zero is remapped.
    The checksum's job is not cryptographic integrity — it is detecting
    slots clobbered by index key/directory growth.  The rolling ``h*31+b``
    form guarantees any single-byte change alters the value (31 is odd, so
    ``delta · 31^k mod 2^16`` is never zero for a byte-sized delta), and
    larger clobbers collide with probability ~2^-16.
    """
    h = 1
    for byte in tuple_id:
        h = (h * 31 + byte) & 0xFFFF
    for byte in payload:
        h = (h * 31 + byte) & 0xFFFF
    return h if h else 0x55AA


@dataclass(frozen=True)
class CacheGeometry:
    """The slot layout of one page's free window at one item size.

    Geometry is recomputed on every access because the window moves as the
    page fills: slots that no longer fit simply vanish from the layout (and
    their bytes are fair game for the index).
    """

    page_size: int
    free_lo: int
    free_hi: int
    item_size: int
    entry_size: int  # leaf key+value record width (the paper's K)

    @classmethod
    def of(cls, page: SlottedPage, payload_size: int, entry_size: int) -> "CacheGeometry":
        lo, hi = page.free_window()
        return cls(
            page_size=page.size,
            free_lo=lo,
            free_hi=hi,
            item_size=item_size_for_payload(payload_size),
            entry_size=entry_size,
        )

    # -- slots ------------------------------------------------------------

    @property
    def first_slot_index(self) -> int:
        """Index of the first aligned slot fully inside the window."""
        return -(-self.free_lo // self.item_size)  # ceil division

    @property
    def last_slot_end(self) -> int:
        return self.free_hi

    @property
    def num_slots(self) -> int:
        """How many aligned slots currently fit in the free window."""
        first_start = self.first_slot_index * self.item_size
        if first_start >= self.free_hi:
            return 0
        return (self.free_hi - first_start) // self.item_size

    def slot_offset(self, slot: int) -> int:
        """Absolute byte offset of logical slot ``slot`` (0-based)."""
        if not 0 <= slot < self.num_slots:
            raise ReproError(f"slot {slot} out of range 0..{self.num_slots - 1}")
        return (self.first_slot_index + slot) * self.item_size

    def slot_offsets(self) -> list[int]:
        """Absolute start offsets of every slot, in address order."""
        base = self.first_slot_index
        return [
            (base + i) * self.item_size for i in range(self.num_slots)
        ]

    # -- stable point -------------------------------------------------------

    @property
    def stable_point(self) -> float:
        """The byte offset overwritten last as the page fills.

        Mirror image of the paper's ``S = K/(K+D) × P``: with the directory
        (pointer size D) growing up from the header and key records
        (size K) growing down from the footer, the two regions meet at
        ``header + usable × D/(K+D)``.
        """
        usable = self.page_size - PAGE_HEADER_SIZE - PAGE_FOOTER_SIZE
        d = SLOT_ENTRY_SIZE
        k = self.entry_size
        return PAGE_HEADER_SIZE + usable * d / (k + d)

    def slots_by_stability(self) -> list[int]:
        """Slot indices ordered most-stable (closest to S) first."""
        s = self.stable_point
        half = self.item_size / 2
        offsets = self.slot_offsets()
        order = sorted(
            range(len(offsets)), key=lambda i: abs(offsets[i] + half - s)
        )
        return order

    def buckets(self, bucket_slots: int) -> list[list[int]]:
        """Group slots into buckets of ``bucket_slots``, stable bucket first.

        Bucket 0 is the interior (nearest S); the last bucket is the
        periphery that index growth will overwrite first and evictions
        target.
        """
        if bucket_slots <= 0:
            raise ReproError("bucket_slots must be positive")
        ranked = self.slots_by_stability()
        return [
            ranked[i : i + bucket_slots]
            for i in range(0, len(ranked), bucket_slots)
        ]
