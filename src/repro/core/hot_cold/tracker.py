"""Access-frequency tracking: who is hot?

§3.1 closes with: "Other applications may have different policies, or
require automated tools to keep track of access patterns."  This is that
tool: a decayed access counter per tuple key.  Wikipedia's own policy
(hot = the revision pointed to by the page table) is expressible without
it, but the tracker lets the clustering operator work on any workload.

Counts decay exponentially at epoch boundaries so the tracker follows
shifting workloads instead of accumulating history forever.  Decay is
applied lazily per key (O(1) per access, no sweep).
"""

from __future__ import annotations

import math

from repro.errors import WorkloadError


class AccessTracker:
    """Decayed per-key access counts with hot-set extraction."""

    def __init__(self, decay: float = 0.5) -> None:
        """
        Args:
            decay: multiplier applied to every count per epoch; 1.0 keeps
                raw lifetime counts, smaller values forget faster.
        """
        if not 0.0 < decay <= 1.0:
            raise WorkloadError("decay must be in (0, 1]")
        self._decay = decay
        self._epoch = 0
        #: key -> (count, epoch the count was last normalised to)
        self._counts: dict[object, tuple[float, int]] = {}
        self._total_accesses = 0

    @property
    def epoch(self) -> int:
        return self._epoch

    @property
    def total_accesses(self) -> int:
        return self._total_accesses

    def record(self, key: object, weight: float = 1.0) -> None:
        """Count one access to ``key``."""
        count, last_epoch = self._counts.get(key, (0.0, self._epoch))
        if last_epoch != self._epoch:
            count *= self._decay ** (self._epoch - last_epoch)
        self._counts[key] = (count + weight, self._epoch)
        self._total_accesses += 1

    def advance_epoch(self) -> None:
        """Start a new epoch: all existing counts decay once (lazily)."""
        self._epoch += 1

    def count_of(self, key: object) -> float:
        """Current decayed count for ``key``."""
        count, last_epoch = self._counts.get(key, (0.0, self._epoch))
        if last_epoch != self._epoch:
            count *= self._decay ** (self._epoch - last_epoch)
        return count

    def hottest(self, k: int) -> list[object]:
        """The ``k`` keys with the highest decayed counts."""
        ranked = sorted(
            self._counts, key=self.count_of, reverse=True
        )
        return ranked[:k]

    def hot_set(self, fraction: float) -> list[object]:
        """The hottest ``fraction`` of *tracked* keys.

        The set size is ``ceil(len * fraction)``: any nonzero fraction
        over a nonempty tracker yields at least one key.  (Banker's
        ``round()`` was used here once and silently returned an *empty*
        hot set for e.g. one key at fraction 0.5 — ``round(0.5) == 0`` —
        so a clustering pass moved nothing; ``ceil`` makes small-but-
        nonzero requests err toward including the boundary key.)
        """
        if not 0.0 <= fraction <= 1.0:
            raise WorkloadError("fraction must be in [0, 1]")
        k = math.ceil(len(self._counts) * fraction)
        return self.hottest(k)

    def keys_above(self, threshold: float) -> list[object]:
        """Every key whose decayed count exceeds ``threshold``."""
        return [k for k in self._counts if self.count_of(k) > threshold]

    def coverage(self, keys: list[object]) -> float:
        """Fraction of all recorded accesses that went to ``keys``.

        The paper's statistic: "99.9% of page requests access the 5% of
        tuples that represent the most recent revisions".
        """
        if self._total_accesses == 0:
            return 0.0
        chosen = sum(self.count_of(k) for k in keys)
        total = sum(self.count_of(k) for k in self._counts)
        return chosen / total if total else 0.0

    def __len__(self) -> int:
        return len(self._counts)
