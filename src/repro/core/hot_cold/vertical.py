"""Vertical partitioning (§3.2): split columns so queries read fewer bytes.

The paper sketches two motivations: (a) separating cached from uncached
fields complements index caching — when a query needs a field not in the
cache, it should fault in only that field's bytes, not the whole tuple;
(b) splitting by update rate concentrates writes onto fewer pages.  And it
names the tension: reconstructing a row that spans fragments costs a merge.

``recommend_vertical_split`` is the analytic side: given projection
frequencies it proposes a two-fragment split and predicts bytes-read per
query.  :class:`VerticallyPartitionedTable` is the mechanism: one heap +
index per fragment, merged on demand.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.btree.keycodec import KeyCodec, codec_for_columns
from repro.btree.tree import BPlusTree
from repro.errors import QueryError, SchemaError
from repro.schema.record import pack_record_map, unpack_fields
from repro.schema.schema import Schema
from repro.storage.heap import HeapFile, Rid, RID_SIZE


@dataclass(frozen=True)
class VerticalPartitioning:
    """A proposed split with its predicted economics."""

    hot_columns: tuple[str, ...]
    cold_columns: tuple[str, ...]
    bytes_per_query_unsplit: float
    bytes_per_query_split: float
    merge_fraction: float  # fraction of queries touching both fragments

    @property
    def bytes_saved_fraction(self) -> float:
        if self.bytes_per_query_unsplit == 0:
            return 0.0
        return 1.0 - self.bytes_per_query_split / self.bytes_per_query_unsplit


def recommend_vertical_split(
    schema: Schema,
    key_columns: tuple[str, ...],
    query_classes: list[tuple[frozenset[str], float]],
    hot_threshold: float = 0.5,
) -> VerticalPartitioning:
    """Propose a hot/cold column split from projection frequencies.

    A column is *hot* when it appears in at least ``hot_threshold`` of the
    (frequency-weighted) queries.  Key columns are replicated into every
    fragment (they are the join glue), so they are excluded from the
    analysis.

    ``query_classes`` is a list of ``(projected_columns, frequency)``.
    """
    total_freq = sum(freq for _, freq in query_classes)
    if total_freq <= 0:
        raise QueryError("query classes must have positive total frequency")
    key_set = set(key_columns)
    appearance: dict[str, float] = {
        c.name: 0.0 for c in schema.columns if c.name not in key_set
    }
    for projected, freq in query_classes:
        for name in projected:
            if name in appearance:
                appearance[name] += freq
    hot = tuple(
        name for name, f in appearance.items() if f / total_freq >= hot_threshold
    )
    cold = tuple(name for name in appearance if name not in set(hot))

    # Predicted bytes read per lookup: unsplit reads the whole record; the
    # split reads the fragments the projection touches (key columns ride
    # along in each fragment record).
    key_bytes = sum(schema.column(c).size for c in key_columns)
    full_record = schema.record_size
    hot_record = key_bytes + sum(schema.column(c).size for c in hot)
    cold_record = key_bytes + sum(schema.column(c).size for c in cold)
    split_bytes = 0.0
    merge_freq = 0.0
    for projected, freq in query_classes:
        needs_hot = bool(set(projected) & set(hot))
        needs_cold = bool(set(projected) & set(cold))
        if not needs_hot and not needs_cold:
            needs_hot = True  # key-only projection: read the hot fragment
        cost = (hot_record if needs_hot else 0) + (cold_record if needs_cold else 0)
        split_bytes += freq * cost
        if needs_hot and needs_cold:
            merge_freq += freq
    return VerticalPartitioning(
        hot_columns=hot,
        cold_columns=cold,
        bytes_per_query_unsplit=full_record,
        bytes_per_query_split=split_bytes / total_freq,
        merge_fraction=merge_freq / total_freq,
    )


def recommend_update_split(
    schema: Schema,
    key_columns: tuple[str, ...],
    update_rates: dict[str, float],
    hot_threshold: float = 0.1,
) -> VerticalPartitioning:
    """Propose a split by *update* rate — §3.2's second motivation:
    "splitting the table based on the field update rate can increase the
    write density per page".

    Columns updated at least ``hot_threshold`` (fraction of operations)
    form the write-hot fragment; dirtying a page then invalidates only the
    narrow write-hot records, so each flushed page carries more changed
    bytes.  Returns the same :class:`VerticalPartitioning` structure, with
    the byte economics computed for a read-one-fragment workload (reads of
    the write-hot fragment, which is what an update touches).
    """
    key_set = set(key_columns)
    candidates = [c.name for c in schema.columns if c.name not in key_set]
    hot = tuple(
        name for name in candidates
        if update_rates.get(name, 0.0) >= hot_threshold
    )
    cold = tuple(name for name in candidates if name not in set(hot))
    key_bytes = sum(schema.column(c).size for c in key_columns)
    hot_record = key_bytes + sum(schema.column(c).size for c in hot)
    return VerticalPartitioning(
        hot_columns=hot,
        cold_columns=cold,
        bytes_per_query_unsplit=schema.record_size,
        bytes_per_query_split=float(hot_record),
        merge_fraction=0.0,  # updates touch only the write-hot fragment
    )


class VerticallyPartitionedTable:
    """A table stored as column-group fragments, merged on demand.

    Every fragment record stores the key columns plus the fragment's own
    columns; each fragment has its own RID index keyed on the key columns.
    A lookup touches only the fragments its projection needs and counts
    merges when it needs more than one.
    """

    def __init__(
        self,
        schema: Schema,
        key_columns: tuple[str, ...],
        fragments: tuple[tuple[str, ...], ...],
        heaps: list[HeapFile],
        trees: list[BPlusTree],
    ) -> None:
        if len(fragments) != len(heaps) or len(fragments) != len(trees):
            raise QueryError("one heap and one tree per fragment required")
        covered: set[str] = set(key_columns)
        for fragment in fragments:
            dup = covered & set(fragment)
            if dup:
                raise SchemaError(f"columns {sorted(dup)} in multiple fragments")
            covered |= set(fragment)
        missing = set(schema.names) - covered
        if missing:
            raise SchemaError(f"columns {sorted(missing)} not in any fragment")
        for tree in trees:
            if tree.value_size != RID_SIZE:
                raise QueryError("fragment indexes must be RID-valued")
        self._schema = schema
        self._key_columns = tuple(key_columns)
        self._codec: KeyCodec = codec_for_columns(
            [schema.column(c) for c in key_columns]
        )
        self._fragments = fragments
        self._frag_schemas = [
            schema.project(list(key_columns) + list(frag)) for frag in fragments
        ]
        self._heaps = heaps
        self._trees = trees
        self.lookups = 0
        self.fragment_fetches = 0
        self.merges = 0
        self.bytes_read = 0

    @property
    def fragments(self) -> tuple[tuple[str, ...], ...]:
        return self._fragments

    def encode_key(self, key_value: object) -> bytes:
        if len(self._key_columns) == 1:
            if isinstance(key_value, (tuple, list)):
                (key_value,) = key_value
            return self._codec.encode(key_value)
        return self._codec.encode(tuple(key_value))  # type: ignore[arg-type]

    def insert(self, row: dict[str, object]) -> None:
        """Insert a row, splitting it across every fragment."""
        key = self.encode_key(tuple(row[c] for c in self._key_columns))
        for frag_schema, heap, tree in zip(
            self._frag_schemas, self._heaps, self._trees
        ):
            record = pack_record_map(
                frag_schema, {n: row[n] for n in frag_schema.names}
            )
            rid = heap.insert(record)
            tree.insert(key, rid.to_bytes())

    def lookup(
        self, key_value: object, project: tuple[str, ...] | None = None
    ) -> dict[str, object] | None:
        """Fetch only the fragments the projection touches."""
        project = project if project is not None else self._schema.names
        key = self.encode_key(key_value)
        needed = [
            i
            for i, frag in enumerate(self._fragments)
            if set(project) & set(frag)
        ]
        if not needed:
            needed = [0]  # key-only projection: confirm existence cheaply
        self.lookups += 1
        result: dict[str, object] = {}
        for i in needed:
            rid_bytes = self._trees[i].search(key)
            if rid_bytes is None:
                return None
            record = self._heaps[i].fetch(Rid.from_bytes(rid_bytes))
            self.fragment_fetches += 1
            self.bytes_read += len(record)
            frag_schema = self._frag_schemas[i]
            wanted = [
                n for n in frag_schema.names
                if n in project or n in self._key_columns
            ]
            result.update(unpack_fields(frag_schema, record, wanted))
        if len(needed) > 1:
            self.merges += 1
        return {name: result[name] for name in project if name in result}
