"""Forwarding table for relocated tuples (§3.1).

Clustering moves tuples by delete + append, which changes their physical
RIDs; the paper notes "this does require updating foreign key pointers
and/or using forwarding tables to redirect queries using old ids to the
new tuples".  This is that forwarding table, with path compression so
chains of repeated moves stay O(1) amortised.
"""

from __future__ import annotations

from repro.storage.heap import Rid


class ForwardingTable:
    """old Rid -> current Rid redirection with path compression."""

    def __init__(self) -> None:
        self._forward: dict[Rid, Rid] = {}
        self.redirects_followed = 0

    def record_move(self, old: Rid, new: Rid) -> None:
        """Note that the tuple at ``old`` now lives at ``new``."""
        if old == new:
            return
        self._forward[old] = new

    def resolve(self, rid: Rid) -> Rid:
        """Follow forwarding pointers to the tuple's current address.

        Compresses the path so every visited entry points directly at the
        final location afterwards.
        """
        if rid not in self._forward:
            return rid
        chain = []
        current = rid
        while current in self._forward:
            chain.append(current)
            current = self._forward[current]
            self.redirects_followed += 1
        for visited in chain:
            self._forward[visited] = current
        return current

    def forget(self, rid: Rid) -> None:
        """Drop forwarding entries that point *at* a now-deleted tuple."""
        self._forward.pop(rid, None)

    @property
    def size(self) -> int:
        """Number of live forwarding entries (routing-state overhead)."""
        return len(self._forward)

    def __contains__(self, rid: Rid) -> bool:
        return rid in self._forward
