"""Online hot/cold management (§3.1's automated-policy direction).

Wikipedia's policy is structural (hot = latest revision per page), but the
paper notes: "Other applications may have different policies, or require
automated tools to keep track of access patterns."  This manager is that
tool: it records every lookup into a decayed
:class:`~repro.core.hot_cold.tracker.AccessTracker` and, at epoch
boundaries, migrates rows between the partitions of a
:class:`~repro.core.hot_cold.partitioner.HotColdPartitionedTable` so the
hot partition converges to the hottest ``hot_capacity`` keys.

Migration is budgeted per epoch: moving a tuple is a delete+insert (the
§3.1 relocation), so a shifting workload is followed gradually rather than
with a reorganisation storm.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.hot_cold.partitioner import HotColdPartitionedTable
from repro.core.hot_cold.tracker import AccessTracker
from repro.errors import StorageError, WorkloadError
from repro.obs.registry import MetricsRegistry, resolve_registry


@dataclass(frozen=True)
class RebalanceReport:
    """What one epoch's rebalance did."""

    epoch: int
    promoted: int
    demoted: int
    hot_rows_after: int
    #: Moves that hit a storage fault mid-migration and rolled back to a
    #: consistent partition map (see ``HotColdPartitionedTable._move``).
    aborted: int = 0


class OnlineHotColdManager:
    """Drives a partitioned table from observed access frequencies."""

    def __init__(
        self,
        table: HotColdPartitionedTable,
        hot_capacity: int,
        decay: float = 0.5,
        ops_per_epoch: int = 10_000,
        migration_budget: int = 256,
        registry: MetricsRegistry | None = None,
    ) -> None:
        """
        Args:
            table: the two-partition table to manage.
            hot_capacity: target number of rows in the hot partition.
            decay: tracker decay per epoch (smaller forgets faster).
            ops_per_epoch: lookups between automatic rebalances.
            migration_budget: max promote+demote moves per rebalance.
            registry: metrics sink for the ``hotcold.*`` instruments.
        """
        if hot_capacity <= 0:
            raise WorkloadError("hot_capacity must be positive")
        if ops_per_epoch <= 0 or migration_budget <= 0:
            raise WorkloadError("epoch and budget must be positive")
        self._table = table
        self._hot_capacity = hot_capacity
        self._tracker = AccessTracker(decay=decay)
        self._ops_per_epoch = ops_per_epoch
        self._budget = migration_budget
        self._ops_since_rebalance = 0
        self.reports: list[RebalanceReport] = []
        reg = resolve_registry(registry)
        self._m_lookups = reg.counter("hotcold.lookups")
        self._m_rebalances = reg.counter("hotcold.rebalances")
        self._m_promotions = reg.counter("hotcold.promotions")
        self._m_demotions = reg.counter("hotcold.demotions")
        self._m_migrated_bytes = reg.counter("hotcold.migrations.bytes")
        self._m_aborts = reg.counter("hotcold.migration_aborts")
        self._m_hot_rows = reg.gauge("hotcold.hot_rows")
        self._m_hit = reg.counter("hotcold.hit")
        self._m_miss = reg.counter("hotcold.miss")
        self._m_cap_knob = reg.gauge("adaptive.knob.hotcold.hot_capacity")
        self._m_epoch_knob = reg.gauge("adaptive.knob.hotcold.ops_per_epoch")
        self._m_cap_knob.set(float(self._hot_capacity))
        self._m_epoch_knob.set(float(self._ops_per_epoch))

    @property
    def tracker(self) -> AccessTracker:
        return self._tracker

    @property
    def table(self) -> HotColdPartitionedTable:
        return self._table

    @property
    def hot_capacity(self) -> int:
        """Target number of rows in the hot partition (adaptive knob)."""
        return self._hot_capacity

    @property
    def ops_per_epoch(self) -> int:
        """Lookups between automatic rebalances (adaptive knob)."""
        return self._ops_per_epoch

    def set_hot_capacity(self, hot_capacity: int) -> None:
        """Retune the hot-fraction target; applied at the next rebalance."""
        if hot_capacity <= 0:
            raise WorkloadError("hot_capacity must be positive")
        self._hot_capacity = int(hot_capacity)
        self._m_cap_knob.set(float(self._hot_capacity))

    def set_ops_per_epoch(self, ops_per_epoch: int) -> None:
        """Retune the rebalance cadence.

        Takes effect immediately: if the ops already accumulated since
        the last rebalance meet the new (shorter) epoch, the next tracked
        lookup triggers one.
        """
        if ops_per_epoch <= 0:
            raise WorkloadError("epoch and budget must be positive")
        self._ops_per_epoch = int(ops_per_epoch)
        self._m_epoch_knob.set(float(self._ops_per_epoch))

    # -- the query path ----------------------------------------------------------

    def lookup(
        self, key_value: object, project: tuple[str, ...] | None = None
    ) -> dict[str, object] | None:
        """Tracked lookup; triggers a rebalance every ``ops_per_epoch``."""
        self._m_lookups.inc()
        self._tracker.record(key_value)
        self._ops_since_rebalance += 1
        hot_before = self._table.hot_lookups
        result = self._table.lookup(key_value, project)
        # hit = served by the hot partition; the delta pair feeds the
        # sampler's ``derived.hotcold.hit_rate`` selector per window.
        if self._table.hot_lookups > hot_before:
            self._m_hit.inc()
        else:
            self._m_miss.inc()
        if self._ops_since_rebalance >= self._ops_per_epoch:
            self.rebalance()
        return result

    # -- rebalancing ---------------------------------------------------------------

    def rebalance(self) -> RebalanceReport:
        """Migrate toward "hot partition = hottest ``hot_capacity`` keys".

        Promotions (cold keys hotter than the coldest hot resident) are
        applied before demotions, both bounded by the migration budget.
        A move that hits a storage fault mid-flight is counted as aborted
        and skipped — ``HotColdPartitionedTable._move`` guarantees the
        abort leaves the partition map consistent, and an aborted move
        still spends budget (its I/O was real).
        """
        self._ops_since_rebalance = 0
        want_hot = set(self._tracker.hottest(self._hot_capacity))
        budget = self._budget
        promoted = 0
        demoted = 0
        aborted = 0
        # Batched record prefetch: pull the move sources in page order,
        # one pin per page, so the per-key copy-then-delete moves below
        # find their records already pooled.
        self._table.warm_records(
            [k for k in want_hot if not self._table.is_hot(k)][: budget],
            hot=False,
        )
        for key in want_hot:
            if budget <= 0:
                break
            if not self._table.is_hot(key):
                try:
                    moved = self._table.promote(key)
                except StorageError:
                    aborted += 1
                    budget -= 1
                    continue
                if moved:
                    promoted += 1
                    budget -= 1
        # Demote residents that fell out of the hot set, until the hot
        # partition is back at (or under) capacity.
        if self._table.hot.num_rows > self._hot_capacity and budget > 0:
            residents = self._hot_residents()
            coldest_first = sorted(
                residents, key=self._tracker.count_of
            )
            excess = self._table.hot.num_rows - self._hot_capacity
            demote_candidates = [
                k for k in coldest_first if k not in want_hot
            ][: min(budget, excess)]
            self._table.warm_records(demote_candidates, hot=True)
            for key in coldest_first:
                if budget <= 0 or excess <= 0:
                    break
                if key in want_hot:
                    continue
                try:
                    moved = self._table.demote(key)
                except StorageError:
                    aborted += 1
                    budget -= 1
                    continue
                if moved:
                    demoted += 1
                    excess -= 1
                    budget -= 1
        self._tracker.advance_epoch()
        report = RebalanceReport(
            epoch=self._tracker.epoch,
            promoted=promoted,
            demoted=demoted,
            hot_rows_after=self._table.hot.num_rows,
            aborted=aborted,
        )
        self.reports.append(report)
        self._m_rebalances.inc()
        self._m_promotions.inc(promoted)
        self._m_demotions.inc(demoted)
        self._m_aborts.inc(aborted)
        # A migration is a delete+insert of the full row (§3.1), so the
        # bytes moved per rebalance are moves × record width.
        self._m_migrated_bytes.inc(
            (promoted + demoted) * self._table.schema.record_size
        )
        self._m_hot_rows.set(self._table.hot.num_rows)
        return report

    def _hot_residents(self) -> list[object]:
        """Keys currently in the hot partition (decoded from the index)."""
        keys = []
        tree = self._table.hot.tree
        codec = self._table._codec
        for key_bytes, _ in tree.items():
            keys.append(codec.decode(key_bytes))
        return keys

    def hot_hit_rate(self) -> float:
        """Fraction of lookups served by the hot partition so far."""
        total = self._table.hot_lookups + self._table.cold_lookups
        return self._table.hot_lookups / total if total else 0.0
