"""Access-based clustering (§3.1): relocate hot tuples to the table's tail.

"Our clustering algorithm relocates hot tuples by deleting then appending
them to the end of the table."  Relocation concentrates hot tuples onto a
small set of tail pages, so a skewed read workload touches few heap pages
instead of one page per hot tuple.

The operator requires an *append-only* heap: a first-fit heap would reuse
the hole just opened by the delete and put the tuple right back where it
was, silently undoing the clustering.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.btree.tree import BPlusTree
from repro.core.hot_cold.forwarding import ForwardingTable
from repro.errors import ReproError
from repro.storage.heap import HeapFile, Rid
from repro.util.rng import DeterministicRng


@dataclass(frozen=True)
class ClusterReport:
    """What a clustering pass did."""

    hot_tuples: int
    requested_fraction: float
    moved: int
    skipped_missing: int
    pages_before: int
    pages_after: int

    @property
    def achieved_fraction(self) -> float:
        return self.moved / self.hot_tuples if self.hot_tuples else 0.0


def cluster_hot_tuples(
    heap: HeapFile,
    tree: BPlusTree,
    hot_keys: list[bytes],
    fraction: float = 1.0,
    rng: DeterministicRng | None = None,
    forwarding: ForwardingTable | None = None,
) -> ClusterReport:
    """Relocate ``fraction`` of ``hot_keys``'s tuples to the heap's tail.

    Args:
        heap: the table's heap; must be append-only (see module docstring).
        tree: the primary index mapping encoded keys to RID values; values
            are rewritten in place as tuples move.
        hot_keys: encoded index keys of the hot tuples.
        fraction: portion of the hot set to relocate — the knob behind the
            paper's 0% / 54% / 100% curves in Figure 3.
        rng: used to sample which hot tuples move when ``fraction < 1``.
        forwarding: optional forwarding table to record old→new RIDs for
            stale external references.

    Returns a :class:`ClusterReport`.
    """
    if not heap.append_only:
        raise ReproError(
            "clustering requires an append-only heap; a first-fit heap "
            "would reuse the freed slots and undo the relocation"
        )
    if not 0.0 <= fraction <= 1.0:
        raise ReproError("fraction must be in [0, 1]")
    if fraction < 1.0:
        if rng is None:
            raise ReproError("sampling a fraction of the hot set needs an rng")
        k = round(len(hot_keys) * fraction)
        chosen = rng.sample(hot_keys, k)
    else:
        chosen = list(hot_keys)

    pages_before = heap.num_pages
    moved = 0
    skipped = 0
    for key in chosen:
        rid_bytes = tree.search(key)
        if rid_bytes is None:
            skipped += 1
            continue
        old_rid = Rid.from_bytes(rid_bytes)
        record = heap.fetch(old_rid)
        heap.delete(old_rid)
        new_rid = heap.insert(record)
        tree.update_value(key, new_rid.to_bytes())
        if forwarding is not None:
            forwarding.record_move(old_rid, new_rid)
        moved += 1
    return ClusterReport(
        hot_tuples=len(hot_keys),
        requested_fraction=fraction,
        moved=moved,
        skipped_missing=skipped,
        pages_before=pages_before,
        pages_after=heap.num_pages,
    )
