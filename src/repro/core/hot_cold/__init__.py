"""Locality-waste reclamation (§3): access tracking, clustering, and
hot/cold partitioning."""

from repro.core.hot_cold.tracker import AccessTracker
from repro.core.hot_cold.forwarding import ForwardingTable
from repro.core.hot_cold.cluster import ClusterReport, cluster_hot_tuples
from repro.core.hot_cold.partitioner import HotColdPartitionedTable
from repro.core.hot_cold.manager import OnlineHotColdManager, RebalanceReport
from repro.core.hot_cold.vertical import (
    VerticalPartitioning,
    VerticallyPartitionedTable,
    recommend_update_split,
    recommend_vertical_split,
)

__all__ = [
    "AccessTracker",
    "ForwardingTable",
    "ClusterReport",
    "cluster_hot_tuples",
    "HotColdPartitionedTable",
    "OnlineHotColdManager",
    "RebalanceReport",
    "VerticalPartitioning",
    "VerticallyPartitionedTable",
    "recommend_vertical_split",
    "recommend_update_split",
]
