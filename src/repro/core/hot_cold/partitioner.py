"""Hot/cold horizontal partitioning (§3.1, the "Partition" bar of Fig. 3).

Clustering (same heap, hot tuples at the tail) fixes heap locality but
leaves one giant index.  A dedicated hot *partition* goes further: the hot
tuples get their own heap **and their own index**, and because the hot set
is small, that index fits in RAM — the paper's 27.1 GB → 1.4 GB, 8.4×
effect.

:class:`HotColdPartitionedTable` is the generic mechanism: two
(heap, index) pairs behind one lookup interface, plus demote/promote moves.
The Wikipedia revision *policy* — "newly inserted revision tuples replace
the previously hot tuple for the same page, which is then moved to the
cold partition" — lives in ``workload.wikipedia``, driving this mechanism.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.btree.keycodec import KeyCodec, codec_for_columns
from repro.btree.tree import BPlusTree
from repro.core.hot_cold.forwarding import ForwardingTable
from repro.errors import QueryError, StorageError
from repro.schema.record import pack_record_map, unpack_fields
from repro.schema.schema import Schema
from repro.storage.heap import HeapFile, Rid, RID_SIZE


@dataclass
class Partition:
    """One physical partition: a heap and its primary index."""

    heap: HeapFile
    tree: BPlusTree

    @property
    def num_rows(self) -> int:
        return self.tree.num_entries

    @property
    def heap_bytes(self) -> int:
        return self.heap.size_bytes

    @property
    def index_bytes(self) -> int:
        return self.tree.size_bytes


@dataclass
class PartitionStats:
    """Size accounting for the paper's before/after comparison."""

    hot_rows: int
    cold_rows: int
    hot_index_bytes: int
    cold_index_bytes: int
    hot_heap_bytes: int
    cold_heap_bytes: int

    @property
    def index_shrink_factor(self) -> float:
        """How much smaller the hot index is than a combined index would
        be — the paper's "reducing total index sizes a factor of 19"."""
        if self.hot_index_bytes == 0:
            return 1.0
        return (self.hot_index_bytes + self.cold_index_bytes) / self.hot_index_bytes


class HotColdPartitionedTable:
    """A logical table stored as a hot partition plus a cold partition."""

    def __init__(
        self,
        schema: Schema,
        key_columns: tuple[str, ...],
        hot: Partition,
        cold: Partition,
        forwarding: ForwardingTable | None = None,
        wal=None,
        wal_label: str = "hot_cold",
    ) -> None:
        if hot.tree.value_size != RID_SIZE or cold.tree.value_size != RID_SIZE:
            raise QueryError("partition indexes must be RID-valued")
        self._schema = schema
        self._key_columns = tuple(key_columns)
        self._codec: KeyCodec = codec_for_columns(
            [schema.column(c) for c in key_columns]
        )
        self._hot = hot
        self._cold = cold
        self._forwarding = forwarding
        # Optional WalWriter (duck-typed).  Partition heaps are not
        # catalog tables, so moves are logged as HOT_COLD_MOVE markers —
        # a forensic trail of src→dst relocations that replay skips (it
        # is not a heap-op kind), not a redo obligation.
        self._wal = wal
        self._wal_label = wal_label
        self.hot_lookups = 0
        self.cold_lookups = 0
        self.demotions = 0
        self.promotions = 0

    # -- properties ----------------------------------------------------------

    @property
    def schema(self) -> Schema:
        return self._schema

    @property
    def hot(self) -> Partition:
        return self._hot

    @property
    def cold(self) -> Partition:
        return self._cold

    def encode_key(self, key_value: object) -> bytes:
        if len(self._key_columns) == 1:
            if isinstance(key_value, (tuple, list)):
                (key_value,) = key_value
            return self._codec.encode(key_value)
        return self._codec.encode(tuple(key_value))  # type: ignore[arg-type]

    # -- data plane ------------------------------------------------------------

    def insert(self, row: dict[str, object], hot: bool = True) -> Rid:
        """Insert a row into the chosen partition."""
        part = self._hot if hot else self._cold
        record = pack_record_map(self._schema, row)
        rid = part.heap.insert(record)
        key = self.encode_key(tuple(row[c] for c in self._key_columns))
        part.tree.insert(key, rid.to_bytes())
        return rid

    def lookup(
        self, key_value: object, project: tuple[str, ...] | None = None
    ) -> dict[str, object] | None:
        """Point lookup: hot partition first, cold on miss.

        The access skew the partitioning exploits means almost every
        lookup resolves in the (small, RAM-resident) hot partition.
        """
        key = self.encode_key(key_value)
        project = project if project is not None else self._schema.names
        rid_bytes = self._hot.tree.search(key)
        if rid_bytes is not None:
            self.hot_lookups += 1
            record = self._hot.heap.fetch(Rid.from_bytes(rid_bytes))
            return unpack_fields(self._schema, record, project)
        rid_bytes = self._cold.tree.search(key)
        if rid_bytes is None:
            return None
        self.cold_lookups += 1
        record = self._cold.heap.fetch(Rid.from_bytes(rid_bytes))
        return unpack_fields(self._schema, record, project)

    def lookup_many(
        self,
        key_values: list[object],
        project: tuple[str, ...] | None = None,
    ) -> list[dict[str, object] | None]:
        """Batched point lookups: hot batch first, cold batch for misses.

        The batched read fast path applied to the partition pair: all
        keys probe the hot index in one sorted pass
        (:meth:`~repro.btree.tree.BPlusTree.lookup_many`), only the hot
        misses continue to the cold index, and each partition's heap
        records are fetched page-ordered with every page pinned once.
        Results align positionally with ``key_values`` and equal a
        per-key :meth:`lookup` loop.
        """
        project = project if project is not None else self._schema.names
        encoded = [self.encode_key(kv) for kv in key_values]
        if not encoded:
            return []
        hot_hits = self._hot.tree.lookup_many(encoded)
        miss_keys = [k for k in hot_hits if hot_hits[k] is None]
        cold_hits = self._cold.tree.lookup_many(miss_keys) if miss_keys else {}
        hot_rids = {
            k: Rid.from_bytes(v) for k, v in hot_hits.items() if v is not None
        }
        cold_rids = {
            k: Rid.from_bytes(v) for k, v in cold_hits.items() if v is not None
        }
        hot_records = (
            self._hot.heap.fetch_many(list(hot_rids.values()))
            if hot_rids else {}
        )
        cold_records = (
            self._cold.heap.fetch_many(list(cold_rids.values()))
            if cold_rids else {}
        )
        results: list[dict[str, object] | None] = []
        for key in encoded:
            if key in hot_rids:
                self.hot_lookups += 1
                record = hot_records[hot_rids[key]]
            elif key in cold_rids:
                self.cold_lookups += 1
                record = cold_records[cold_rids[key]]
            else:
                results.append(None)
                continue
            results.append(unpack_fields(self._schema, record, project))
        return results

    def warm_records(self, key_values: list[object], hot: bool) -> None:
        """Best-effort batched prefetch of move sources.

        A migration batch reads each source record once (the copy half of
        copy-then-delete); probing the keys through the source index's
        batched lookup and pulling the RIDs page-ordered pins every
        source page once, so the per-key moves that follow hit the pool.
        Faults here are swallowed — warming is an optimisation, and the
        per-key move path handles (and accounts) its own faults.
        """
        src = self._hot if hot else self._cold
        encoded = [self.encode_key(kv) for kv in key_values]
        if not encoded:
            return
        try:
            found = src.tree.lookup_many(encoded)
            rids = [
                Rid.from_bytes(v) for v in found.values() if v is not None
            ]
            if rids:
                src.heap.fetch_many(rids)
        except StorageError:
            pass

    def demote_many(self, key_values: list[object]) -> int:
        """Batched :meth:`demote`: prefetch the sources, then move each.

        Returns the number of rows moved.  Faults propagate exactly as in
        the scalar path (the in-flight move rolls back; earlier moves in
        the batch stay committed)."""
        self.warm_records(key_values, hot=True)
        return sum(1 for kv in key_values if self.demote(kv))

    def promote_many(self, key_values: list[object]) -> int:
        """Batched :meth:`promote`; see :meth:`demote_many`."""
        self.warm_records(key_values, hot=False)
        return sum(1 for kv in key_values if self.promote(kv))

    def demote(self, key_value: object) -> bool:
        """Move a row hot → cold (e.g. a superseded revision)."""
        moved = self._move(key_value, self._hot, self._cold)
        if moved:
            self.demotions += 1
        return moved

    def promote(self, key_value: object) -> bool:
        """Move a row cold → hot (e.g. a page became popular again)."""
        moved = self._move(key_value, self._cold, self._hot)
        if moved:
            self.promotions += 1
        return moved

    def is_hot(self, key_value: object) -> bool:
        return self._hot.tree.search(self.encode_key(key_value)) is not None

    def stats(self) -> PartitionStats:
        return PartitionStats(
            hot_rows=self._hot.num_rows,
            cold_rows=self._cold.num_rows,
            hot_index_bytes=self._hot.index_bytes,
            cold_index_bytes=self._cold.index_bytes,
            hot_heap_bytes=self._hot.heap_bytes,
            cold_heap_bytes=self._cold.heap_bytes,
        )

    # -- internals ---------------------------------------------------------------

    def _move(self, key_value: object, src: Partition, dst: Partition) -> bool:
        """Relocate one row, copy-then-delete, failure-atomic for readers.

        The destination copy commits (heap row + index entry) *before*
        anything is removed from the source, so an I/O failure at any
        point leaves the partition map consistent for lookups: either the
        move never happened, or the row transiently exists in both
        partitions — and the hot-first :meth:`lookup` order resolves the
        duplicate to the correct bytes in both the demote and the promote
        direction.  A failed move can be retried verbatim (the dst index
        insert is an upsert); at worst an aborted move leaks an orphaned,
        unindexed heap record — space, never answers.
        """
        key = self.encode_key(key_value)
        rid_bytes = src.tree.search(key)
        if rid_bytes is None:
            return False
        old_rid = Rid.from_bytes(rid_bytes)
        record = src.heap.fetch(old_rid)
        new_rid = dst.heap.insert(record)
        try:
            dst.tree.insert(key, new_rid.to_bytes(), upsert=True)
        except BaseException:
            # The copy never became visible; withdraw the heap row so the
            # abort leaves the destination exactly as it was.
            dst.heap.delete(new_rid)
            raise
        src.tree.delete(key)
        src.heap.delete(old_rid)
        if self._forwarding is not None:
            self._forwarding.record_move(old_rid, new_rid)
        if self._wal is not None:
            self._wal.log_hot_cold_move(self._wal_label, old_rid, new_rid)
        return True
