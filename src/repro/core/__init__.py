"""The paper's three contributions: index caching, hot/cold partitioning,
and encoding-waste reclamation (plus semantic IDs)."""
