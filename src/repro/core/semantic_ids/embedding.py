"""Embedding placement information in ID values (§4.2).

"We propose embedding partition information directly in the ID field as a
mechanism to implement the policy described in Section 3.1. If the data is
clustered on the ID field, then simply updating the ID value is enough to
physically move the tuple."

An :class:`EmbeddedId` packs a partition number into the high bits of a
64-bit id and a partition-local sequence in the low bits.  Because tables
clustered on the id keep id-adjacent tuples physically adjacent, giving
all hot tuples ids in the "hot" partition's range *is* the clustering.
:func:`plan_reassignment` produces the old→new id mapping that realises a
placement decision, which callers apply as transactional delete+insert
pairs (the paper's fallback when data is not clustered on the id).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import DuplicateKeyError, ReproError


@dataclass(frozen=True)
class EmbeddedId:
    """64-bit id = partition (high ``partition_bits``) | local sequence."""

    partition_bits: int

    def __post_init__(self) -> None:
        if not 1 <= self.partition_bits <= 32:
            raise ReproError("partition_bits must be in [1, 32]")

    @property
    def local_bits(self) -> int:
        return 64 - self.partition_bits

    @property
    def max_partition(self) -> int:
        return (1 << self.partition_bits) - 1

    @property
    def max_local(self) -> int:
        return (1 << self.local_bits) - 1

    def encode(self, partition: int, local: int) -> int:
        """Pack ``(partition, local)`` into one id."""
        if not 0 <= partition <= self.max_partition:
            raise ReproError(
                f"partition {partition} needs more than {self.partition_bits} bits"
            )
        if not 0 <= local <= self.max_local:
            raise ReproError(
                f"local id {local} needs more than {self.local_bits} bits"
            )
        return (partition << self.local_bits) | local

    def partition_of(self, embedded_id: int) -> int:
        """Extract the partition — the entire routing step (§4.2)."""
        if not 0 <= embedded_id < 1 << 64:
            raise ReproError(f"id {embedded_id} is not a u64")
        return embedded_id >> self.local_bits

    def local_of(self, embedded_id: int) -> int:
        return embedded_id & self.max_local

    def decode(self, embedded_id: int) -> tuple[int, int]:
        return self.partition_of(embedded_id), self.local_of(embedded_id)


@dataclass(frozen=True)
class IdReassignmentPlan:
    """Old-id → new-id mapping realising a placement decision."""

    scheme: EmbeddedId
    mapping: dict[int, int]

    @property
    def moves(self) -> int:
        return sum(1 for old, new in self.mapping.items() if old != new)

    def new_id(self, old_id: int) -> int:
        return self.mapping.get(old_id, old_id)


def move_by_id_update(
    table,
    index_name: str,
    old_id: int,
    new_id: int,
) -> bool:
    """Physically move a tuple by rewriting its (semantic) id — §4.2.

    "If the data is clustered on the ID field, then simply updating the ID
    value is enough to physically move the tuple.  Otherwise, the hot
    tuples can be shuffled to the end of the table by transactionally
    deleting and inserting the tuples."

    Our heaps are not id-clustered, so this is the transactional
    delete+insert realisation over a :class:`repro.query.table.Table`: the
    row is re-inserted under ``new_id``, landing wherever current
    placement policy puts it (the tail, for an append-only heap — i.e.
    the §3.1 hot region).  Returns False when ``old_id`` does not exist.

    Raises if ``new_id`` already exists (ids must stay unique).
    """
    result = table.lookup(index_name, old_id)
    if not result.found or result.values is None:
        return False
    index = table.index(index_name)
    (id_column,) = index.key_columns
    # Check the target id first so the delete+insert pair cannot fail
    # half-way ("transactionally deleting and inserting").
    if table.lookup(index_name, new_id).found:
        raise DuplicateKeyError(f"id {new_id} already exists")
    row = dict(result.values)
    table.delete(index_name, old_id)
    row[id_column] = new_id
    table.insert(row)
    return True


def plan_reassignment(
    scheme: EmbeddedId,
    placement: dict[int, int],
    next_local: dict[int, int] | None = None,
) -> IdReassignmentPlan:
    """Assign every tuple an id embedding its target partition.

    Args:
        scheme: the bit layout.
        placement: old id → target partition (the output of a partitioner
            such as Schism, or of the §3.1 hot/cold policy).
        next_local: optional starting local-sequence counter per partition
            (continues an existing numbering); defaults to 0 everywhere.

    Ids already embedding the right partition are left untouched, so
    re-running the planner after incremental placement changes only moves
    the tuples that changed partition.
    """
    counters: dict[int, int] = dict(next_local or {})
    mapping: dict[int, int] = {}
    # Pre-scan: ids that already encode their target keep their local part
    # and bump the partition's counter past it, avoiding collisions.
    for old_id, partition in placement.items():
        if scheme.partition_of(old_id) == partition:
            local = scheme.local_of(old_id)
            counters[partition] = max(counters.get(partition, 0), local + 1)
    for old_id, partition in sorted(placement.items()):
        if scheme.partition_of(old_id) == partition:
            mapping[old_id] = old_id
            continue
        local = counters.get(partition, 0)
        counters[partition] = local + 1
        mapping[old_id] = scheme.encode(partition, local)
    return IdReassignmentPlan(scheme=scheme, mapping=mapping)
