"""Routing in distributed partitioned databases (§4.2, ablation A4).

Per-tuple placement (the paper cites Schism) needs a routing table mapping
tuple ids to locations — "such tables can easily become a resource and
performance bottleneck".  Embedding the location in the id makes routing
stateless.  This module implements both routers and the comparison the
paper's argument rests on: routing-state bytes and per-route work.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.semantic_ids.embedding import EmbeddedId
from repro.errors import ReproError

#: Honest per-entry overhead of a hash-map routing table: 8-byte key,
#: 2-byte partition, and a load-factor/pointer overhead typical of open
#: hash tables (×1.5).
_LOOKUP_ENTRY_BYTES = 15


class LookupTableRouter:
    """Routes via an explicit tuple-id → partition table."""

    def __init__(self) -> None:
        self._table: dict[int, int] = {}
        self.routes = 0

    def place(self, tuple_id: int, partition: int) -> None:
        self._table[tuple_id] = partition

    def route(self, tuple_id: int) -> int:
        self.routes += 1
        try:
            return self._table[tuple_id]
        except KeyError:
            raise ReproError(f"no placement for tuple id {tuple_id}") from None

    @property
    def entries(self) -> int:
        return len(self._table)

    @property
    def state_bytes(self) -> int:
        """Routing-state footprint — the scalability bottleneck."""
        return self.entries * _LOOKUP_ENTRY_BYTES


class EmbeddedIdRouter:
    """Routes by decoding the partition bits out of the id: zero state."""

    def __init__(self, scheme: EmbeddedId) -> None:
        self._scheme = scheme
        self.routes = 0

    def route(self, tuple_id: int) -> int:
        self.routes += 1
        return self._scheme.partition_of(tuple_id)

    @property
    def state_bytes(self) -> int:
        return 0


@dataclass(frozen=True)
class RoutingComparison:
    """The A4 ablation's output row."""

    tuples: int
    partitions: int
    lookup_table_bytes: int
    embedded_bytes: int
    agree: bool

    @property
    def state_reduction(self) -> float:
        if self.embedded_bytes == 0:
            return float("inf") if self.lookup_table_bytes else 1.0
        return self.lookup_table_bytes / self.embedded_bytes


def compare_routers(
    placement: dict[int, int],
    scheme: EmbeddedId,
    probe_ids: list[int],
) -> RoutingComparison:
    """Route ``probe_ids`` through both routers and compare.

    ``placement`` maps *embedded* ids to partitions — i.e. ids that have
    already been reassigned by :func:`~repro.core.semantic_ids.embedding.
    plan_reassignment`, so both routers can answer every probe.  The
    routers must agree on every probe; disagreement means the placement
    and the embedding fell out of sync.
    """
    table_router = LookupTableRouter()
    for tuple_id, partition in placement.items():
        table_router.place(tuple_id, partition)
    embedded_router = EmbeddedIdRouter(scheme)
    agree = all(
        table_router.route(t) == embedded_router.route(t) for t in probe_ids
    )
    partitions = len(set(placement.values())) if placement else 0
    return RoutingComparison(
        tuples=len(placement),
        partitions=partitions,
        lookup_table_bytes=table_router.state_bytes,
        embedded_bytes=embedded_router.state_bytes,
        agree=agree,
    )
