"""ID elision (§4.2 "reduction").

"Fields can be reduced if proxies exist whose values exhibit the same
properties that the application expects.  For example, ID fields
representing uniqueness can be eliminated and the tuple's physical address
can be used as a proxy."  (Column stores already do this with tuple
offsets — the paper cites C-Store.)

Two pieces:

* :class:`RidProxyTable` — a table whose AUTO_INCREMENT id column is gone:
  the RID returned at insert time *is* the identifier.  No id bytes are
  stored, and no id index exists (the RID dereferences directly), which is
  strictly cheaper than even a perfectly-encoded id column.
* :func:`find_droppable_columns` — the FD rule: "if there is a functional
  dependency X → Y and the semantic properties of Y can be directly
  inferred from X, then Y can be dropped."
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import SchemaError
from repro.schema.record import pack_record_map, unpack_fields
from repro.schema.schema import Schema
from repro.storage.heap import HeapFile, Rid


@dataclass(frozen=True)
class FunctionalDependency:
    """X → Y with the semantic properties Y provides to the application."""

    determinants: tuple[str, ...]
    dependent: str
    #: which properties of the dependent the application relies on:
    #: subset of {"uniqueness", "order", "value"}
    used_properties: frozenset[str]


def find_droppable_columns(
    schema: Schema, dependencies: list[FunctionalDependency]
) -> list[str]:
    """Columns droppable because an FD supplies their used properties.

    A dependent is droppable when the application never uses its literal
    *value* — only ``uniqueness`` and/or ``order``, both of which the
    determinant (or the physical address) provides.
    """
    droppable = []
    for fd in dependencies:
        if not schema.has_column(fd.dependent):
            raise SchemaError(f"unknown dependent column {fd.dependent!r}")
        for d in fd.determinants:
            if not schema.has_column(d):
                raise SchemaError(f"unknown determinant column {d!r}")
        if "value" not in fd.used_properties:
            droppable.append(fd.dependent)
    return droppable


def id_elision_savings(schema: Schema, id_column: str, rows: int) -> int:
    """Bytes saved by dropping ``id_column`` across ``rows`` tuples.

    Heap bytes only; the (often larger) saving of dropping the id's
    B+Tree index is reported separately by the experiments.
    """
    return schema.column(id_column).size * rows


class RidProxyTable:
    """A table addressed by physical RIDs instead of a stored id column."""

    def __init__(self, schema: Schema, id_column: str, heap: HeapFile) -> None:
        """
        Args:
            schema: the *application* schema, including the id column the
                application believes exists.
            id_column: the AUTO_INCREMENT-style column to elide.
            heap: backing storage for the reduced records.
        """
        if not schema.has_column(id_column):
            raise SchemaError(f"unknown id column {id_column!r}")
        self._app_schema = schema
        self._id_column = id_column
        self._stored_schema = schema.drop([id_column])
        self._heap = heap

    @property
    def stored_schema(self) -> Schema:
        """The physical schema: the application schema minus the id."""
        return self._stored_schema

    @property
    def bytes_saved_per_row(self) -> int:
        return self._app_schema.column(self._id_column).size

    def insert(self, row: dict[str, object]) -> Rid:
        """Insert a row; the returned RID plays the role of the id.

        Any id value the caller supplied is discarded — its only semantic
        property (uniqueness) is provided by the address.
        """
        stored = {
            name: row[name] for name in self._stored_schema.names
        }
        return self._heap.insert(pack_record_map(self._stored_schema, stored))

    def get(
        self, rid: Rid, project: tuple[str, ...] | None = None
    ) -> dict[str, object]:
        """Fetch by proxy id; the id column materialises from the RID."""
        project = project if project is not None else self._app_schema.names
        record = self._heap.fetch(rid)
        wanted = [n for n in project if n != self._id_column]
        values = unpack_fields(self._stored_schema, record, wanted)
        if self._id_column in project:
            # Synthesise the id the application expects from the address.
            values[self._id_column] = int.from_bytes(rid.to_bytes(), "little")
        return {name: values[name] for name in project}

    def delete(self, rid: Rid) -> None:
        self._heap.delete(rid)
