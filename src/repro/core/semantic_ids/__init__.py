"""Semantic IDs (§4.2): drop meaningless ids, or make their bits work."""

from repro.core.semantic_ids.reduction import (
    FunctionalDependency,
    RidProxyTable,
    find_droppable_columns,
    id_elision_savings,
)
from repro.core.semantic_ids.embedding import (
    EmbeddedId,
    IdReassignmentPlan,
    move_by_id_update,
    plan_reassignment,
)
from repro.core.semantic_ids.routing import (
    EmbeddedIdRouter,
    LookupTableRouter,
    RoutingComparison,
    compare_routers,
)

__all__ = [
    "FunctionalDependency",
    "RidProxyTable",
    "find_droppable_columns",
    "id_elision_savings",
    "EmbeddedId",
    "IdReassignmentPlan",
    "move_by_id_update",
    "plan_reassignment",
    "LookupTableRouter",
    "EmbeddedIdRouter",
    "RoutingComparison",
    "compare_routers",
]
