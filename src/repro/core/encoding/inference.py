"""Minimal-type inference: the "schema as hint" rewrite (§4.1).

"We argue that schema type definitions should be treated as hints rather
than hard constraints. ... automated tools can infer true field types and
value distributions to modify internal field definitions and minimize
encoding waste."

Rules, in priority order (first match wins):

1. constant column        -> 0 bits (value lives in the catalog)
2. bool-like ints         -> BOOL, 1 bit packed
3. 14-char timestamp str  -> TIMESTAMP32 (the paper's 14 B -> 4 B example)
4. numeric strings        -> narrowest int for the parsed range
5. year-only granularity  -> YEAR16 for timestamp-family columns when the
                             application is known to ask only for years
6. integer family         -> narrowest ladder type covering [min, max];
                             sub-byte ``recommended_bits`` reported for
                             bit-packing (the "8, or even 4 bits" case)
7. low cardinality        -> dictionary code of ceil(log2(distinct)) bits
8. strings                -> CHAR(max length observed)
9. otherwise              -> keep the declared type

``recommended_bits`` is the honest per-value cost (possibly fractional
bytes); ``recommended`` is the narrowest *fixed-width* physical type for
row-store layouts, which is what :func:`optimize_schema` rewrites to.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.core.encoding.analyzer import ColumnProfile
from repro.errors import SchemaError
from repro.schema.schema import Schema
from repro.schema.types import (
    BOOL,
    PhysicalType,
    SIGNED_INT_LADDER,
    TIMESTAMP32,
    TypeKind,
    UNSIGNED_INT_LADDER,
    YEAR16,
    char,
)
from repro.util.bitpack import bits_required


@dataclass(frozen=True)
class TypeRecommendation:
    """The advisor's verdict for one column."""

    column: str
    declared: PhysicalType
    recommended: PhysicalType
    strategy: str
    declared_bits: int
    recommended_bits: float  # may be fractional (bit-packed / dictionary)

    @property
    def waste_fraction(self) -> float:
        """Fraction of the declared bits that carry no information."""
        if self.declared_bits == 0:
            return 0.0
        return max(0.0, 1.0 - self.recommended_bits / self.declared_bits)

    @property
    def bytes_saved_per_value(self) -> float:
        return (self.declared_bits - self.recommended_bits) / 8.0


def _narrowest_int(lo: int, hi: int) -> PhysicalType:
    """Narrowest ladder type covering the closed range [lo, hi]."""
    if lo >= 0:
        for ptype in UNSIGNED_INT_LADDER:
            if hi <= ptype.int_range()[1]:
                return ptype
    for ptype in SIGNED_INT_LADDER:
        rlo, rhi = ptype.int_range()
        if rlo <= lo and hi <= rhi:
            return ptype
    raise SchemaError(f"no integer type covers [{lo}, {hi}]")


def infer_column_type(
    profile: ColumnProfile,
    granularity: str | None = None,
    dictionary_max_distinct: int = 4096,
) -> TypeRecommendation:
    """Apply the rule chain to one column profile.

    Args:
        profile: from :func:`repro.core.encoding.analyzer.profile_column`.
        granularity: semantic hint about what the application actually
            reads from this column; currently only ``"year"`` is
            meaningful (the paper's "storing full timestamps when the
            application only requests years").
        dictionary_max_distinct: cardinality ceiling for recommending a
            dictionary code.
    """
    declared = profile.declared
    declared_bits = declared.size * 8
    kind = declared.kind

    def rec(recommended: PhysicalType, strategy: str, bits: float) -> TypeRecommendation:
        return TypeRecommendation(
            column=profile.name,
            declared=declared,
            recommended=recommended,
            strategy=strategy,
            declared_bits=declared_bits,
            recommended_bits=bits,
        )

    if profile.is_constant:
        return rec(declared, "constant", 0.0)

    if profile.bool_like and kind in (TypeKind.INT, TypeKind.UINT):
        return rec(BOOL, "bool", 1.0)

    # The semantic-granularity hint outranks representation rewrites: if
    # the application only ever asks for years, even a perfectly packed
    # timestamp still stores 16 unwanted bits.
    if granularity == "year" and (
        kind in (TypeKind.TIMESTAMP, TypeKind.DATE, TypeKind.TIMESTAMP_STRING)
        or profile.all_timestamp14_strings
    ):
        return rec(YEAR16, "year_granularity", 16.0)

    if profile.all_timestamp14_strings:
        return rec(TIMESTAMP32, "timestamp_pack", 32.0)

    if profile.all_numeric_strings:
        assert profile.numeric_min is not None and profile.numeric_max is not None
        ptype = _narrowest_int(profile.numeric_min, profile.numeric_max)
        span_bits = _int_bits(profile.numeric_min, profile.numeric_max)
        return rec(ptype, "numeric_string", span_bits)

    if kind in (TypeKind.INT, TypeKind.UINT, TypeKind.TIMESTAMP,
                TypeKind.DATE, TypeKind.YEAR):
        assert profile.min_int is not None and profile.max_int is not None
        ptype = _narrowest_int(profile.min_int, profile.max_int)
        span_bits = _int_bits(profile.min_int, profile.max_int)
        dict_bits = _dictionary_bits(profile, dictionary_max_distinct)
        if dict_bits is not None and dict_bits < min(span_bits, ptype.size * 8):
            return rec(ptype, "dictionary", dict_bits)
        if span_bits <= 8 and span_bits < declared_bits:
            # The paper's "easily be encoded in 8, or even 4 bits" case:
            # genuinely small value ranges get bit-packed.
            return rec(ptype, "bitpack_int", span_bits)
        if ptype.size < declared.size:
            # Wide ranges get the narrowest fixed type (a "simple
            # technique"); offset bit-packing would go further but is no
            # longer byte-addressable.
            return rec(ptype, "narrow_int", float(ptype.size * 8))
        return rec(declared, "keep", float(declared_bits))

    if kind in (TypeKind.CHAR, TypeKind.VARCHAR, TypeKind.TIMESTAMP_STRING):
        dict_bits = _dictionary_bits(profile, dictionary_max_distinct)
        trimmed = char(max(1, profile.max_strlen))
        trimmed_bits = trimmed.size * 8.0
        if dict_bits is not None and dict_bits < trimmed_bits:
            return rec(trimmed, "dictionary", dict_bits)
        if trimmed.size < declared.size:
            return rec(trimmed, "char_trim", trimmed_bits)
        return rec(declared, "keep", float(declared_bits))

    return rec(declared, "keep", float(declared_bits))


def _int_bits(lo: int, hi: int) -> float:
    """Bits per value to represent the observed closed range.

    Offset (frame-of-reference) encoding: ``value - lo`` needs
    ``bits_required(hi - lo)`` bits.
    """
    return float(bits_required(max(0, hi - lo)))


def _dictionary_bits(
    profile: ColumnProfile, max_distinct: int
) -> float | None:
    """Per-value bits for a dictionary code, or None when inapplicable.

    Amortises the dictionary blob over the rows: codes cost
    ``ceil(log2(d))`` bits, plus ``d × declared_size`` bytes of dictionary
    spread across ``count`` values.
    """
    if profile.distinct_capped or profile.distinct_count > max_distinct:
        return None
    d = profile.distinct_count
    if d <= 1:
        return 0.0
    code_bits = math.ceil(math.log2(d))
    dict_overhead_bits = d * profile.declared.size * 8 / profile.count
    return code_bits + dict_overhead_bits


def optimize_schema(
    schema: Schema,
    column_values: dict[str, list[object]],
    granularities: dict[str, str] | None = None,
) -> tuple[Schema, list[TypeRecommendation]]:
    """Rewrite a schema's stored types from observed data.

    Returns the physically-optimized schema (declared types preserved as
    hints, see :meth:`repro.schema.schema.Schema.with_stored_types`) and
    the per-column recommendations that justify it.
    """
    from repro.core.encoding.analyzer import profile_column

    granularities = granularities or {}
    recommendations: list[TypeRecommendation] = []
    stored: dict[str, PhysicalType] = {}
    for column in schema.columns:
        values = column_values.get(column.name)
        if not values:
            continue
        profile = profile_column(column.name, column.declared_type, values)
        recommendation = infer_column_type(
            profile, granularity=granularities.get(column.name)
        )
        recommendations.append(recommendation)
        if recommendation.recommended != column.declared_type:
            stored[column.name] = recommendation.recommended
    return schema.with_stored_types(stored), recommendations
