"""Concrete value codecs realising the §4.1 savings.

The inference layer *predicts* bit costs; these codecs *deliver* them with
real round-tripping bytes, so the waste report's numbers are backed by
working encoders rather than arithmetic alone:

* :class:`BitPackedIntCodec` — frame-of-reference + bit packing ("int
  fields that store small value ranges which can easily be encoded in 8,
  or even 4 bits").
* :class:`DictionaryCodec` — low-cardinality columns of any type.
* :class:`Timestamp14Codec` — MediaWiki's 14-byte ``YYYYMMDDHHMMSS``
  string to a 4-byte unix timestamp, the paper's flagship example.
* :class:`BooleanBitmapCodec` — "using bytes to store booleans".
* :class:`DeltaVarintCodec` — sorted id columns (auto-increment keys).
"""

from __future__ import annotations

import calendar
import time
from dataclasses import dataclass

from repro.errors import SchemaError, TypeMismatchError
from repro.util.bitpack import bits_required, pack_bits, unpack_bits
from repro.util.varint import decode_uvarint, encode_uvarint


@dataclass(frozen=True)
class BitPackedIntCodec:
    """Offset + fixed-bit-width packing for a known integer range."""

    offset: int
    bit_width: int

    @classmethod
    def for_range(cls, lo: int, hi: int) -> "BitPackedIntCodec":
        if hi < lo:
            raise SchemaError("range must satisfy hi >= lo")
        return cls(offset=lo, bit_width=bits_required(hi - lo))

    def encode(self, values: list[int]) -> bytes:
        shifted = [v - self.offset for v in values]
        for v in shifted:
            if v < 0:
                raise TypeMismatchError(
                    f"value {v + self.offset} below codec offset {self.offset}"
                )
        return pack_bits(shifted, self.bit_width)

    def decode(self, data: bytes, count: int) -> list[int]:
        return [v + self.offset for v in unpack_bits(data, self.bit_width, count)]

    @property
    def bits_per_value(self) -> float:
        return float(self.bit_width)


class DictionaryCodec:
    """Maps distinct values to dense bit-packed codes."""

    def __init__(self, dictionary: list[object]) -> None:
        if not dictionary:
            raise SchemaError("dictionary cannot be empty")
        if len(set(map(repr, dictionary))) != len(dictionary):
            raise SchemaError("dictionary entries must be distinct")
        self._values = list(dictionary)
        self._codes = {v: i for i, v in enumerate(dictionary)}
        self._bit_width = bits_required(max(0, len(dictionary) - 1))

    @classmethod
    def build(cls, values: list[object]) -> "DictionaryCodec":
        """Build from a column, dictionary ordered by first appearance."""
        seen: dict[object, None] = {}
        for v in values:
            seen.setdefault(v, None)
        return cls(list(seen))

    @property
    def size(self) -> int:
        return len(self._values)

    @property
    def bit_width(self) -> int:
        return self._bit_width

    def encode(self, values: list[object]) -> bytes:
        try:
            codes = [self._codes[v] for v in values]
        except KeyError as exc:
            raise TypeMismatchError(f"value {exc.args[0]!r} not in dictionary") from None
        return pack_bits(codes, self._bit_width) if values else b""

    def decode(self, data: bytes, count: int) -> list[object]:
        if count == 0:
            return []
        return [self._values[c] for c in unpack_bits(data, self._bit_width, count)]


class Timestamp14Codec:
    """``YYYYMMDDHHMMSS`` (14 bytes) <-> unix seconds (4 bytes).

    The paper: "Wikipedia's revision table uses a 14 byte string to
    represent a timestamp that can easily be encoded into a 4 byte
    timestamp."  Interprets the string as UTC.
    """

    SIZE_BEFORE = 14
    SIZE_AFTER = 4

    def encode_one(self, ts: str) -> int:
        if len(ts) != 14 or not ts.isdigit():
            raise TypeMismatchError(f"not a YYYYMMDDHHMMSS string: {ts!r}")
        parsed = time.strptime(ts, "%Y%m%d%H%M%S")
        epoch = calendar.timegm(parsed)
        if not 0 <= epoch < 2**32:
            raise TypeMismatchError(f"timestamp {ts!r} outside u32 epoch range")
        return epoch

    def decode_one(self, epoch: int) -> str:
        return time.strftime("%Y%m%d%H%M%S", time.gmtime(epoch))

    def encode(self, values: list[str]) -> bytes:
        return b"".join(
            self.encode_one(v).to_bytes(self.SIZE_AFTER, "little") for v in values
        )

    def decode(self, data: bytes, count: int) -> list[str]:
        if len(data) < count * self.SIZE_AFTER:
            raise SchemaError("timestamp stream too short")
        out = []
        for i in range(count):
            chunk = data[i * self.SIZE_AFTER : (i + 1) * self.SIZE_AFTER]
            out.append(self.decode_one(int.from_bytes(chunk, "little")))
        return out


class BooleanBitmapCodec:
    """Bools at one bit each instead of one byte."""

    def encode(self, values: list[bool]) -> bytes:
        return pack_bits([1 if v else 0 for v in values], 1) if values else b""

    def decode(self, data: bytes, count: int) -> list[bool]:
        if count == 0:
            return []
        return [bool(v) for v in unpack_bits(data, 1, count)]


class DeltaVarintCodec:
    """Non-decreasing integers as first value + varint deltas.

    Auto-increment id columns — the §4.2 target — compress to ~1 byte per
    value this way, which is the quantitative backdrop for "drop the id
    entirely and use the physical address".
    """

    def encode(self, values: list[int]) -> bytes:
        if not values:
            return b""
        out = bytearray(encode_uvarint(values[0]))
        prev = values[0]
        for v in values[1:]:
            delta = v - prev
            if delta < 0:
                raise TypeMismatchError(
                    "DeltaVarintCodec requires non-decreasing values"
                )
            out += encode_uvarint(delta)
            prev = v
        return bytes(out)

    def decode(self, data: bytes, count: int) -> list[int]:
        if count == 0:
            return []
        values = []
        offset = 0
        current, offset = decode_uvarint(data, offset)
        values.append(current)
        for _ in range(count - 1):
            delta, offset = decode_uvarint(data, offset)
            current += delta
            values.append(current)
        return values
