"""Encoding-waste reclamation (§4): schema types as hints, not contracts."""

from repro.core.encoding.analyzer import ColumnProfile, profile_column
from repro.core.encoding.inference import (
    TypeRecommendation,
    infer_column_type,
    optimize_schema,
)
from repro.core.encoding.codecs import (
    BitPackedIntCodec,
    BooleanBitmapCodec,
    DeltaVarintCodec,
    DictionaryCodec,
    Timestamp14Codec,
)
from repro.core.encoding.migrate import MigrationReport, migrate_table
from repro.core.encoding.report import (
    ColumnWaste,
    TableWasteReport,
    analyze_table_waste,
    format_waste_report,
)

__all__ = [
    "ColumnProfile",
    "profile_column",
    "TypeRecommendation",
    "infer_column_type",
    "optimize_schema",
    "BitPackedIntCodec",
    "BooleanBitmapCodec",
    "DeltaVarintCodec",
    "DictionaryCodec",
    "Timestamp14Codec",
    "ColumnWaste",
    "TableWasteReport",
    "analyze_table_waste",
    "format_waste_report",
    "MigrationReport",
    "migrate_table",
]
