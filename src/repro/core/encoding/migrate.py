"""Physical schema migration: apply the §4.1 rewrite to a live table.

"...automated tools can infer true field types and value distributions to
modify internal field definitions and minimize encoding waste, or suggest
these optimizations to the user."

:func:`migrate_table` is the *modify* half: it profiles a populated table,
derives the minimal physical schema, rewrites every row into a new heap in
that schema — converting representations where the strategy demands it
(timestamp strings to epochs, flag ints to booleans, numeric strings to
ints) — and reports the byte savings.  Every conversion is verified
row-by-row through its inverse; only explicit granularity rewrites
(``year_granularity``) are lossy, and those verify the retained precision.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable

from repro.core.encoding.codecs import Timestamp14Codec
from repro.core.encoding.inference import TypeRecommendation, optimize_schema
from repro.errors import SchemaError
from repro.obs.registry import MetricsRegistry, resolve_registry
from repro.query.table import Table
from repro.schema.record import pack_record_map, unpack_record_map
from repro.schema.schema import Schema
from repro.storage.heap import HeapFile

_TS14 = Timestamp14Codec()


@dataclass(frozen=True)
class ValueConverter:
    """Per-column value conversion for a representation change.

    ``forward`` maps a declared-form value to its physical form;
    ``backward`` inverts it.  ``lossy`` marks conversions that discard
    information on purpose (the §4 granularity rewrites), where only the
    retained granularity can be verified.
    """

    forward: Callable[[object], object]
    backward: Callable[[object], object]
    lossy: bool = False


def _identity(value: object) -> object:
    return value


def converter_for(rec: TypeRecommendation) -> ValueConverter:
    """The value conversion implied by one recommendation's strategy."""
    if rec.strategy == "timestamp_pack":
        return ValueConverter(
            forward=lambda v: _TS14.encode_one(str(v)),
            backward=lambda v: _TS14.decode_one(int(v)),  # type: ignore[arg-type]
        )
    if rec.strategy == "bool":
        return ValueConverter(
            forward=lambda v: bool(v),
            backward=lambda v: int(bool(v)),
        )
    if rec.strategy == "numeric_string":
        return ValueConverter(
            forward=lambda v: int(str(v)),
            backward=lambda v: str(v),
        )
    if rec.strategy == "year_granularity":
        return ValueConverter(
            forward=_year_of, backward=lambda v: int(v), lossy=True,  # type: ignore[arg-type]
        )
    # narrow_int / bitpack_int / char_trim / dictionary / keep / constant
    # preserve values exactly.
    return ValueConverter(forward=_identity, backward=_identity)


def _year_of(value: object) -> int:
    """Extract the year from any timestamp-family declared value."""
    if isinstance(value, str):
        if len(value) >= 4 and value[:4].isdigit():
            return int(value[:4])
        raise SchemaError(f"cannot extract a year from {value!r}")
    return time.gmtime(int(value)).tm_year  # type: ignore[arg-type]


@dataclass(frozen=True)
class MigrationReport:
    """Outcome of one table migration."""

    table: str
    rows: int
    old_record_bytes: int
    new_record_bytes: int
    old_heap_pages: int
    new_heap_pages: int
    recommendations: tuple[TypeRecommendation, ...]

    @property
    def record_shrink_fraction(self) -> float:
        if self.old_record_bytes == 0:
            return 0.0
        return 1.0 - self.new_record_bytes / self.old_record_bytes

    @property
    def page_shrink_factor(self) -> float:
        if self.new_heap_pages == 0:
            return 1.0
        return self.old_heap_pages / self.new_heap_pages


def migrate_table(
    table: Table,
    target_heap: HeapFile,
    granularities: dict[str, str] | None = None,
    sample_rows: int | None = None,
    verify: bool = True,
    registry: MetricsRegistry | None = None,
) -> tuple[Table, Schema, MigrationReport]:
    """Rewrite ``table`` into ``target_heap`` under its inferred schema.

    Args:
        table: the populated source table (its declared schema is the
            "hint" being overridden).
        target_heap: destination heap (usually from a fresh pool/db).
        granularities: semantic hints per column (e.g. ``{"ts": "year"}``).
        sample_rows: profile only the first N rows (full data is still
            migrated); ``None`` profiles everything.
        verify: re-read each migrated row and compare against the source.

    Returns ``(new_table, optimized_schema, report)``.  The new table has
    no indexes attached — index choice is workload policy, not migration.
    """
    rows = [row for _, row in _scan_rows(table)]
    if not rows:
        raise SchemaError(f"table {table.name!r} is empty; nothing to migrate")
    profile_rows = rows[:sample_rows] if sample_rows else rows
    column_values = {
        name: [row[name] for row in profile_rows]
        for name in table.schema.names
    }
    optimized, recommendations = optimize_schema(
        table.schema, column_values, granularities=granularities
    )
    converters = {rec.column: converter_for(rec) for rec in recommendations}
    identity = ValueConverter(forward=_identity, backward=_identity)
    new_table = Table(f"{table.name}__optimized", optimized, target_heap)
    for row in rows:
        converted = {
            name: converters.get(name, identity).forward(value)
            for name, value in row.items()
        }
        rid = target_heap.insert(pack_record_map(optimized, converted))
        if verify:
            back = unpack_record_map(optimized, target_heap.fetch(rid))
            for name, original in row.items():
                conv = converters.get(name, identity)
                if conv.lossy:
                    # granularity rewrites: only the kept precision exists
                    if conv.forward(original) != back[name]:
                        raise SchemaError(
                            f"granularity mismatch in {name!r}"
                        )
                elif conv.backward(back[name]) != original:
                    raise SchemaError(
                        f"lossy migration of {name!r}: "
                        f"{original!r} -> {back[name]!r}"
                    )
    report = MigrationReport(
        table=table.name,
        rows=len(rows),
        old_record_bytes=table.schema.record_size,
        new_record_bytes=optimized.record_size,
        old_heap_pages=table.heap.num_pages,
        new_heap_pages=target_heap.num_pages,
        recommendations=tuple(recommendations),
    )
    reg = resolve_registry(registry)
    reg.counter("encoding.migrate.tables").inc()
    reg.counter("encoding.migrate.rows").inc(report.rows)
    reg.counter("encoding.migrate.bytes_saved").inc(
        report.rows
        * max(0, report.old_record_bytes - report.new_record_bytes)
    )
    reg.counter("encoding.migrate.pages_reclaimed").inc(
        max(0, report.old_heap_pages - report.new_heap_pages)
    )
    return new_table, optimized, report


def _scan_rows(table: Table):
    for rid, record in table.heap.scan():
        yield rid, unpack_record_map(table.schema, record)
