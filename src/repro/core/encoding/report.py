"""Waste reporting (§4.1's 16%–83% analysis).

Turns per-column :class:`TypeRecommendation`\\ s into the table- and
database-level accounting the paper reports: declared bytes vs minimal
bytes, per-column and per-table waste fractions, and the database total
("over 23.5 GB (20%) of waste in the tables we inspected").
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.encoding.analyzer import profile_column
from repro.core.encoding.inference import TypeRecommendation, infer_column_type
from repro.errors import SchemaError
from repro.schema.schema import Schema
from repro.util.units import fmt_bytes


@dataclass(frozen=True)
class ColumnWaste:
    """Space accounting for one column across all rows."""

    name: str
    declared_type: str
    recommended_type: str
    strategy: str
    rows: int
    declared_bytes: float
    optimal_bytes: float

    @property
    def waste_bytes(self) -> float:
        return max(0.0, self.declared_bytes - self.optimal_bytes)

    @property
    def waste_fraction(self) -> float:
        if self.declared_bytes == 0:
            return 0.0
        return self.waste_bytes / self.declared_bytes


@dataclass(frozen=True)
class TableWasteReport:
    """Space accounting for one table."""

    table: str
    rows: int
    columns: tuple[ColumnWaste, ...]

    @property
    def declared_bytes(self) -> float:
        return sum(c.declared_bytes for c in self.columns)

    @property
    def optimal_bytes(self) -> float:
        return sum(c.optimal_bytes for c in self.columns)

    @property
    def waste_bytes(self) -> float:
        return max(0.0, self.declared_bytes - self.optimal_bytes)

    @property
    def waste_fraction(self) -> float:
        if self.declared_bytes == 0:
            return 0.0
        return self.waste_bytes / self.declared_bytes


def analyze_table_waste(
    table: str,
    schema: Schema,
    column_values: dict[str, list[object]],
    granularities: dict[str, str] | None = None,
) -> TableWasteReport:
    """Profile every provided column and produce the table's waste report.

    ``column_values`` maps column name to the full value list; every column
    must have the same row count.
    """
    granularities = granularities or {}
    rows = None
    wastes: list[ColumnWaste] = []
    for column in schema.columns:
        values = column_values.get(column.name)
        if values is None:
            continue
        if rows is None:
            rows = len(values)
        elif len(values) != rows:
            raise SchemaError(
                f"column {column.name!r} has {len(values)} values, "
                f"expected {rows}"
            )
        profile = profile_column(column.name, column.declared_type, values)
        recommendation = infer_column_type(
            profile, granularity=granularities.get(column.name)
        )
        wastes.append(_column_waste(recommendation, len(values)))
    if rows is None:
        raise SchemaError(f"no column values provided for table {table!r}")
    return TableWasteReport(table=table, rows=rows, columns=tuple(wastes))


def _column_waste(rec: TypeRecommendation, rows: int) -> ColumnWaste:
    return ColumnWaste(
        name=rec.column,
        declared_type=rec.declared.name,
        recommended_type=rec.recommended.name,
        strategy=rec.strategy,
        rows=rows,
        declared_bytes=rows * rec.declared_bits / 8.0,
        optimal_bytes=rows * rec.recommended_bits / 8.0,
    )


def database_waste_fraction(reports: list[TableWasteReport]) -> float:
    """Database-wide waste fraction across multiple table reports."""
    declared = sum(r.declared_bytes for r in reports)
    waste = sum(r.waste_bytes for r in reports)
    return waste / declared if declared else 0.0


def format_waste_report(report: TableWasteReport) -> str:
    """Render a report as the fixed-width table the benchmarks print."""
    lines = [
        f"table {report.table}  ({report.rows} rows): "
        f"{fmt_bytes(report.declared_bytes)} declared, "
        f"{fmt_bytes(report.optimal_bytes)} minimal, "
        f"{report.waste_fraction:.0%} waste",
        f"  {'column':<16} {'declared':<16} {'recommended':<16} "
        f"{'strategy':<16} {'waste':>6}",
    ]
    for col in report.columns:
        lines.append(
            f"  {col.name:<16} {col.declared_type:<16} "
            f"{col.recommended_type:<16} {col.strategy:<16} "
            f"{col.waste_fraction:>6.0%}"
        )
    return "\n".join(lines)
