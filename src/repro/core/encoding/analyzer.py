"""Column analyzers (§4.1): learn what a column *actually* stores.

"Column values can be analyzed to understand the typical value range or
the content properties (e.g., only numerical strings) and compare them
against the declared types in the schema."  A :class:`ColumnProfile` is
that analysis: one pass over the values, collecting exactly the properties
the type-inference rules in :mod:`repro.core.encoding.inference` consume.
"""

from __future__ import annotations

import re
from dataclasses import dataclass

from repro.errors import SchemaError
from repro.schema.types import PhysicalType, TypeKind

_TS14_RE = re.compile(r"^\d{14}$")
_NUMERIC_RE = re.compile(r"^-?\d+$")


@dataclass(frozen=True)
class ColumnProfile:
    """One-pass statistics over a column's values.

    ``distinct_count`` is exact up to ``distinct_cap`` and saturates there
    (reported as ``distinct_capped=True``) — the dictionary-encoding rule
    only cares whether cardinality is small.
    """

    name: str
    declared: PhysicalType
    count: int
    distinct_count: int
    distinct_capped: bool
    # integer-family facts (None when not applicable)
    min_int: int | None
    max_int: int | None
    bool_like: bool
    # string-family facts
    max_strlen: int
    all_numeric_strings: bool
    all_timestamp14_strings: bool
    numeric_min: int | None
    numeric_max: int | None
    is_constant: bool

    @property
    def int_range_span(self) -> int | None:
        if self.min_int is None or self.max_int is None:
            return None
        return self.max_int - self.min_int


def profile_column(
    name: str,
    declared: PhysicalType,
    values: list[object],
    distinct_cap: int = 65536,
) -> ColumnProfile:
    """Profile ``values`` (all of them) against their declared type."""
    if not values:
        raise SchemaError(f"cannot profile empty column {name!r}")
    kind = declared.kind
    distinct: set[object] = set()
    capped = False

    min_int: int | None = None
    max_int: int | None = None
    bool_like = True

    max_strlen = 0
    all_numeric = True
    all_ts14 = True
    numeric_min: int | None = None
    numeric_max: int | None = None

    int_family = kind in (
        TypeKind.INT, TypeKind.UINT, TypeKind.TIMESTAMP, TypeKind.DATE,
        TypeKind.YEAR, TypeKind.BOOL,
    )
    str_family = kind in (
        TypeKind.CHAR, TypeKind.VARCHAR, TypeKind.TIMESTAMP_STRING,
    )

    for value in values:
        if len(distinct) < distinct_cap:
            distinct.add(value)
        elif value not in distinct:
            capped = True
        if int_family:
            iv = int(value)  # type: ignore[arg-type]
            min_int = iv if min_int is None else min(min_int, iv)
            max_int = iv if max_int is None else max(max_int, iv)
            if iv not in (0, 1):
                bool_like = False
        elif str_family:
            sv = str(value)
            max_strlen = max(max_strlen, len(sv))
            if all_ts14 and not _TS14_RE.match(sv):
                all_ts14 = False
            if all_numeric and _NUMERIC_RE.match(sv):
                nv = int(sv)
                numeric_min = nv if numeric_min is None else min(numeric_min, nv)
                numeric_max = nv if numeric_max is None else max(numeric_max, nv)
            else:
                all_numeric = False
        else:
            bool_like = False
            all_numeric = False
            all_ts14 = False

    if not int_family:
        bool_like = False
    if not str_family:
        all_numeric = False
        all_ts14 = False

    return ColumnProfile(
        name=name,
        declared=declared,
        count=len(values),
        distinct_count=len(distinct),
        distinct_capped=capped,
        min_int=min_int,
        max_int=max_int,
        bool_like=bool_like,
        max_strlen=max_strlen,
        all_numeric_strings=all_numeric,
        all_timestamp14_strings=all_ts14,
        numeric_min=numeric_min,
        numeric_max=numeric_max,
        is_constant=len(distinct) == 1 and not capped,
    )
