"""Column-major mirror of a table heap (§3 hot partition, column form).

A :class:`ColumnStore` shadows one table's heap as a list of
:class:`ColumnSegment` chunks: per-column Python lists (the decoded
working set the batch kernels run over) plus a liveness vector.  Sealed
segments additionally carry their :mod:`repro.columnar.codecs` encoded
form for the waste accounting the paper cares about; the open tail
segment stays decoded-only until it fills.

The mirror is *derived* state, maintained the same way indexes are: the
table notifies it after every applied heap mutation
(:meth:`note_insert` / :meth:`note_update` / :meth:`note_delete`).  It
builds lazily on first columnar read and rebuilds whenever it detects
it has diverged from the heap (e.g. out-of-band heap surgery by the
recovery layer), so a stale mirror degrades to a rebuild, never to a
wrong answer.  Every mutation bumps ``epoch`` — the fingerprint cache's
validity token.

Scans must be *byte-identical* to the row executor, which yields rows
in heap order (ascending page id, ascending live slot).  The store
tracks position-by-RID so :meth:`heap_order_positions` can emit exactly
that order even though segment order is insertion order.
"""

from __future__ import annotations

from repro.columnar.codecs import EncodedColumn, encode_column, raw_bytes
from repro.schema.record import unpack_record_map
from repro.schema.schema import Schema
from repro.storage.heap import Rid

#: Rows per segment: large enough that one kernel dispatch amortizes over
#: ~1k tuples, small enough that a patch re-encode stays cheap.
SEGMENT_ROWS = 1024


class ColumnSegment:
    """A fixed-capacity chunk of the mirror: decoded vectors + liveness."""

    __slots__ = ("columns", "live", "count", "live_count", "sealed", "_encoded")

    def __init__(self, names: tuple[str, ...]) -> None:
        self.columns: dict[str, list] = {name: [] for name in names}
        self.live: list[bool] = []
        self.count = 0
        self.live_count = 0
        self.sealed = False
        self._encoded: dict[str, EncodedColumn] | None = None

    def append(self, row: dict[str, object]) -> int:
        position = self.count
        for name, vector in self.columns.items():
            vector.append(row[name])
        self.live.append(True)
        self.count += 1
        self.live_count += 1
        self._encoded = None
        return position

    def patch(self, position: int, row: dict[str, object]) -> None:
        for name, vector in self.columns.items():
            vector[position] = row[name]
        self._encoded = None

    def kill(self, position: int) -> None:
        if self.live[position]:
            self.live[position] = False
            self.live_count -= 1
            self._encoded = None

    def encoded_columns(self, schema: Schema) -> dict[str, EncodedColumn]:
        """Encoded form of every column (cached until the next mutation)."""
        if self._encoded is None:
            self._encoded = {
                column.name: encode_column(
                    column, self.columns[column.name], self.live
                )
                for column in schema.columns
            }
        return self._encoded


class ColumnStore:
    """The columnar mirror of one table's heap."""

    def __init__(self, table, segment_rows: int = SEGMENT_ROWS) -> None:
        self._table = table
        self._schema: Schema = table.schema
        self._segment_rows = max(1, segment_rows)
        self.segments: list[ColumnSegment] = []
        #: Rid -> (segment index, position); the bridge back to heap order.
        self._positions: dict[Rid, tuple[int, int]] = {}
        self.built = False
        #: Bumped on every mutation (and on invalidate); cache validity token.
        self.epoch = 0
        #: Set when a notification can't be applied in place (unknown RID);
        #: the next read rebuilds instead of guessing.
        self._stale = False
        self.rebuilds = 0
        self.sealed_total = 0
        #: Heap-order (segment, position) list, memoized per epoch.
        self._order: list[tuple[int, int]] | None = None

    @property
    def table(self):
        return self._table

    # -- maintenance -------------------------------------------------------

    def invalidate(self) -> None:
        """Drop the mirror; the next columnar read rebuilds from the heap."""
        self.built = False
        self._stale = False
        self.segments = []
        self._positions = {}
        self._order = None
        self.epoch += 1

    def note_insert(self, rid: Rid, row: dict[str, object]) -> None:
        self.epoch += 1
        self._order = None
        if not self.built:
            return
        if rid in self._positions:  # heap slot reuse out from under us
            self._stale = True
            return
        if not self.segments or self.segments[-1].count >= self._segment_rows:
            if self.segments:
                self.segments[-1].sealed = True
                self.sealed_total += 1
            self.segments.append(ColumnSegment(self._schema.names))
        position = self.segments[-1].append(row)
        self._positions[rid] = (len(self.segments) - 1, position)

    def note_update(self, rid: Rid, row: dict[str, object]) -> None:
        self.epoch += 1
        if not self.built:
            return
        where = self._positions.get(rid)
        if where is None:
            self._stale = True
            return
        self.segments[where[0]].patch(where[1], row)

    def note_delete(self, rid: Rid) -> None:
        self.epoch += 1
        if not self.built:
            return
        where = self._positions.pop(rid, None)
        if where is None:
            self._stale = True
            return
        self.segments[where[0]].kill(where[1])

    # -- consistency -------------------------------------------------------

    @property
    def live_rows(self) -> int:
        return sum(segment.live_count for segment in self.segments)

    def ensure_current(self) -> None:
        """Rebuild if the mirror is unbuilt, flagged stale, or has visibly
        diverged from the heap (live-row cardinality disagreement catches
        out-of-band mutations that bypassed the Table write paths)."""
        if (
            not self.built
            or self._stale
            or self.live_rows != self._table.heap.num_records
        ):
            self.rebuild()

    def rebuild(self) -> None:
        self.invalidate()
        names = self._schema.names
        segments = self.segments
        positions = self._positions
        for rid, record in self._table.heap.scan():
            row = unpack_record_map(self._schema, record)
            if not segments or segments[-1].count >= self._segment_rows:
                if segments:
                    segments[-1].sealed = True
                    self.sealed_total += 1
                segments.append(ColumnSegment(names))
            positions[rid] = (len(segments) - 1, segments[-1].append(row))
        self.built = True
        self.rebuilds += 1

    # -- reads -------------------------------------------------------------

    def heap_order(self) -> list[tuple[int, int]]:
        """(segment, position) pairs in heap order — the exact row order
        ``Table._scan_rows`` produces, so materialized output is
        list-identical to the row executor's.  Memoized until the next
        insert or rebuild; deleted positions may linger in the memo and
        are skipped by the liveness mask the executor applies.
        """
        if self._order is None:
            by_page: dict[int, list[tuple[int, Rid]]] = {}
            for rid in self._positions:
                by_page.setdefault(rid.page_id, []).append((rid.slot, rid))
            order: list[tuple[int, int]] = []
            positions = self._positions
            for page_id in self._table.heap.page_ids:
                slots = by_page.get(page_id)
                if not slots:
                    continue
                slots.sort()
                order.extend(positions[rid] for _, rid in slots)
            self._order = order
        return self._order

    # -- accounting --------------------------------------------------------

    def encoded_bytes(self) -> int:
        """Encoded footprint of sealed segments (open tail excluded)."""
        return sum(
            encoded.encoded_bytes
            for segment in self.segments
            if segment.sealed
            for encoded in segment.encoded_columns(self._schema).values()
        )

    def raw_bytes(self) -> int:
        """Row-format footprint of the same sealed positions."""
        return sum(
            raw_bytes(column, segment.count)
            for segment in self.segments
            if segment.sealed
            for column in self._schema.columns
        )
