"""Columnar batch execution for the hot partition (DESIGN.md §5h).

The row engine's per-tuple interpreter loop is the dominant cost on
scan/aggregate-heavy workloads.  This package mirrors a table's heap
column-major (:mod:`store`), compresses sealed segments with the §4
encoding-waste codecs (:mod:`codecs`), filters and aggregates whole
column vectors per interpreter step (:mod:`executor`), and reuses
scan/aggregate fragments across repeated query fingerprints with
epoch + CSN invalidation (:mod:`cache`).  ``Database.enable_columnar()``
is the only entry point; the row executor remains the oracle and serves
any predicate the vectorized path cannot compile.
"""

from repro.columnar.cache import IntermediateCache
from repro.columnar.codecs import EncodedColumn, decode_column, encode_column
from repro.columnar.executor import compile_predicate
from repro.columnar.manager import ColumnarManager, TableColumnar
from repro.columnar.store import ColumnSegment, ColumnStore, SEGMENT_ROWS

__all__ = [
    "ColumnSegment",
    "ColumnStore",
    "ColumnarManager",
    "EncodedColumn",
    "IntermediateCache",
    "SEGMENT_ROWS",
    "TableColumnar",
    "compile_predicate",
    "decode_column",
    "encode_column",
]
