"""Intermediate-result reuse with epoch + CSN invalidation.

"Revisiting Reuse in Main Memory Database Systems" (PAPERS.md)
motivates caching scan/aggregate intermediates: analytic workloads
re-issue the same fingerprints far more often than the data changes.
The cache key is the PR-5 profiler fingerprint extended with the
canonical predicate text (fingerprints normalize away constants — two
scans with different range bounds share a fingerprint but are different
results).

Invalidation rule (DESIGN.md §5h): an entry is valid only while *both*
capture tokens still hold —

* the table's mutation ``epoch`` (bumped by every applied heap write,
  including MVCC compensation writes during abort), and
* the engine commit sequence number (CSN) at capture time.

Either token moving means the fragment may describe dead state, so the
entry is dropped on its next touch.  The epoch already makes stale
reads impossible at the Table layer; the CSN term additionally retires
fragments across commit boundaries so an MVCC session never has its
overlay applied on top of a pre-commit fragment captured under a
different snapshot regime.
"""

from __future__ import annotations

from collections import OrderedDict


class CacheEntry:
    __slots__ = ("epoch", "csn", "value")

    def __init__(self, epoch: int, csn: int, value) -> None:
        self.epoch = epoch
        self.csn = csn
        self.value = value


class IntermediateCache:
    """A small LRU of reusable scan/aggregate fragments."""

    def __init__(self, capacity: int = 256) -> None:
        self._capacity = max(1, capacity)
        self._entries: OrderedDict[tuple, CacheEntry] = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.invalidations = 0

    def __len__(self) -> int:
        return len(self._entries)

    def get(self, key: tuple, epoch: int, csn: int):
        """The cached value, or None on miss / staleness (entry dropped)."""
        entry = self._entries.get(key)
        if entry is None:
            self.misses += 1
            return None
        if entry.epoch != epoch or entry.csn != csn:
            del self._entries[key]
            self.invalidations += 1
            self.misses += 1
            return None
        self._entries.move_to_end(key)
        self.hits += 1
        return entry.value

    def put(self, key: tuple, epoch: int, csn: int, value) -> None:
        self._entries[key] = CacheEntry(epoch, csn, value)
        self._entries.move_to_end(key)
        while len(self._entries) > self._capacity:
            self._entries.popitem(last=False)

    def clear(self) -> None:
        self._entries.clear()

    def reset_stats(self) -> None:
        self.hits = 0
        self.misses = 0
        self.invalidations = 0
