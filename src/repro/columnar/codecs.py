"""Per-column physical codecs for the columnar mirror (§3 + §4).

The row engine already knows how to squeeze waste out of individual
values (``repro.core.encoding.codecs``); this module lifts those codecs
to whole *column vectors*.  A sealed column segment stores each column
as one :class:`EncodedColumn`: a validity bitmap (1 bit per position,
dead slots stay addressable so positions line up across columns) plus a
payload encoded by whichever codec wins for the live values actually
present — bit-packed frame-of-reference for the int family, delta
varints when the vector happens to be sorted, dictionary or raw
fixed-width bytes for strings, packed bitmaps for booleans.

The contract is the one the round-trip property tests enforce: for
every *live* position, ``decode_column`` must return a value whose
``ctype.pack`` bytes are identical to the original's — columnar
materialization is byte-equivalent to the row path.  Dead positions
round-trip as an arbitrary in-domain fill value and are never read.
"""

from __future__ import annotations

import struct

from repro.core.encoding.codecs import (
    BitPackedIntCodec,
    BooleanBitmapCodec,
    DeltaVarintCodec,
    DictionaryCodec,
    Timestamp14Codec,
)
from repro.errors import SchemaError, TypeMismatchError
from repro.schema.schema import Column
from repro.schema.types import TypeKind
from repro.util.bitpack import pack_bits, unpack_bits

#: TypeKinds stored as Python ints — all eligible for bit-packing.
INT_KINDS = frozenset(
    {TypeKind.INT, TypeKind.UINT, TypeKind.TIMESTAMP, TypeKind.DATE, TypeKind.YEAR}
)
#: TypeKinds stored as Python strs.
STRING_KINDS = frozenset(
    {TypeKind.CHAR, TypeKind.VARCHAR, TypeKind.TIMESTAMP_STRING}
)

#: Dictionary encoding pays off only while the dictionary stays small
#: relative to the vector; past this many distinct values fall back to
#: raw fixed-width bytes.
_DICT_MAX_DISTINCT = 256


class EncodedColumn:
    """One column vector in encoded form.

    ``count`` covers every position including dead ones; ``validity``
    is the 1-bit-per-position liveness bitmap.  ``codec`` carries the
    stateful decoder (bit-pack range, dictionary) when one is needed.
    """

    __slots__ = ("name", "encoding", "count", "payload", "validity", "codec")

    def __init__(self, name, encoding, count, payload, validity, codec=None):
        self.name = name
        self.encoding = encoding
        self.count = count
        self.payload = payload
        self.validity = validity
        self.codec = codec

    @property
    def encoded_bytes(self) -> int:
        """Size of the encoded representation (payload + validity)."""
        return len(self.payload) + len(self.validity)


def default_fill(column: Column) -> object:
    """An in-domain throwaway value used to plug dead positions."""
    kind = column.ctype.kind
    if kind is TypeKind.BOOL:
        return False
    if kind in INT_KINDS:
        return 0
    if kind is TypeKind.FLOAT:
        return 0.0
    return ""


def _pack_validity(live: list[bool]) -> bytes:
    if not live:
        return b""
    return pack_bits([1 if alive else 0 for alive in live], 1)


def _unpack_validity(validity: bytes, count: int) -> list[bool]:
    if count == 0:
        return []
    return [bool(bit) for bit in unpack_bits(validity, 1, count)]


def _non_decreasing(values: list[int]) -> bool:
    return all(a <= b for a, b in zip(values, values[1:]))


def _encode_ints(name, full, validity) -> EncodedColumn:
    lo, hi = min(full), max(full)
    bitpack = BitPackedIntCodec.for_range(lo, hi)
    payload = bitpack.encode(full)
    codec: object = bitpack
    encoding = "bitpack"
    if lo >= 0 and _non_decreasing(full):  # uvarint head: no negatives
        delta = DeltaVarintCodec().encode(full)
        if len(delta) < len(payload):
            payload, codec, encoding = delta, None, "delta"
    return EncodedColumn(name, encoding, len(full), payload, validity, codec)


def _encode_strings(column: Column, full, validity) -> EncodedColumn:
    name = column.name
    if column.ctype.kind is TypeKind.TIMESTAMP_STRING:
        try:
            payload = Timestamp14Codec().encode(full)
            return EncodedColumn(name, "ts14", len(full), payload, validity)
        except TypeMismatchError:
            pass  # out-of-format strings: fall through to generic paths
    if len(set(full)) <= min(_DICT_MAX_DISTINCT, max(1, len(full))):
        codec = DictionaryCodec.build(full)
        payload = codec.encode(full)
        return EncodedColumn(name, "dict", len(full), payload, validity, codec)
    raw = b"".join(column.ctype.pack(value) for value in full)
    return EncodedColumn(name, "raw", len(full), raw, validity)


def encode_column(
    column: Column, values: list[object], live: list[bool]
) -> EncodedColumn:
    """Encode one column vector (``values[i]`` live iff ``live[i]``)."""
    if len(values) != len(live):
        raise SchemaError("values and liveness bitmap disagree on length")
    validity = _pack_validity(live)
    fill = next(
        (v for v, alive in zip(values, live) if alive), default_fill(column)
    )
    full = [v if alive else fill for v, alive in zip(values, live)]
    kind = column.ctype.kind
    name = column.name
    if not full:
        return EncodedColumn(name, "empty", 0, b"", b"")
    if kind is TypeKind.BOOL:
        payload = BooleanBitmapCodec().encode([bool(v) for v in full])
        return EncodedColumn(name, "bool", len(full), payload, validity)
    if kind in INT_KINDS:
        return _encode_ints(name, [int(v) for v in full], validity)
    if kind is TypeKind.FLOAT:
        payload = struct.pack(f"<{len(full)}d", *[float(v) for v in full])
        return EncodedColumn(name, "float", len(full), payload, validity)
    if kind in STRING_KINDS:
        return _encode_strings(column, [str(v) for v in full], validity)
    raise SchemaError(f"unhandled column kind {kind}")  # pragma: no cover


def decode_column(
    column: Column, encoded: EncodedColumn
) -> tuple[list[object], list[bool]]:
    """Inverse of :func:`encode_column` → ``(values, live)``."""
    count = encoded.count
    if count == 0:
        return [], []
    live = _unpack_validity(encoded.validity, count)
    encoding = encoded.encoding
    if encoding == "bool":
        values: list[object] = BooleanBitmapCodec().decode(encoded.payload, count)
    elif encoding == "bitpack":
        values = encoded.codec.decode(encoded.payload, count)
    elif encoding == "delta":
        values = DeltaVarintCodec().decode(encoded.payload, count)
    elif encoding == "float":
        values = list(struct.unpack(f"<{count}d", encoded.payload))
    elif encoding == "ts14":
        values = Timestamp14Codec().decode(encoded.payload, count)
    elif encoding == "dict":
        values = encoded.codec.decode(encoded.payload, count)
    elif encoding == "raw":
        size = column.ctype.size
        values = [
            column.ctype.unpack(encoded.payload[i * size : (i + 1) * size])
            for i in range(count)
        ]
    else:  # pragma: no cover - encode_column never emits other tags
        raise SchemaError(f"unknown column encoding {encoding!r}")
    return values, live


def raw_bytes(column: Column, count: int) -> int:
    """Row-format footprint of ``count`` values (the comparison base)."""
    return column.ctype.size * count
