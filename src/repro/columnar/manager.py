"""ColumnarManager: wiring, metrics, and the per-table binding.

One manager per database (built by ``Database.enable_columnar()``): it
owns a :class:`~repro.columnar.store.ColumnStore` per attached table,
the shared :class:`~repro.columnar.cache.IntermediateCache`, and the
``columnar.*`` metrics family.  Instruments register at construction so
the metric-name lint sees the family even before any columnar read.

Each attached table gets a :class:`TableColumnar` binding (the table's
``columnar`` attribute).  The binding is deliberately thin: the table
calls ``plan_scan`` first — a ``None`` plan means "predicate not
vectorizable, use the row path" and the table falls through *before*
opening its profiler bracket, so an operation is never double-bracketed.

Reset contract: ``reset_metrics`` hangs off
``BufferPool.add_obs_reset_hook`` exactly like ``txn.*`` and
``faults.*``, so ``reset_counters(reset_obs=True)`` zeroes the family.
"""

from __future__ import annotations

from repro.columnar.cache import IntermediateCache
from repro.columnar.executor import (
    aggregate_segments,
    compile_predicate,
    materialize,
    select_segments,
)
from repro.columnar.store import SEGMENT_ROWS, ColumnStore
from repro.obs.registry import MetricsRegistry, resolve_registry


def predicate_key(predicate) -> str:
    """Canonical text of a predicate tree, stable across processes.

    ``repr`` of the dataclass tree is deterministic except for
    ``ColumnIn``'s frozenset ordering, which follows hash order — so
    set members are rendered sorted by their own repr.
    """
    values = getattr(predicate, "values", None)
    if isinstance(values, frozenset):
        members = ",".join(sorted(repr(v) for v in values))
        return f"In({predicate.column!r},{{{members}}})"
    parts = getattr(predicate, "parts", None)
    if parts is not None:
        inner = ",".join(predicate_key(p) for p in parts)
        return f"{type(predicate).__name__}({inner})"
    inner = getattr(predicate, "inner", None)
    if inner is not None:
        return f"{type(predicate).__name__}({predicate_key(inner)})"
    return repr(predicate)


class ColumnarManager:
    """Owns the columnar mirrors, the fragment cache, and ``columnar.*``."""

    def __init__(
        self,
        database,
        registry: MetricsRegistry | None = None,
        segment_rows: int = SEGMENT_ROWS,
        cache_entries: int = 256,
    ) -> None:
        self._db = database
        self._segment_rows = segment_rows
        self._stores: dict[str, ColumnStore] = {}
        self.cache = IntermediateCache(cache_entries)
        registry = resolve_registry(registry)
        self._m_scans = registry.counter("columnar.scans")
        self._m_aggregates = registry.counter("columnar.aggregates")
        self._m_fallbacks = registry.counter("columnar.fallbacks")
        self._m_rebuilds = registry.counter("columnar.rebuilds")
        self._m_sealed = registry.counter("columnar.segments_sealed")
        self._m_rows = registry.gauge("columnar.rows")
        self._m_segments = registry.gauge("columnar.segments")
        self._m_bytes_encoded = registry.gauge("columnar.bytes_encoded")
        self._m_bytes_raw = registry.gauge("columnar.bytes_raw")
        self._m_cache_hits = registry.counter("columnar.cache.hits")
        self._m_cache_misses = registry.counter("columnar.cache.misses")
        self._m_cache_invalidations = registry.counter(
            "columnar.cache.invalidations"
        )
        self._m_cache_entries = registry.gauge("columnar.cache.entries")
        self._rebuilds_seen = 0
        self._sealed_seen = 0
        self._cache_hits_seen = 0
        self._cache_misses_seen = 0
        self._cache_invalidations_seen = 0

    # -- wiring ------------------------------------------------------------

    def attach(self, table) -> "TableColumnar":
        """Mirror ``table`` (idempotent) and hand it its binding."""
        store = self._stores.get(table.name)
        if store is None or store.table is not table:
            # New table, or the name was dropped and re-created: never
            # serve a mirror of a table object that left the catalog.
            store = ColumnStore(table, segment_rows=self._segment_rows)
            self._stores[table.name] = store
        if table.columnar is None or table.columnar.store is not store:
            table.columnar = TableColumnar(self, table, store)
        return table.columnar

    def store(self, table_name: str) -> ColumnStore:
        return self._stores[table_name]

    @property
    def stores(self) -> dict[str, ColumnStore]:
        return dict(self._stores)

    def current_csn(self) -> int:
        """The engine CSN *without* force-building a txn manager (a
        database that never opened a session has no commits: CSN 0)."""
        manager = self._db._txn_manager
        return manager.current_csn if manager is not None else 0

    # -- metrics -----------------------------------------------------------

    def count_fallback(self) -> None:
        self._m_fallbacks.inc()

    def sync_gauges(self) -> None:
        """Publish store/cache state; fold monotonic per-store counters
        into the registry counters by delta so resets stay honest."""
        stores = self._stores.values()
        self._m_rows.set(float(sum(s.live_rows for s in stores)))
        self._m_segments.set(float(sum(len(s.segments) for s in stores)))
        rebuilds = sum(s.rebuilds for s in stores)
        self._m_rebuilds.inc(rebuilds - self._rebuilds_seen)
        self._rebuilds_seen = rebuilds
        sealed = sum(s.sealed_total for s in stores)
        self._m_sealed.inc(sealed - self._sealed_seen)
        self._sealed_seen = sealed
        self._m_cache_hits.inc(self.cache.hits - self._cache_hits_seen)
        self._cache_hits_seen = self.cache.hits
        self._m_cache_misses.inc(self.cache.misses - self._cache_misses_seen)
        self._cache_misses_seen = self.cache.misses
        self._m_cache_invalidations.inc(
            self.cache.invalidations - self._cache_invalidations_seen
        )
        self._cache_invalidations_seen = self.cache.invalidations
        self._m_cache_entries.set(float(len(self.cache)))

    def refresh_encoding_stats(self) -> tuple[int, int]:
        """Publish ``columnar.bytes_encoded``/``bytes_raw``.

        Separate from :meth:`sync_gauges` because it (re-)encodes every
        dirty sealed segment — an O(rows) pass that must not ride on the
        per-scan hot path.  Returns ``(encoded, raw)``.
        """
        encoded = sum(s.encoded_bytes() for s in self._stores.values())
        raw = sum(s.raw_bytes() for s in self._stores.values())
        self._m_bytes_encoded.set(float(encoded))
        self._m_bytes_raw.set(float(raw))
        return encoded, raw

    def reset_metrics(self) -> None:
        """Zero ``columnar.*`` counters (the pool obs-reset contract).

        Gauges re-sync to live state rather than zeroing: rows mirrored
        and bytes encoded are facts about *now*, not about the window.
        """
        self.cache.reset_stats()
        self._cache_hits_seen = 0
        self._cache_misses_seen = 0
        self._cache_invalidations_seen = 0
        for store in self._stores.values():
            store.rebuilds = 0
            store.sealed_total = 0
        self._rebuilds_seen = 0
        self._sealed_seen = 0
        for counter in (
            self._m_scans,
            self._m_aggregates,
            self._m_fallbacks,
            self._m_rebuilds,
            self._m_sealed,
            self._m_cache_hits,
            self._m_cache_misses,
            self._m_cache_invalidations,
        ):
            counter.reset()
        self.sync_gauges()


class TableColumnar:
    """One table's handle into the columnar subsystem."""

    __slots__ = ("_manager", "_table", "store")

    def __init__(self, manager: ColumnarManager, table, store: ColumnStore):
        self._manager = manager
        self._table = table
        self.store = store

    # -- write notifications (called by Table after each applied write) ----

    def note_insert(self, rid, row) -> None:
        self.store.note_insert(rid, row)

    def note_update(self, rid, row) -> None:
        self.store.note_update(rid, row)

    def note_delete(self, rid) -> None:
        self.store.note_delete(rid)

    # -- planning ----------------------------------------------------------

    def plan_scan(self, predicate):
        """A kernel for ``predicate``, or None → row-path fallback."""
        kernel = compile_predicate(predicate, self._table.schema)
        if kernel is None:
            self._manager.count_fallback()
        return kernel

    # -- execution (called inside the table's profiler bracket) ------------

    def scan(self, kernel, predicate, project) -> list[dict[str, object]]:
        manager = self._manager
        store = self.store
        store.ensure_current()
        manager._m_scans.inc()
        key = (
            "scan",
            self._table.name,
            tuple(project),
            predicate_key(predicate),
        )
        epoch, csn = store.epoch, manager.current_csn()
        cached = manager.cache.get(key, epoch, csn)
        if cached is None:
            selections = select_segments(store.segments, kernel)
            cached = materialize(store, selections, tuple(project))
            manager.cache.put(key, epoch, csn, cached)
        manager.sync_gauges()
        # Serve copies: callers may mutate result dicts; the cached
        # master must stay pristine.
        return [dict(row) for row in cached]

    def aggregate(self, kernel, predicate, specs) -> dict[str, object]:
        manager = self._manager
        store = self.store
        store.ensure_current()
        manager._m_aggregates.inc()
        key = (
            "aggregate",
            self._table.name,
            tuple(specs),
            predicate_key(predicate),
        )
        epoch, csn = store.epoch, manager.current_csn()
        cached = manager.cache.get(key, epoch, csn)
        if cached is None:
            selections = select_segments(store.segments, kernel)
            cached = aggregate_segments(store.segments, selections, specs)
            manager.cache.put(key, epoch, csn, cached)
        manager.sync_gauges()
        return dict(cached)
