"""Vectorized batch kernels over column segments.

The row executor pays full Python interpreter overhead per tuple:
unpack the record, build a dict, call ``predicate.matches``, copy the
projection.  The batch executor instead runs each step over a whole
:class:`~repro.columnar.store.ColumnSegment` at a time — list
comprehensions, :func:`itertools.compress`, and builtin ``sum``/``min``
/``max`` push the per-tuple work into C, so one interpreter step covers
N tuples.  Per-row dicts are built only for rows that survive the
filter (materialization is the last step, never the loop body).

:func:`compile_predicate` translates the :mod:`repro.query.predicates`
tree into a *kernel*: ``kernel(columns, n) -> list[bool]`` producing a
raw selection vector.  Leaf kernels ignore liveness; the executor ANDs
the segment's live mask in exactly once at the top, so ``Not`` composes
correctly (``Not(Eq)`` must not resurrect dead rows).  An unsupported
predicate type compiles to ``None`` and the caller falls back to the
row executor — the oracle path is always available.
"""

from __future__ import annotations

from itertools import compress

from repro.errors import QueryError
from repro.query.predicates import (
    And,
    ColumnEq,
    ColumnIn,
    ColumnRange,
    Not,
    Or,
    Predicate,
    TruePredicate,
)
from repro.schema.schema import Schema

#: Aggregate ops understood by :func:`aggregate_segments`.
AGG_OPS = ("count", "sum", "min", "max", "avg")


def compile_predicate(predicate: Predicate, schema: Schema):
    """Compile a predicate tree into a selection-vector kernel.

    Returns ``kernel(columns, n) -> list[bool]`` or ``None`` when the
    tree contains a node the vectorized path doesn't understand (e.g. a
    user-defined predicate class); ``None`` means "use the row path".
    """
    if isinstance(predicate, TruePredicate):
        return lambda columns, n: [True] * n
    if isinstance(predicate, ColumnEq):
        if not schema.has_column(predicate.column):
            return None
        column, value = predicate.column, predicate.value
        return lambda columns, n: [v == value for v in columns[column]]
    if isinstance(predicate, ColumnIn):
        if not schema.has_column(predicate.column):
            return None
        column, values = predicate.column, frozenset(predicate.values)
        return lambda columns, n: [v in values for v in columns[column]]
    if isinstance(predicate, ColumnRange):
        if not schema.has_column(predicate.column):
            return None
        column, lo, hi = predicate.column, predicate.lo, predicate.hi
        if lo is not None and hi is not None:
            return lambda columns, n: [lo <= v < hi for v in columns[column]]
        if lo is not None:
            return lambda columns, n: [lo <= v for v in columns[column]]
        if hi is not None:
            return lambda columns, n: [v < hi for v in columns[column]]
        return lambda columns, n: [True] * n
    if isinstance(predicate, Not):
        inner = compile_predicate(predicate.inner, schema)
        if inner is None:
            return None
        return lambda columns, n: [not bit for bit in inner(columns, n)]
    if isinstance(predicate, (And, Or)):
        parts = [compile_predicate(part, schema) for part in predicate.parts]
        if any(part is None for part in parts):
            return None
        if not parts:  # all(()) is True, any(()) is False — match matches()
            result = isinstance(predicate, And)
            return lambda columns, n: [result] * n
        if isinstance(predicate, And):
            def kernel_and(columns, n):
                selection = parts[0](columns, n)
                for part in parts[1:]:
                    bits = part(columns, n)
                    selection = [a and b for a, b in zip(selection, bits)]
                return selection
            return kernel_and

        def kernel_or(columns, n):
            selection = parts[0](columns, n)
            for part in parts[1:]:
                bits = part(columns, n)
                selection = [a or b for a, b in zip(selection, bits)]
            return selection
        return kernel_or
    return None


def select_segments(segments, kernel) -> list[list[bool]]:
    """Per-segment selection vectors: kernel output ANDed with liveness."""
    selections: list[list[bool]] = []
    for segment in segments:
        raw = kernel(segment.columns, segment.count)
        if segment.live_count == segment.count:
            selections.append(raw)
        else:
            selections.append(
                [a and b for a, b in zip(raw, segment.live)]
            )
    return selections


def materialize(store, selections, project) -> list[dict[str, object]]:
    """Build row dicts for selected positions, in heap order."""
    segments = store.segments
    vectors = [
        [(name, segment.columns[name]) for name in project]
        for segment in segments
    ]
    rows: list[dict[str, object]] = []
    append = rows.append
    for seg_index, position in store.heap_order():
        if selections[seg_index][position]:
            append(
                {name: vector[position] for name, vector in vectors[seg_index]}
            )
    return rows


def normalize_specs(specs, schema: Schema) -> list[tuple[str, str | None]]:
    """Validate ``(op, column)`` aggregate specs; ``count`` takes None."""
    normalized: list[tuple[str, str | None]] = []
    for op, column in specs:
        if op not in AGG_OPS:
            raise QueryError(f"unknown aggregate op {op!r}")
        if op == "count":
            normalized.append(("count", None))
            continue
        if column is None or not schema.has_column(column):
            raise QueryError(f"aggregate {op!r} needs an existing column")
        normalized.append((op, column))
    return normalized


def spec_label(op: str, column: str | None) -> str:
    return "count" if op == "count" else f"{op}({column})"


def aggregate_segments(segments, selections, specs) -> dict[str, object]:
    """Fold aggregates over selected positions, one column at a time.

    Empty selections yield SQL-ish identities: ``count`` 0, ``sum`` 0,
    ``min``/``max``/``avg`` None — matching the row-path fold exactly.
    """
    count = sum(sum(selection) for selection in selections)
    out: dict[str, object] = {}
    for op, column in specs:
        label = spec_label(op, column)
        if label in out:
            continue
        if op == "count":
            out[label] = count
            continue
        chunks = [
            compress(segment.columns[column], selection)
            for segment, selection in zip(segments, selections)
        ]
        if op == "sum":
            out[label] = sum(sum(chunk) for chunk in chunks)
        elif op == "min":
            mins = [m for m in (min(c, default=None) for c in chunks)
                    if m is not None]
            out[label] = min(mins, default=None)
        elif op == "max":
            maxes = [m for m in (max(c, default=None) for c in chunks)
                     if m is not None]
            out[label] = max(maxes, default=None)
        else:  # avg
            total = sum(sum(chunk) for chunk in chunks)
            out[label] = (total / count) if count else None
    return out


def aggregate_rows(rows, specs) -> dict[str, object]:
    """Row-path oracle fold over an iterable of row dicts."""
    count = 0
    sums: dict[str, object] = {}
    mins: dict[str, object] = {}
    maxes: dict[str, object] = {}
    needed = {column for op, column in specs if column is not None}
    want_sum = {c for op, c in specs if op in ("sum", "avg")}
    want_min = {c for op, c in specs if op == "min"}
    want_max = {c for op, c in specs if op == "max"}
    for row in rows:
        count += 1
        for column in needed:
            value = row[column]
            if column in want_sum:
                sums[column] = sums.get(column, 0) + value
            if column in want_min:
                best = mins.get(column)
                if best is None or value < best:
                    mins[column] = value
            if column in want_max:
                best = maxes.get(column)
                if best is None or value > best:
                    maxes[column] = value
    out: dict[str, object] = {}
    for op, column in specs:
        label = spec_label(op, column)
        if op == "count":
            out[label] = count
        elif op == "sum":
            out[label] = sums.get(column, 0)
        elif op == "min":
            out[label] = mins.get(column)
        elif op == "max":
            out[label] = maxes.get(column)
        else:  # avg
            out[label] = (sums.get(column, 0) / count) if count else None
    return out
