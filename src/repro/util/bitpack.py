"""Bit-level packing of small unsigned integers.

The paper (§4.1) observes many int columns whose live value range fits in 8
or even 4 bits; the encoding codecs use this module to realise those savings
and the waste analyzer uses :func:`bits_required` to quantify them.
"""

from __future__ import annotations

from repro.errors import SchemaError


def bits_required(max_value: int) -> int:
    """Minimum number of bits to represent values in ``[0, max_value]``.

    A single-valued domain (``max_value == 0``) still needs 1 bit so that a
    packed column remains addressable; callers that want 0-bit constant
    columns handle that case explicitly (see ``encoding.analyzer``).
    """
    if max_value < 0:
        raise SchemaError("bits_required expects a non-negative max_value")
    return max(1, max_value.bit_length())


def pack_bits(values: list[int], bit_width: int) -> bytes:
    """Pack non-negative ints into a dense little-endian bit stream."""
    if not 1 <= bit_width <= 64:
        raise SchemaError(f"bit_width must be in [1, 64], got {bit_width}")
    limit = 1 << bit_width
    acc = 0
    acc_bits = 0
    out = bytearray()
    for value in values:
        if not 0 <= value < limit:
            raise SchemaError(
                f"value {value} does not fit in {bit_width} bits"
            )
        acc |= value << acc_bits
        acc_bits += bit_width
        while acc_bits >= 8:
            out.append(acc & 0xFF)
            acc >>= 8
            acc_bits -= 8
    if acc_bits:
        out.append(acc & 0xFF)
    return bytes(out)


def unpack_bits(data: bytes, bit_width: int, count: int) -> list[int]:
    """Inverse of :func:`pack_bits`; decodes exactly ``count`` values."""
    if not 1 <= bit_width <= 64:
        raise SchemaError(f"bit_width must be in [1, 64], got {bit_width}")
    needed = (count * bit_width + 7) // 8
    if len(data) < needed:
        raise SchemaError(
            f"bitpacked stream too short: need {needed} bytes, have {len(data)}"
        )
    values: list[int] = []
    acc = 0
    acc_bits = 0
    pos = 0
    mask = (1 << bit_width) - 1
    for _ in range(count):
        while acc_bits < bit_width:
            acc |= data[pos] << acc_bits
            pos += 1
            acc_bits += 8
        values.append(acc & mask)
        acc >>= bit_width
        acc_bits -= bit_width
    return values


def packed_size(count: int, bit_width: int) -> int:
    """Bytes needed to bit-pack ``count`` values at ``bit_width`` bits."""
    if count < 0:
        raise SchemaError("count must be non-negative")
    return (count * bit_width + 7) // 8
