"""Deterministic random-number helpers.

Every stochastic component in the library (cache placement, workload
generators, simulated contention) draws from a :class:`DeterministicRng`
seeded explicitly by the caller.  Experiments therefore reproduce exactly,
which is what lets the benchmark harness assert the *shape* of the paper's
figures rather than eyeballing noisy output.
"""

from __future__ import annotations

import random
from typing import Sequence, TypeVar

T = TypeVar("T")


class DeterministicRng:
    """A seeded random source with the handful of draws the library needs.

    Thin wrapper over :class:`random.Random` so that (a) call sites never
    touch the global ``random`` module and (b) we can derive independent
    child streams for sub-components without correlating them.
    """

    def __init__(self, seed: int = 0) -> None:
        self._seed = int(seed)
        self._rng = random.Random(self._seed)

    @property
    def seed(self) -> int:
        """The seed this stream was created with."""
        return self._seed

    def child(self, salt: int) -> "DeterministicRng":
        """Return an independent stream derived from this seed and ``salt``.

        Used to give each subsystem (cache, workload, contention injector)
        its own stream so adding draws in one place does not perturb another.
        """
        return DeterministicRng(hash((self._seed, int(salt))) & 0x7FFFFFFF)

    def randint(self, lo: int, hi: int) -> int:
        """Uniform integer in the inclusive range ``[lo, hi]``."""
        return self._rng.randint(lo, hi)

    def randrange(self, n: int) -> int:
        """Uniform integer in ``[0, n)``; ``n`` must be positive."""
        return self._rng.randrange(n)

    def random(self) -> float:
        """Uniform float in ``[0, 1)``."""
        return self._rng.random()

    def choice(self, seq: Sequence[T]) -> T:
        """Uniform choice from a non-empty sequence."""
        return self._rng.choice(seq)

    def shuffle(self, seq: list) -> None:
        """In-place Fisher–Yates shuffle."""
        self._rng.shuffle(seq)

    def sample(self, seq: Sequence[T], k: int) -> list[T]:
        """``k`` distinct elements sampled without replacement."""
        return self._rng.sample(seq, k)

    def bernoulli(self, p: float) -> bool:
        """True with probability ``p``."""
        return self._rng.random() < p

    def bytes(self, n: int) -> bytes:
        """``n`` random bytes."""
        return self._rng.randbytes(n)

    def gauss(self, mu: float, sigma: float) -> float:
        """Normal draw."""
        return self._rng.gauss(mu, sigma)
