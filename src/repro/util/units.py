"""Byte and time-unit constants plus human-readable formatting.

Experiment tables print sizes ("27.1 GB -> 1.4 GB") and simulated durations
("0.3 us/lookup"); these helpers keep that formatting consistent.
"""

from __future__ import annotations

KiB = 1024
MiB = 1024 * KiB
GiB = 1024 * MiB

NS_PER_US = 1_000
NS_PER_MS = 1_000_000
NS_PER_S = 1_000_000_000


def fmt_bytes(n: float) -> str:
    """Render a byte count with a binary-unit suffix, e.g. ``1.4 GiB``."""
    n = float(n)
    sign = "-" if n < 0 else ""
    n = abs(n)
    for unit, divisor in (("GiB", GiB), ("MiB", MiB), ("KiB", KiB)):
        if n >= divisor:
            return f"{sign}{n / divisor:.1f} {unit}"
    return f"{sign}{n:.0f} B"


def fmt_duration_ns(ns: float) -> str:
    """Render a simulated duration at an appropriate scale."""
    ns = float(ns)
    sign = "-" if ns < 0 else ""
    ns = abs(ns)
    if ns >= NS_PER_S:
        return f"{sign}{ns / NS_PER_S:.2f} s"
    if ns >= NS_PER_MS:
        return f"{sign}{ns / NS_PER_MS:.3f} ms"
    if ns >= NS_PER_US:
        return f"{sign}{ns / NS_PER_US:.3f} us"
    return f"{sign}{ns:.1f} ns"


def ratio(before: float, after: float) -> float:
    """Improvement factor ``before / after`` guarded against zero."""
    if after == 0:
        return float("inf") if before > 0 else 1.0
    return before / after
