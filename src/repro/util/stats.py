"""Streaming statistics and simple histograms used by experiments.

Experiment harnesses accumulate per-lookup costs and hit/miss counters; this
module gives them numerically stable mean/variance (Welford) and fixed-bin
histograms without pulling in heavyweight dependencies on the hot path.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field


class StreamingStats:
    """Welford-style running mean/variance with min/max tracking."""

    def __init__(self) -> None:
        self._count = 0
        self._mean = 0.0
        self._m2 = 0.0
        self._min = math.inf
        self._max = -math.inf

    def add(self, value: float) -> None:
        """Fold one observation into the running statistics."""
        self._count += 1
        delta = value - self._mean
        self._mean += delta / self._count
        self._m2 += delta * (value - self._mean)
        if value < self._min:
            self._min = value
        if value > self._max:
            self._max = value

    def merge(self, other: "StreamingStats") -> None:
        """Fold another accumulator into this one (parallel merge formula)."""
        if other._count == 0:
            return
        if self._count == 0:
            self._count = other._count
            self._mean = other._mean
            self._m2 = other._m2
            self._min = other._min
            self._max = other._max
            return
        total = self._count + other._count
        delta = other._mean - self._mean
        self._m2 += other._m2 + delta * delta * self._count * other._count / total
        self._mean += delta * other._count / total
        self._count = total
        self._min = min(self._min, other._min)
        self._max = max(self._max, other._max)

    @property
    def count(self) -> int:
        return self._count

    @property
    def mean(self) -> float:
        return self._mean if self._count else 0.0

    @property
    def variance(self) -> float:
        return self._m2 / self._count if self._count else 0.0

    @property
    def stdev(self) -> float:
        return math.sqrt(self.variance)

    @property
    def min(self) -> float:
        return self._min if self._count else 0.0

    @property
    def max(self) -> float:
        return self._max if self._count else 0.0

    @property
    def total(self) -> float:
        return self._mean * self._count


@dataclass
class Histogram:
    """Fixed-width-bin histogram over ``[lo, hi)`` with overflow bins."""

    lo: float
    hi: float
    bins: int
    _counts: list[int] = field(default_factory=list)
    _underflow: int = 0
    _overflow: int = 0

    def __post_init__(self) -> None:
        if self.hi <= self.lo:
            raise ValueError("Histogram requires hi > lo")
        if self.bins <= 0:
            raise ValueError("Histogram requires at least one bin")
        self._counts = [0] * self.bins

    def add(self, value: float) -> None:
        """Count one observation."""
        if value < self.lo:
            self._underflow += 1
            return
        if value >= self.hi:
            self._overflow += 1
            return
        width = (self.hi - self.lo) / self.bins
        index = int((value - self.lo) / width)
        # Guard against float edge cases landing exactly on `hi`.
        self._counts[min(index, self.bins - 1)] += 1

    @property
    def counts(self) -> list[int]:
        return list(self._counts)

    @property
    def underflow(self) -> int:
        return self._underflow

    @property
    def overflow(self) -> int:
        return self._overflow

    @property
    def total(self) -> int:
        return sum(self._counts) + self._underflow + self._overflow

    def quantile(self, q: float) -> float:
        """Approximate quantile from bin midpoints (q in [0, 1])."""
        if not 0.0 <= q <= 1.0:
            raise ValueError("quantile requires q in [0, 1]")
        total = self.total
        if total == 0:
            return 0.0
        target = q * total
        seen = self._underflow
        if seen >= target and self._underflow:
            return self.lo
        width = (self.hi - self.lo) / self.bins
        for i, c in enumerate(self._counts):
            seen += c
            if seen >= target:
                return self.lo + (i + 0.5) * width
        return self.hi
