"""Shared low-level utilities: deterministic RNG, bit/varint packing, stats."""

from repro.util.rng import DeterministicRng
from repro.util.stats import Histogram, StreamingStats
from repro.util.units import fmt_bytes, fmt_duration_ns, GiB, KiB, MiB

__all__ = [
    "DeterministicRng",
    "Histogram",
    "StreamingStats",
    "fmt_bytes",
    "fmt_duration_ns",
    "KiB",
    "MiB",
    "GiB",
]
