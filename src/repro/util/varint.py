"""Variable-length integer encoding (LEB128) and zigzag mapping.

Part of the encoding substrate (paper §4): the waste analyzer compares a
column's declared width against what a varint/bit-packed representation
would need, and the codecs use these primitives directly.
"""

from __future__ import annotations

from repro.errors import SchemaError


def zigzag_encode(value: int) -> int:
    """Map signed integers onto unsigned so small magnitudes stay small.

    ``0 -> 0, -1 -> 1, 1 -> 2, -2 -> 3, ...``
    """
    return (value << 1) ^ (value >> 63) if value < 0 else value << 1


def zigzag_decode(value: int) -> int:
    """Inverse of :func:`zigzag_encode`."""
    return (value >> 1) ^ -(value & 1)


def encode_uvarint(value: int) -> bytes:
    """Encode a non-negative integer as LEB128."""
    if value < 0:
        raise SchemaError(f"uvarint cannot encode negative value {value}")
    out = bytearray()
    while True:
        byte = value & 0x7F
        value >>= 7
        if value:
            out.append(byte | 0x80)
        else:
            out.append(byte)
            return bytes(out)


def decode_uvarint(data: bytes, offset: int = 0) -> tuple[int, int]:
    """Decode a LEB128 integer from ``data`` starting at ``offset``.

    Returns ``(value, next_offset)``.
    """
    result = 0
    shift = 0
    pos = offset
    while True:
        if pos >= len(data):
            raise SchemaError("truncated uvarint")
        byte = data[pos]
        pos += 1
        result |= (byte & 0x7F) << shift
        if not byte & 0x80:
            return result, pos
        shift += 7
        if shift > 70:
            raise SchemaError("uvarint too long")


def encode_svarint(value: int) -> bytes:
    """Encode a signed integer (zigzag + LEB128)."""
    return encode_uvarint(zigzag_encode(value))


def decode_svarint(data: bytes, offset: int = 0) -> tuple[int, int]:
    """Decode a signed integer (LEB128 + un-zigzag)."""
    raw, pos = decode_uvarint(data, offset)
    return zigzag_decode(raw), pos


def uvarint_size(value: int) -> int:
    """Number of bytes :func:`encode_uvarint` would use for ``value``."""
    if value < 0:
        raise SchemaError(f"uvarint cannot encode negative value {value}")
    size = 1
    while value >= 0x80:
        value >>= 7
        size += 1
    return size
