"""Schema subsystem: physical types, record layout, serde, and catalog."""

from repro.schema.types import (
    PhysicalType,
    TypeKind,
    BOOL,
    INT8,
    INT16,
    INT32,
    INT64,
    UINT8,
    UINT16,
    UINT32,
    UINT64,
    FLOAT64,
    TIMESTAMP32,
    TIMESTAMP_STR14,
    DATE32,
    YEAR16,
    char,
    varchar,
)
from repro.schema.schema import Column, Schema
from repro.schema.record import pack_record, unpack_record
from repro.schema.catalog import Catalog

__all__ = [
    "PhysicalType",
    "TypeKind",
    "BOOL",
    "INT8",
    "INT16",
    "INT32",
    "INT64",
    "UINT8",
    "UINT16",
    "UINT32",
    "UINT64",
    "FLOAT64",
    "TIMESTAMP32",
    "TIMESTAMP_STR14",
    "DATE32",
    "YEAR16",
    "char",
    "varchar",
    "Column",
    "Schema",
    "pack_record",
    "unpack_record",
    "Catalog",
]
