"""Schema and Column: the fixed-length record layout used everywhere.

A :class:`Schema` is an ordered list of named, typed columns.  Because all
physical types are fixed width, a schema induces a byte layout: each column
has a fixed offset within the packed record, and the record width is the sum
of column sizes.  The index cache, the heap pages, and the waste analyzer
all depend on this arithmetic being exact.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import SchemaError
from repro.schema.types import PhysicalType


@dataclass(frozen=True)
class Column:
    """A named, typed column.

    Attributes:
        name: column name, unique within a schema.
        ctype: the physical type this column is *stored* as.
        declared: the type the application declared.  When ``None`` the
            declared and stored types coincide.  The encoding advisor (§4)
            produces schemas whose ``ctype`` is narrower than ``declared``;
            keeping both lets reports show the before/after.
    """

    name: str
    ctype: PhysicalType
    declared: PhysicalType | None = None

    @property
    def declared_type(self) -> PhysicalType:
        """The application-declared type (defaults to the stored type)."""
        return self.declared if self.declared is not None else self.ctype

    @property
    def size(self) -> int:
        """Stored width in bytes."""
        return self.ctype.size


@dataclass(frozen=True)
class Schema:
    """An ordered, fixed-width record layout."""

    columns: tuple[Column, ...]
    _offsets: dict[str, int] = field(default_factory=dict, compare=False, repr=False)
    _index: dict[str, int] = field(default_factory=dict, compare=False, repr=False)

    def __post_init__(self) -> None:
        offset = 0
        for i, col in enumerate(self.columns):
            if col.name in self._index:
                raise SchemaError(f"duplicate column name {col.name!r}")
            self._index[col.name] = i
            self._offsets[col.name] = offset
            offset += col.size

    @classmethod
    def of(cls, *cols: tuple[str, PhysicalType]) -> "Schema":
        """Build a schema from ``(name, type)`` pairs.

        Example::

            Schema.of(("page_id", UINT32), ("title", varchar(64)))
        """
        return cls(tuple(Column(name, ctype) for name, ctype in cols))

    # -- geometry ----------------------------------------------------------

    @property
    def record_size(self) -> int:
        """Packed record width in bytes."""
        return sum(col.size for col in self.columns)

    @property
    def names(self) -> tuple[str, ...]:
        return tuple(col.name for col in self.columns)

    def offset_of(self, name: str) -> int:
        """Byte offset of column ``name`` within a packed record."""
        try:
            return self._offsets[name]
        except KeyError:
            raise SchemaError(f"no column named {name!r}") from None

    def column(self, name: str) -> Column:
        """The :class:`Column` named ``name``."""
        try:
            return self.columns[self._index[name]]
        except KeyError:
            raise SchemaError(f"no column named {name!r}") from None

    def position(self, name: str) -> int:
        """Ordinal position of column ``name``."""
        try:
            return self._index[name]
        except KeyError:
            raise SchemaError(f"no column named {name!r}") from None

    def has_column(self, name: str) -> bool:
        return name in self._index

    def __len__(self) -> int:
        return len(self.columns)

    def __iter__(self):
        return iter(self.columns)

    # -- derivation --------------------------------------------------------

    def project(self, names: list[str] | tuple[str, ...]) -> "Schema":
        """A schema containing only the named columns, in the given order."""
        return Schema(tuple(self.column(n) for n in names))

    def with_stored_types(self, stored: dict[str, PhysicalType]) -> "Schema":
        """A physically re-typed schema (the §4 "schema as hint" rewrite).

        Each column present in ``stored`` is re-typed to its new physical
        type while remembering the original declared type, so waste reports
        can compare them.
        """
        cols = []
        for col in self.columns:
            if col.name in stored:
                cols.append(
                    Column(col.name, stored[col.name], declared=col.declared_type)
                )
            else:
                cols.append(col)
        return Schema(tuple(cols))

    def drop(self, names: set[str] | list[str]) -> "Schema":
        """A schema without the named columns (used by ID elision, §4.2)."""
        dropped = set(names)
        missing = dropped - set(self.names)
        if missing:
            raise SchemaError(f"cannot drop unknown columns {sorted(missing)}")
        return Schema(tuple(c for c in self.columns if c.name not in dropped))

    def describe(self) -> str:
        """Human-readable one-line-per-column description."""
        lines = []
        for col in self.columns:
            note = ""
            if col.declared is not None and col.declared != col.ctype:
                note = f"  (declared {col.declared.name})"
            lines.append(f"  {col.name}: {col.ctype.name} [{col.size} B]{note}")
        return "\n".join(lines)
