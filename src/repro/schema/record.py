"""Record serde: pack/unpack Python tuples against a :class:`Schema`.

Records are dicts-in, dicts-out at the query layer but packed tuples at the
storage layer; these functions are the boundary.  Partial unpacking
(:func:`unpack_fields`) exists so that reading a projection from a cached
index entry or a heap tuple touches only the referenced byte ranges — the
same access pattern the paper's locality argument is about.
"""

from __future__ import annotations

from typing import Mapping, Sequence

from repro.errors import SchemaError
from repro.schema.schema import Schema


def pack_record(schema: Schema, values: Sequence[object]) -> bytes:
    """Pack positional ``values`` into the schema's fixed-width layout."""
    if len(values) != len(schema):
        raise SchemaError(
            f"expected {len(schema)} values, got {len(values)}"
        )
    parts = [col.ctype.pack(v) for col, v in zip(schema.columns, values)]
    return b"".join(parts)


def pack_record_map(schema: Schema, values: Mapping[str, object]) -> bytes:
    """Pack a ``{name: value}`` mapping; every column must be present."""
    missing = set(schema.names) - set(values)
    if missing:
        raise SchemaError(f"missing values for columns {sorted(missing)}")
    return pack_record(schema, [values[name] for name in schema.names])


def unpack_record(schema: Schema, data: bytes) -> tuple[object, ...]:
    """Unpack a full record into a positional tuple."""
    if len(data) != schema.record_size:
        raise SchemaError(
            f"record is {len(data)} bytes, schema needs {schema.record_size}"
        )
    values = []
    offset = 0
    for col in schema.columns:
        values.append(col.ctype.unpack(data[offset : offset + col.size]))
        offset += col.size
    return tuple(values)


def unpack_record_map(schema: Schema, data: bytes) -> dict[str, object]:
    """Unpack a full record into a ``{name: value}`` dict."""
    return dict(zip(schema.names, unpack_record(schema, data)))


def unpack_fields(
    schema: Schema, data: bytes, names: Sequence[str]
) -> dict[str, object]:
    """Unpack only the named columns, touching only their byte ranges."""
    if len(data) != schema.record_size:
        raise SchemaError(
            f"record is {len(data)} bytes, schema needs {schema.record_size}"
        )
    out: dict[str, object] = {}
    for name in names:
        col = schema.column(name)
        offset = schema.offset_of(name)
        out[name] = col.ctype.unpack(data[offset : offset + col.size])
    return out


def overwrite_field(
    schema: Schema, data: bytearray, name: str, value: object
) -> None:
    """Overwrite one column in-place inside a packed record buffer."""
    if len(data) != schema.record_size:
        raise SchemaError(
            f"record is {len(data)} bytes, schema needs {schema.record_size}"
        )
    col = schema.column(name)
    offset = schema.offset_of(name)
    data[offset : offset + col.size] = col.ctype.pack(value)
