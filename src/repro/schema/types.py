"""Physical column types.

The paper's §4 argues that declared SQL types should be treated as *hints*:
the engine is free to pick a narrower physical representation when the data
allows it.  To express both sides of that argument we need an explicit
vocabulary of physical types with known byte widths — declared schemas and
inferred (optimized) schemas are both built from these.

All types here are fixed width.  The paper's index-cache design (§2.1.1)
assumes fixed-length index keys and tuples, and fixed-width records also
make the per-column waste arithmetic of §4.1 exact.  ``VARCHAR(n)`` is
modelled the way row stores with fixed slots model it: ``n`` payload bytes
plus a 2-byte length prefix, which is itself a source of measurable waste
when the actual strings are short.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from enum import Enum

from repro.errors import TypeMismatchError


class TypeKind(Enum):
    """Logical family a physical type belongs to."""

    BOOL = "bool"
    INT = "int"
    UINT = "uint"
    FLOAT = "float"
    CHAR = "char"
    VARCHAR = "varchar"
    TIMESTAMP = "timestamp"
    TIMESTAMP_STRING = "timestamp_string"
    DATE = "date"
    YEAR = "year"


@dataclass(frozen=True)
class PhysicalType:
    """A fixed-width physical column type.

    Attributes:
        kind: logical family (int, char, ...).
        size: total bytes the value occupies in a packed record.
        name: display name, e.g. ``INT32`` or ``CHAR(14)``.
    """

    kind: TypeKind
    size: int
    name: str

    def __str__(self) -> str:
        return self.name

    # -- value domain ------------------------------------------------------

    def validate(self, value: object) -> None:
        """Raise :class:`TypeMismatchError` unless ``value`` fits this type."""
        kind = self.kind
        if kind is TypeKind.BOOL:
            if not isinstance(value, bool):
                raise TypeMismatchError(f"{self.name} expects bool, got {value!r}")
        elif kind in (TypeKind.INT, TypeKind.UINT, TypeKind.TIMESTAMP,
                      TypeKind.DATE, TypeKind.YEAR):
            if isinstance(value, bool) or not isinstance(value, int):
                raise TypeMismatchError(f"{self.name} expects int, got {value!r}")
            lo, hi = self.int_range()
            if not lo <= value <= hi:
                raise TypeMismatchError(
                    f"{value} out of range [{lo}, {hi}] for {self.name}"
                )
        elif kind is TypeKind.FLOAT:
            if not isinstance(value, (int, float)) or isinstance(value, bool):
                raise TypeMismatchError(f"{self.name} expects float, got {value!r}")
        elif kind in (TypeKind.CHAR, TypeKind.VARCHAR, TypeKind.TIMESTAMP_STRING):
            if not isinstance(value, str):
                raise TypeMismatchError(f"{self.name} expects str, got {value!r}")
            limit = self.size - 2 if kind is TypeKind.VARCHAR else self.size
            if len(value.encode("utf-8")) > limit:
                raise TypeMismatchError(
                    f"string of {len(value)} chars exceeds {self.name}"
                )
        else:  # pragma: no cover - exhaustive over TypeKind
            raise TypeMismatchError(f"unhandled kind {kind}")

    def int_range(self) -> tuple[int, int]:
        """Inclusive value range for integer-family types."""
        if self.kind is TypeKind.UINT:
            return 0, (1 << (8 * self.size)) - 1
        if self.kind in (TypeKind.INT,):
            half = 1 << (8 * self.size - 1)
            return -half, half - 1
        if self.kind in (TypeKind.TIMESTAMP, TypeKind.DATE, TypeKind.YEAR):
            # Stored unsigned: seconds/days since epoch, or a year number.
            return 0, (1 << (8 * self.size)) - 1
        raise TypeMismatchError(f"{self.name} has no integer range")

    # -- serde -------------------------------------------------------------

    def pack(self, value: object) -> bytes:
        """Serialize ``value`` into exactly :attr:`size` bytes."""
        self.validate(value)
        kind = self.kind
        if kind is TypeKind.BOOL:
            return b"\x01" if value else b"\x00"
        if kind in (TypeKind.UINT, TypeKind.TIMESTAMP, TypeKind.DATE, TypeKind.YEAR):
            return int(value).to_bytes(self.size, "little", signed=False)  # type: ignore[arg-type]
        if kind is TypeKind.INT:
            return int(value).to_bytes(self.size, "little", signed=True)  # type: ignore[arg-type]
        if kind is TypeKind.FLOAT:
            return struct.pack("<d", float(value))  # type: ignore[arg-type]
        if kind in (TypeKind.CHAR, TypeKind.TIMESTAMP_STRING):
            raw = str(value).encode("utf-8")
            return raw.ljust(self.size, b"\x00")
        if kind is TypeKind.VARCHAR:
            raw = str(value).encode("utf-8")
            return len(raw).to_bytes(2, "little") + raw.ljust(self.size - 2, b"\x00")
        raise TypeMismatchError(f"unhandled kind {kind}")  # pragma: no cover

    def unpack(self, data: bytes) -> object:
        """Deserialize exactly :attr:`size` bytes back into a Python value."""
        if len(data) != self.size:
            raise TypeMismatchError(
                f"{self.name} needs {self.size} bytes, got {len(data)}"
            )
        kind = self.kind
        if kind is TypeKind.BOOL:
            return data[0] != 0
        if kind in (TypeKind.UINT, TypeKind.TIMESTAMP, TypeKind.DATE, TypeKind.YEAR):
            return int.from_bytes(data, "little", signed=False)
        if kind is TypeKind.INT:
            return int.from_bytes(data, "little", signed=True)
        if kind is TypeKind.FLOAT:
            return struct.unpack("<d", data)[0]
        if kind in (TypeKind.CHAR, TypeKind.TIMESTAMP_STRING):
            return data.rstrip(b"\x00").decode("utf-8")
        if kind is TypeKind.VARCHAR:
            length = int.from_bytes(data[:2], "little")
            return data[2 : 2 + length].decode("utf-8")
        raise TypeMismatchError(f"unhandled kind {kind}")  # pragma: no cover


BOOL = PhysicalType(TypeKind.BOOL, 1, "BOOL")
INT8 = PhysicalType(TypeKind.INT, 1, "INT8")
INT16 = PhysicalType(TypeKind.INT, 2, "INT16")
INT32 = PhysicalType(TypeKind.INT, 4, "INT32")
INT64 = PhysicalType(TypeKind.INT, 8, "INT64")
UINT8 = PhysicalType(TypeKind.UINT, 1, "UINT8")
UINT16 = PhysicalType(TypeKind.UINT, 2, "UINT16")
UINT32 = PhysicalType(TypeKind.UINT, 4, "UINT32")
UINT64 = PhysicalType(TypeKind.UINT, 8, "UINT64")
FLOAT64 = PhysicalType(TypeKind.FLOAT, 8, "FLOAT64")

#: 4-byte unix timestamp — the paper's target encoding for Wikipedia's
#: 14-byte ``rev_timestamp`` strings (§4.1).
TIMESTAMP32 = PhysicalType(TypeKind.TIMESTAMP, 4, "TIMESTAMP32")

#: MySQL/MediaWiki style ``YYYYMMDDHHMMSS`` string — the wasteful original.
TIMESTAMP_STR14 = PhysicalType(TypeKind.TIMESTAMP_STRING, 14, "TIMESTAMP_STR14")

#: Days since epoch.
DATE32 = PhysicalType(TypeKind.DATE, 4, "DATE32")

#: Bare year — the "application only asks for years" granularity of §4.
YEAR16 = PhysicalType(TypeKind.YEAR, 2, "YEAR16")


def char(n: int) -> PhysicalType:
    """Fixed ``CHAR(n)``: n bytes, NUL padded."""
    if n <= 0:
        raise TypeMismatchError("CHAR width must be positive")
    return PhysicalType(TypeKind.CHAR, n, f"CHAR({n})")


def varchar(n: int) -> PhysicalType:
    """``VARCHAR(n)`` in a fixed slot: 2-byte length prefix + n bytes."""
    if n <= 0:
        raise TypeMismatchError("VARCHAR width must be positive")
    return PhysicalType(TypeKind.VARCHAR, n + 2, f"VARCHAR({n})")


#: Integer types ordered narrow-to-wide, used by the §4 type inference.
SIGNED_INT_LADDER = (INT8, INT16, INT32, INT64)
UNSIGNED_INT_LADDER = (UINT8, UINT16, UINT32, UINT64)
