"""Catalog: the registry of named tables and indexes.

A deliberately small system catalog — enough for the :class:`Database`
facade to resolve names and for the waste/advisor tooling (§4.1) to walk
every registered table when producing a database-wide report.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

from repro.errors import CatalogError
from repro.schema.schema import Schema


@dataclass
class TableEntry:
    """Catalog record for one table."""

    name: str
    schema: Schema
    table: object  # repro.query.table.Table; typed loosely to avoid a cycle
    index_names: list[str] = field(default_factory=list)


@dataclass
class IndexEntry:
    """Catalog record for one index."""

    name: str
    table_name: str
    key_columns: tuple[str, ...]
    index: object  # BPlusTree or CachedBTree
    unique: bool = True


class Catalog:
    """Name → table/index registry with uniqueness enforcement."""

    def __init__(self) -> None:
        self._tables: dict[str, TableEntry] = {}
        self._indexes: dict[str, IndexEntry] = {}

    # -- tables ------------------------------------------------------------

    def register_table(self, name: str, schema: Schema, table: object) -> TableEntry:
        if name in self._tables:
            raise CatalogError(f"table {name!r} already exists")
        entry = TableEntry(name=name, schema=schema, table=table)
        self._tables[name] = entry
        return entry

    def drop_table(self, name: str) -> None:
        entry = self.table(name)
        for index_name in list(entry.index_names):
            self._indexes.pop(index_name, None)
        del self._tables[name]

    def table(self, name: str) -> TableEntry:
        try:
            return self._tables[name]
        except KeyError:
            raise CatalogError(f"no table named {name!r}") from None

    def has_table(self, name: str) -> bool:
        return name in self._tables

    def tables(self) -> Iterator[TableEntry]:
        return iter(self._tables.values())

    @property
    def table_names(self) -> list[str]:
        return list(self._tables)

    # -- indexes -----------------------------------------------------------

    def register_index(
        self,
        name: str,
        table_name: str,
        key_columns: tuple[str, ...],
        index: object,
        unique: bool = True,
    ) -> IndexEntry:
        if name in self._indexes:
            raise CatalogError(f"index {name!r} already exists")
        table_entry = self.table(table_name)
        entry = IndexEntry(
            name=name,
            table_name=table_name,
            key_columns=key_columns,
            index=index,
            unique=unique,
        )
        self._indexes[name] = entry
        table_entry.index_names.append(name)
        return entry

    def index(self, name: str) -> IndexEntry:
        try:
            return self._indexes[name]
        except KeyError:
            raise CatalogError(f"no index named {name!r}") from None

    def has_index(self, name: str) -> bool:
        return name in self._indexes

    def indexes_of(self, table_name: str) -> list[IndexEntry]:
        entry = self.table(table_name)
        return [self._indexes[n] for n in entry.index_names]
