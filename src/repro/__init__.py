"""No Bits Left Behind — reproduction of Wu, Curino & Madden (CIDR 2011).

A from-scratch slotted-page storage engine (simulated disk, buffer pool,
heap files, B+Trees) plus the paper's three waste-reclamation techniques:

* **index caching** (Sec 2.1) — recycle B+Tree free space as a tuple
  cache: :class:`~repro.core.index_cache.cached_index.CachedBTree`;
* **hot/cold partitioning** (Sec 3.1) —
  :func:`~repro.core.hot_cold.cluster.cluster_hot_tuples` and
  :class:`~repro.core.hot_cold.partitioner.HotColdPartitionedTable`;
* **encoding-waste reclamation** (Sec 4) —
  :func:`~repro.core.encoding.inference.optimize_schema` and the
  semantic-ID toolkit in :mod:`repro.core.semantic_ids`.

Start with :class:`repro.Database` (see ``examples/quickstart.py``); the
paper's tables and figures regenerate from :mod:`repro.experiments`.
"""

from repro.errors import ReproError
from repro.obs import (
    MetricsRegistry,
    NullRegistry,
    NULL_REGISTRY,
    Tracer,
    export_json,
    format_report,
)
from repro.query.database import Database
from repro.query.table import PlainIndex, Table
from repro.schema.schema import Column, Schema
from repro.schema.types import (
    BOOL,
    DATE32,
    FLOAT64,
    INT8,
    INT16,
    INT32,
    INT64,
    TIMESTAMP32,
    TIMESTAMP_STR14,
    UINT8,
    UINT16,
    UINT32,
    UINT64,
    YEAR16,
    char,
    varchar,
)
from repro.sim.cost_model import CostModel, CostPreset, END_TO_END_PRESET, PAPER_PRESET
from repro.shard import ShardedDatabase, ShardRouter, recover_sharded
from repro.storage.heap import Rid
from repro.txn import Session, SimScheduler, TransactionManager

__version__ = "0.1.0"

__all__ = [
    "Database",
    "Table",
    "PlainIndex",
    "Schema",
    "Column",
    "Rid",
    "CostModel",
    "CostPreset",
    "PAPER_PRESET",
    "END_TO_END_PRESET",
    "MetricsRegistry",
    "NullRegistry",
    "NULL_REGISTRY",
    "Tracer",
    "export_json",
    "format_report",
    "ReproError",
    "Session",
    "SimScheduler",
    "TransactionManager",
    "ShardedDatabase",
    "ShardRouter",
    "recover_sharded",
    "BOOL",
    "INT8",
    "INT16",
    "INT32",
    "INT64",
    "UINT8",
    "UINT16",
    "UINT32",
    "UINT64",
    "FLOAT64",
    "TIMESTAMP32",
    "TIMESTAMP_STR14",
    "DATE32",
    "YEAR16",
    "char",
    "varchar",
    "__version__",
]
