"""B+Tree built on slotted pages, with the Figure-1 free-space window."""

from repro.btree.keycodec import (
    CompositeKey,
    IntKey,
    KeyCodec,
    StringKey,
    UIntKey,
    codec_for_column,
    codec_for_columns,
)
from repro.btree.tree import BPlusTree
from repro.btree.stats import BTreeStats, collect_stats

__all__ = [
    "KeyCodec",
    "UIntKey",
    "IntKey",
    "StringKey",
    "CompositeKey",
    "codec_for_column",
    "codec_for_columns",
    "BPlusTree",
    "BTreeStats",
    "collect_stats",
]
