"""Rebuild an index tree from its heap (the self-healing primitive).

A B+Tree over a heap is pure redundancy: every ``key -> RID`` entry can
be recomputed by scanning the heap and re-encoding the key columns.
That redundancy is what makes index-page corruption recoverable —
:class:`~repro.faults.recovery.RecoveryManager` calls this (via the
index wrappers' ``rebuild_from_heap``) after the buffer pool quarantines
a corrupt node.

Lives in ``repro.btree`` so both index flavours (``PlainIndex`` in
``repro.query.table`` and ``CachedBTree`` in ``repro.core.index_cache``)
can share it without importing each other.
"""

from __future__ import annotations

from typing import Callable

from repro.btree.tree import BPlusTree
from repro.schema.record import unpack_record_map


def rebuild_tree_from_heap(
    tree: BPlusTree,
    heap,
    schema,
    key_columns: tuple[str, ...],
    encode_key: Callable[[object], bytes],
) -> BPlusTree:
    """Bulk-load a replacement for ``tree`` from a full scan of ``heap``.

    The new tree inherits the old one's geometry (key/value sizes, name,
    split fraction, metrics registry) and buffer pool; the old tree's
    pages are simply orphaned — the simulated disk only grows, like a
    real tablespace file, and any quarantined page stays quarantined.
    """
    entries: list[tuple[bytes, bytes]] = []
    for rid, record in heap.scan():
        row = unpack_record_map(schema, record)
        key = encode_key(tuple(row[c] for c in key_columns))
        entries.append((key, rid.to_bytes()))
    entries.sort(key=lambda kv: kv[0])
    return BPlusTree.bulk_load(
        tree.pool,
        entries,
        tree.key_size,
        tree.value_size,
        name=tree.name,
        split_fraction=tree.split_fraction,
        registry=tree.registry,
    )
