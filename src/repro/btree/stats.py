"""Occupancy and size statistics for B+Trees.

These are the numbers the paper argues about: average fill factor (~68%
from Yao, 45% in CarTel), bytes of pure free space per index, and how many
cache slots that free space could hold (§2.1.4's capacity analysis).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.btree.tree import BPlusTree
from repro.util.stats import StreamingStats


@dataclass(frozen=True)
class BTreeStats:
    """A snapshot of one tree's space accounting."""

    name: str
    num_entries: int
    height: int
    leaf_pages: int
    internal_pages: int
    size_bytes: int
    leaf_fill_mean: float
    leaf_fill_min: float
    leaf_fill_max: float
    free_bytes_total: int
    key_bytes_total: int

    @property
    def num_pages(self) -> int:
        return self.leaf_pages + self.internal_pages

    @property
    def free_fraction(self) -> float:
        """Fraction of leaf-usable space that is pure free window."""
        return (
            self.free_bytes_total / self.size_bytes if self.size_bytes else 0.0
        )

    def cache_capacity(self, item_size: int) -> int:
        """How many cache items of ``item_size`` bytes the free space holds.

        This is the §2.1.4 arithmetic: 360 MB of key data at 68% fill with
        25-byte items yields ~7.9 M cache slots.
        """
        if item_size <= 0:
            return 0
        return self.free_bytes_total // item_size


def collect_stats(tree: BPlusTree) -> BTreeStats:
    """Walk the tree's leaves and produce a :class:`BTreeStats` snapshot."""
    fills = StreamingStats()
    free_total = 0
    key_total = 0
    for page_id in tree.leaf_page_ids:
        with tree.pool.page(page_id) as page:
            fills.add(page.fill_factor)
            free_total += page.free_bytes
            key_total += page.live_record_bytes
    return BTreeStats(
        name=tree.name,
        num_entries=tree.num_entries,
        height=tree.height,
        leaf_pages=len(tree.leaf_page_ids),
        internal_pages=len(tree.internal_page_ids),
        size_bytes=tree.size_bytes,
        leaf_fill_mean=fills.mean,
        leaf_fill_min=fills.min,
        leaf_fill_max=fills.max,
        free_bytes_total=free_total,
        key_bytes_total=key_total,
    )
