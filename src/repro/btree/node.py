"""Typed views over B+Tree node pages.

Nodes are ordinary :class:`SlottedPage`\\ s whose directory is kept sorted
by key, which is exactly the Figure-1 anatomy: directory entries grow up
from the header, key records grow down from the footer, and the free window
in the middle is where the index cache lives.

* **Leaf** records are ``key || value`` (both fixed width).
* **Internal** records are ``key || child_page_id(u32)``.  Entry 0's key is
  a sentinel treated as −∞, giving ``n`` entries for ``n`` children.
"""

from __future__ import annotations

from repro.errors import PageFormatError
from repro.storage.constants import PageType
from repro.storage.page import SlottedPage

CHILD_PTR_SIZE = 4


class LeafNode:
    """Sorted ``key -> value`` entries in a leaf page."""

    def __init__(self, page: SlottedPage, key_size: int, value_size: int) -> None:
        if page.page_type is not PageType.BTREE_LEAF:
            raise PageFormatError(
                f"page {page.page_id} is {page.page_type.name}, not a leaf"
            )
        self.page = page
        self._key_size = key_size
        self._value_size = value_size

    @property
    def count(self) -> int:
        return self.page.slot_count

    def key_at(self, pos: int) -> bytes:
        return self.page.read(pos)[: self._key_size]

    def value_at(self, pos: int) -> bytes:
        return self.page.read(pos)[self._key_size :]

    def entry_at(self, pos: int) -> tuple[bytes, bytes]:
        record = self.page.read(pos)
        return record[: self._key_size], record[self._key_size :]

    def find(self, key: bytes) -> tuple[int, bool]:
        """Lower-bound binary search: ``(position, exact_match)``."""
        lo, hi = 0, self.count
        while lo < hi:
            mid = (lo + hi) // 2
            if self.key_at(mid) < key:
                lo = mid + 1
            else:
                hi = mid
        found = lo < self.count and self.key_at(lo) == key
        return lo, found

    def insert(self, pos: int, key: bytes, value: bytes) -> None:
        """Insert an entry at ``pos`` (raises ``PageFullError`` when full)."""
        self.page.insert_at(pos, key + value)

    def set_value(self, pos: int, value: bytes) -> None:
        """Overwrite the value of an existing entry."""
        key = self.key_at(pos)
        self.page.update(pos, key + value)

    def remove(self, pos: int) -> None:
        self.page.remove_at(pos)

    def entries(self) -> list[tuple[bytes, bytes]]:
        return [self.entry_at(i) for i in range(self.count)]

    @property
    def entry_size(self) -> int:
        return self._key_size + self._value_size


class InternalNode:
    """Sorted ``separator -> child`` routing entries in an internal page."""

    def __init__(self, page: SlottedPage, key_size: int) -> None:
        if page.page_type is not PageType.BTREE_INTERNAL:
            raise PageFormatError(
                f"page {page.page_id} is {page.page_type.name}, not internal"
            )
        self.page = page
        self._key_size = key_size

    @property
    def count(self) -> int:
        return self.page.slot_count

    def key_at(self, pos: int) -> bytes:
        return self.page.read(pos)[: self._key_size]

    def child_at(self, pos: int) -> int:
        record = self.page.read(pos)
        return int.from_bytes(record[self._key_size :], "little")

    def entry_at(self, pos: int) -> tuple[bytes, int]:
        record = self.page.read(pos)
        return (
            record[: self._key_size],
            int.from_bytes(record[self._key_size :], "little"),
        )

    def find_child(self, key: bytes) -> tuple[int, int]:
        """``(position, child_page_id)`` routing ``key``.

        Picks the rightmost entry whose separator is <= ``key``; entry 0's
        separator is ignored (−∞), so position 0 is the floor.
        """
        lo, hi = 1, self.count
        while lo < hi:
            mid = (lo + hi) // 2
            if self.key_at(mid) <= key:
                lo = mid + 1
            else:
                hi = mid
        pos = lo - 1
        return pos, self.child_at(pos)

    def insert(self, pos: int, key: bytes, child: int) -> None:
        self.page.insert_at(pos, key + child.to_bytes(CHILD_PTR_SIZE, "little"))

    def entries(self) -> list[tuple[bytes, int]]:
        return [self.entry_at(i) for i in range(self.count)]

    @property
    def entry_size(self) -> int:
        return self._key_size + CHILD_PTR_SIZE
