"""B+Tree over the buffer pool.

Design notes relevant to the paper:

* Nodes are slotted pages; the leaf free window between the directory and
  the key region is exactly the space the index cache (§2.1) recycles.
* Leaf splits move the upper ``1 - split_fraction`` of entries to a new
  right sibling.  Under random inserts a 0.5 split converges to the ~68%
  average fill factor the paper quotes from Yao [10]; under churn
  (insert/delete mixes) fill decays further — the CarTel 45% phenomenon.
* Deletes do **not** merge or rebalance nodes.  This matches the behaviour
  of deployed systems (and Johnson & Shasha's analysis the paper cites):
  space freed by deletes lingers as low fill factor, i.e. as reusable cache
  room.
* Keys and values are fixed-width byte strings (see ``keycodec``); the tree
  itself never interprets them beyond lexicographic comparison.
"""

from __future__ import annotations

from typing import Iterable, Iterator

from repro.errors import (
    DuplicateKeyError,
    IndexError_,
    KeyNotFoundError,
    PageFullError,
)
from repro.btree.node import CHILD_PTR_SIZE, InternalNode, LeafNode
from repro.obs.registry import MetricsRegistry, resolve_registry
from repro.storage.buffer_pool import BufferPool
from repro.storage.constants import PageType
from repro.storage.page import SlottedPage


#: Leaf-chain continuations a batched probe tries before re-descending.
#: A hop costs one page access; a descent costs ``height`` of them, so a
#: short bounded lookahead is never worse than eagerly re-descending.
MAX_CHAIN_HOPS = 2


class BPlusTree:
    """A unique-key B+Tree mapping fixed-width keys to fixed-width values."""

    def __init__(
        self,
        pool: BufferPool,
        key_size: int,
        value_size: int,
        name: str = "index",
        split_fraction: float = 0.5,
        registry: MetricsRegistry | None = None,
    ) -> None:
        if key_size <= 0 or value_size <= 0:
            raise IndexError_("key and value sizes must be positive")
        if not 0.1 <= split_fraction <= 0.9:
            raise IndexError_("split_fraction must be in [0.1, 0.9]")
        reg = resolve_registry(registry)
        self._registry = reg
        self._m_search = reg.counter("btree.search")
        self._m_descent = reg.counter("btree.descent")
        self._m_batch_keys = reg.counter("btree.batch.keys")
        self._m_batch_probes = reg.counter("btree.batch.probes")
        self._m_batch_chain_hops = reg.counter("btree.batch.chain_hops")
        self._m_insert = reg.counter("btree.insert")
        self._m_delete = reg.counter("btree.delete")
        self._m_split_leaf = reg.counter("btree.split.leaf")
        self._m_split_internal = reg.counter("btree.split.internal")
        self._pool = pool
        self._key_size = key_size
        self._value_size = value_size
        self._name = name
        self._split_fraction = split_fraction
        self._num_entries = 0
        self._leaf_ids: list[int] = []
        self._internal_ids: list[int] = []
        root = pool.new_page(PageType.BTREE_LEAF)
        self._root_id = root.page_id
        self._height = 1
        self._leaf_ids.append(root.page_id)
        pool.unpin(root.page_id, dirty=True)

    # -- properties ----------------------------------------------------------

    @property
    def pool(self) -> BufferPool:
        return self._pool

    @property
    def name(self) -> str:
        return self._name

    @property
    def key_size(self) -> int:
        return self._key_size

    @property
    def value_size(self) -> int:
        return self._value_size

    @property
    def registry(self) -> MetricsRegistry:
        """The metrics registry this tree emits into (resolved, never None)."""
        return self._registry

    @property
    def split_fraction(self) -> float:
        return self._split_fraction

    @property
    def root_page_id(self) -> int:
        return self._root_id

    @property
    def height(self) -> int:
        """Number of levels, 1 for a single-leaf tree."""
        return self._height

    @property
    def num_entries(self) -> int:
        return self._num_entries

    @property
    def leaf_page_ids(self) -> list[int]:
        return list(self._leaf_ids)

    @property
    def internal_page_ids(self) -> list[int]:
        return list(self._internal_ids)

    @property
    def num_pages(self) -> int:
        return len(self._leaf_ids) + len(self._internal_ids)

    @property
    def size_bytes(self) -> int:
        """Total index size: node pages × page size."""
        return self.num_pages * self._pool.disk.page_size

    # -- lookups -------------------------------------------------------------

    def search(self, key: bytes) -> bytes | None:
        """Exact lookup; returns the value bytes or ``None``."""
        self._check_key(key)
        self._m_search.inc()
        leaf_id = self.find_leaf(key)
        with self._pool.page(leaf_id) as page:
            leaf = self._leaf(page)
            pos, found = leaf.find(key)
            return leaf.value_at(pos) if found else None

    def find_leaf(self, key: bytes) -> int:
        """Descend to the leaf page that owns ``key`` and return its id.

        The descent itself charges buffer-pool costs for the internal
        pages; the caller pins the leaf (this is the hook the cached index
        uses so it can probe the leaf's cache window while it holds it).
        """
        self._check_key(key)
        self._m_descent.inc()
        page_id = self._root_id
        while True:
            with self._pool.page(page_id) as page:
                if page.page_type is PageType.BTREE_LEAF:
                    return page_id
                node = InternalNode(page, self._key_size)
                _, page_id = node.find_child(key)

    def contains(self, key: bytes) -> bool:
        return self.search(key) is not None

    def lookup_many(self, keys: "Iterable[bytes]") -> dict[bytes, bytes | None]:
        """Batched exact lookups: sorted probes share descents and leaves.

        Keys are deduped and probed in ascending order, so a run of keys
        that lands on one leaf costs a single inner-node descent plus a
        single leaf pin, and a probe whose key lives on an adjacent leaf
        follows the leaf sibling chain (one page access) instead of
        re-descending from the root (``height`` page accesses).  Returns
        ``key -> value-or-None`` for every requested key; results are
        identical to calling :meth:`search` once per key.
        """
        key_list = list(keys)
        for key in key_list:
            self._check_key(key)
        out: dict[bytes, bytes | None] = {}
        probes = sorted(set(key_list))
        if not probes:
            return out
        self._m_batch_keys.inc(len(key_list))
        self._m_batch_probes.inc(len(probes))
        self._m_search.inc(len(probes))
        for _, page, run in self.leaf_runs(probes):
            leaf = self._leaf(page)
            for key in run:
                pos, found = leaf.find(key)
                out[key] = leaf.value_at(pos) if found else None
        return out

    def range_batch(
        self, ranges: "list[tuple[bytes | None, bytes | None]]"
    ) -> list[list[tuple[bytes, bytes]]]:
        """Batched range scans sharing descents across sorted ``lo`` bounds.

        Each ``(lo, hi)`` behaves like ``list(range_scan(lo, hi))``;
        results are returned aligned with the *input* order.  Ranges are
        processed in ascending ``lo`` order so a range starting in or
        just after the previous range's last leaf continues along the
        leaf chain instead of re-descending.
        """
        for lo, hi in ranges:
            if lo is not None:
                self._check_key(lo)
            if hi is not None:
                self._check_key(hi)
        results: list[list[tuple[bytes, bytes]]] = [[] for _ in ranges]
        order = sorted(
            range(len(ranges)),
            key=lambda i: (ranges[i][0] is not None, ranges[i][0] or b""),
        )
        cursor: tuple[int, SlottedPage] | None = None
        try:
            for i in order:
                lo, hi = ranges[i]
                collected = results[i]
                # Position on the leaf owning ``lo`` (or the leftmost).
                held, cursor = cursor, None
                if lo is None:
                    if held is not None:
                        self._pool.unpin(held[0])
                    first = self._leftmost_leaf()
                    cursor = (first, self._pool.fetch(first))
                else:
                    cursor = self._seek_leaf_forward(held, lo, for_scan=True)
                # Walk the chain collecting entries in [lo, hi).
                bound = lo
                while True:
                    page_id, page = cursor
                    leaf = self._leaf(page)
                    start = 0
                    if bound is not None:
                        start, _ = leaf.find(bound)
                        bound = None
                    done = False
                    for pos in range(start, leaf.count):
                        key, value = leaf.entry_at(pos)
                        if hi is not None and key >= hi:
                            done = True
                            break
                        collected.append((key, value))
                    next_id = page.next_page
                    if done or next_id is None:
                        break
                    cursor = None
                    self._pool.unpin(page_id)
                    cursor = (next_id, self._pool.fetch(next_id))
        finally:
            if cursor is not None:
                self._pool.unpin(cursor[0])
        return results

    def leaf_runs(
        self, keys: Iterable[bytes]
    ) -> Iterator[tuple[int, SlottedPage, list[bytes]]]:
        """Group probe keys into per-leaf runs, sharing descents and pins.

        Dedupes and sorts the keys, then yields ``(leaf_id, page, run)``
        where ``page`` is the pinned leaf that decides every key in
        ``run`` (consecutive sorted keys landing on one leaf).  The pin
        is held only while the consumer is inside the ``yield`` — this is
        the hook the cached index uses to probe a leaf's cache window
        once per run instead of once per key.  Pages must not be dirtied
        by consumers (batched reads are a read-only path).
        """
        probes = sorted(set(keys))
        cursor: tuple[int, SlottedPage] | None = None
        try:
            i = 0
            while i < len(probes):
                held, cursor = cursor, None
                cursor = self._seek_leaf_forward(held, probes[i])
                page_id, page = cursor
                leaf = self._leaf(page)
                count = leaf.count
                last = leaf.key_at(count - 1) if count else None
                rightmost = page.next_page is None
                run = [probes[i]]
                i += 1
                while i < len(probes) and (
                    rightmost or (last is not None and probes[i] <= last)
                ):
                    run.append(probes[i])
                    i += 1
                yield page_id, page, run
        finally:
            if cursor is not None:
                self._pool.unpin(cursor[0])

    def _seek_leaf_forward(
        self,
        cursor: tuple[int, SlottedPage] | None,
        key: bytes,
        for_scan: bool = False,
    ) -> tuple[int, SlottedPage]:
        """Advance a pinned leaf cursor to a leaf that decides ``key``.

        Probes must arrive in ascending key order.  Tries up to
        ``MAX_CHAIN_HOPS`` sibling hops before falling back to a full
        descent.  For point probes a leaf "decides" the key when the key
        is <= its last key (a miss there is a miss in the tree, because
        sibling ranges are contiguous); for scans (``for_scan=True``) the
        cursor must land on the true owner leaf, so a cursor whose first
        key is past ``key`` re-descends instead of under-reporting.
        Always returns a pinned ``(page_id, page)``; on error no pin is
        leaked (the incoming pin is released before any fallible step).
        """
        if cursor is not None:
            page_id, page = cursor
            hops = 0
            while True:
                leaf = self._leaf(page)
                count = leaf.count
                if for_scan and (count == 0 or key < leaf.key_at(0)):
                    # Scans need the owner leaf: entries >= key may live
                    # on an earlier leaf than this cursor.
                    self._pool.unpin(page_id)
                    break
                if count and key <= leaf.key_at(count - 1):
                    return page_id, page
                next_id = page.next_page
                if next_id is None:
                    return page_id, page  # rightmost leaf decides
                self._pool.unpin(page_id)
                if hops >= MAX_CHAIN_HOPS:
                    break  # too far ahead: re-descend
                self._m_batch_chain_hops.inc()
                hops += 1
                page = self._pool.fetch(next_id)
                page_id = next_id
        leaf_id = self.find_leaf(key)
        return leaf_id, self._pool.fetch(leaf_id)

    def range_scan(
        self, lo: bytes | None = None, hi: bytes | None = None
    ) -> Iterator[tuple[bytes, bytes]]:
        """Yield ``(key, value)`` with ``lo <= key < hi`` in key order."""
        if lo is not None:
            self._check_key(lo)
        if hi is not None:
            self._check_key(hi)
        page_id: int | None
        if lo is None:
            page_id = self._leftmost_leaf()
        else:
            page_id = self.find_leaf(lo)
        while page_id is not None:
            with self._pool.page(page_id) as page:
                leaf = self._leaf(page)
                if lo is None:
                    start = 0
                else:
                    start, _ = leaf.find(lo)
                batch = []
                for pos in range(start, leaf.count):
                    key, value = leaf.entry_at(pos)
                    if hi is not None and key >= hi:
                        page_id = None
                        break
                    batch.append((key, value))
                else:
                    page_id = page.next_page
            yield from batch
            lo = None  # only constrain the first leaf

    def items(self) -> Iterator[tuple[bytes, bytes]]:
        """Full in-order scan."""
        return self.range_scan()

    # -- mutation ------------------------------------------------------------

    def insert(self, key: bytes, value: bytes, upsert: bool = False) -> None:
        """Insert ``key -> value``; raises on duplicates unless ``upsert``."""
        self._check_key(key)
        self._check_value(value)
        self._m_insert.inc()
        path = self._descend(key)
        leaf_id = path[-1][0]
        with self._pool.page(leaf_id, dirty=True) as page:
            leaf = self._leaf(page)
            pos, found = leaf.find(key)
            if found:
                if not upsert:
                    raise DuplicateKeyError(
                        f"{self._name}: duplicate key {key.hex()}"
                    )
                leaf.set_value(pos, value)
                return
            if self._try_insert_leaf(leaf, pos, key, value):
                self._num_entries += 1
                return
        # The leaf is genuinely full: split, then insert into the proper half.
        separator, new_leaf_id = self._split_leaf(leaf_id)
        self._insert_into_parent(path[:-1], leaf_id, separator, new_leaf_id)
        target = new_leaf_id if key >= separator else leaf_id
        with self._pool.page(target, dirty=True) as page:
            leaf = self._leaf(page)
            pos, found = leaf.find(key)
            if found:  # pragma: no cover - guarded above
                raise DuplicateKeyError(f"{self._name}: duplicate key")
            leaf.insert(pos, key, value)
        self._num_entries += 1

    def update_value(self, key: bytes, value: bytes) -> None:
        """Overwrite the value of an existing key."""
        self._check_key(key)
        self._check_value(value)
        leaf_id = self.find_leaf(key)
        with self._pool.page(leaf_id, dirty=True) as page:
            leaf = self._leaf(page)
            pos, found = leaf.find(key)
            if not found:
                raise KeyNotFoundError(f"{self._name}: key {key.hex()} not found")
            leaf.set_value(pos, value)

    def delete(self, key: bytes) -> None:
        """Remove ``key``; no node merging (fill factor decays, see module
        docstring).  Raises :class:`KeyNotFoundError` if absent."""
        self._check_key(key)
        self._m_delete.inc()
        leaf_id = self.find_leaf(key)
        with self._pool.page(leaf_id, dirty=True) as page:
            leaf = self._leaf(page)
            pos, found = leaf.find(key)
            if not found:
                raise KeyNotFoundError(f"{self._name}: key {key.hex()} not found")
            leaf.remove(pos)
        self._num_entries -= 1

    # -- bulk loading ----------------------------------------------------------

    @classmethod
    def bulk_load(
        cls,
        pool: BufferPool,
        entries: list[tuple[bytes, bytes]],
        key_size: int,
        value_size: int,
        name: str = "index",
        leaf_fill: float = 0.68,
        split_fraction: float = 0.5,
        registry: MetricsRegistry | None = None,
    ) -> "BPlusTree":
        """Build a tree from sorted unique entries at a target leaf fill.

        The default 0.68 fill reproduces the steady-state occupancy the
        paper quotes; experiments that want denser or sparser indexes pass
        a different ``leaf_fill``.
        """
        if not 0.05 < leaf_fill <= 1.0:
            raise IndexError_("leaf_fill must be in (0.05, 1.0]")
        tree = cls(pool, key_size, value_size, name=name,
                   split_fraction=split_fraction, registry=registry)
        if not entries:
            return tree
        for i in range(1, len(entries)):
            if entries[i - 1][0] >= entries[i][0]:
                raise IndexError_("bulk_load requires sorted unique keys")

        # Fill leaves left to right up to the fill target.
        first_leaf = tree._root_id
        leaf_entry = key_size + value_size + 4  # + directory entry
        with pool.page(first_leaf) as page:
            usable = page.usable_bytes
        per_leaf = max(1, int(usable * leaf_fill) // leaf_entry)

        leaves: list[tuple[bytes, int]] = []  # (first key, page id)
        idx = 0
        current_id = first_leaf
        while idx < len(entries):
            chunk = entries[idx : idx + per_leaf]
            with pool.page(current_id, dirty=True) as page:
                leaf = tree._leaf(page)
                for j, (key, value) in enumerate(chunk):
                    leaf.insert(j, key, value)
            leaves.append((chunk[0][0], current_id))
            idx += per_leaf
            if idx < len(entries):
                new_page = pool.new_page(PageType.BTREE_LEAF)
                new_id = new_page.page_id
                pool.unpin(new_id, dirty=True)
                tree._leaf_ids.append(new_id)
                with pool.page(current_id, dirty=True) as page:
                    page.next_page = new_id
                current_id = new_id
        tree._num_entries = len(entries)

        # Build internal levels bottom-up until one node remains.
        level = 1
        children = leaves
        internal_entry = key_size + CHILD_PTR_SIZE + 4
        per_internal = max(2, int(usable * leaf_fill) // internal_entry)
        while len(children) > 1:
            parents: list[tuple[bytes, int]] = []
            for start in range(0, len(children), per_internal):
                group = children[start : start + per_internal]
                page = pool.new_page(PageType.BTREE_INTERNAL)
                page.level = level
                node = InternalNode(page, key_size)
                for j, (first_key, child_id) in enumerate(group):
                    node.insert(j, first_key, child_id)
                parents.append((group[0][0], page.page_id))
                tree._internal_ids.append(page.page_id)
                pool.unpin(page.page_id, dirty=True)
            children = parents
            level += 1
        tree._root_id = children[0][1]
        tree._height = level
        return tree

    # -- maintenance / stats ----------------------------------------------------

    def leaf_fill_factor(self) -> float:
        """Mean fill factor across leaf pages."""
        if not self._leaf_ids:
            return 0.0
        total = 0.0
        for page_id in self._leaf_ids:
            with self._pool.page(page_id) as page:
                total += page.fill_factor
        return total / len(self._leaf_ids)

    def verify_order(self) -> None:
        """Walk every leaf and assert keys are globally sorted (tests)."""
        previous: bytes | None = None
        for key, _ in self.items():
            if previous is not None and key <= previous:
                raise IndexError_(
                    f"{self._name}: order violation at {key.hex()}"
                )
            previous = key

    # -- internals ---------------------------------------------------------------

    def _leaf(self, page: SlottedPage) -> LeafNode:
        return LeafNode(page, self._key_size, self._value_size)

    def _check_key(self, key: bytes) -> None:
        if len(key) != self._key_size:
            raise IndexError_(
                f"{self._name}: key must be {self._key_size} bytes, "
                f"got {len(key)}"
            )

    def _check_value(self, value: bytes) -> None:
        if len(value) != self._value_size:
            raise IndexError_(
                f"{self._name}: value must be {self._value_size} bytes, "
                f"got {len(value)}"
            )

    def _descend(self, key: bytes) -> list[tuple[int, int]]:
        """Root-to-leaf path as ``(page_id, position_in_parent)`` pairs.

        The position recorded for each page is its entry position within
        its *parent* (0 for the root).
        """
        path = [(self._root_id, 0)]
        page_id = self._root_id
        while True:
            with self._pool.page(page_id) as page:
                if page.page_type is PageType.BTREE_LEAF:
                    return path
                node = InternalNode(page, self._key_size)
                pos, child = node.find_child(key)
            path.append((child, pos))
            page_id = child

    def _try_insert_leaf(
        self, leaf: LeafNode, pos: int, key: bytes, value: bytes
    ) -> bool:
        """Insert, compacting orphaned record bytes once before giving up."""
        try:
            leaf.insert(pos, key, value)
            return True
        except PageFullError:
            pass
        if leaf.page.live_record_bytes + leaf.entry_size + 4 \
                > leaf.page.usable_bytes - leaf.count * 4:
            return False
        leaf.page.compact()
        try:
            leaf.insert(pos, key, value)
            return True
        except PageFullError:
            return False

    def _split_leaf(self, leaf_id: int) -> tuple[bytes, int]:
        """Split ``leaf_id``; returns ``(separator_key, new_leaf_id)``."""
        new_page = self._pool.new_page(PageType.BTREE_LEAF)
        new_id = new_page.page_id
        try:
            with self._pool.page(leaf_id, dirty=True) as page:
                leaf = self._leaf(page)
                count = leaf.count
                split_at = min(max(1, int(count * self._split_fraction)),
                               count - 1)
                moved = [leaf.entry_at(i) for i in range(split_at, count)]
                new_leaf = LeafNode(new_page, self._key_size, self._value_size)
                for j, (key, value) in enumerate(moved):
                    new_leaf.insert(j, key, value)
                page_next = page.next_page
                new_page.next_page = page_next
                page.truncate(split_at)
                page.compact()
                page.next_page = new_id
                separator = moved[0][0]
        finally:
            self._pool.unpin(new_id, dirty=True)
        self._leaf_ids.append(new_id)
        self._m_split_leaf.inc()
        return separator, new_id

    def _split_internal(self, node_id: int) -> tuple[bytes, int]:
        """Split an internal node; returns ``(separator_key, new_node_id)``."""
        new_page = self._pool.new_page(PageType.BTREE_INTERNAL)
        new_id = new_page.page_id
        try:
            with self._pool.page(node_id, dirty=True) as page:
                node = InternalNode(page, self._key_size)
                count = node.count
                split_at = max(1, count // 2)
                moved = [node.entry_at(i) for i in range(split_at, count)]
                new_page.level = page.level
                new_node = InternalNode(new_page, self._key_size)
                for j, (key, child) in enumerate(moved):
                    new_node.insert(j, key, child)
                page.truncate(split_at)
                page.compact()
                # The separator promoted to the parent is the first moved
                # key; within the new node that entry's key acts as -inf.
                separator = moved[0][0]
        finally:
            self._pool.unpin(new_id, dirty=True)
        self._internal_ids.append(new_id)
        self._m_split_internal.inc()
        return separator, new_id

    def _insert_into_parent(
        self,
        path: list[tuple[int, int]],
        left_id: int,
        separator: bytes,
        right_id: int,
    ) -> None:
        """Insert ``(separator, right_id)`` next to ``left_id`` in its parent.

        ``path`` is the remaining root-ward path; empty means ``left_id``
        was the root and we grow a new root.
        """
        if not path:
            self._grow_root(left_id, separator, right_id)
            return
        parent_id, _ = path[-1]
        with self._pool.page(parent_id, dirty=True) as page:
            node = InternalNode(page, self._key_size)
            pos, child = node.find_child(separator)
            if child != left_id:
                # The separator routes to the left sibling by construction;
                # anything else means the path raced with another split.
                raise IndexError_(
                    f"{self._name}: parent routing mismatch during split"
                )
            try:
                node.insert(pos + 1, separator, right_id)
                return
            except PageFullError:
                page.compact()
                try:
                    node.insert(pos + 1, separator, right_id)
                    return
                except PageFullError:
                    pass
        parent_sep, new_parent_id = self._split_internal(parent_id)
        self._insert_into_parent(path[:-1], parent_id, parent_sep, new_parent_id)
        target = new_parent_id if separator >= parent_sep else parent_id
        with self._pool.page(target, dirty=True) as page:
            node = InternalNode(page, self._key_size)
            pos, child = node.find_child(separator)
            if child != left_id:
                raise IndexError_(
                    f"{self._name}: parent routing mismatch after split"
                )
            node.insert(pos + 1, separator, right_id)

    def _grow_root(self, left_id: int, separator: bytes, right_id: int) -> None:
        page = self._pool.new_page(PageType.BTREE_INTERNAL)
        try:
            page.level = self._height
            node = InternalNode(page, self._key_size)
            # Entry 0's key is the -inf sentinel; zeros keep it inert.
            node.insert(0, bytes(self._key_size), left_id)
            node.insert(1, separator, right_id)
            self._root_id = page.page_id
            self._internal_ids.append(page.page_id)
            self._height += 1
        finally:
            self._pool.unpin(page.page_id, dirty=True)

    def _leftmost_leaf(self) -> int:
        page_id = self._root_id
        while True:
            with self._pool.page(page_id) as page:
                if page.page_type is PageType.BTREE_LEAF:
                    return page_id
                node = InternalNode(page, self._key_size)
                page_id = node.child_at(0)
