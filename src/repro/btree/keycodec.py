"""Order-preserving fixed-length key encodings.

The paper's index-cache layout assumes fixed-length index keys (§2.1.1);
these codecs map column values onto fixed-width byte strings whose
*lexicographic* order equals the logical order, so the B+Tree can compare
keys with plain ``bytes`` comparison.

Encodings:

* unsigned ints — big-endian.
* signed ints — big-endian with the sign bit flipped (two's-complement
  order becomes unsigned order).
* strings — UTF-8, NUL-padded to a fixed width.  Padding preserves order
  for strings that fit; wider strings are rejected, not truncated, because
  silent truncation would corrupt equality semantics.
* composites — concatenation of the component encodings (most significant
  first), e.g. Wikipedia's ``(namespace, title)`` name_title key.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Sequence

from repro.errors import SchemaError, TypeMismatchError
from repro.schema.schema import Column
from repro.schema.types import TypeKind


class KeyCodec(ABC):
    """Encodes one value (or value tuple) to fixed-width ordered bytes."""

    @property
    @abstractmethod
    def size(self) -> int:
        """Encoded width in bytes."""

    @abstractmethod
    def encode(self, value: object) -> bytes:
        """Encode ``value`` to exactly :attr:`size` bytes."""

    @abstractmethod
    def decode(self, data: bytes) -> object:
        """Invert :meth:`encode`."""


class UIntKey(KeyCodec):
    """Unsigned integer key (big-endian)."""

    def __init__(self, size: int) -> None:
        if size <= 0:
            raise SchemaError("key size must be positive")
        self._size = size

    @property
    def size(self) -> int:
        return self._size

    def encode(self, value: object) -> bytes:
        if isinstance(value, bool) or not isinstance(value, int):
            raise TypeMismatchError(f"uint key expects int, got {value!r}")
        if value < 0:
            raise TypeMismatchError(f"uint key cannot encode {value}")
        return value.to_bytes(self._size, "big")

    def decode(self, data: bytes) -> int:
        return int.from_bytes(data, "big")


class IntKey(KeyCodec):
    """Signed integer key (big-endian, sign bit flipped)."""

    def __init__(self, size: int) -> None:
        if size <= 0:
            raise SchemaError("key size must be positive")
        self._size = size
        self._bias = 1 << (8 * size - 1)

    @property
    def size(self) -> int:
        return self._size

    def encode(self, value: object) -> bytes:
        if isinstance(value, bool) or not isinstance(value, int):
            raise TypeMismatchError(f"int key expects int, got {value!r}")
        return (value + self._bias).to_bytes(self._size, "big")

    def decode(self, data: bytes) -> int:
        return int.from_bytes(data, "big") - self._bias


class StringKey(KeyCodec):
    """Fixed-width NUL-padded string key."""

    def __init__(self, width: int) -> None:
        if width <= 0:
            raise SchemaError("key width must be positive")
        self._width = width

    @property
    def size(self) -> int:
        return self._width

    def encode(self, value: object) -> bytes:
        if not isinstance(value, str):
            raise TypeMismatchError(f"string key expects str, got {value!r}")
        raw = value.encode("utf-8")
        if len(raw) > self._width:
            raise TypeMismatchError(
                f"string of {len(raw)} bytes exceeds key width {self._width}"
            )
        return raw.ljust(self._width, b"\x00")

    def decode(self, data: bytes) -> str:
        return data.rstrip(b"\x00").decode("utf-8")


class CompositeKey(KeyCodec):
    """Concatenation of component codecs, most significant first."""

    def __init__(self, components: Sequence[KeyCodec]) -> None:
        if not components:
            raise SchemaError("composite key needs at least one component")
        self._components = tuple(components)
        self._size = sum(c.size for c in components)

    @property
    def size(self) -> int:
        return self._size

    @property
    def components(self) -> tuple[KeyCodec, ...]:
        return self._components

    def encode(self, value: object) -> bytes:
        if not isinstance(value, (tuple, list)):
            raise TypeMismatchError(
                f"composite key expects a tuple, got {value!r}"
            )
        if len(value) != len(self._components):
            raise TypeMismatchError(
                f"composite key expects {len(self._components)} parts, "
                f"got {len(value)}"
            )
        return b"".join(
            codec.encode(part) for codec, part in zip(self._components, value)
        )

    def decode(self, data: bytes) -> tuple[object, ...]:
        parts = []
        offset = 0
        for codec in self._components:
            parts.append(codec.decode(data[offset : offset + codec.size]))
            offset += codec.size
        return tuple(parts)


def codec_for_column(column: Column) -> KeyCodec:
    """The natural key codec for one column's stored type."""
    kind = column.ctype.kind
    size = column.ctype.size
    if kind in (TypeKind.UINT, TypeKind.TIMESTAMP, TypeKind.DATE,
                TypeKind.YEAR, TypeKind.BOOL):
        return UIntKey(size)
    if kind is TypeKind.INT:
        return IntKey(size)
    if kind is TypeKind.CHAR or kind is TypeKind.TIMESTAMP_STRING:
        return StringKey(size)
    if kind is TypeKind.VARCHAR:
        # Index on the payload width; the 2-byte length prefix is a storage
        # artifact, not part of the logical value.
        return StringKey(size - 2)
    raise SchemaError(f"no key codec for column type {column.ctype.name}")


def codec_for_columns(columns: Sequence[Column]) -> KeyCodec:
    """Codec for a (possibly composite) key over the given columns."""
    codecs = [codec_for_column(c) for c in columns]
    if len(codecs) == 1:
        return codecs[0]
    return CompositeKey(codecs)
