"""Operation traces and the Figure 2(a) scenario drivers.

Figure 2(a) compares two scenarios over 100k zipf lookups:

* **Swap** — a read-only workload: the cache keeps its full size.
* **Shrink** — a read/insert workload "that overwrites half of the index
  cache at a constant rate over the duration of the experiment".

:func:`run_swap_scenario` and :func:`run_shrink_scenario` drive a
:class:`~repro.core.index_cache.simulator.SwapCacheSimulator` through each,
returning the measured hit rate; the experiment module sweeps cache sizes.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

from repro.core.index_cache.simulator import SwapCacheSimulator
from repro.errors import WorkloadError
from repro.util.rng import DeterministicRng
from repro.workload.distributions import ZipfianDistribution


class OpKind(Enum):
    """Kinds of operations a trace can carry."""

    LOOKUP = "lookup"
    INSERT = "insert"
    UPDATE = "update"
    DELETE = "delete"


@dataclass(frozen=True)
class Operation:
    """One trace entry."""

    kind: OpKind
    key: object
    row: dict[str, object] | None = None
    changes: dict[str, object] | None = None


@dataclass(frozen=True)
class ScenarioResult:
    """Hit-rate outcome of a Fig-2(a) scenario run."""

    capacity_start: int
    capacity_end: int
    lookups: int
    hit_rate: float


def run_swap_scenario(
    n_items: int,
    capacity: int,
    n_lookups: int,
    alpha: float = 0.5,
    bucket_slots: int = 4,
    seed: int = 0,
    warmup: int | None = None,
) -> ScenarioResult:
    """Read-only workload: constant cache size (the paper's ``Swap``)."""
    sim = SwapCacheSimulator(
        capacity, bucket_slots=bucket_slots, rng=DeterministicRng(seed)
    )
    zipf = ZipfianDistribution(n_items, alpha, DeterministicRng(seed + 1))
    warmup = warmup if warmup is not None else n_lookups // 2
    for _ in range(warmup):
        sim.lookup(zipf.sample())
    sim.reset_counters()
    for _ in range(n_lookups):
        sim.lookup(zipf.sample())
    return ScenarioResult(
        capacity_start=capacity,
        capacity_end=sim.capacity,
        lookups=n_lookups,
        hit_rate=sim.hit_rate,
    )


def run_shrink_scenario(
    n_items: int,
    capacity: int,
    n_lookups: int,
    alpha: float = 0.5,
    bucket_slots: int = 4,
    seed: int = 0,
    shrink_fraction: float = 0.5,
    warmup: int | None = None,
) -> ScenarioResult:
    """Read/insert workload: index growth overwrites ``shrink_fraction``
    of the cache at a constant rate over the run (the paper's ``Shrink``).
    """
    if not 0.0 <= shrink_fraction < 1.0:
        raise WorkloadError("shrink_fraction must be in [0, 1)")
    sim = SwapCacheSimulator(
        capacity, bucket_slots=bucket_slots, rng=DeterministicRng(seed)
    )
    zipf = ZipfianDistribution(n_items, alpha, DeterministicRng(seed + 1))
    warmup = warmup if warmup is not None else n_lookups // 2
    for _ in range(warmup):
        sim.lookup(zipf.sample())
    sim.reset_counters()
    to_remove = int(capacity * shrink_fraction)
    # Spread the removals evenly across the run.
    removal_every = n_lookups / to_remove if to_remove else float("inf")
    next_removal = removal_every
    removed = 0
    for i in range(n_lookups):
        sim.lookup(zipf.sample())
        while removed < to_remove and i + 1 >= next_removal:
            sim.shrink(1)
            removed += 1
            next_removal += removal_every
    return ScenarioResult(
        capacity_start=capacity,
        capacity_end=sim.capacity,
        lookups=n_lookups,
        hit_rate=sim.hit_rate,
    )
