"""Access-skew distributions over item ids.

Three shapes cover every experiment in the paper:

* **Zipfian(α)** — Figure 2(a) uses α = 0.5 ("similar to Wikipedia").
  Sampling uses an inverse-CDF table over ranks, built once in O(n); draws
  are O(log n) bisection.  Rank→item mapping is shuffled so that hot items
  are scattered across the id space (ids correlate with physical placement
  in the heap, and the paper's premise is that hot tuples are *scattered*).
* **Uniform** — the "random lookup distribution" of Figure 2(b).
* **HotSet** — the revision-table pattern of §3.1: a fraction ``hot_frac``
  of items receives ``hot_access_frac`` of all accesses (99.9% of requests
  to 5% of tuples).
"""

from __future__ import annotations

import bisect
import itertools

from repro.errors import WorkloadError
from repro.util.rng import DeterministicRng


class ZipfianDistribution:
    """Zipf over ``n`` items with exponent ``alpha``; rank scattered by id."""

    def __init__(
        self,
        n: int,
        alpha: float,
        rng: DeterministicRng,
        scatter: bool = True,
    ) -> None:
        if n <= 0:
            raise WorkloadError("zipf needs at least one item")
        if alpha < 0:
            raise WorkloadError("alpha must be non-negative")
        self._n = n
        self._alpha = alpha
        self._rng = rng
        cdf = list(itertools.accumulate((r + 1) ** -alpha for r in range(n)))
        total = cdf[-1]
        self._cdf = [x / total for x in cdf]
        if scatter:
            self._rank_to_item = list(range(n))
            rng.child(0xC0FFEE).shuffle(self._rank_to_item)
        else:
            self._rank_to_item = None

    @property
    def n(self) -> int:
        return self._n

    @property
    def alpha(self) -> float:
        return self._alpha

    def sample_rank(self) -> int:
        """Draw a zipf rank (0 = hottest)."""
        return bisect.bisect_left(self._cdf, self._rng.random())

    def sample(self) -> int:
        """Draw an item id."""
        rank = self.sample_rank()
        if self._rank_to_item is None:
            return rank
        return self._rank_to_item[rank]

    def item_for_rank(self, rank: int) -> int:
        """The item id occupying a given hotness rank."""
        if self._rank_to_item is None:
            return rank
        return self._rank_to_item[rank]

    def hottest(self, k: int) -> list[int]:
        """The ``k`` most frequently drawn item ids."""
        return [self.item_for_rank(r) for r in range(min(k, self._n))]

    def access_probability(self, rank: int) -> float:
        """Probability mass of the item at ``rank``."""
        prev = self._cdf[rank - 1] if rank > 0 else 0.0
        return self._cdf[rank] - prev


class UniformDistribution:
    """Uniform over ``n`` items."""

    def __init__(self, n: int, rng: DeterministicRng) -> None:
        if n <= 0:
            raise WorkloadError("uniform needs at least one item")
        self._n = n
        self._rng = rng

    @property
    def n(self) -> int:
        return self._n

    def sample(self) -> int:
        return self._rng.randrange(self._n)


class HotSetDistribution:
    """``hot_access_frac`` of draws land uniformly in a ``hot_frac`` subset.

    The hot subset is chosen by scattering: hot items are spread across the
    id space, reproducing "hot tuples scattered throughout the table, with
    as few as one hot tuple per data page" (§3.1).
    """

    def __init__(
        self,
        n: int,
        hot_frac: float,
        hot_access_frac: float,
        rng: DeterministicRng,
    ) -> None:
        if n <= 0:
            raise WorkloadError("hotset needs at least one item")
        if not 0.0 < hot_frac <= 1.0:
            raise WorkloadError("hot_frac must be in (0, 1]")
        if not 0.0 <= hot_access_frac <= 1.0:
            raise WorkloadError("hot_access_frac must be in [0, 1]")
        self._n = n
        self._rng = rng
        self._hot_access_frac = hot_access_frac
        n_hot = max(1, round(n * hot_frac))
        ids = list(range(n))
        rng.child(0x1107).shuffle(ids)
        self._hot = ids[:n_hot]
        self._cold = ids[n_hot:]
        self._hot_set = set(self._hot)

    @property
    def n(self) -> int:
        return self._n

    @property
    def hot_ids(self) -> list[int]:
        return list(self._hot)

    @property
    def cold_ids(self) -> list[int]:
        return list(self._cold)

    def sample(self) -> int:
        if not self._cold or self._rng.random() < self._hot_access_frac:
            return self._rng.choice(self._hot)
        return self._rng.choice(self._cold)

    def is_hot(self, item: int) -> bool:
        return item in self._hot_set
