"""CarTel-shaped workload: the update-heavy fill-factor case (§2.1).

The paper measured a 45% average B+Tree fill factor in its CarTel
(vehicular sensor) research database — well below the textbook 68% —
because heavy insert/delete churn leaves nodes underfull and our trees
(like deployed ones) never merge on delete.

This module provides the sensor-table schema (with the declared-type
over-allocation the §4.1 analysis found: 16%–83% waste) and a churn driver
that reproduces the fill-factor decay on a live tree.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.btree.tree import BPlusTree
from repro.errors import WorkloadError
from repro.schema.schema import Schema
from repro.schema.types import FLOAT64, INT64, varchar
from repro.util.rng import DeterministicRng

#: Declared sensor-reading schema: every id an INT64, status flags as
#: wide ints, a free-text field sized for the worst case.
CARTEL_SCHEMA_DECLARED = Schema.of(
    ("reading_id", INT64),
    ("car_id", INT64),
    ("sensor_type", INT64),     # ~10 distinct values in practice
    ("is_valid", INT64),        # 0/1
    ("speed_kmh", INT64),       # 0..250
    ("heading_deg", INT64),     # 0..359
    ("lat_e6", INT64),          # metro-area bounded
    ("lon_e6", INT64),
    ("quality", FLOAT64),
    ("note", varchar(32)),      # almost always short codes
)


def cartel_rows(n: int, seed: int = 0) -> list[dict[str, object]]:
    """Synthetic sensor readings with CarTel-like value distributions."""
    if n <= 0:
        raise WorkloadError("need at least one row")
    rng = DeterministicRng(seed)
    base_lat, base_lon = 42_360_000, -71_060_000  # Boston, around MIT
    rows = []
    for i in range(n):
        rows.append(
            {
                "reading_id": i,
                "car_id": rng.randrange(30),
                "sensor_type": rng.randrange(10),
                "is_valid": 1 if rng.bernoulli(0.97) else 0,
                "speed_kmh": rng.randint(0, 130),
                "heading_deg": rng.randint(0, 359),
                "lat_e6": base_lat + rng.randint(-200_000, 200_000),
                "lon_e6": base_lon + rng.randint(-200_000, 200_000),
                "quality": rng.random(),
                "note": rng.choice(["ok", "gps-drift", "resend", ""]),
            }
        )
    return rows


@dataclass(frozen=True)
class ChurnReport:
    """Fill-factor decay measured by :func:`churn_tree`."""

    initial_fill: float
    final_fill: float
    inserts: int
    deletes: int


def churn_tree(
    tree: BPlusTree,
    key_encode,
    n_initial: int,
    churn_ops: int,
    seed: int = 0,
    delete_fraction: float = 0.5,
) -> ChurnReport:
    """Load a tree then churn it with mixed inserts/deletes.

    Deletes never merge nodes, so sustained churn drags the mean leaf fill
    factor down toward the CarTel-like regime.  Keys are dense ints pushed
    through ``key_encode``.
    """
    if not 0.0 <= delete_fraction <= 1.0:
        raise WorkloadError("delete_fraction must be in [0, 1]")
    rng = DeterministicRng(seed)
    # Random arrival order for the initial load: a sequential load would
    # start at the split fraction (~50%) rather than the ~0.69 steady
    # state the decay is measured against.
    initial_keys = list(range(n_initial))
    rng.shuffle(initial_keys)
    live: list[int] = []
    next_key = n_initial
    for key in initial_keys:
        tree.insert(key_encode(key), key.to_bytes(8, "little"))
        live.append(key)
    initial_fill = tree.leaf_fill_factor()

    inserts = 0
    deletes = 0
    for _ in range(churn_ops):
        if live and rng.random() < delete_fraction:
            victim_pos = rng.randrange(len(live))
            victim = live[victim_pos]
            live[victim_pos] = live[-1]
            live.pop()
            tree.delete(key_encode(victim))
            deletes += 1
        else:
            tree.insert(key_encode(next_key), next_key.to_bytes(8, "little"))
            live.append(next_key)
            next_key += 1
            inserts += 1
    return ChurnReport(
        initial_fill=initial_fill,
        final_fill=tree.leaf_fill_factor(),
        inserts=inserts,
        deletes=deletes,
    )
