"""Trace replay: apply an :class:`Operation` stream to a live table.

Experiments mostly drive tables with inline loops; the replay utility is
the library-user path — record or synthesise a trace once, replay it
against different physical designs (cached vs plain index, clustered vs
not) and compare the counters.  ``build_mixed_trace`` synthesises the
usual OLTP mix from a skewed key distribution.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

from repro.errors import WorkloadError
from repro.query.table import Table
from repro.util.rng import DeterministicRng
from repro.workload.distributions import ZipfianDistribution
from repro.workload.trace import OpKind, Operation


@dataclass
class ReplayResult:
    """What a replay did, by operation kind."""

    lookups: int = 0
    lookups_found: int = 0
    inserts: int = 0
    updates: int = 0
    updates_applied: int = 0
    deletes: int = 0
    deletes_applied: int = 0
    errors: list[str] = field(default_factory=list)

    @property
    def operations(self) -> int:
        return self.lookups + self.inserts + self.updates + self.deletes


def replay(
    table: Table,
    index_name: str,
    operations: Iterable[Operation],
    project: tuple[str, ...] | None = None,
    stop_on_error: bool = True,
    lookup_batch_size: int = 1,
) -> ReplayResult:
    """Apply a trace to ``table`` through ``index_name``.

    LOOKUP uses ``op.key``; INSERT needs ``op.row``; UPDATE needs
    ``op.key`` and ``op.changes``; DELETE needs ``op.key``.  Errors either
    raise (default) or are collected in the result.

    ``lookup_batch_size > 1`` turns on the batched read fast path: runs
    of *consecutive* LOOKUP operations are grouped and issued through
    :meth:`~repro.query.table.Table.lookup_many` (up to that many per
    call).  Any write operation flushes the pending batch first, so the
    replay observes exactly the per-op results and ordering of the
    scalar path — only the physical access pattern changes.
    """
    if lookup_batch_size < 1:
        raise WorkloadError("lookup_batch_size must be >= 1")
    result = ReplayResult()
    pending: list[Operation] = []

    def flush() -> None:
        if not pending:
            return
        batch, pending[:] = list(pending), []
        try:
            found = table.lookup_many(
                index_name, [op.key for op in batch], project
            )
            result.lookups_found += sum(1 for r in found if r.found)
        except Exception as exc:
            if stop_on_error:
                raise
            result.errors.append(f"lookup_batch(×{len(batch)}): {exc}")

    for op in operations:
        try:
            if op.kind is OpKind.LOOKUP:
                result.lookups += 1
                if lookup_batch_size > 1:
                    pending.append(op)
                    if len(pending) >= lookup_batch_size:
                        flush()
                    continue
                if table.lookup(index_name, op.key, project).found:
                    result.lookups_found += 1
                continue
            flush()
            if op.kind is OpKind.INSERT:
                if op.row is None:
                    raise WorkloadError("INSERT operation without a row")
                table.insert(op.row)
                result.inserts += 1
            elif op.kind is OpKind.UPDATE:
                if op.changes is None:
                    raise WorkloadError("UPDATE operation without changes")
                result.updates += 1
                if table.update(index_name, op.key, op.changes):
                    result.updates_applied += 1
            elif op.kind is OpKind.DELETE:
                result.deletes += 1
                if table.delete(index_name, op.key):
                    result.deletes_applied += 1
        except Exception as exc:
            if stop_on_error:
                raise
            result.errors.append(f"{op.kind.value}({op.key!r}): {exc}")
    flush()
    return result


def build_mixed_trace(
    n_ops: int,
    existing_keys: list[object],
    make_row,
    make_changes,
    next_key,
    lookup_frac: float = 0.85,
    update_frac: float = 0.10,
    insert_frac: float = 0.05,
    alpha: float = 1.0,
    seed: int = 0,
) -> list[Operation]:
    """Synthesise a lookup/update/insert mix over a zipf-hot key space.

    Args:
        n_ops: trace length.
        existing_keys: keys present before the trace starts.
        make_row: ``key -> row dict`` for inserts.
        make_changes: ``key -> changes dict`` for updates.
        next_key: ``i -> fresh key`` for the i-th insert.
        lookup_frac / update_frac / insert_frac: operation mix (must sum
            to <= 1; the remainder becomes deletes of existing keys).
    """
    if not existing_keys:
        raise WorkloadError("trace needs at least one existing key")
    if lookup_frac + update_frac + insert_frac > 1.0 + 1e-9:
        raise WorkloadError("operation fractions exceed 1.0")
    rng = DeterministicRng(seed)
    zipf = ZipfianDistribution(len(existing_keys), alpha, rng.child(1))
    live = list(existing_keys)
    deleted: set[object] = set()
    ops: list[Operation] = []
    inserts = 0
    for _ in range(n_ops):
        draw = rng.random()
        key = live[zipf.sample() % len(live)]
        if draw < lookup_frac:
            ops.append(Operation(OpKind.LOOKUP, key))
        elif draw < lookup_frac + update_frac:
            if key in deleted:
                ops.append(Operation(OpKind.LOOKUP, key))
            else:
                ops.append(Operation(OpKind.UPDATE, key,
                                     changes=make_changes(key)))
        elif draw < lookup_frac + update_frac + insert_frac:
            key = next_key(inserts)
            inserts += 1
            ops.append(Operation(OpKind.INSERT, key, row=make_row(key)))
            live.append(key)
        else:
            if key in deleted:
                ops.append(Operation(OpKind.LOOKUP, key))
            else:
                ops.append(Operation(OpKind.DELETE, key))
                deleted.add(key)
    return ops
