"""Workload substrate: distributions, synthetic Wikipedia/CarTel tables,
and operation traces."""

from repro.workload.distributions import (
    HotSetDistribution,
    UniformDistribution,
    ZipfianDistribution,
)
from repro.workload.trace import (
    Operation,
    OpKind,
    ScenarioResult,
    run_shrink_scenario,
    run_swap_scenario,
)
from repro.workload.wikipedia import (
    WikipediaConfig,
    WikipediaData,
    generate as generate_wikipedia,
)
from repro.workload.cartel import ChurnReport, cartel_rows, churn_tree

__all__ = [
    "ZipfianDistribution",
    "UniformDistribution",
    "HotSetDistribution",
    "Operation",
    "OpKind",
    "ScenarioResult",
    "run_swap_scenario",
    "run_shrink_scenario",
    "WikipediaConfig",
    "WikipediaData",
    "generate_wikipedia",
    "ChurnReport",
    "cartel_rows",
    "churn_tree",
]
