"""Synthetic Wikipedia-shaped tables and traces.

Substitutes for the paper's production data (see DESIGN.md §2).  What the
experiments actually depend on — and what this generator reproduces:

* **page table** keyed by ``(page_namespace, page_title)`` — the
  name_title index of §2.1.4 — with the 4 extra fields the popular query
  class projects (``page_id``, ``page_latest``, ``page_touched``,
  ``page_len``).
* **revision table**: one tuple per edit, generated as a *temporal
  stream*: each step edits a zipf-chosen page, so the latest revision of
  a rarely-edited page lands anywhere in the table.  The result is the
  §3.1 pathology: hot tuples (the latest revision per page, ~5% of rows
  at ~20 revisions/page) scattered with roughly one hot tuple per heap
  page.
* **declared schemas** carry MediaWiki's wasteful types (14-byte
  timestamp strings, 8-byte ints for small ranges, over-wide VARCHARs) so
  the §4.1 analysis has its 16–83% to find.
* **traces**: rev-lookup trace (99.9% of requests to latest revisions,
  zipf over pages) and name_title lookup trace (zipf over pages).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import WorkloadError
from repro.schema.schema import Schema
from repro.schema.types import (
    INT64,
    TIMESTAMP32,
    TIMESTAMP_STR14,
    UINT8,
    UINT32,
    char,
    varchar,
)
from repro.util.rng import DeterministicRng
from repro.workload.distributions import ZipfianDistribution

#: Compact physical page-table schema (what a tuned system would store).
PAGE_SCHEMA = Schema.of(
    ("page_id", UINT32),
    ("page_namespace", UINT8),
    ("page_title", char(24)),
    ("page_latest", UINT32),
    ("page_touched", TIMESTAMP32),
    ("page_len", UINT32),
)

#: MediaWiki-style declared page schema (what the DDL says).
PAGE_SCHEMA_DECLARED = Schema.of(
    ("page_id", INT64),
    ("page_namespace", INT64),
    ("page_title", varchar(64)),
    ("page_latest", INT64),
    ("page_touched", TIMESTAMP_STR14),
    ("page_len", INT64),
)

#: Compact physical revision schema.
REVISION_SCHEMA = Schema.of(
    ("rev_id", UINT32),
    ("rev_page", UINT32),
    ("rev_text_id", UINT32),
    ("rev_user", UINT32),
    ("rev_timestamp", TIMESTAMP32),
    ("rev_minor_edit", UINT8),
    ("rev_len", UINT32),
    ("rev_comment", char(40)),
)

#: MediaWiki-style declared revision schema.
REVISION_SCHEMA_DECLARED = Schema.of(
    ("rev_id", INT64),
    ("rev_page", INT64),
    ("rev_text_id", INT64),
    ("rev_user", INT64),
    ("rev_timestamp", TIMESTAMP_STR14),
    ("rev_minor_edit", INT64),
    ("rev_len", INT64),
    ("rev_comment", varchar(100)),
)

_EPOCH_2010 = 1262304000  # 2010-01-01, the paper's era

#: 2010-era English Wikipedia id bases: the synthetic tables are a small
#: slice, but column *values* keep production-scale magnitudes so the §4.1
#: type inference sees realistic ranges (rev ids need 32 bits, not 16).
REV_ID_BASE = 340_000_000
PAGE_ID_BASE = 9_000_000

_COMMENT_POOL = (
    "",
    "typo",
    "rv vandalism",
    "copyedit",
    "Reverted edits by [[Special:Contrib]]",
    "/* History */ expanded with sources",
)


@dataclass
class WikipediaConfig:
    """Scale and skew knobs for the synthetic database."""

    n_pages: int = 5_000
    revisions_per_page_mean: int = 20
    edit_alpha: float = 1.0  # skew of which page each edit touches
    read_alpha: float = 1.0  # skew of which page each read touches
    hot_read_fraction: float = 0.999  # §3.1: 99.9% of reads hit latest revs
    seed: int = 0

    @property
    def total_revisions(self) -> int:
        return self.n_pages * self.revisions_per_page_mean


@dataclass
class WikipediaData:
    """Generated rows plus the derived hot-set ground truth."""

    config: WikipediaConfig
    page_rows: list[dict[str, object]]
    revision_rows: list[dict[str, object]]  # temporal (insertion) order
    latest_rev_by_page: dict[int, int]
    rev_count_by_page: dict[int, int] = field(default_factory=dict)

    @property
    def hot_rev_ids(self) -> set[int]:
        """Revision ids that are the latest for their page (the hot set)."""
        return set(self.latest_rev_by_page.values())

    @property
    def hot_fraction(self) -> float:
        if not self.revision_rows:
            return 0.0
        return len(self.latest_rev_by_page) / len(self.revision_rows)


def generate(config: WikipediaConfig) -> WikipediaData:
    """Generate the synthetic page and revision tables."""
    if config.n_pages <= 0 or config.revisions_per_page_mean <= 0:
        raise WorkloadError("need at least one page and one revision")
    rng = DeterministicRng(config.seed)
    edit_dist = ZipfianDistribution(
        config.n_pages, config.edit_alpha, rng.child(1)
    )
    n_revs = config.total_revisions

    revision_rows: list[dict[str, object]] = []
    latest_rev_by_page: dict[int, int] = {}
    rev_count_by_page: dict[int, int] = {}
    # Every page gets revision 0 up front (a page exists because it was
    # created); the remaining edits follow the zipf temporal stream.
    next_rev_id = 1
    targets = list(range(config.n_pages))
    rng.child(2).shuffle(targets)
    stream = targets + [
        edit_dist.sample() for _ in range(n_revs - config.n_pages)
    ]
    for step, page in enumerate(stream):
        rev_id = REV_ID_BASE + next_rev_id
        next_rev_id += 1
        revision_rows.append(
            {
                "rev_id": rev_id,
                "rev_page": PAGE_ID_BASE + page,
                "rev_text_id": rev_id,
                "rev_user": rng.randrange(12_000_000),
                "rev_timestamp": _EPOCH_2010 + step * 60,
                "rev_minor_edit": 1 if rng.bernoulli(0.3) else 0,
                "rev_len": rng.randint(100, 200_000),
                # Most real edit comments are unique free text; a minority
                # are boilerplate (reverts, typo fixes).
                "rev_comment": (
                    rng.choice(_COMMENT_POOL)
                    if rng.bernoulli(0.3)
                    else f"/* sec {rng.randrange(40)} */ edit r{rev_id}"
                ),
            }
        )
        latest_rev_by_page[page] = rev_id
        rev_count_by_page[page] = rev_count_by_page.get(page, 0) + 1

    page_rows = []
    for page in range(config.n_pages):
        page_rows.append(
            {
                "page_id": PAGE_ID_BASE + page,
                "page_namespace": 0 if rng.bernoulli(0.8) else rng.randint(1, 15),
                "page_title": f"Page_{PAGE_ID_BASE + page:08d}",
                "page_latest": latest_rev_by_page[page],
                "page_touched": _EPOCH_2010 + (n_revs - rng.randrange(n_revs)) * 60,
                "page_len": rng.randint(100, 200_000),
            }
        )
    return WikipediaData(
        config=config,
        page_rows=page_rows,
        revision_rows=revision_rows,
        latest_rev_by_page=latest_rev_by_page,
        rev_count_by_page=rev_count_by_page,
    )


def revision_lookup_trace(
    data: WikipediaData, n_lookups: int, seed: int = 100
) -> list[int]:
    """A stream of rev_id lookups: ``hot_read_fraction`` of them hit the
    latest revision of a zipf-chosen page; the remainder are history reads
    of random old revisions."""
    rng = DeterministicRng(seed)
    read_dist = ZipfianDistribution(
        data.config.n_pages, data.config.read_alpha, rng.child(1)
    )
    n_revs = len(data.revision_rows)
    trace = []
    for _ in range(n_lookups):
        if rng.random() < data.config.hot_read_fraction:
            page = read_dist.sample()
            trace.append(data.latest_rev_by_page[page])
        else:
            trace.append(data.revision_rows[rng.randrange(n_revs)]["rev_id"])  # type: ignore[arg-type]
    return trace


def name_title_lookup_trace(
    data: WikipediaData, n_lookups: int, seed: int = 200
) -> list[tuple[int, str]]:
    """A stream of ``(namespace, title)`` keys for the §2.1.4 query class
    ("the most popular class (40%) of queries accesses the page table
    using the name_title index")."""
    rng = DeterministicRng(seed)
    read_dist = ZipfianDistribution(
        data.config.n_pages, data.config.read_alpha, rng.child(1)
    )
    trace = []
    for _ in range(n_lookups):
        row = data.page_rows[read_dist.sample()]
        trace.append((row["page_namespace"], row["page_title"]))
    return trace  # type: ignore[return-value]


def declared_revision_row(row: dict[str, object]) -> dict[str, object]:
    """Convert a compact revision row into its MediaWiki declared form
    (timestamp back to a 14-char string, etc.) for the §4.1 analysis."""
    import time

    out = dict(row)
    out["rev_timestamp"] = time.strftime(
        "%Y%m%d%H%M%S", time.gmtime(int(row["rev_timestamp"]))  # type: ignore[arg-type]
    )
    return out
