"""``check_database``: the invariant walker.

After a run under fault injection (or any time a test wants belt *and*
braces), this walks every structure a :class:`~repro.query.database.Database`
owns and cross-checks the layers against each other:

* slotted-page layout (magic, footer, free-window sanity) on every page;
* free-space accounting: the directory ends exactly at ``free_lo`` and
  every live record lies inside ``[free_hi, size - footer)``;
* B+Tree shape: node page types and levels, positive fanout, strictly
  increasing keys across the leaf chain, leaf chain ↔ ``leaf_page_ids``
  agreement, entry count ↔ ``num_entries`` agreement;
* catalog ↔ heap agreement: every index holds exactly one entry per live
  heap record, every RID resolves, and the indexed key re-encoded from
  the heap tuple matches the key stored in the tree.

Everything is duck-typed against the ``Database`` surface (catalog,
tables, heaps, trees) so this module imports nothing from ``repro.query``
and stays cycle-free.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ReproError
from repro.schema.record import unpack_record_map
from repro.storage.constants import (
    PAGE_HEADER_SIZE,
    PAGE_FOOTER_SIZE,
    SLOT_ENTRY_SIZE,
    PageType,
)
from repro.storage.heap import Rid


@dataclass
class CheckReport:
    """Outcome of one :func:`check_database` walk."""

    problems: list[str] = field(default_factory=list)
    tables_checked: int = 0
    indexes_checked: int = 0
    pages_checked: int = 0
    records_checked: int = 0

    @property
    def ok(self) -> bool:
        return not self.problems

    def note(self, problem: str) -> None:
        self.problems.append(problem)

    def summary(self) -> str:
        status = "OK" if self.ok else f"{len(self.problems)} problem(s)"
        return (
            f"check_database: {status} — {self.tables_checked} table(s), "
            f"{self.indexes_checked} index(es), {self.pages_checked} page(s), "
            f"{self.records_checked} record(s)"
        )


def check_database(db) -> CheckReport:
    """Walk every invariant of ``db`` and return a :class:`CheckReport`.

    Never raises for *findings* — each violation becomes one entry in
    ``report.problems`` — but quarantined/corrupt pages that cannot even
    be fetched are reported as problems too rather than propagating.
    """
    report = CheckReport()
    for entry in db.catalog.tables():
        report.tables_checked += 1
        table = entry.table
        heap = table.heap
        _check_heap(report, entry.name, heap)
        rows_by_rid = _collect_rows(report, entry.name, entry.schema, heap)
        for index_entry in db.catalog.indexes_of(entry.name):
            report.indexes_checked += 1
            _check_index(report, index_entry, rows_by_rid)
    return report


# -- heap layer ---------------------------------------------------------------


def _check_heap(report: CheckReport, table_name: str, heap) -> None:
    pool = heap.pool
    for page_id in heap.page_ids:
        report.pages_checked += 1
        label = f"table {table_name!r} heap page {page_id}"
        try:
            with pool.page(page_id) as page:
                _check_page_layout(report, label, page, PageType.HEAP)
        except ReproError as exc:
            report.note(f"{label}: unreadable ({exc})")


def _check_page_layout(report: CheckReport, label: str, page, expected_type) -> None:
    try:
        page.verify()
    except ReproError as exc:
        report.note(f"{label}: layout corrupt ({exc})")
        return
    try:
        actual = page.page_type
    except ValueError:
        report.note(f"{label}: invalid page-type byte")
        return
    if expected_type is not None and actual is not expected_type:
        report.note(f"{label}: page type {actual.name}, expected {expected_type.name}")
        return
    lo, hi = page.free_window()
    directory_end = PAGE_HEADER_SIZE + page.slot_count * SLOT_ENTRY_SIZE
    if lo != directory_end:
        report.note(
            f"{label}: free_lo {lo} != directory end {directory_end} "
            f"({page.slot_count} slot(s))"
        )
    record_region_end = page.size - PAGE_FOOTER_SIZE
    for slot in page.live_slots():
        offset, length = page._slot_entry(slot)
        if not (hi <= offset and offset + length <= record_region_end):
            report.note(
                f"{label}: slot {slot} record [{offset}, {offset + length}) "
                f"outside record region [{hi}, {record_region_end})"
            )


def _collect_rows(report: CheckReport, table_name: str, schema, heap) -> dict | None:
    """Heap scan → ``{rid: row}``; ``None`` if the heap itself is unreadable."""
    rows: dict[Rid, dict] = {}
    try:
        for rid, record in heap.scan():
            report.records_checked += 1
            try:
                rows[rid] = unpack_record_map(schema, record)
            except ReproError as exc:
                report.note(f"table {table_name!r} record {rid!r}: undecodable ({exc})")
    except ReproError as exc:
        report.note(f"table {table_name!r}: heap scan failed ({exc})")
        return None
    if len(rows) != heap.num_records:
        report.note(
            f"table {table_name!r}: heap counts {heap.num_records} record(s) "
            f"but scan found {len(rows)}"
        )
    return rows


# -- index layer --------------------------------------------------------------


def _check_index(report: CheckReport, index_entry, rows_by_rid: dict | None) -> None:
    name = index_entry.name
    index = index_entry.index
    tree = index.tree
    pool = tree.pool
    label = f"index {name!r}"

    for page_id in tree.leaf_page_ids:
        report.pages_checked += 1
        _check_node_page(report, label, pool, page_id, PageType.BTREE_LEAF)
    for page_id in tree.internal_page_ids:
        report.pages_checked += 1
        _check_node_page(report, label, pool, page_id, PageType.BTREE_INTERNAL)

    entries = _read_entries(report, label, tree)
    if entries is None:
        return
    for i in range(1, len(entries)):
        if entries[i - 1][0] >= entries[i][0]:
            report.note(
                f"{label}: key order violation at position {i} "
                f"({entries[i - 1][0].hex()} >= {entries[i][0].hex()})"
            )
    if len(entries) != tree.num_entries:
        report.note(
            f"{label}: tree counts {tree.num_entries} entr(ies) but the "
            f"leaf chain holds {len(entries)}"
        )
    _check_leaf_chain(report, label, tree)
    if rows_by_rid is not None:
        _check_against_heap(report, label, index_entry, entries, rows_by_rid)


def _check_node_page(report: CheckReport, label: str, pool, page_id, expected) -> None:
    try:
        with pool.page(page_id) as page:
            _check_page_layout(report, f"{label} page {page_id}", page, expected)
            if expected is PageType.BTREE_LEAF and page.level != 0:
                report.note(f"{label} page {page_id}: leaf at level {page.level}")
            if expected is PageType.BTREE_INTERNAL:
                if page.level < 1:
                    report.note(f"{label} page {page_id}: internal node at level 0")
                if page.slot_count < 1:
                    report.note(f"{label} page {page_id}: internal node with no children")
    except ReproError as exc:
        report.note(f"{label} page {page_id}: unreadable ({exc})")


def _read_entries(report: CheckReport, label: str, tree):
    try:
        return list(tree.items())
    except ReproError as exc:
        report.note(f"{label}: leaf scan failed ({exc})")
        return None


def _check_leaf_chain(report: CheckReport, label: str, tree) -> None:
    expected = set(tree.leaf_page_ids)
    chained: list[int] = []
    try:
        page_id = tree._leftmost_leaf()
        while page_id is not None:
            chained.append(page_id)
            if len(chained) > len(expected) + 1:
                report.note(f"{label}: leaf chain longer than the leaf set (cycle?)")
                return
            with tree.pool.page(page_id) as page:
                page_id = page.next_page
    except ReproError as exc:
        report.note(f"{label}: leaf chain walk failed ({exc})")
        return
    if set(chained) != expected:
        missing = sorted(expected - set(chained))
        extra = sorted(set(chained) - expected)
        report.note(
            f"{label}: leaf chain disagrees with leaf_page_ids "
            f"(missing {missing}, extra {extra})"
        )


def _check_against_heap(
    report: CheckReport, label: str, index_entry, entries, rows_by_rid: dict
) -> None:
    index = index_entry.index
    if len(entries) != len(rows_by_rid):
        report.note(
            f"{label}: {len(entries)} index entr(ies) for "
            f"{len(rows_by_rid)} heap record(s)"
        )
    key_columns = tuple(index_entry.key_columns)
    seen: set[Rid] = set()
    for key, rid_bytes in entries:
        try:
            rid = Rid.from_bytes(rid_bytes)
        except ReproError:
            report.note(f"{label}: entry {key.hex()} holds an undecodable RID")
            continue
        if rid in seen:
            report.note(f"{label}: RID {rid!r} indexed more than once")
        seen.add(rid)
        row = rows_by_rid.get(rid)
        if row is None:
            report.note(f"{label}: entry {key.hex()} points at dead RID {rid!r}")
            continue
        expected_key = index.encode_key(tuple(row[c] for c in key_columns))
        if expected_key != key:
            report.note(
                f"{label}: RID {rid!r} stored under key {key.hex()} but the "
                f"heap row encodes to {expected_key.hex()}"
            )
