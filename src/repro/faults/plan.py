"""Composable, declarative fault plans.

A :class:`FaultPlan` is an ordered tuple of :class:`FaultSpec`\\ s; each
spec names a fault kind, a deterministic trigger (fire on exactly the Nth
matching I/O, or with a per-I/O probability drawn from the injector's
seeded RNG), an optional page filter, and a cap on how often it may fire.
Plans are data: the same plan + the same seed + the same I/O stream
reproduces the same faults bit-for-bit, which is what makes crash-style
testing debuggable.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Callable

from repro.errors import FaultPlanError


class FaultKind(Enum):
    """The fault taxonomy (see DESIGN.md "Failure model & recovery").

    Read-path kinds fire on ``read_page``; write-path kinds on
    ``write_page``.  Transient kinds raise and leave stored bytes intact;
    the rest corrupt silently and are caught later by checksums.
    """

    #: ``read_page`` raises :class:`~repro.errors.TransientIOError`;
    #: stored bytes intact, a retry may succeed.
    TRANSIENT_READ_ERROR = "transient_read_error"
    #: ``write_page`` raises before applying anything.
    TRANSIENT_WRITE_ERROR = "transient_write_error"
    #: One bit flips in the *returned copy* of a read; the stored page is
    #: untouched, so a corrective re-read heals it.
    READ_BIT_FLIP = "read_bit_flip"
    #: One bit flips in the stored bytes as they are written (at rest).
    WRITE_BIT_FLIP = "write_bit_flip"
    #: Only a sector-aligned prefix of the write reaches the page; the
    #: tail keeps the old bytes (a torn / partial page write).
    TORN_WRITE = "torn_write"
    #: The write is silently dropped; the page keeps its old bytes and
    #: its old (internally valid) checksum — only the freshness check
    #: can catch it.
    STUCK_WRITE = "stuck_write"
    #: Power cut mid-write: the page is torn exactly like
    #: :attr:`TORN_WRITE`, then the "machine dies" —
    #: :class:`~repro.errors.SimulatedCrashError` propagates and must
    #: never be retried.  Harnesses discard all in-memory state and
    #: restart via WAL replay (:func:`repro.wal.replay.recover`).
    CRASH_POINT = "crash_point"


_READ_KINDS = frozenset({FaultKind.TRANSIENT_READ_ERROR, FaultKind.READ_BIT_FLIP})
_WRITE_KINDS = frozenset(
    {
        FaultKind.TRANSIENT_WRITE_ERROR,
        FaultKind.WRITE_BIT_FLIP,
        FaultKind.TORN_WRITE,
        FaultKind.STUCK_WRITE,
        FaultKind.CRASH_POINT,
    }
)


@dataclass(frozen=True)
class FaultSpec:
    """One fault source: a kind, a trigger, and an optional scope.

    Exactly one trigger must be set: ``at_nth`` (fire on the Nth I/O this
    spec matches, 1-based) or ``probability`` (an independent seeded coin
    per matching I/O).  ``page_filter`` restricts which pages the spec
    matches; it must be deterministic.  ``max_times`` caps total fires
    (``None`` = unlimited; ``at_nth`` specs implicitly fire once).
    """

    kind: FaultKind
    probability: float = 0.0
    at_nth: int | None = None
    page_filter: Callable[[int], bool] | None = None
    max_times: int | None = None

    def __post_init__(self) -> None:
        if not isinstance(self.kind, FaultKind):
            raise FaultPlanError(f"kind must be a FaultKind, got {self.kind!r}")
        if not 0.0 <= self.probability <= 1.0:
            raise FaultPlanError(
                f"probability must be in [0, 1], got {self.probability}"
            )
        if self.at_nth is not None and self.at_nth < 1:
            raise FaultPlanError("at_nth is 1-based and must be >= 1")
        has_nth = self.at_nth is not None
        has_prob = self.probability > 0.0
        if has_nth == has_prob:
            raise FaultPlanError(
                "exactly one trigger required: at_nth or probability > 0"
            )
        if self.max_times is not None and self.max_times < 1:
            raise FaultPlanError("max_times must be >= 1 (or None)")

    @property
    def is_read_fault(self) -> bool:
        return self.kind in _READ_KINDS

    @property
    def is_write_fault(self) -> bool:
        return self.kind in _WRITE_KINDS

    def matches_page(self, page_id: int) -> bool:
        return self.page_filter is None or bool(self.page_filter(page_id))


@dataclass(frozen=True)
class FaultPlan:
    """An ordered, composable set of fault specs."""

    specs: tuple[FaultSpec, ...] = ()

    def __post_init__(self) -> None:
        for spec in self.specs:
            if not isinstance(spec, FaultSpec):
                raise FaultPlanError(f"plan entries must be FaultSpec, got {spec!r}")

    @classmethod
    def of(cls, *specs: FaultSpec) -> "FaultPlan":
        return cls(tuple(specs))

    def __add__(self, other: "FaultPlan") -> "FaultPlan":
        if not isinstance(other, FaultPlan):
            return NotImplemented
        return FaultPlan(self.specs + other.specs)

    @property
    def read_specs(self) -> tuple[FaultSpec, ...]:
        return tuple(s for s in self.specs if s.is_read_fault)

    @property
    def write_specs(self) -> tuple[FaultSpec, ...]:
        return tuple(s for s in self.specs if s.is_write_fault)


#: The inert plan: inject nothing (useful for overhead measurement).
NO_FAULTS = FaultPlan()
