"""Self-healing recovery from confirmed page corruption.

The buffer pool detects corruption (checksum or freshness mismatch),
quarantines the page, and raises :class:`~repro.errors.CorruptPageError`.
What happens next depends on who owned the page, and that is this
module's job:

* **B+Tree pages are redundant** — every index entry can be recomputed
  from the heap, so a corrupt node is healed by rebuilding the whole
  index with :meth:`rebuild_from_heap` (bulk load from a sorted heap
  scan).  Cached tuple copies ride along: the rebuilt leaves start with
  empty cache windows and the invalidation epoch is bumped, dropping the
  old cache wholesale.
* **Heap pages are the source of truth** — but with a write-ahead log
  attached (``Database(wal=...)``) their full history is in the log, so
  a corrupt heap page is *redo-recovered*: its last logged state is
  materialized from the WAL (:func:`repro.wal.replay.rebuild_heap_page`)
  and written back over the quarantined bytes.  Without a WAL it remains
  honest data loss and the error propagates.

:class:`RecoveryManager` wraps an operation, heals on corruption, and
retries it, keeping the ``faults.detected == faults.recovered +
faults.unrecoverable`` ledger balanced: the pool counts each detection,
and exactly one resolution is counted here (or in the pool's own
corrective-re-read path) per detection.

Duck-typed against the ``Database`` surface (catalog + tables + indexes)
so the module imports nothing from ``repro.query``.
"""

from __future__ import annotations

from repro.errors import CorruptPageError, RecoveryError
from repro.obs.registry import MetricsRegistry, resolve_registry


class RecoveryManager:
    """Heal-and-retry driver for one database."""

    def __init__(
        self,
        database,
        max_heals: int = 8,
        registry: MetricsRegistry | None = None,
    ) -> None:
        if max_heals < 1:
            raise RecoveryError("max_heals must be at least 1")
        self._db = database
        self._max_heals = max_heals
        self.heals = 0
        self.failed_heals = 0
        self.heap_rebuilds = 0
        #: Optional repro.obs.events.EventJournal (+ the shard id this
        #: engine runs as, None for a standalone database).  When set,
        #: every detection/heal/unrecoverable transition is journaled;
        #: when None the fault path pays one is-None test.
        self.journal = None
        self.journal_shard: int | None = None
        metrics = resolve_registry(registry)
        self._m_recovered = metrics.counter("faults.recovered")
        self._m_unrecoverable = metrics.counter("faults.unrecoverable")
        self._m_rebuilds = metrics.counter("recovery.index_rebuilds")
        self._m_heap_rebuilds = metrics.counter("recovery.heap_page_rebuilds")

    def _emit(self, kind: str, **payload) -> None:
        if self.journal is not None:
            self.journal.emit(kind, shard=self.journal_shard, **payload)

    @property
    def max_heals(self) -> int:
        return self._max_heals

    def call(self, fn, *args, **kwargs):
        """Run ``fn``, healing and retrying on page corruption.

        Each :class:`~repro.errors.CorruptPageError` triggers one
        :meth:`heal`; the operation is retried until it succeeds, a page
        proves unrecoverable, or ``max_heals`` distinct heals have been
        spent (guarding against a corruption storm).
        """
        heals_spent = 0
        while True:
            try:
                return fn(*args, **kwargs)
            except CorruptPageError as exc:
                self._emit("fault.detected", page=exc.page_id)
                if heals_spent >= self._max_heals:
                    self._m_unrecoverable.inc()
                    self.failed_heals += 1
                    self._emit(
                        "fault.unrecoverable",
                        page=exc.page_id,
                        reason="heal budget exhausted",
                    )
                    raise RecoveryError(
                        f"gave up after {heals_spent} heal(s); last corrupt "
                        f"page was {exc.page_id}"
                    ) from exc
                if not self.heal(exc.page_id):
                    raise
                heals_spent += 1

    def heal(self, page_id: int) -> bool:
        """Try to repair the structure owning ``page_id``.

        Returns True (and counts ``faults.recovered``) if the owner was
        an index (rebuilt from the heap) or a heap file on a database
        with a WAL (page redone from log history); False (counting
        ``faults.unrecoverable``) for WAL-less heap pages and unowned
        pages.
        """
        index_entry = self._owning_index(page_id)
        if index_entry is not None:
            while True:
                try:
                    index_entry.index.rebuild_from_heap()
                    break
                except CorruptPageError as exc:
                    # The rebuild scans the whole heap and can trip over
                    # a heap page corrupted at rest; redo-recover it and
                    # resume, or give up on both pages at once.
                    if self._recover_heap(exc.page_id):
                        continue
                    self._m_unrecoverable.inc()  # the heap page
                    self._m_unrecoverable.inc()  # the aborted index heal
                    self.failed_heals += 2
                    self._emit(
                        "fault.unrecoverable", page=exc.page_id,
                        reason="heap page unrecoverable during index rebuild",
                    )
                    self._emit("fault.quarantine", page=exc.page_id)
                    return False
            wal = getattr(self._db, "wal", None)
            if wal is not None and getattr(index_entry.index, "cached_fields", None):
                wal.log_index_cache_drop(index_entry.name)
            self._m_recovered.inc()
            self._m_rebuilds.inc()
            self.heals += 1
            self._emit(
                "fault.recovered", page=page_id, action="index_rebuild",
                index=index_entry.name,
            )
            return True
        if self._recover_heap(page_id):
            self._emit("fault.recovered", page=page_id, action="heap_redo")
            return True
        self._m_unrecoverable.inc()
        self.failed_heals += 1
        self._emit(
            "fault.unrecoverable", page=page_id, reason="no WAL or unowned page"
        )
        self._emit("fault.quarantine", page=page_id)
        return False

    # -- internals ------------------------------------------------------------

    def _recover_heap(self, page_id: int) -> bool:
        """:meth:`_heal_heap_page` plus the success-side accounting."""
        if not self._heal_heap_page(page_id):
            return False
        self._m_recovered.inc()
        self._m_heap_rebuilds.inc()
        self.heals += 1
        self.heap_rebuilds += 1
        return True

    def _heal_heap_page(self, page_id: int) -> bool:
        """Redo-recover a quarantined heap page from the WAL, if possible.

        The log holds the page's full change history (the log is never
        truncated in this simulation), so folding every record touching
        ``page_id`` reproduces its last logged state.  Changes made but
        not yet logged cannot exist: the pool's flush-before-evict rule
        means any state that reached the disk was logged first, and the
        in-memory frame was discarded by quarantine.
        """
        wal = getattr(self._db, "wal", None)
        if wal is None or self._owning_heap(page_id) is None:
            return False
        from repro.wal.record import scan_wal
        from repro.wal.replay import rebuild_heap_page

        records = scan_wal(wal.all_bytes()).records
        data = rebuild_heap_page(records, page_id, self._db.disk.page_size)
        self._db.data_pool.restore_page(page_id, data)
        return True

    def _owning_heap(self, page_id: int):
        """The heap file owning ``page_id``, else None."""
        for table_entry in self._db.catalog.tables():
            heap = table_entry.table.heap
            if heap.owns_page(page_id):
                return heap
        return None

    def _owning_index(self, page_id: int):
        """The catalog index entry whose tree owns ``page_id``, else None."""
        catalog = self._db.catalog
        for table_entry in catalog.tables():
            for index_entry in catalog.indexes_of(table_entry.name):
                tree = index_entry.index.tree
                if page_id in tree.leaf_page_ids or page_id in tree.internal_page_ids:
                    return index_entry
        return None
