"""A :class:`~repro.storage.disk.SimulatedDisk` that misbehaves on cue.

:class:`FaultyDisk` drops in anywhere a ``SimulatedDisk`` is accepted and
consults a :class:`~repro.faults.injector.FaultInjector` on every page
I/O.  Transient kinds raise :class:`~repro.errors.TransientIOError`
*after* the underlying store has counted the attempt (a failed I/O still
costs an I/O); corruption kinds silently mutate what is returned or
stored, to be caught downstream by the buffer pool's checksum and
freshness validation.
"""

from __future__ import annotations

from repro.errors import SimulatedCrashError, TransientIOError
from repro.faults.injector import FaultInjector, FiredFault
from repro.faults.plan import FaultKind
from repro.storage.disk import SimulatedDisk


def flip_bit(data: bytes, bit: int) -> bytes:
    """Return ``data`` with absolute bit index ``bit`` inverted."""
    buf = bytearray(data)
    buf[bit // 8] ^= 1 << (bit % 8)
    return bytes(buf)


class FaultyDisk(SimulatedDisk):
    """Simulated disk wrapper that applies injected faults to page I/O."""

    def __init__(self, page_size: int, injector: FaultInjector) -> None:
        super().__init__(page_size)
        self._injector = injector

    @property
    def injector(self) -> FaultInjector:
        return self._injector

    def read_page(self, page_id: int) -> bytes:
        data = super().read_page(page_id)
        for fault in self._injector.on_read(page_id):
            if fault.kind is FaultKind.TRANSIENT_READ_ERROR:
                raise TransientIOError(f"injected transient read of page {page_id}")
            if fault.kind is FaultKind.READ_BIT_FLIP:
                # Only the returned copy is corrupted; stored bytes are
                # intact, so a corrective re-read heals it.
                data = flip_bit(data, fault.bit)
        return data

    def write_page(self, page_id: int, data: bytes) -> None:
        faults = self._injector.on_write(page_id)
        for fault in faults:
            if fault.kind is FaultKind.TRANSIENT_WRITE_ERROR:
                # Counts as an attempted write, applies nothing.
                self._writes += 1
                raise TransientIOError(
                    f"injected transient write of page {page_id}"
                )
        crash: FiredFault | None = None
        stored = bytes(data)
        for fault in faults:
            if fault.kind is FaultKind.CRASH_POINT:
                # Power cut mid-write: the sector prefix lands, the rest
                # keeps the old bytes, and then the machine dies.  The
                # torn page is applied *before* raising so what a
                # restart finds on disk is exactly what the cut left.
                crash = fault
                old = self.peek(page_id)
                stored = stored[: fault.tear_at] + old[fault.tear_at :]
                continue
            stored = self._apply_at_rest(page_id, stored, fault)
        super().write_page(page_id, stored)
        if crash is not None:
            raise SimulatedCrashError(
                f"power cut during write of page {page_id} "
                f"(torn at byte {crash.tear_at})"
            )

    def _apply_at_rest(self, page_id: int, new: bytes, fault: FiredFault) -> bytes:
        if fault.kind is FaultKind.WRITE_BIT_FLIP:
            return flip_bit(new, fault.bit)
        if fault.kind is FaultKind.TORN_WRITE:
            old = self.peek(page_id)
            return new[: fault.tear_at] + old[fault.tear_at :]
        if fault.kind is FaultKind.STUCK_WRITE:
            # The device acks but keeps the old bytes — including their
            # old, internally valid checksum.
            return self.peek(page_id)
        return new
