"""Deterministic, seeded fault injection.

The :class:`FaultInjector` is the single source of randomness for the
fault layer.  :class:`~repro.faults.disk.FaultyDisk` consults it on every
page I/O; the injector walks the armed plan's specs in order, decides
which fire, and draws any corruption parameters (bit position, tear
point) from one seeded stream.  Same seed + same plan + same I/O
sequence ⇒ the same faults, bit-for-bit.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.faults.plan import FaultKind, FaultPlan, FaultSpec, NO_FAULTS
from repro.obs.registry import MetricsRegistry, resolve_registry
from repro.util.rng import DeterministicRng

#: Torn writes land on simulated sector boundaries: the prefix that
#: "made it to disk" is a whole number of 512-byte sectors.
SECTOR_SIZE = 512


@dataclass(frozen=True)
class FiredFault:
    """One fault the injector decided to apply, with its draw parameters.

    ``bit`` is the absolute bit index to flip (bit-flip kinds) and
    ``tear_at`` the byte offset where a torn write cuts over from new to
    old bytes (torn writes); both are ``None`` when inapplicable.
    """

    kind: FaultKind
    page_id: int
    seq: int
    bit: int | None = None
    tear_at: int | None = None


class FaultInjector:
    """Seeded oracle deciding which faults fire on which page I/Os.

    Starts disarmed (the :data:`~repro.faults.plan.NO_FAULTS` plan) so a
    database can be built and loaded cleanly, then :meth:`arm`\\ ed with a
    real plan once the interesting phase of a workload begins.
    """

    def __init__(
        self,
        seed: int = 0,
        plan: FaultPlan | None = None,
        page_size: int = 4096,
        registry: MetricsRegistry | None = None,
    ) -> None:
        self._rng = DeterministicRng(seed)
        self._seed = int(seed)
        self._page_size = int(page_size)
        self._plan = plan if plan is not None else NO_FAULTS
        # Per-spec matching-I/O counts (for at_nth) and fire counts (for
        # max_times), keyed by position in the plan.
        self._matches: dict[int, int] = {}
        self._fired: dict[int, int] = {}
        self._seq = 0
        self.log: list[FiredFault] = []
        metrics = resolve_registry(registry)
        self._m_injected = metrics.counter("faults.injected")
        self._m_kind = {
            kind: metrics.counter(f"faults.kind.{kind.value}") for kind in FaultKind
        }

    @property
    def seed(self) -> int:
        return self._seed

    @property
    def plan(self) -> FaultPlan:
        return self._plan

    @property
    def injected(self) -> int:
        """Total faults fired since construction (survives re-arming)."""
        return len(self.log)

    def arm(self, plan: FaultPlan) -> None:
        """Install ``plan``, resetting per-spec trigger state.

        The RNG stream and the fault log are *not* reset: determinism is
        defined over the whole run, including earlier phases.
        """
        self._plan = plan
        self._matches = {}
        self._fired = {}

    def disarm(self) -> None:
        """Stop injecting (equivalent to arming the empty plan)."""
        self.arm(NO_FAULTS)

    # -- decision points ------------------------------------------------------

    def on_read(self, page_id: int) -> list[FiredFault]:
        """Faults to apply to this ``read_page``, in plan order."""
        return self._decide(page_id, want_read=True)

    def on_write(self, page_id: int) -> list[FiredFault]:
        """Faults to apply to this ``write_page``, in plan order."""
        return self._decide(page_id, want_read=False)

    def _decide(self, page_id: int, want_read: bool) -> list[FiredFault]:
        fired: list[FiredFault] = []
        for idx, spec in enumerate(self._plan.specs):
            if spec.is_read_fault != want_read:
                continue
            if not spec.matches_page(page_id):
                continue
            self._matches[idx] = self._matches.get(idx, 0) + 1
            if not self._should_fire(idx, spec):
                continue
            self._fired[idx] = self._fired.get(idx, 0) + 1
            fired.append(self._draw(spec.kind, page_id))
        return fired

    def _should_fire(self, idx: int, spec: FaultSpec) -> bool:
        if spec.max_times is not None and self._fired.get(idx, 0) >= spec.max_times:
            return False
        if spec.at_nth is not None:
            return self._matches[idx] == spec.at_nth
        return self._rng.bernoulli(spec.probability)

    def _draw(self, kind: FaultKind, page_id: int) -> FiredFault:
        self._seq += 1
        bit = None
        tear_at = None
        if kind in (FaultKind.READ_BIT_FLIP, FaultKind.WRITE_BIT_FLIP):
            bit = self._rng.randrange(self._page_size * 8)
        elif kind in (FaultKind.TORN_WRITE, FaultKind.CRASH_POINT):
            sectors = max(1, self._page_size // SECTOR_SIZE)
            # At least one sector makes it, at least one doesn't (else the
            # write would be complete or fully stuck, not torn).
            tear_at = SECTOR_SIZE * self._rng.randint(1, max(1, sectors - 1))
        fault = FiredFault(
            kind=kind, page_id=page_id, seq=self._seq, bit=bit, tear_at=tear_at
        )
        self.log.append(fault)
        self._m_injected.inc()
        self._m_kind[kind].inc()
        return fault
