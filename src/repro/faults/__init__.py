"""Fault injection, integrity checking, and self-healing recovery.

The storage stack's §2-style bit reclamation only pays off if the bits
survive real-world failure: this package injects deterministic faults
beneath the buffer pool (:class:`FaultyDisk` + :class:`FaultInjector`),
verifies what comes back (CRC32 page checksums enforced by the pool,
:func:`check_database` for structural invariants), and repairs what it
can (:class:`RecoveryManager` rebuilding redundant index structures from
the heap).

``repro.faults.harness`` (the end-to-end fault drill and its CLI) is
deliberately *not* imported here: it pulls in ``repro.query``, which in
turn uses this package — import it directly when you need it.
"""

from repro.faults.checker import CheckReport, check_database
from repro.faults.disk import FaultyDisk, flip_bit
from repro.faults.injector import SECTOR_SIZE, FaultInjector, FiredFault
from repro.faults.plan import NO_FAULTS, FaultKind, FaultPlan, FaultSpec
from repro.faults.recovery import RecoveryManager
from repro.storage.retry import DEFAULT_RETRY_POLICY, RetryPolicy

__all__ = [
    "CheckReport",
    "check_database",
    "FaultyDisk",
    "flip_bit",
    "SECTOR_SIZE",
    "FaultInjector",
    "FiredFault",
    "NO_FAULTS",
    "FaultKind",
    "FaultPlan",
    "FaultSpec",
    "RecoveryManager",
    "DEFAULT_RETRY_POLICY",
    "RetryPolicy",
]
