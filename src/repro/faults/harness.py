"""The end-to-end fault drill: a Wikipedia workload replayed under fire.

``run_fault_drill`` builds a :class:`~repro.query.database.Database` on a
:class:`~repro.faults.disk.FaultyDisk` with a write-ahead log, loads the
synthetic Wikipedia revision table with a §2.1 cached index, arms a mixed
fault plan (transient read/write errors and read bit flips anywhere;
at-rest corruption — write bit flips, torn writes, stuck writes — aimed
at index pages, plus bit flips and torn writes aimed at *heap* pages,
which the WAL makes redo-recoverable), and replays a mixed
lookup/update/insert/delete workload through the
:class:`~repro.faults.recovery.RecoveryManager`.

On top of the per-I/O faults the drill now pulls the power: at scheduled
points a :data:`~repro.faults.plan.FaultKind.CRASH_POINT` tears whatever
page is mid-write, all in-memory state is discarded, and the database is
restarted with :func:`repro.wal.replay.recover`.  The ground-truth mirror
is rebuilt *independently* by folding the durable log records, so the
drill verifies both crash-consistency directions: every durable write
survives the restart, and nothing that missed the log resurrects.

Every operation's outcome is verified against the mirror, so the drill's
headline number — ``wrong_results`` — is literal: how many times the
engine returned an answer that differed from ground truth.  With
checksums, retry, self-healing, and WAL replay on, the expected value is
zero no matter how many faults were injected or restarts forced.

This module imports ``repro.query`` and ``repro.workload``; it is kept
out of ``repro.faults.__init__`` to avoid an import cycle — reach it as
``repro.faults.harness`` (or ``python -m repro.faults`` for the CLI).
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field

from repro.errors import SimulatedCrashError, TxnConflictError
from repro.faults.injector import FaultInjector
from repro.faults.plan import FaultKind, FaultPlan, FaultSpec
from repro.faults.recovery import RecoveryManager
from repro.obs.health import DEFAULT_SLO_RULES, HealthChecker
from repro.obs.registry import MetricsRegistry
from repro.obs.sampler import TelemetrySampler
from repro.query.database import Database
from repro.schema.record import unpack_record_map
from repro.storage.retry import RetryPolicy
from repro.util.rng import DeterministicRng
from repro.wal.record import HEAP_OP_TYPES, RecordType, scan_wal
from repro.workload.wikipedia import REVISION_SCHEMA, WikipediaConfig, generate

#: Fields the drill's cached index keeps in leaf free space; lookups
#: project key ∪ cached so cache hits answer without the heap.
CACHED_FIELDS = ("rev_page", "rev_len")
PROJECTION = ("rev_id",) + CACHED_FIELDS


@dataclass
class DrillReport:
    """Everything the e2e drill measured, plus pass/fail verdicts."""

    seed: int
    operations: int
    wrong_results: int
    faults_injected: int
    faults_detected: int
    faults_recovered: int
    faults_unrecoverable: int
    retries: int
    index_rebuilds: int
    quarantined_pages: int
    check_ok: bool
    check_problems: list[str] = field(default_factory=list)
    digest: str = ""
    metrics: dict = field(default_factory=dict)
    #: Heap pages materialized from WAL history (runtime heals + replay).
    heap_page_rebuilds: int = 0
    #: Power cuts survived via :func:`repro.wal.replay.recover`.
    crash_restarts: int = 0
    #: Redo records the WAL writer emitted over the whole drill.
    wal_records: int = 0
    #: Telemetry samples taken across the drill (0 = sampling off).
    telemetry_points: int = 0
    #: SLO verdicts over the drill's sampled telemetry — *recorded*, not
    #: enforced: a drill that quarantines pages mid-flight legitimately
    #: breaches the quarantine ceiling and still passes on correctness.
    health_ok: bool = True
    health: dict = field(default_factory=dict)
    #: Knob adjustments applied by the adaptive controller across the
    #: whole drill, every restart included (0 = controller off).
    tuning_actions: int = 0
    #: Concurrent logical sessions interleaved by the drill (0 = the
    #: classic autocommit drill).
    sessions: int = 0
    #: Transaction outcomes across the whole drill (sessions mode).
    txn_commits: int = 0
    txn_aborts: int = 0
    txn_conflicts: int = 0
    #: Shards the drill ran over (0 = the classic single-engine drill).
    shards: int = 0
    #: Hot keys migrated by the sharded drill's mid-flight rebalances.
    keys_migrated: int = 0
    #: §5j causal event journal of the sharded drill (fault, checkpoint,
    #: migration intent/commit, rebalance records as dicts, causal order).
    events: list = field(default_factory=list)
    #: §5j exported cross-shard span trees (sharded drill; newest last).
    traces: list = field(default_factory=list)

    @property
    def ledger_balanced(self) -> bool:
        """The accounting invariant: every detection was resolved."""
        return self.faults_detected == (
            self.faults_recovered + self.faults_unrecoverable
        )

    @property
    def passed(self) -> bool:
        return self.wrong_results == 0 and self.check_ok and self.ledger_balanced

    def summary(self) -> str:
        verdict = "PASS" if self.passed else "FAIL"
        sharding = ""
        if self.shards:
            sharding = (
                f"{self.shards} shard(s), {self.keys_migrated} hot key(s) "
                f"migrated, "
            )
        concurrency = ""
        if self.sessions:
            concurrency = (
                f"{self.sessions} session(s): {self.txn_commits} commit(s), "
                f"{self.txn_aborts} abort(s), {self.txn_conflicts} "
                f"conflict(s), "
            )
        return (
            f"fault drill [{verdict}] seed={self.seed}: {self.operations} ops, "
            f"{sharding}"
            f"{concurrency}"
            f"{self.faults_injected} faults injected, "
            f"{self.faults_detected} detected = {self.faults_recovered} "
            f"recovered + {self.faults_unrecoverable} unrecoverable, "
            f"{self.retries} retries, {self.index_rebuilds} index rebuild(s), "
            f"{self.heap_page_rebuilds} heap page(s) redo-recovered, "
            f"{self.crash_restarts} crash restart(s), "
            f"{self.wal_records} WAL record(s), "
            f"{self.quarantined_pages} page(s) quarantined, "
            f"{self.wrong_results} wrong result(s), "
            f"check={'OK' if self.check_ok else 'FAILED'}, "
            f"digest={self.digest[:16]}"
        )


def default_plan(is_index_page, is_heap_page=None) -> FaultPlan:
    """The drill's standard mix.

    Transient faults and read-path flips hit everything — they heal by
    retry/re-read.  At-rest corruption aimed at index pages heals by
    rebuild-from-heap.  When ``is_heap_page`` is given (a WAL is
    attached), bit flips and torn writes are aimed at heap pages too:
    their full history is in the log, so they heal by redo.  Stuck
    writes stay index-only — a heap page that keeps its old, internally
    valid bytes is only caught by the pool's freshness memory, which a
    restart legitimately loses.
    """
    specs = [
        FaultSpec(FaultKind.TRANSIENT_READ_ERROR, probability=0.02),
        FaultSpec(FaultKind.TRANSIENT_WRITE_ERROR, probability=0.02),
        FaultSpec(FaultKind.READ_BIT_FLIP, probability=0.02),
        FaultSpec(
            FaultKind.WRITE_BIT_FLIP, probability=0.02, page_filter=is_index_page
        ),
        FaultSpec(FaultKind.TORN_WRITE, probability=0.02, page_filter=is_index_page),
        FaultSpec(FaultKind.STUCK_WRITE, probability=0.02, page_filter=is_index_page),
    ]
    if is_heap_page is not None:
        specs += [
            FaultSpec(
                FaultKind.WRITE_BIT_FLIP, probability=0.01, page_filter=is_heap_page
            ),
            FaultSpec(
                FaultKind.TORN_WRITE, probability=0.01, page_filter=is_heap_page
            ),
        ]
    return FaultPlan.of(*specs)


def _mirror_from_wal(records) -> dict[int, dict[str, object]]:
    """Fold durable heap records into ``rev_id -> row`` ground truth.

    Independent of the engine's replay: this is the *definition* of what
    a crash may keep — exactly the operations whose records reached the
    device — against which the restarted database is then verified.
    """
    by_rid: dict[tuple[int, int], bytes] = {}
    for rec in records:
        if rec.rtype not in HEAP_OP_TYPES:
            continue
        rid = (rec.page_id, rec.slot)
        if rec.rtype is RecordType.DELETE:
            by_rid.pop(rid, None)
        else:
            by_rid[rid] = rec.payload
    mirror: dict[int, dict[str, object]] = {}
    for payload in by_rid.values():
        row = unpack_record_map(REVISION_SCHEMA, payload)
        mirror[row["rev_id"]] = row
    return mirror


def run_fault_drill(
    seed: int = 0,
    n_pages: int = 300,
    revisions_per_page: int = 4,
    n_ops: int = 3_000,
    pool_pages: int = 16,
    plan: FaultPlan | None = None,
    wal: bool = True,
    crash_restarts: int = 2,
    checkpoint_every: int = 1_000,
    telemetry_samples: int = 16,
    adaptive: bool = False,
    sessions: int = 0,
    shards: int = 0,
) -> DrillReport:
    """Replay a mixed Wikipedia-revision workload under injected faults.

    Deterministic end to end: the same arguments produce the same faults,
    the same recoveries, the same restarts, and the same report digest,
    bit for bit.  ``wal=False`` reverts to the PR-2 drill (no durability,
    no heap-targeted faults, no restarts).

    ``telemetry_samples > 0`` additionally runs a
    :class:`~repro.obs.sampler.TelemetrySampler` on an operation cadence
    across the drill and evaluates the default SLO rules at the end; the
    verdicts land in the report as data (``health_ok``, ``health``) but
    never affect ``passed`` — the drill judges correctness, the health
    checker judges service levels, and a drill is *supposed* to hurt.

    ``adaptive=True`` arms the engine's
    :class:`~repro.obs.adaptive.AdaptiveController` for the whole drill —
    including across crash restarts, where the fresh database gets a
    fresh controller.  The controller may retune knobs mid-drill while
    faults fly; the drill's correctness verdict must be unaffected, which
    is exactly what this flag exists to prove.

    ``sessions=N`` (N >= 1) runs the same workload through N interleaved
    MVCC sessions (short 1–4 op transactions, seeded session pick per
    op, ~10% voluntary aborts).  Ground truth becomes a *versioned*
    mirror — committed versions stamped with the engine's commit CSNs —
    so every read is verified against the session's own snapshot, and
    the conflict oracle independently predicts each first-writer-wins
    abort.  Crash restarts land mid-transaction by construction: the
    recovery rollback must discard exactly the in-flight sessions'
    writes, which the rebuilt durable mirror then verifies.
    ``shards=N`` (N >= 1) runs the autocommit drill over a
    :class:`~repro.shard.ShardedDatabase` instead — N engines, each with
    its own faulty disk, injector (seeded ``seed + i``), WAL, and metrics
    namespace — with two hot-key rebalances fired *mid-drill*, so
    cross-shard migrations commit while faults fly.  Mutually exclusive
    with ``sessions`` (MVCC is per-engine) and with crash restarts, whose
    sharded equivalent — cutting both logs mid-migration — is the crash
    matrix test's job (``tests/test_shard_migration_crash.py``).
    """
    if shards:
        if sessions:
            raise ValueError("shards and sessions are mutually exclusive")
        return _run_sharded_drill(
            seed=seed,
            n_pages=n_pages,
            revisions_per_page=revisions_per_page,
            n_ops=n_ops,
            pool_pages=pool_pages,
            wal=wal,
            checkpoint_every=checkpoint_every,
            shards=shards,
        )
    from repro.wal.replay import recover  # late: harness ← query ← wal

    metrics = MetricsRegistry()
    injector = FaultInjector(seed=seed, registry=metrics)
    db = Database(
        data_pool_pages=pool_pages,
        seed=seed,
        metrics=metrics,
        fault_injector=injector,
        # Three corrective re-reads: at a 2% read-flip rate, one re-read
        # would misdiagnose back-to-back flips as at-rest corruption.
        retry_policy=RetryPolicy(corrupt_rereads=3),
        wal=bool(wal),
    )
    table = db.create_table("revision", REVISION_SCHEMA)
    index = db.create_cached_index(
        "revision", "rev_pk", ("rev_id",), CACHED_FIELDS
    )

    data = generate(
        WikipediaConfig(
            n_pages=n_pages, revisions_per_page_mean=revisions_per_page, seed=seed
        )
    )
    mirror: dict[int, dict[str, object]] = {}
    for row in data.revision_rows:
        table.insert(row)
        mirror[row["rev_id"]] = dict(row)

    # Armed *after* the bulk load so tuning reacts to the drill's mixed
    # workload, not to the insert storm.  Each restart builds a fresh
    # database and therefore a fresh controller; keep them all so the
    # report can total the actions taken across the drill's lifetimes.
    controllers = []
    if adaptive:
        controllers.append(db.enable_adaptive())

    def is_index_page(page_id: int) -> bool:
        tree = index.tree  # re-read: rebuilds/restarts swap the tree out
        return page_id in tree._leaf_ids or page_id in tree._internal_ids

    def is_heap_page(page_id: int) -> bool:
        return table.heap.owns_page(page_id)  # re-read: restarts swap it

    if plan is not None:
        drill_plan = plan
    else:
        drill_plan = default_plan(
            is_index_page, is_heap_page if wal else None
        )
    injector.arm(drill_plan)

    rng = DeterministicRng(seed)
    keys = sorted(mirror)
    wrong = 0
    restarts_done = 0
    quarantined_total = 0
    next_rev_id = max(keys) + 1
    template = dict(data.revision_rows[0])

    # -- concurrent-session infrastructure (sessions mode only) ----------------
    # ``oracle`` is the versioned ground truth: key -> [(csn, row|None)]
    # committed versions, csn 0 = the pre-concurrency base.  ``claims``
    # mirrors the engine's write-pending table so conflicts are
    # *predicted*, not just tolerated.
    sess: list = []
    sess_state: list = [None] * sessions
    oracle: dict[int, list] = {}
    claims: dict[int, int] = {}
    if sessions:
        sess = [db.session() for _ in range(sessions)]
        oracle = {k: [(0, dict(row))] for k, row in mirror.items()}

    def check_result(key: int, result) -> int:
        expected = mirror.get(key)
        if expected is None:
            return 0 if not result.found else 1
        if not result.found:
            return 1
        want = {name: expected[name] for name in PROJECTION}
        return 0 if result.values == want else 1

    def verify_lookup(key: int) -> int:
        result = db.recovery.call(table.lookup, "rev_pk", key, PROJECTION)
        return check_result(key, result)

    def verify_lookup_many(batch: list[int]) -> int:
        results = db.recovery.call(
            table.lookup_many, "rev_pk", batch, PROJECTION
        )
        return sum(check_result(k, r) for k, r in zip(batch, results))

    def restart() -> None:
        """Pull the power mid-write-back, then recover from disk + WAL."""
        nonlocal db, table, index, next_rev_id, restarts_done, quarantined_total
        quarantined_total += len(
            db.data_pool.quarantined_pages | db.index_pool.quarantined_pages
        )
        injector.arm(FaultPlan.of(FaultSpec(FaultKind.CRASH_POINT, at_nth=1)))
        try:
            db.data_pool.flush_all()
            db.index_pool.flush_all()
        except SimulatedCrashError:
            pass  # the power cut we ordered; RAM is gone either way
        injector.disarm()
        db, _report = recover(
            db.wal,
            disk=db.disk,
            data_pool_pages=pool_pages,
            seed=seed,
            metrics=metrics,
            retry_policy=RetryPolicy(corrupt_rereads=3),
        )
        table = db.table("revision")
        index = table.index("rev_pk")
        if adaptive:
            controllers.append(db.enable_adaptive())
        # Ground truth = the durable log, folded independently of the
        # engine's own replay.  Keys ever seen stay probed: a key whose
        # insert missed the log must now look up as absent.
        durable = _mirror_from_wal(scan_wal(db.wal.device.data).records)
        mirror.clear()
        mirror.update(durable)
        keys[:] = sorted(set(keys) | set(mirror))
        if keys:
            next_rev_id = max(next_rev_id, keys[-1] + 1)
        if sessions:
            # In-flight transactions died with RAM; recovery rolled
            # their durable ops back (the durable fold above nets out
            # ops + compensations), so the fresh oracle restarts from
            # the committed state with no claims outstanding.
            sess[:] = [db.session() for _ in range(sessions)]
            for j in range(sessions):
                sess_state[j] = None
            claims.clear()
            oracle.clear()
            oracle.update({k: [(0, dict(row))] for k, row in mirror.items()})
        restarts_done += 1
        injector.arm(drill_plan)

    crash_ops = frozenset(
        round(n_ops * (j + 1) / (crash_restarts + 1))
        for j in range(crash_restarts if wal else 0)
    )

    sampler = checker = None
    sample_every = 0
    if telemetry_samples > 0:
        # The clock closure re-reads ``db``: a crash restart swaps in a
        # fresh database (and cost model); the clock jumping backwards
        # produces one degenerate window — no rates — and recovers.
        sampler = TelemetrySampler(
            metrics,
            clock=lambda: db.cost_model.now_ns,
            capacity=max(telemetry_samples + 1, 16),
        )
        checker = HealthChecker(sampler, DEFAULT_SLO_RULES)
        sampler.sample()
        sample_every = max(1, n_ops // telemetry_samples)

    # -- session-mode op engine ------------------------------------------------

    def oracle_visible(key: int, st: dict):
        """The row ``st``'s snapshot must see (own writes overlay the
        newest committed version at or below the begin CSN)."""
        if key in st["writes"]:
            return st["writes"][key]
        chain = oracle.get(key)
        if chain is None:
            return None
        value = None
        for csn, row in chain:
            if csn <= st["begin"]:
                value = row
        return value

    def expect_conflict(key: int, i: int, st: dict) -> bool:
        holder = claims.get(key)
        if holder is not None and holder != i:
            return True
        chain = oracle.get(key)
        return bool(chain) and chain[-1][0] > st["begin"]

    def drop_txn(i: int) -> None:
        for k in [k for k, owner in claims.items() if owner == i]:
            del claims[k]
        sess_state[i] = None

    def end_txn(i: int, commit: bool) -> None:
        st = sess_state[i]
        if commit:
            csn = db.recovery.call(sess[i].commit)
            for k, row in st["writes"].items():
                oracle.setdefault(k, [(0, None)]).append(
                    (csn, dict(row) if row is not None else None)
                )
        else:
            db.recovery.call(sess[i].abort)
        drop_txn(i)

    def check_session_result(result, expected) -> int:
        if expected is None:
            return 0 if not result.found else 1
        if not result.found:
            return 1
        want = {name: expected[name] for name in PROJECTION}
        return 0 if result.values == want else 1

    def session_op() -> int:
        """One interleaved step of a randomly chosen session; returns
        the number of wrong results observed."""
        nonlocal next_rev_id
        i = rng.randrange(sessions)
        st = sess_state[i]
        if st is None:
            begin = db.recovery.call(sess[i].begin)
            st = sess_state[i] = {
                "begin": begin, "writes": {}, "left": rng.randint(1, 4),
            }
        bad = 0
        draw = rng.random()
        key = keys[rng.randrange(len(keys))]
        if draw < 0.50:
            result = db.recovery.call(sess[i].lookup, "revision", key, PROJECTION)
            bad += check_session_result(result, oracle_visible(key, st))
        elif draw < 0.72:
            predicted = expect_conflict(key, i, st)
            new_len = rng.randint(100, 200_000)
            try:
                applied = db.recovery.call(
                    sess[i].update, "revision", key, {"rev_len": new_len}
                )
            except TxnConflictError:
                if not predicted:
                    bad += 1
                drop_txn(i)
                return bad
            if predicted:
                bad += 1  # the engine missed a conflict the oracle saw
            visible = oracle_visible(key, st)
            if applied != (visible is not None):
                bad += 1
            if applied:
                row = dict(visible)
                row["rev_len"] = new_len
                st["writes"][key] = row
                claims[key] = i
                result = db.recovery.call(
                    sess[i].lookup, "revision", key, PROJECTION
                )
                bad += check_session_result(result, row)
        elif draw < 0.88:
            row = dict(template)
            row["rev_id"] = next_rev_id
            row["rev_text_id"] = next_rev_id
            row["rev_len"] = rng.randint(100, 200_000)
            db.recovery.call(sess[i].insert, "revision", row)
            st["writes"][next_rev_id] = row
            claims[next_rev_id] = i
            keys.append(next_rev_id)
            next_rev_id += 1
        else:
            predicted = expect_conflict(key, i, st)
            try:
                applied = db.recovery.call(sess[i].delete, "revision", key)
            except TxnConflictError:
                if not predicted:
                    bad += 1
                drop_txn(i)
                return bad
            if predicted:
                bad += 1
            visible = oracle_visible(key, st)
            if applied != (visible is not None):
                bad += 1
            if applied:
                st["writes"][key] = None
                claims[key] = i
        st["left"] -= 1
        if st["left"] <= 0:
            end_txn(i, commit=rng.random() >= 0.10)
        return bad

    for op_i in range(n_ops):
        if op_i in crash_ops:
            restart()
        if sampler is not None and op_i and op_i % sample_every == 0:
            sampler.sample()
        if wal and checkpoint_every and op_i and op_i % checkpoint_every == 0:
            db.checkpoint()
        if sessions:
            wrong += session_op()
            continue
        draw = rng.random()
        key = keys[rng.randrange(len(keys))]
        if draw < 0.15:
            # The batched read fast path under fire: a small multi-key
            # probe (duplicates allowed) must agree with the mirror on
            # every position, exactly like the scalar path.
            batch = [key] + [
                keys[rng.randrange(len(keys))]
                for _ in range(rng.randint(1, 5))
            ]
            wrong += verify_lookup_many(batch)
        elif draw < 0.70:
            wrong += verify_lookup(key)
        elif draw < 0.85:
            if key in mirror:
                new_len = rng.randint(100, 200_000)
                applied = db.recovery.call(
                    table.update, "rev_pk", key, {"rev_len": new_len}
                )
                if applied:
                    mirror[key]["rev_len"] = new_len
                else:
                    wrong += 1
                wrong += verify_lookup(key)
            else:
                wrong += verify_lookup(key)
        elif draw < 0.95:
            row = dict(template)
            row["rev_id"] = next_rev_id
            row["rev_text_id"] = next_rev_id
            row["rev_len"] = rng.randint(100, 200_000)
            db.recovery.call(table.insert, row)
            mirror[next_rev_id] = row
            keys.append(next_rev_id)
            next_rev_id += 1
        else:
            if key in mirror:
                applied = db.recovery.call(table.delete, "rev_pk", key)
                if applied:
                    del mirror[key]
                else:
                    wrong += 1
            wrong += verify_lookup(key)

    injector.disarm()

    if sessions:
        # Quiesce: commit every open transaction (commits never
        # re-validate, so these cannot conflict), then collapse the
        # versioned oracle to its newest committed rows — with no
        # transactions in flight, that is exactly what autocommit
        # lookups must see in the sweep below.
        for i in range(sessions):
            if sess_state[i] is not None:
                end_txn(i, commit=True)
        mirror.clear()
        for k, chain in oracle.items():
            row = chain[-1][1]
            if row is not None:
                mirror[k] = row

    # Final sweep: every surviving row must read back exactly right, and
    # every deleted key must stay gone.
    digest = hashlib.sha256()
    for key in sorted(set(keys)):
        wrong += verify_lookup(key)
        expected = mirror.get(key)
        digest.update(repr((key, expected and expected["rev_len"])).encode())
    for fault in injector.log:
        digest.update(
            repr((fault.seq, fault.kind.value, fault.page_id, fault.bit,
                  fault.tear_at)).encode()
        )

    if wal:
        # Cached lookups can answer without the heap, so a heap page
        # corrupted at rest may still be undetected; a full scan through
        # a wide-budget healer redo-recovers any stragglers before the
        # invariant walk (which reports, rather than heals, corruption).
        sweeper = RecoveryManager(db, max_heals=256, registry=metrics)
        sweeper.call(lambda: sum(1 for _ in table.scan()))

    health_report = None
    if sampler is not None:
        sampler.sample()
        health_report = checker.evaluate()

    check = db.check()
    snapshot = metrics.snapshot()
    txn_stats = snapshot.get("txn", {})
    faults = snapshot.get("faults", {})
    recovery = snapshot.get("recovery", {})
    wal_stats = snapshot.get("wal", {})
    replay_stats = wal_stats.get("replay", {})
    # Everything in the report is bit-for-bit reproducible; replay wall
    # time is the one wall-clock instrument, so it stays out.
    replay_stats.pop("ns", None)
    return DrillReport(
        seed=seed,
        operations=n_ops,
        wrong_results=wrong,
        faults_injected=injector.injected,
        faults_detected=faults.get("detected", 0),
        faults_recovered=faults.get("recovered", 0),
        faults_unrecoverable=faults.get("unrecoverable", 0),
        retries=faults.get("retries", 0),
        index_rebuilds=recovery.get("index_rebuilds", 0),
        quarantined_pages=quarantined_total + len(
            db.data_pool.quarantined_pages | db.index_pool.quarantined_pages
        ),
        check_ok=check.ok,
        check_problems=list(check.problems),
        digest=digest.hexdigest(),
        metrics=snapshot,
        heap_page_rebuilds=recovery.get("heap_page_rebuilds", 0)
        + replay_stats.get("page_rebuilds", 0),
        crash_restarts=restarts_done,
        wal_records=wal_stats.get("records", 0),
        telemetry_points=sampler.samples_taken if sampler is not None else 0,
        health_ok=health_report.ok if health_report is not None else True,
        health=health_report.as_dict() if health_report is not None else {},
        tuning_actions=sum(c.actions_taken for c in controllers),
        sessions=sessions,
        txn_commits=txn_stats.get("commits", 0),
        txn_aborts=txn_stats.get("aborts", 0),
        txn_conflicts=txn_stats.get("conflicts", 0),
    )


def _run_sharded_drill(
    *,
    seed: int,
    n_pages: int,
    revisions_per_page: int,
    n_ops: int,
    pool_pages: int,
    wal: bool,
    checkpoint_every: int,
    shards: int,
) -> DrillReport:
    """The autocommit drill over a :class:`~repro.shard.ShardedDatabase`.

    Each shard gets its own injector (seeded ``seed + i``) armed with the
    standard mix aimed at *that shard's* index and heap pages; every
    operation routes through the facade, whose per-call recovery managers
    heal exactly like the classic drill's.  At one third and two thirds
    of the op budget the drill fires :meth:`rebalance` — hot keys migrate
    between shards while faults fly, and every subsequent read is still
    verified against the mirror, so a migration that lost or duplicated a
    tuple would surface as a wrong result or a failed cross-shard
    ownership check.  Telemetry sampling and crash restarts stay off
    (restart coverage for sharding is the crash-matrix test); the digest
    folds the final sweep plus all shards' injector logs in shard order.
    """
    from repro.shard.database import ShardedDatabase  # late: avoids cycle

    metrics = MetricsRegistry()
    shard_regs = [MetricsRegistry() for _ in range(shards)]
    injectors = [
        FaultInjector(seed=seed + i, registry=shard_regs[i])
        for i in range(shards)
    ]
    # Split the drill's RAM budget across the shards (rounded up, floor
    # of 4 frames) — otherwise N shards quietly get N× the classic
    # drill's memory, every partition fits, and no I/O ever reaches the
    # faulty disks, which would turn the drill into a no-op.
    per_shard_pool = max(4, -(-pool_pages // shards))
    sdb = ShardedDatabase(
        shards,
        mode="zipf",
        data_pool_pages=per_shard_pool,
        seed=seed,
        metrics=metrics,
        shard_metrics=shard_regs,
        fault_injectors=injectors,
        retry_policy=RetryPolicy(corrupt_rereads=3),
        wal=bool(wal),
        recovery=True,
    )
    # §5j: the sharded drill always runs observed — cross-shard traces,
    # the causal event journal, and fleet rollups all read clocks and
    # registries without advancing them, so the drill's digest and every
    # correctness verdict are unchanged by arming them.
    trace = sdb.enable_tracing()
    journal = sdb.enable_events()
    rollup = sdb.enable_rollup()
    table = sdb.create_table("revision", REVISION_SCHEMA)
    sdb.create_cached_index("revision", "rev_pk", ("rev_id",), CACHED_FIELDS)

    data = generate(
        WikipediaConfig(
            n_pages=n_pages, revisions_per_page_mean=revisions_per_page,
            seed=seed,
        )
    )
    mirror: dict[int, dict[str, object]] = {}
    for row in data.revision_rows:
        table.insert(row)
        mirror[row["rev_id"]] = dict(row)

    def make_filters(i: int):
        local = sdb.shard(i).table("revision")
        tree = local.index("rev_pk").tree

        def is_index_page(page_id: int) -> bool:
            return page_id in tree._leaf_ids or page_id in tree._internal_ids

        def is_heap_page(page_id: int) -> bool:
            return local.heap.owns_page(page_id)

        return is_index_page, is_heap_page

    for i, injector in enumerate(injectors):
        is_index_page, is_heap_page = make_filters(i)
        injector.arm(
            default_plan(is_index_page, is_heap_page if wal else None)
        )

    rng = DeterministicRng(seed)
    keys = sorted(mirror)
    wrong = 0
    next_rev_id = max(keys) + 1
    template = dict(data.revision_rows[0])
    keys_migrated = 0
    rebalance_ops = frozenset((n_ops // 3, 2 * n_ops // 3))

    def check_result(key: int, result) -> int:
        expected = mirror.get(key)
        if expected is None:
            return 0 if not result.found else 1
        if not result.found:
            return 1
        want = {name: expected[name] for name in PROJECTION}
        return 0 if result.values == want else 1

    def verify_lookup(key: int) -> int:
        return check_result(key, table.lookup("rev_pk", key, PROJECTION))

    for op_i in range(n_ops):
        if op_i and op_i in rebalance_ops:
            keys_migrated += sdb.rebalance().keys_moved
        if wal and checkpoint_every and op_i and op_i % checkpoint_every == 0:
            sdb.checkpoint()
        draw = rng.random()
        key = keys[rng.randrange(len(keys))]
        if draw < 0.15:
            batch = [key] + [
                keys[rng.randrange(len(keys))]
                for _ in range(rng.randint(1, 5))
            ]
            results = table.lookup_many("rev_pk", batch, PROJECTION)
            wrong += sum(check_result(k, r) for k, r in zip(batch, results))
        elif draw < 0.70:
            wrong += verify_lookup(key)
        elif draw < 0.85:
            if key in mirror:
                new_len = rng.randint(100, 200_000)
                applied = table.update("rev_pk", key, {"rev_len": new_len})
                if applied:
                    mirror[key]["rev_len"] = new_len
                else:
                    wrong += 1
                wrong += verify_lookup(key)
            else:
                wrong += verify_lookup(key)
        elif draw < 0.95:
            row = dict(template)
            row["rev_id"] = next_rev_id
            row["rev_text_id"] = next_rev_id
            row["rev_len"] = rng.randint(100, 200_000)
            table.insert(row)
            mirror[next_rev_id] = row
            keys.append(next_rev_id)
            next_rev_id += 1
        else:
            if key in mirror:
                applied = table.delete("rev_pk", key)
                if applied:
                    del mirror[key]
                else:
                    wrong += 1
            wrong += verify_lookup(key)

    for injector in injectors:
        injector.disarm()

    # Final sweep + digest: every surviving row reads back exactly right,
    # every deleted key stays gone, and the fault history of *every*
    # shard is folded in shard order.
    digest = hashlib.sha256()
    for key in sorted(set(keys)):
        wrong += verify_lookup(key)
        expected = mirror.get(key)
        digest.update(repr((key, expected and expected["rev_len"])).encode())
    for injector in injectors:
        for fault in injector.log:
            digest.update(
                repr((fault.seq, fault.kind.value, fault.page_id, fault.bit,
                      fault.tear_at)).encode()
            )

    if wal:
        # Same straggler sweep as the classic drill, once per shard.
        for i in range(shards):
            local = sdb.shard(i).table("revision")
            sweeper = RecoveryManager(
                sdb.shard(i), max_heals=256, registry=shard_regs[i]
            )
            sweeper.journal = journal
            sweeper.journal_shard = i
            sweeper.call(lambda t=local: sum(1 for _ in t.scan()))

    # One traced full-fanout aggregate after the guns go quiet: its span
    # tree must cover every shard (the report's acceptance exhibit).
    table.aggregate([("count", None)])
    rollup.refresh()

    check = sdb.check()
    problems = list(check.problems)
    for i, shard_check in enumerate(check.per_shard):
        problems += [f"shard {i}: {p}" for p in shard_check.problems]
    snapshot = sdb.snapshot()
    faults_detected = faults_recovered = faults_unrecoverable = 0
    retries = index_rebuilds = heap_rebuilds = wal_records = 0
    quarantined = 0
    for i in range(shards):
        shard_snap = snapshot["shard"][str(i)]
        shard_snap.get("wal", {}).get("replay", {}).pop("ns", None)
        faults = shard_snap.get("faults", {})
        faults_detected += faults.get("detected", 0)
        faults_recovered += faults.get("recovered", 0)
        faults_unrecoverable += faults.get("unrecoverable", 0)
        retries += faults.get("retries", 0)
        recovery_stats = shard_snap.get("recovery", {})
        index_rebuilds += recovery_stats.get("index_rebuilds", 0)
        heap_rebuilds += recovery_stats.get("heap_page_rebuilds", 0)
        wal_records += shard_snap.get("wal", {}).get("records", 0)
        db = sdb.shard(i)
        quarantined += len(
            db.data_pool.quarantined_pages | db.index_pool.quarantined_pages
        )
    return DrillReport(
        seed=seed,
        operations=n_ops,
        wrong_results=wrong,
        faults_injected=sum(inj.injected for inj in injectors),
        faults_detected=faults_detected,
        faults_recovered=faults_recovered,
        faults_unrecoverable=faults_unrecoverable,
        retries=retries,
        index_rebuilds=index_rebuilds,
        quarantined_pages=quarantined,
        check_ok=check.ok,
        check_problems=problems,
        digest=digest.hexdigest(),
        metrics=snapshot,
        heap_page_rebuilds=heap_rebuilds,
        crash_restarts=0,
        wal_records=wal_records,
        shards=shards,
        keys_migrated=keys_migrated,
        events=journal.as_dicts(),
        traces=trace.as_dicts(8),
    )
