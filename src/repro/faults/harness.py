"""The end-to-end fault drill: a Wikipedia workload replayed under fire.

``run_fault_drill`` builds a :class:`~repro.query.database.Database` on a
:class:`~repro.faults.disk.FaultyDisk`, loads the synthetic Wikipedia
revision table with a §2.1 cached index, arms a mixed fault plan
(transient read/write errors and read bit flips anywhere; at-rest
corruption — write bit flips, torn writes, stuck writes — aimed at index
pages, which are rebuildable), and replays a mixed
lookup/update/insert/delete workload through the
:class:`~repro.faults.recovery.RecoveryManager`.

Every operation's outcome is verified against an in-memory mirror of the
table, so the drill's headline number — ``wrong_results`` — is literal:
how many times the engine returned an answer that differed from ground
truth.  With checksums, retry, and self-healing on, the expected value is
zero no matter how many faults were injected.

This module imports ``repro.query`` and ``repro.workload``; it is kept
out of ``repro.faults.__init__`` to avoid an import cycle — reach it as
``repro.faults.harness`` (or ``python -m repro.faults`` for the CLI).
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field

from repro.faults.injector import FaultInjector
from repro.faults.plan import FaultKind, FaultPlan, FaultSpec
from repro.obs.registry import MetricsRegistry
from repro.query.database import Database
from repro.storage.retry import RetryPolicy
from repro.util.rng import DeterministicRng
from repro.workload.wikipedia import REVISION_SCHEMA, WikipediaConfig, generate

#: Fields the drill's cached index keeps in leaf free space; lookups
#: project key ∪ cached so cache hits answer without the heap.
CACHED_FIELDS = ("rev_page", "rev_len")
PROJECTION = ("rev_id",) + CACHED_FIELDS


@dataclass
class DrillReport:
    """Everything the e2e drill measured, plus pass/fail verdicts."""

    seed: int
    operations: int
    wrong_results: int
    faults_injected: int
    faults_detected: int
    faults_recovered: int
    faults_unrecoverable: int
    retries: int
    index_rebuilds: int
    quarantined_pages: int
    check_ok: bool
    check_problems: list[str] = field(default_factory=list)
    digest: str = ""
    metrics: dict = field(default_factory=dict)

    @property
    def ledger_balanced(self) -> bool:
        """The accounting invariant: every detection was resolved."""
        return self.faults_detected == (
            self.faults_recovered + self.faults_unrecoverable
        )

    @property
    def passed(self) -> bool:
        return self.wrong_results == 0 and self.check_ok and self.ledger_balanced

    def summary(self) -> str:
        verdict = "PASS" if self.passed else "FAIL"
        return (
            f"fault drill [{verdict}] seed={self.seed}: {self.operations} ops, "
            f"{self.faults_injected} faults injected, "
            f"{self.faults_detected} detected = {self.faults_recovered} "
            f"recovered + {self.faults_unrecoverable} unrecoverable, "
            f"{self.retries} retries, {self.index_rebuilds} index rebuild(s), "
            f"{self.quarantined_pages} page(s) quarantined, "
            f"{self.wrong_results} wrong result(s), "
            f"check={'OK' if self.check_ok else 'FAILED'}, "
            f"digest={self.digest[:16]}"
        )


def default_plan(is_index_page) -> FaultPlan:
    """The drill's standard mix.

    At-rest corruption is aimed at index pages only: the drill proves
    *recovery*, and in an engine without a WAL a corrupted heap page is
    honest data loss, not something to paper over.  Transient faults and
    read-path flips hit everything — they heal by retry/re-read.
    """
    return FaultPlan.of(
        FaultSpec(FaultKind.TRANSIENT_READ_ERROR, probability=0.02),
        FaultSpec(FaultKind.TRANSIENT_WRITE_ERROR, probability=0.02),
        FaultSpec(FaultKind.READ_BIT_FLIP, probability=0.02),
        FaultSpec(
            FaultKind.WRITE_BIT_FLIP, probability=0.02, page_filter=is_index_page
        ),
        FaultSpec(FaultKind.TORN_WRITE, probability=0.02, page_filter=is_index_page),
        FaultSpec(FaultKind.STUCK_WRITE, probability=0.02, page_filter=is_index_page),
    )


def run_fault_drill(
    seed: int = 0,
    n_pages: int = 300,
    revisions_per_page: int = 4,
    n_ops: int = 3_000,
    pool_pages: int = 16,
    plan: FaultPlan | None = None,
) -> DrillReport:
    """Replay a mixed Wikipedia-revision workload under injected faults.

    Deterministic end to end: the same arguments produce the same faults,
    the same recoveries, and the same report digest, bit for bit.
    """
    metrics = MetricsRegistry()
    injector = FaultInjector(seed=seed, registry=metrics)
    db = Database(
        data_pool_pages=pool_pages,
        seed=seed,
        metrics=metrics,
        fault_injector=injector,
        # Three corrective re-reads: at a 2% read-flip rate, one re-read
        # would misdiagnose back-to-back flips as at-rest corruption.
        retry_policy=RetryPolicy(corrupt_rereads=3),
    )
    table = db.create_table("revision", REVISION_SCHEMA)
    index = db.create_cached_index(
        "revision", "rev_pk", ("rev_id",), CACHED_FIELDS
    )

    data = generate(
        WikipediaConfig(
            n_pages=n_pages, revisions_per_page_mean=revisions_per_page, seed=seed
        )
    )
    mirror: dict[int, dict[str, object]] = {}
    for row in data.revision_rows:
        table.insert(row)
        mirror[row["rev_id"]] = dict(row)

    def is_index_page(page_id: int) -> bool:
        tree = index.tree  # re-read: rebuilds swap the tree out
        return page_id in tree._leaf_ids or page_id in tree._internal_ids

    injector.arm(plan if plan is not None else default_plan(is_index_page))

    rng = DeterministicRng(seed)
    keys = sorted(mirror)
    wrong = 0
    next_rev_id = max(keys) + 1
    template = dict(data.revision_rows[0])

    def check_result(key: int, result) -> int:
        expected = mirror.get(key)
        if expected is None:
            return 0 if not result.found else 1
        if not result.found:
            return 1
        want = {name: expected[name] for name in PROJECTION}
        return 0 if result.values == want else 1

    def verify_lookup(key: int) -> int:
        result = db.recovery.call(table.lookup, "rev_pk", key, PROJECTION)
        return check_result(key, result)

    def verify_lookup_many(batch: list[int]) -> int:
        results = db.recovery.call(
            table.lookup_many, "rev_pk", batch, PROJECTION
        )
        return sum(check_result(k, r) for k, r in zip(batch, results))

    for _ in range(n_ops):
        draw = rng.random()
        key = keys[rng.randrange(len(keys))]
        if draw < 0.15:
            # The batched read fast path under fire: a small multi-key
            # probe (duplicates allowed) must agree with the mirror on
            # every position, exactly like the scalar path.
            batch = [key] + [
                keys[rng.randrange(len(keys))]
                for _ in range(rng.randint(1, 5))
            ]
            wrong += verify_lookup_many(batch)
        elif draw < 0.70:
            wrong += verify_lookup(key)
        elif draw < 0.85:
            if key in mirror:
                new_len = rng.randint(100, 200_000)
                applied = db.recovery.call(
                    table.update, "rev_pk", key, {"rev_len": new_len}
                )
                if applied:
                    mirror[key]["rev_len"] = new_len
                else:
                    wrong += 1
                wrong += verify_lookup(key)
            else:
                wrong += verify_lookup(key)
        elif draw < 0.95:
            row = dict(template)
            row["rev_id"] = next_rev_id
            row["rev_text_id"] = next_rev_id
            row["rev_len"] = rng.randint(100, 200_000)
            db.recovery.call(table.insert, row)
            mirror[next_rev_id] = row
            keys.append(next_rev_id)
            next_rev_id += 1
        else:
            if key in mirror:
                applied = db.recovery.call(table.delete, "rev_pk", key)
                if applied:
                    del mirror[key]
                else:
                    wrong += 1
            wrong += verify_lookup(key)

    injector.disarm()

    # Final sweep: every surviving row must read back exactly right, and
    # every deleted key must stay gone.
    digest = hashlib.sha256()
    for key in sorted(set(keys)):
        wrong += verify_lookup(key)
        expected = mirror.get(key)
        digest.update(repr((key, expected and expected["rev_len"])).encode())
    for fault in injector.log:
        digest.update(
            repr((fault.seq, fault.kind.value, fault.page_id, fault.bit,
                  fault.tear_at)).encode()
        )

    check = db.check()
    snapshot = metrics.snapshot()
    faults = snapshot.get("faults", {})
    return DrillReport(
        seed=seed,
        operations=n_ops,
        wrong_results=wrong,
        faults_injected=injector.injected,
        faults_detected=faults.get("detected", 0),
        faults_recovered=faults.get("recovered", 0),
        faults_unrecoverable=faults.get("unrecoverable", 0),
        retries=faults.get("retries", 0),
        index_rebuilds=db.recovery.heals,
        quarantined_pages=len(
            db.data_pool.quarantined_pages | db.index_pool.quarantined_pages
        ),
        check_ok=check.ok,
        check_problems=list(check.problems),
        digest=digest.hexdigest(),
        metrics=snapshot,
    )
