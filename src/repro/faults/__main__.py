"""CLI for the fault drill: ``python -m repro.faults``.

Runs :func:`repro.faults.harness.run_fault_drill` with the given seed and
sizes, prints the report summary plus any invariant-checker findings, and
exits non-zero unless the drill passed (zero wrong results, database
check OK, and the fault ledger balanced) **and** every detected fault was
recovered — an unrecoverable fault fails the gate even when quarantine
kept query results correct, so CI catches recovery regressions early.

``--sessions N`` runs the same workload through N interleaved MVCC
sessions (snapshot isolation, conflicts, crash-during-commit recovery).

``--shards N`` runs the drill over a sharded database instead: N engines
with independent injectors and WALs, hot keys migrating between shards
mid-drill, the RAM budget split across the shards.  Mutually exclusive
with ``--sessions``.
"""

from __future__ import annotations

import argparse
import sys

from repro.faults.harness import run_fault_drill


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.faults",
        description=(
            "Replay a mixed Wikipedia-revision workload under injected "
            "storage faults and verify every result against ground truth."
        ),
    )
    parser.add_argument("--seed", type=int, default=0, help="drill seed")
    parser.add_argument(
        "--ops", type=int, default=3_000, help="mixed operations to replay"
    )
    parser.add_argument(
        "--pages", type=int, default=300, help="Wikipedia pages to generate"
    )
    parser.add_argument(
        "--pool-pages", type=int, default=16, help="buffer-pool frames"
    )
    parser.add_argument(
        "--sessions", type=int, default=0,
        help="interleaved MVCC sessions (0 = autocommit drill)",
    )
    parser.add_argument(
        "--shards", type=int, default=0,
        help="shard the drill over N engines (0 = single engine)",
    )
    parser.add_argument(
        "--verbose", action="store_true", help="also dump the fault log"
    )
    args = parser.parse_args(argv)
    if args.shards and args.sessions:
        parser.error("--shards and --sessions are mutually exclusive")

    report = run_fault_drill(
        seed=args.seed,
        n_pages=args.pages,
        n_ops=args.ops,
        pool_pages=args.pool_pages,
        sessions=args.sessions,
        shards=args.shards,
    )
    print(report.summary())
    for problem in report.check_problems:
        print(f"  check: {problem}", file=sys.stderr)
    if args.verbose:
        for name, value in sorted(report.metrics.get("faults", {}).items()):
            print(f"  faults.{name} = {value}")
    if report.faults_unrecoverable:
        print(
            f"  gate: {report.faults_unrecoverable} unrecoverable fault(s)",
            file=sys.stderr,
        )
        return 1
    return 0 if report.passed else 1


if __name__ == "__main__":
    raise SystemExit(main())
