"""Slotted page implementing the Figure-1 anatomy of the paper.

Byte layout of a page of size ``P``::

    offset 0                                                        P
    | header (24 B) | directory -> | ...free window... | <- records | footer (4 B) |

* The **directory** grows upward from the header; entry ``i`` is 4 bytes:
  record offset (u16) + record length (u16).  Offset 0 marks a tombstone.
* The **record region** grows downward from the footer.
* The **free window** ``[free_lo, free_hi)`` in the middle belongs to nobody
  — which is exactly why the paper's index cache can squat there (§2.1).
  Inserts consume the window from *both* ends without preserving its
  contents; cache slots near the periphery are silently clobbered, and the
  cache layer re-validates slots via checksums on every read.

Header fields (little-endian)::

    magic      u16   format check
    page_id    u32
    page_type  u8    PageType
    flags      u8
    slot_count u16   number of directory entries (incl. tombstones)
    free_lo    u16   first byte past the directory
    free_hi    u16   first byte of the lowest record
    cache_csn  u64   per-page cache sequence number (§2.1.2)
    next_page  u32
    level      u8
    checksum   u32   CRC32 over the page with this field zeroed
    reserved   u8

The checksum is storage-integrity state, not page-content state: it is
stamped by the buffer pool immediately before a write-back and verified
when the page next comes off disk, so torn writes and at-rest bit flips
surface as :class:`~repro.errors.CorruptPageError` instead of silently
wrong query results.
"""

from __future__ import annotations

import zlib
from typing import Iterator

from repro.errors import InvalidRidError, PageFormatError, PageFullError
from repro.storage.constants import (
    FOOTER_MAGIC,
    NO_PAGE,
    PAGE_CHECKSUM_OFFSET,
    PAGE_CHECKSUM_SIZE,
    PAGE_FOOTER_SIZE,
    PAGE_HEADER_SIZE,
    PAGE_MAGIC,
    SLOT_ENTRY_SIZE,
    PageType,
)

_OFF_MAGIC = 0
_OFF_PAGE_ID = 2
_OFF_TYPE = 6
_OFF_FLAGS = 7
_OFF_SLOT_COUNT = 8
_OFF_FREE_LO = 10
_OFF_FREE_HI = 12
_OFF_CACHE_CSN = 14
_OFF_NEXT_PAGE = 22
_OFF_LEVEL = 26
_OFF_CHECKSUM = PAGE_CHECKSUM_OFFSET
_TOMBSTONE_OFFSET = 0


def compute_page_checksum(buffer: bytes | bytearray) -> int:
    """CRC32 over the page bytes with the checksum field treated as zero."""
    crc = zlib.crc32(buffer[:_OFF_CHECKSUM])
    crc = zlib.crc32(bytes(PAGE_CHECKSUM_SIZE), crc)
    return zlib.crc32(buffer[_OFF_CHECKSUM + PAGE_CHECKSUM_SIZE :], crc)


def read_page_checksum(buffer: bytes | bytearray) -> int:
    """The stored CRC32 stamp (0 on a never-stamped page)."""
    return int.from_bytes(
        buffer[_OFF_CHECKSUM : _OFF_CHECKSUM + PAGE_CHECKSUM_SIZE], "little"
    )


def stamp_page_checksum(buffer: bytearray) -> int:
    """Stamp the current CRC32 into the checksum field; returns the CRC."""
    crc = compute_page_checksum(buffer)
    buffer[_OFF_CHECKSUM : _OFF_CHECKSUM + PAGE_CHECKSUM_SIZE] = crc.to_bytes(
        4, "little"
    )
    return crc


def page_checksum_ok(buffer: bytes | bytearray) -> bool:
    """True if the stamp matches the contents, or the page was never
    stamped (all-zero bytes, as fresh allocations are)."""
    stored = read_page_checksum(buffer)
    if compute_page_checksum(buffer) == stored:
        return True
    return stored == 0 and not any(buffer)


class SlottedPage:
    """A mutable view over one page's ``bytearray``.

    The page does not own its buffer: the buffer pool does.  Constructing a
    view is cheap; all state lives in the bytes, so two views over the same
    buffer always agree.
    """

    def __init__(self, buffer: bytearray) -> None:
        if len(buffer) < PAGE_HEADER_SIZE + PAGE_FOOTER_SIZE:
            raise PageFormatError("buffer smaller than header + footer")
        if len(buffer) > 0xFFFF:
            raise PageFormatError("2-byte offsets cap pages at 65535 bytes")
        self._buf = buffer
        self._size = len(buffer)

    # -- construction ------------------------------------------------------

    @classmethod
    def format(
        cls, buffer: bytearray, page_id: int, page_type: PageType
    ) -> "SlottedPage":
        """Initialise a fresh page in ``buffer`` and return a view over it."""
        size = len(buffer)
        buffer[:] = bytes(size)
        page = cls(buffer)
        page._put_u16(_OFF_MAGIC, PAGE_MAGIC)
        page._put_u32(_OFF_PAGE_ID, page_id)
        buffer[_OFF_TYPE] = int(page_type)
        page._put_u16(_OFF_SLOT_COUNT, 0)
        page._put_u16(_OFF_FREE_LO, PAGE_HEADER_SIZE)
        page._put_u16(_OFF_FREE_HI, size - PAGE_FOOTER_SIZE)
        page._put_u64(_OFF_CACHE_CSN, 0)
        page._put_u32(_OFF_NEXT_PAGE, NO_PAGE)
        buffer[_OFF_LEVEL] = 0
        page._put_u16(size - PAGE_FOOTER_SIZE, FOOTER_MAGIC)
        return page

    def verify(self) -> None:
        """Raise :class:`PageFormatError` if the page bytes look corrupt."""
        if self._get_u16(_OFF_MAGIC) != PAGE_MAGIC:
            raise PageFormatError("bad page magic")
        if self._get_u16(self._size - PAGE_FOOTER_SIZE) != FOOTER_MAGIC:
            raise PageFormatError("bad footer magic")
        lo, hi = self.free_window()
        if not PAGE_HEADER_SIZE <= lo <= hi <= self._size - PAGE_FOOTER_SIZE:
            raise PageFormatError(f"inconsistent free window [{lo}, {hi})")

    # -- primitive accessors -------------------------------------------------

    def _get_u16(self, off: int) -> int:
        return int.from_bytes(self._buf[off : off + 2], "little")

    def _put_u16(self, off: int, value: int) -> None:
        self._buf[off : off + 2] = value.to_bytes(2, "little")

    def _get_u32(self, off: int) -> int:
        return int.from_bytes(self._buf[off : off + 4], "little")

    def _put_u32(self, off: int, value: int) -> None:
        self._buf[off : off + 4] = value.to_bytes(4, "little")

    def _get_u64(self, off: int) -> int:
        return int.from_bytes(self._buf[off : off + 8], "little")

    def _put_u64(self, off: int, value: int) -> None:
        self._buf[off : off + 8] = value.to_bytes(8, "little")

    # -- header properties ---------------------------------------------------

    @property
    def buffer(self) -> bytearray:
        """The raw page bytes (the index cache writes here directly)."""
        return self._buf

    @property
    def size(self) -> int:
        return self._size

    @property
    def page_id(self) -> int:
        return self._get_u32(_OFF_PAGE_ID)

    @property
    def page_type(self) -> PageType:
        return PageType(self._buf[_OFF_TYPE])

    @property
    def slot_count(self) -> int:
        """Directory entries, including tombstones."""
        return self._get_u16(_OFF_SLOT_COUNT)

    @property
    def cache_csn(self) -> int:
        """Per-page cache sequence number (§2.1.2 ``CSN_p``)."""
        return self._get_u64(_OFF_CACHE_CSN)

    @cache_csn.setter
    def cache_csn(self, value: int) -> None:
        self._put_u64(_OFF_CACHE_CSN, value)

    @property
    def next_page(self) -> int | None:
        """Sibling link (B+Tree leaf chaining); ``None`` when unset."""
        raw = self._get_u32(_OFF_NEXT_PAGE)
        return None if raw == NO_PAGE else raw

    @next_page.setter
    def next_page(self, value: int | None) -> None:
        self._put_u32(_OFF_NEXT_PAGE, NO_PAGE if value is None else value)

    @property
    def checksum(self) -> int:
        """The stored CRC32 stamp (see :func:`stamp_page_checksum`)."""
        return read_page_checksum(self._buf)

    def checksum_ok(self) -> bool:
        """True if the stored stamp matches the page bytes."""
        return page_checksum_ok(self._buf)

    @property
    def level(self) -> int:
        """Tree level: 0 for leaves, increasing toward the root."""
        return self._buf[_OFF_LEVEL]

    @level.setter
    def level(self, value: int) -> None:
        self._buf[_OFF_LEVEL] = value

    def free_window(self) -> tuple[int, int]:
        """``(free_lo, free_hi)`` — the unclaimed middle of the page."""
        return self._get_u16(_OFF_FREE_LO), self._get_u16(_OFF_FREE_HI)

    @property
    def free_bytes(self) -> int:
        lo, hi = self.free_window()
        return hi - lo

    # -- directory -----------------------------------------------------------

    def _slot_entry_offset(self, slot: int) -> int:
        return PAGE_HEADER_SIZE + slot * SLOT_ENTRY_SIZE

    def _slot_entry(self, slot: int) -> tuple[int, int]:
        if not 0 <= slot < self.slot_count:
            raise InvalidRidError(
                f"slot {slot} out of range on page {self.page_id}"
            )
        base = self._slot_entry_offset(slot)
        return self._get_u16(base), self._get_u16(base + 2)

    def _set_slot_entry(self, slot: int, offset: int, length: int) -> None:
        base = self._slot_entry_offset(slot)
        self._put_u16(base, offset)
        self._put_u16(base + 2, length)

    def slot_is_live(self, slot: int) -> bool:
        """True if the slot holds a record (not a tombstone)."""
        offset, _ = self._slot_entry(slot)
        return offset != _TOMBSTONE_OFFSET

    # -- record operations -----------------------------------------------------

    def insert(self, data: bytes) -> int:
        """Insert a record, return its slot number.

        Prefers reusing a tombstone directory entry (no directory growth);
        otherwise appends a new entry.  Record bytes are always taken from
        the high end of the free window — possibly clobbering cache slots —
        per the paper's "inserts freely overwrite the periphery" rule.
        """
        if not data:
            raise PageFullError("cannot insert an empty record")
        lo, hi = self.free_window()
        reuse_slot = self._find_tombstone()
        need = len(data) if reuse_slot is not None else len(data) + SLOT_ENTRY_SIZE
        if hi - lo < need:
            raise PageFullError(
                f"page {self.page_id}: need {need} bytes, have {hi - lo}"
            )
        new_hi = hi - len(data)
        self._buf[new_hi:hi] = data
        self._put_u16(_OFF_FREE_HI, new_hi)
        if reuse_slot is not None:
            slot = reuse_slot
        else:
            slot = self.slot_count
            self._put_u16(_OFF_SLOT_COUNT, slot + 1)
            self._put_u16(_OFF_FREE_LO, lo + SLOT_ENTRY_SIZE)
        self._set_slot_entry(slot, new_hi, len(data))
        return slot

    def read(self, slot: int) -> bytes:
        """Read the record in ``slot``."""
        offset, length = self._slot_entry(slot)
        if offset == _TOMBSTONE_OFFSET:
            raise InvalidRidError(
                f"slot {slot} on page {self.page_id} is deleted"
            )
        return bytes(self._buf[offset : offset + length])

    def update(self, slot: int, data: bytes) -> None:
        """Overwrite a record in place; the length must not change."""
        offset, length = self._slot_entry(slot)
        if offset == _TOMBSTONE_OFFSET:
            raise InvalidRidError(
                f"slot {slot} on page {self.page_id} is deleted"
            )
        if len(data) != length:
            raise PageFullError(
                f"in-place update must keep length {length}, got {len(data)}"
            )
        self._buf[offset : offset + len(data)] = data

    def delete(self, slot: int) -> None:
        """Tombstone a slot.  Record bytes stay until :meth:`compact`."""
        offset, length = self._slot_entry(slot)
        if offset == _TOMBSTONE_OFFSET:
            raise InvalidRidError(
                f"slot {slot} on page {self.page_id} already deleted"
            )
        self._set_slot_entry(slot, _TOMBSTONE_OFFSET, length)

    @property
    def is_formatted(self) -> bool:
        """True if the buffer carries this module's magic (i.e. has been
        through :meth:`format`); fresh zeroed pages are not."""
        return self._get_u16(_OFF_MAGIC) == PAGE_MAGIC

    def place_at(self, slot: int, data: bytes) -> None:
        """Materialize ``data`` at exactly ``slot`` (heap-mode redo only).

        Unlike :meth:`insert`, which picks its own slot (reusing the
        lowest tombstone), WAL redo must reproduce the slot the original
        run chose — including slots past the current directory end when
        earlier inserts on this page were never redone (their effects
        were already durable).  Intervening missing slots are created as
        tombstones; the directory never shifts, so existing RIDs stay
        valid.  Compacts once if the free window is tight (compaction is
        not logged, so redo may need more contiguous room than the
        original run did).
        """
        if not data:
            raise PageFullError("cannot place an empty record")
        count = self.slot_count
        if slot < count and self.slot_is_live(slot):
            raise InvalidRidError(
                f"slot {slot} on page {self.page_id} is live; redo must "
                f"delete before re-placing"
            )
        grow = max(0, slot + 1 - count)
        need = len(data) + grow * SLOT_ENTRY_SIZE
        lo, hi = self.free_window()
        if hi - lo < need:
            self.compact()
            lo, hi = self.free_window()
            if hi - lo < need:
                raise PageFullError(
                    f"page {self.page_id}: redo needs {need} bytes, "
                    f"have {hi - lo} after compaction"
                )
        if grow:
            for s in range(count, slot + 1):
                self._set_slot_entry(s, _TOMBSTONE_OFFSET, 0)
            self._put_u16(_OFF_SLOT_COUNT, slot + 1)
            self._put_u16(_OFF_FREE_LO, lo + grow * SLOT_ENTRY_SIZE)
            hi = self._get_u16(_OFF_FREE_HI)
        new_hi = hi - len(data)
        self._buf[new_hi:hi] = data
        self._put_u16(_OFF_FREE_HI, new_hi)
        self._set_slot_entry(slot, new_hi, len(data))

    def reserve_tombstones(self, new_count: int) -> None:
        """Extend the directory to ``new_count`` entries, all tombstones.

        Page-rebuild companion to :meth:`place_at`: a page whose
        highest-numbered slots were all deleted still needs those
        directory entries so future inserts reuse them exactly as the
        pre-crash page would have.
        """
        count = self.slot_count
        if new_count <= count:
            return
        grow = new_count - count
        lo, hi = self.free_window()
        if hi - lo < grow * SLOT_ENTRY_SIZE:
            raise PageFullError(
                f"page {self.page_id}: no room for {grow} directory entries"
            )
        for s in range(count, new_count):
            self._set_slot_entry(s, _TOMBSTONE_OFFSET, 0)
        self._put_u16(_OFF_SLOT_COUNT, new_count)
        self._put_u16(_OFF_FREE_LO, lo + grow * SLOT_ENTRY_SIZE)

    # -- ordered-directory operations (B+Tree nodes) -------------------------
    #
    # B+Tree nodes keep their directory sorted by key, so they never use
    # tombstones: removal shifts the directory closed and insertion shifts
    # it open.  Record bytes of removed entries are orphaned in the record
    # region until :meth:`compact` — exactly the fill-factor decay the paper
    # cites for B+Trees under deletes.

    def insert_at(self, position: int, data: bytes) -> None:
        """Insert a record so its directory entry lands at ``position``.

        All entries at ``position`` and beyond shift one step up.  Raises
        :class:`PageFullError` if the record plus a directory entry do not
        fit in the free window.
        """
        count = self.slot_count
        if not 0 <= position <= count:
            raise InvalidRidError(
                f"position {position} out of range 0..{count}"
            )
        if not data:
            raise PageFullError("cannot insert an empty record")
        lo, hi = self.free_window()
        need = len(data) + SLOT_ENTRY_SIZE
        if hi - lo < need:
            raise PageFullError(
                f"page {self.page_id}: need {need} bytes, have {hi - lo}"
            )
        new_hi = hi - len(data)
        self._buf[new_hi:hi] = data
        self._put_u16(_OFF_FREE_HI, new_hi)
        start = self._slot_entry_offset(position)
        end = self._slot_entry_offset(count)
        self._buf[start + SLOT_ENTRY_SIZE : end + SLOT_ENTRY_SIZE] = self._buf[start:end]
        self._put_u16(_OFF_SLOT_COUNT, count + 1)
        self._put_u16(_OFF_FREE_LO, lo + SLOT_ENTRY_SIZE)
        self._set_slot_entry(position, new_hi, len(data))

    def remove_at(self, position: int) -> None:
        """Remove the directory entry at ``position``, shifting the rest down.

        The record's bytes are orphaned in the record region (reclaimed by
        :meth:`compact`), so the free window does not grow at the high end.
        """
        count = self.slot_count
        if not 0 <= position < count:
            raise InvalidRidError(
                f"position {position} out of range 0..{count - 1}"
            )
        start = self._slot_entry_offset(position + 1)
        end = self._slot_entry_offset(count)
        self._buf[start - SLOT_ENTRY_SIZE : end - SLOT_ENTRY_SIZE] = self._buf[start:end]
        lo = self._get_u16(_OFF_FREE_LO)
        self._put_u16(_OFF_SLOT_COUNT, count - 1)
        self._put_u16(_OFF_FREE_LO, lo - SLOT_ENTRY_SIZE)

    def truncate(self, new_count: int) -> None:
        """Drop every directory entry at position >= ``new_count``.

        Used when splitting B+Tree nodes: the upper half is copied to the
        new sibling and truncated here.  Orphaned record bytes are then
        reclaimed with :meth:`compact`.
        """
        count = self.slot_count
        if not 0 <= new_count <= count:
            raise InvalidRidError(
                f"truncate target {new_count} out of range 0..{count}"
            )
        removed = count - new_count
        lo = self._get_u16(_OFF_FREE_LO)
        self._put_u16(_OFF_SLOT_COUNT, new_count)
        self._put_u16(_OFF_FREE_LO, lo - removed * SLOT_ENTRY_SIZE)

    def _find_tombstone(self) -> int | None:
        for slot in range(self.slot_count):
            base = self._slot_entry_offset(slot)
            if self._get_u16(base) == _TOMBSTONE_OFFSET:
                return slot
        return None

    def live_slots(self) -> Iterator[int]:
        """Yield slot numbers that hold live records."""
        for slot in range(self.slot_count):
            if self.slot_is_live(slot):
                yield slot

    def records(self) -> Iterator[tuple[int, bytes]]:
        """Yield ``(slot, record_bytes)`` for every live record."""
        for slot in self.live_slots():
            yield slot, self.read(slot)

    # -- maintenance -------------------------------------------------------

    def compact(self) -> None:
        """Rewrite the record region to reclaim tombstoned record bytes.

        Slot numbers are preserved; record offsets change.  The free window
        is zeroed afterwards — moving bytes under the cache's feet is
        exactly the situation its checksums guard against, and zeroing makes
        every stale slot read as empty.
        """
        entries: list[tuple[int, bytes | None]] = []
        for slot in range(self.slot_count):
            offset, _ = self._slot_entry(slot)
            if offset == _TOMBSTONE_OFFSET:
                entries.append((slot, None))
            else:
                entries.append((slot, self.read(slot)))
        hi = self._size - PAGE_FOOTER_SIZE
        for slot, data in entries:
            if data is None:
                continue
            hi -= len(data)
            self._buf[hi : hi + len(data)] = data
            self._set_slot_entry(slot, hi, len(data))
        self._put_u16(_OFF_FREE_HI, hi)
        lo = self._get_u16(_OFF_FREE_LO)
        self._buf[lo:hi] = bytes(hi - lo)

    # -- statistics --------------------------------------------------------

    @property
    def live_record_bytes(self) -> int:
        """Bytes of live record payload."""
        total = 0
        for slot in range(self.slot_count):
            offset, length = self._slot_entry(slot)
            if offset != _TOMBSTONE_OFFSET:
                total += length
        return total

    @property
    def usable_bytes(self) -> int:
        """Bytes available to records + directory (page minus fixed areas)."""
        return self._size - PAGE_HEADER_SIZE - PAGE_FOOTER_SIZE

    @property
    def fill_factor(self) -> float:
        """Fraction of usable bytes holding live data (records + their
        directory entries) — the statistic the paper quotes as ~68% for
        healthy B+Trees and 45% for the churned CarTel database."""
        live = self.live_record_bytes
        live_slots = sum(1 for _ in self.live_slots())
        used = live + live_slots * SLOT_ENTRY_SIZE
        return used / self.usable_bytes if self.usable_bytes else 0.0
