"""On-page layout constants shared by pages, the B+Tree, and the cache.

The page anatomy follows Figure 1 of the paper::

    +--------------------------------------------------------------+
    | fixed header | directory ->   ...free space...   <- records | footer |
    +--------------------------------------------------------------+

The directory grows *up* from the header; the record/key region grows
*down* from the footer; whatever is left in the middle is the free space
the index cache recycles (§2.1).
"""

from __future__ import annotations

from enum import IntEnum

#: Default page size.  4 KiB matches the paper's implicit InnoDB-era sizing
#: and keeps cache-slot geometry interesting (dozens of slots per leaf).
DEFAULT_PAGE_SIZE = 4096

#: Fixed page header:
#:   magic(2) page_id(4) page_type(1) flags(1) slot_count(2)
#:   free_lo(2) free_hi(2) cache_csn(8) next_page(4) level(1)
#:   checksum(4) reserved(1)  = 32 bytes
PAGE_HEADER_SIZE = 32

#: Byte offset of the CRC32 page checksum within the header (carved out
#: of the formerly reserved tail).  Stamped by the buffer pool at
#: write-back over every page byte *except* this field, verified on the
#: next fetch miss; a zero page (never written back) is treated as
#: unstamped.
PAGE_CHECKSUM_OFFSET = 27

#: Width of the CRC32 checksum field.
PAGE_CHECKSUM_SIZE = 4

#: Sentinel for "no next page" in the next_page header field.
NO_PAGE = 0xFFFFFFFF

#: Fixed page footer: magic(2) + reserved(2).
PAGE_FOOTER_SIZE = 4

#: One directory entry: record offset(2) + record length(2).
SLOT_ENTRY_SIZE = 4

#: Page magic for format validation.
PAGE_MAGIC = 0xB175  # "bits"

#: Footer magic.
FOOTER_MAGIC = 0x1EFD


class PageType(IntEnum):
    """Discriminates how a page's record region is interpreted."""

    FREE = 0
    HEAP = 1
    BTREE_LEAF = 2
    BTREE_INTERNAL = 3
    META = 4
